"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    assert code == 0
    return out


def test_fig1(capsys):
    out = run_cli(capsys, "fig1", "--models", "resnet50", "--batch", "8")
    assert "resnet50" in out
    assert "max/min" in out


def test_fig2(capsys):
    out = run_cli(capsys, "fig2", "--step", "25")
    assert "7b seconds" in out
    assert "Fig. 2" in out


def test_fig3(capsys):
    out = run_cli(capsys, "fig3", "--width", "40")
    assert "simulation" in out
    assert "GPU idle fraction" in out


def test_fig4_small(capsys):
    out = run_cli(capsys, "fig4", "--completions", "8")
    assert "throughput x" in out
    assert "mps" in out and "mig" in out and "timeshare" in out


def test_fig5_small(capsys):
    out = run_cli(capsys, "fig5", "--completions", "8")
    assert "mean latency" in out


def test_table1(capsys):
    out = run_cli(capsys, "table1", "--clients", "2")
    assert "mps-default" in out
    assert "vgpu" in out


def test_overheads(capsys):
    out = run_cli(capsys, "overheads")
    assert "llama2-13b" in out
    assert "MPS repartition" in out


def test_rightsizing(capsys):
    out = run_cli(capsys, "rightsizing")
    assert "knee SMs" in out


def test_weightcache(capsys):
    out = run_cli(capsys, "weightcache", "--repartitions", "2")
    assert "speedup" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_parser_lists_all_commands():
    parser = build_parser()
    text = parser.format_help()
    for cmd in ("fig1", "fig2", "fig3", "fig4", "fig5", "table1",
                "overheads", "rightsizing", "weightcache"):
        assert cmd in text
