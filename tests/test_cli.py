"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    assert code == 0
    return out


def test_fig1(capsys):
    out = run_cli(capsys, "fig1", "--models", "resnet50", "--batch", "8")
    assert "resnet50" in out
    assert "max/min" in out


def test_fig2(capsys):
    out = run_cli(capsys, "fig2", "--step", "25")
    assert "7b seconds" in out
    assert "Fig. 2" in out


def test_fig3(capsys):
    out = run_cli(capsys, "fig3", "--width", "40")
    assert "simulation" in out
    assert "GPU idle fraction" in out


def test_fig4_small(capsys):
    out = run_cli(capsys, "fig4", "--completions", "8")
    assert "throughput x" in out
    assert "mps" in out and "mig" in out and "timeshare" in out


def test_fig5_small(capsys):
    out = run_cli(capsys, "fig5", "--completions", "8")
    assert "mean latency" in out


def test_table1(capsys):
    out = run_cli(capsys, "table1", "--clients", "2")
    assert "mps-default" in out
    assert "vgpu" in out


def test_overheads(capsys):
    out = run_cli(capsys, "overheads")
    assert "llama2-13b" in out
    assert "MPS repartition" in out


def test_rightsizing(capsys):
    out = run_cli(capsys, "rightsizing")
    assert "knee SMs" in out


def test_weightcache(capsys):
    out = run_cli(capsys, "weightcache", "--repartitions", "2")
    assert "speedup" in out


def test_multiple_commands_in_one_invocation(capsys):
    out = run_cli(capsys, "fig4", "--completions", "6",
                  "fig5", "--completions", "6")
    assert "Fig. 4" in out
    assert "Fig. 5" in out


def test_fig4_fig5_share_one_sweep(capsys, monkeypatch):
    from repro import cli

    seen = {}
    real_ctx = cli.RunContext

    def spy(*args, **kwargs):
        seen["ctx"] = real_ctx(*args, **kwargs)
        return seen["ctx"]

    monkeypatch.setattr(cli, "RunContext", spy)
    run_cli(capsys, "--no-cache", "fig4", "--completions", "6",
            "fig5", "--completions", "6")
    ctx = seen["ctx"]
    # 3 modes x 4 process counts, computed once; fig5 hits the memory
    # cache even with --no-cache (which only disables the disk layer).
    assert ctx.runner.executed == 12
    assert ctx.runner.cache.hits == 12


def test_global_jobs_flag_reaches_runner(capsys, monkeypatch):
    from repro import cli

    seen = {}
    real_ctx = cli.RunContext

    def spy(*args, **kwargs):
        seen["ctx"] = real_ctx(*args, **kwargs)
        return seen["ctx"]

    monkeypatch.setattr(cli, "RunContext", spy)
    run_cli(capsys, "--jobs", "2", "--no-cache", "fig2", "--step", "50")
    assert seen["ctx"].runner.jobs == 2


def test_bench_quick_writes_wellformed_json(capsys, tmp_path):
    import json

    out_path = tmp_path / "bench.json"
    out = run_cli(capsys, "--jobs", "1", "bench", "--quick", "--profile",
                  "--out", str(out_path))
    assert "wrote" in out
    report = json.loads(out_path.read_text())
    assert report["schema"] == "repro-bench/8"
    assert report["quick"] is True
    assert report["micro"]["event_queue"]["events_per_sec"] > 0
    # repro-bench/6: provenance SHA and (with --profile) the event-loop
    # profiler's per-site attribution summary.
    assert "git_sha" in report
    prof = report["profile"]
    assert prof["events"] > 0
    assert prof["top_sites"] and all("site" in r for r in prof["top_sites"])
    for sweep in report["sweeps"].values():
        assert sweep["configs"] > 0
        assert sweep["cache_hit_rate"] == 1.0
    scale = report["scale"]
    assert scale["speedup"] > 1.0
    assert "streaming_1m" not in scale  # full runs only
    for engine in ("streaming", "legacy"):
        assert scale[engine]["events_per_sec"] > 0
    # Identical simulation under both engines: same clock, same events,
    # same latency distribution.
    assert scale["streaming"]["sim_seconds"] == scale["legacy"]["sim_seconds"]
    assert scale["streaming"]["events"] == scale["legacy"]["events"]
    assert scale["streaming"]["latency"]["mean"] == pytest.approx(
        scale["legacy"]["latency"]["mean"], rel=1e-9)
    sharded = scale["sharded"]
    assert sharded["gate"]["identical"] is True
    assert sharded["gate"]["pass"] is True
    assert sharded["sharded"]["worker_respawns"] == \
        [0] * len(sharded["sharded"]["worker_respawns"])
    assert "speedup" in out
    resilience = report["resilience"]
    assert resilience["gate"]["lost"] == 0
    assert resilience["gate"]["pass"] is True
    blast = resilience["blast_radius"]
    assert blast["mig"]["mean_kill_fraction"] < \
        blast["mps"]["mean_kill_fraction"]
    assert "Chaos serving" in out
    autoscale = report["autoscale"]
    assert autoscale["gate"]["lost"] == 0
    assert autoscale["gate"]["pass"] is True
    # repro-bench/7: the control-plane chaos subsection and its gate.
    chaos = autoscale["chaos"]
    assert chaos["gate"]["lost"] == 0
    assert chaos["gate"]["rollbacks_verified"] is True
    assert chaos["gate"]["twin_identical"] is True
    assert chaos["gate"]["pass"] is True
    assert "Online repartitioning" in out
    # repro-bench/8: the cluster placement contest and its gate.
    cluster = report["cluster"]
    assert cluster["gate"]["fewer_gpus"] is True
    assert cluster["gate"]["caps_bounded"] is True
    assert cluster["gate"]["twin_identical"] is True
    assert cluster["gate"]["pass"] is True
    assert cluster["feedback"]["drift_triggered"] is True
    assert "Cluster placement" in out


def test_serve_command_writes_report(capsys, tmp_path):
    import json

    from repro.bench.resilience_experiments import canonical_fault_plan

    plan_path = tmp_path / "plan.json"
    canonical_fault_plan(60.0, seed=3).save(plan_path)
    out_path = tmp_path / "serve.json"
    out = run_cli(capsys, "serve", "--mode", "mig-mps", "--requests", "80",
                  "--rate", "3.0", "--seed", "3",
                  "--faults", str(plan_path), "--out", str(out_path))
    assert "Chaos serving" in out
    assert "lost" in out
    report = json.loads(out_path.read_text())
    assert report["offered"] == 80
    assert report["lost"] == 0
    assert report["mode"] == "mig-mps"
    assert report["faults_applied"] > 0


def test_serve_command_without_faults(capsys):
    out = run_cli(capsys, "serve", "--requests", "40", "--rate", "2.0",
                  "--mode", "timeshare")
    assert "faults applied  0" in out


def test_serve_sharded_twin_runs_write_identical_json(capsys, tmp_path):
    """``--shards 2`` twin runs and a ``--shards 1`` run of the same
    cells produce byte-identical reports — the CI determinism gate."""
    paths = {name: tmp_path / f"{name}.json"
             for name in ("twin_a", "twin_b", "single")}
    for name, shards in (("twin_a", "2"), ("twin_b", "2"),
                         ("single", "1")):
        out = run_cli(capsys, "serve", "--requests", "60", "--rate", "3.0",
                      "--seed", "5", "--chaos", "--shards", shards,
                      "--cells", "2", "--out", str(paths[name]))
        assert "events digest" in out
    twin_a = paths["twin_a"].read_bytes()
    assert twin_a == paths["twin_b"].read_bytes()
    assert twin_a == paths["single"].read_bytes()


def test_cluster_command_twin_runs_identical(capsys, tmp_path):
    """Twin ``repro cluster`` invocations write byte-identical JSON
    (timings stripped) — the CI cluster smoke in miniature."""
    import json

    paths = [tmp_path / "a.json", tmp_path / "b.json"]
    for path in paths:
        out = run_cli(capsys, "cluster", "--functions", "6", "--seed", "2",
                      "--out", str(path))
        assert "Cluster placement" in out
        assert "greedy FFD" in out and "repacking optimiser" in out
    assert paths[0].read_bytes() == paths[1].read_bytes()
    contest = json.loads(paths[0].read_text())
    assert "wall_seconds" not in contest["greedy"]
    assert contest["optimized"]["gpus_used"] <= contest["greedy"]["gpus_used"]
    assert contest["max_weighted_cap_sum"] <= 100


def test_serve_sharded_rejects_faults_file(capsys, tmp_path):
    from repro.bench.resilience_experiments import canonical_fault_plan

    plan_path = tmp_path / "plan.json"
    canonical_fault_plan(20.0, seed=3).save(plan_path)
    with pytest.raises(SystemExit):
        main(["serve", "--requests", "40", "--shards", "2",
              "--faults", str(plan_path)])


def test_stats_flag_prints_summary_line(capsys):
    out = run_cli(capsys, "--jobs", "1", "--no-cache", "--stats",
                  "fig2", "--step", "50")
    assert "Fig. 2" in out
    line = out.strip().splitlines()[-1]
    assert line.startswith("[stats]")
    assert "events/sec=" in line
    assert "alloc_calls=" in line
    # The fig2 sweep runs real simulations in-process under --jobs 1,
    # so the collector must have seen a nonzero event count.
    assert "events=0 " not in line


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_parser_lists_all_commands():
    parser = build_parser()
    text = parser.format_help()
    for cmd in ("fig1", "fig2", "fig3", "fig4", "fig5", "table1",
                "overheads", "rightsizing", "weightcache", "bench",
                "cluster", "serve"):
        assert cmd in text
    assert "--jobs" in text
    assert "--no-cache" in text


def test_every_command_is_splittable():
    from repro.cli import COMMANDS, build_parser

    parser = build_parser()
    text = parser.format_help()
    for cmd in COMMANDS:
        assert cmd in text
