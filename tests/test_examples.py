"""Smoke tests: every shipped example runs end to end.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs in its own process namespace via runpy with stdout
captured, and must complete without raising.
"""

import io
import os
import runpy
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")

EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def test_all_examples_discovered():
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    from repro.faas import dataflow

    dataflow.clear()  # examples may load a global DFK
    buffer = io.StringIO()
    path = os.path.join(EXAMPLES_DIR, script)
    try:
        with redirect_stdout(buffer):
            runpy.run_path(path, run_name="__main__")
    finally:
        dataflow.clear()
    output = buffer.getvalue()
    assert output.strip(), f"{script} produced no output"


def test_quickstart_output_shape():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(os.path.join(EXAMPLES_DIR, "quickstart.py"),
                       run_name="__main__")
    out = buffer.getvalue()
    assert "results:" in out
    assert "GPU mean SM utilization" in out


def test_llama_chatbots_reports_the_headline():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(os.path.join(EXAMPLES_DIR, "llama_chatbots.py"),
                       run_name="__main__")
    out = buffer.getvalue()
    assert "mps" in out
    assert "60" in out  # the ~60% lower completion-time headline
