"""Tests for the utilization monitor and the Table 1 capability table."""

import pytest

from repro.sim import Environment
from repro.gpu import (
    A100_40GB,
    GpuMonitor,
    Kernel,
    MultiplexMode,
    SimulatedGPU,
    mode_capabilities,
)

SPEC = A100_40GB


def test_monitor_records_busy_and_idle():
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    monitor = GpuMonitor(gpu, interval=1.0)
    c = gpu.timeshare_client("c")
    # Full-device kernel for exactly 2 s, then idle for 2 s.
    k = Kernel(flops=SPEC.fp32_flops * 2, bytes_moved=0.0, max_sms=SPEC.sms,
               efficiency=1.0)
    c.launch(k)
    env.run(until=4.0)
    utils = [s.sm_utilization for s in monitor.samples]
    assert utils == pytest.approx([1.0, 1.0, 0.0, 0.0], abs=1e-6)
    assert monitor.mean_utilization == pytest.approx(0.5, abs=1e-6)
    assert monitor.idle_fraction() == pytest.approx(0.5)


def test_monitor_stop():
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    monitor = GpuMonitor(gpu, interval=1.0)
    env.run(until=2.0)
    monitor.stop()
    env.run(until=5.0)
    assert len(monitor.samples) == 2
    monitor.stop()  # idempotent


def test_monitor_interval_validation():
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    with pytest.raises(ValueError):
        GpuMonitor(gpu, interval=0.0)


def test_mode_capability_table_complete():
    for mode in MultiplexMode:
        caps = mode_capabilities(mode)
        assert caps.mode is mode
        assert caps.description
        assert caps.drawbacks


def test_mode_capability_key_facts():
    # The facts the evaluation narrative depends on.
    assert mode_capabilities(MultiplexMode.MPS_DEFAULT).spatial
    assert not mode_capabilities(MultiplexMode.MPS_DEFAULT).memory_isolation
    assert mode_capabilities(MultiplexMode.MIG).memory_isolation
    assert not mode_capabilities(MultiplexMode.MIG).live_reconfigurable
    assert not mode_capabilities(MultiplexMode.TIME_SHARING).spatial
    assert not mode_capabilities(MultiplexMode.MPS_PERCENTAGE).live_reconfigurable
