"""Unit tests for the kernel roofline model."""

import pytest

from repro.gpu import Kernel, KernelGroup


def test_kernel_validation():
    with pytest.raises(ValueError):
        Kernel(flops=-1, bytes_moved=0, max_sms=1)
    with pytest.raises(ValueError):
        Kernel(flops=0, bytes_moved=0, max_sms=1)
    with pytest.raises(ValueError):
        Kernel(flops=1, bytes_moved=0, max_sms=0)
    with pytest.raises(ValueError):
        Kernel(flops=1, bytes_moved=0, max_sms=1, efficiency=0.0)
    with pytest.raises(ValueError):
        Kernel(flops=1, bytes_moved=0, max_sms=1, efficiency=1.5)


def test_arithmetic_intensity():
    k = Kernel(flops=100.0, bytes_moved=50.0, max_sms=10)
    assert k.arithmetic_intensity == pytest.approx(2.0)
    pure = Kernel(flops=100.0, bytes_moved=0.0, max_sms=10)
    assert pure.arithmetic_intensity == float("inf")


def test_duration_compute_bound():
    k = Kernel(flops=1e12, bytes_moved=1.0, max_sms=100, efficiency=1.0)
    # 10 SMs at 1e10 flops/s/SM each -> 10 s.
    assert k.duration(sms=10, flops_per_sm=1e10, bandwidth=1e12) == pytest.approx(10.0)


def test_duration_memory_bound():
    k = Kernel(flops=1.0, bytes_moved=1e9, max_sms=100, efficiency=1.0)
    assert k.duration(sms=100, flops_per_sm=1e12, bandwidth=1e9) == pytest.approx(1.0)


def test_duration_plateaus_at_max_sms():
    """More SMs than the grid can use must not shorten the kernel (Fig 2)."""
    k = Kernel(flops=1e12, bytes_moved=0.0, max_sms=20, efficiency=1.0)
    t20 = k.duration(sms=20, flops_per_sm=1e10, bandwidth=1e12)
    t108 = k.duration(sms=108, flops_per_sm=1e10, bandwidth=1e12)
    assert t20 == pytest.approx(t108)
    t10 = k.duration(sms=10, flops_per_sm=1e10, bandwidth=1e12)
    assert t10 == pytest.approx(2 * t20)


def test_duration_efficiency_scales_compute():
    k_full = Kernel(flops=1e12, bytes_moved=0.0, max_sms=10, efficiency=1.0)
    k_half = Kernel(flops=1e12, bytes_moved=0.0, max_sms=10, efficiency=0.5)
    t_full = k_full.duration(10, 1e10, 1e12)
    t_half = k_half.duration(10, 1e10, 1e12)
    assert t_half == pytest.approx(2 * t_full)


def test_scaled():
    k = Kernel(flops=10.0, bytes_moved=4.0, max_sms=8)
    s = k.scaled(3.0)
    assert s.flops == pytest.approx(30.0)
    assert s.bytes_moved == pytest.approx(12.0)
    assert s.max_sms == 8
    with pytest.raises(ValueError):
        k.scaled(0)


def test_group_totals():
    g = KernelGroup([
        Kernel(flops=10.0, bytes_moved=1.0, max_sms=4),
        Kernel(flops=20.0, bytes_moved=2.0, max_sms=8),
    ])
    assert g.total_flops == pytest.approx(30.0)
    assert g.total_bytes == pytest.approx(3.0)
    assert len(g) == 2


def test_group_requires_kernels():
    with pytest.raises(ValueError):
        KernelGroup([])


def test_fused_preserves_work():
    g = KernelGroup([
        Kernel(flops=10.0, bytes_moved=1.0, max_sms=4, efficiency=1.0),
        Kernel(flops=30.0, bytes_moved=3.0, max_sms=8, efficiency=0.5),
    ])
    f = g.fused()
    assert f.flops == pytest.approx(40.0)
    assert f.bytes_moved == pytest.approx(4.0)
    # FLOP-weighted: max_sms = (10*4 + 30*8)/40 = 7; eff = (10*1+30*.5)/40.
    assert f.max_sms == 7
    assert f.efficiency == pytest.approx(0.625)


def test_concat():
    g1 = KernelGroup([Kernel(flops=1.0, bytes_moved=0.0, max_sms=1)])
    g2 = KernelGroup([Kernel(flops=2.0, bytes_moved=0.0, max_sms=1)])
    cat = KernelGroup.concat([g1, g2])
    assert cat.total_flops == pytest.approx(3.0)
    assert len(cat) == 2
