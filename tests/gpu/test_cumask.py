"""Tests for AMD-style CU masking (Table 1's MPS-percentage equivalent)."""

import pytest

from repro.gpu import CuMaskManager, Kernel, MI210, SimulatedGPU
from repro.gpu.cumask import parse_mask
from repro.sim import Environment

SPEC = MI210  # 104 CUs


def make_manager():
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    return env, gpu, CuMaskManager(gpu)


def full_kernel(seconds=1.0, max_cus=SPEC.sms):
    return Kernel(flops=SPEC.flops_per_sm * max_cus * seconds,
                  bytes_moved=0.0, max_sms=max_cus, efficiency=1.0)


def test_parse_mask():
    assert parse_mask(0b1011, 8) == [0, 1, 3]
    with pytest.raises(ValueError):
        parse_mask(0, 8)
    with pytest.raises(ValueError):
        parse_mask(1 << 8, 8)


def test_masked_client_capped_to_popcount():
    env, gpu, mgr = make_manager()
    client = mgr.client("half", (1 << 52) - 1)  # 52 of 104 CUs
    assert client.sm_cap == 52
    done = client.launch(full_kernel(1.0))
    env.run(until=done)
    assert env.now == pytest.approx(2.0)  # half the CUs, twice the time


def test_equal_masks_are_disjoint_and_cover():
    env, gpu, mgr = make_manager()
    masks = mgr.equal_masks(4)
    assert len(masks) == 4
    combined = 0
    for mask in masks:
        assert combined & mask == 0  # disjoint
        combined |= mask
    assert combined == (1 << SPEC.sms) - 1  # full coverage


def test_disjoint_masked_clients_run_concurrently():
    env, gpu, mgr = make_manager()
    masks = mgr.equal_masks(2)
    a = mgr.client("a", masks[0])
    b = mgr.client("b", masks[1])
    assert not mgr.overlapping(a, b)
    a.launch(full_kernel(1.0, max_cus=52))
    done = b.launch(full_kernel(1.0, max_cus=52))
    env.run(until=done)
    assert env.now == pytest.approx(1.0)  # true spatial overlap


def test_overlap_detection():
    env, gpu, mgr = make_manager()
    a = mgr.client("a", 0b1111)
    b = mgr.client("b", 0b1100)
    assert mgr.overlapping(a, b)


def test_mask_of_unknown_client():
    env, gpu, mgr = make_manager()
    plain_gpu = SimulatedGPU(Environment(), SPEC)
    with pytest.raises(KeyError):
        env2 = Environment()
        gpu2 = SimulatedGPU(env2, SPEC)
        other = CuMaskManager(gpu2).client("x", 0b1)
        mgr.mask_of(other)


def test_nvidia_device_rejected():
    from repro.gpu import A100_40GB

    env = Environment()
    gpu = SimulatedGPU(env, A100_40GB)
    with pytest.raises(ValueError, match="NVIDIA"):
        CuMaskManager(gpu)


def test_active_clients_rejected():
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    gpu.timeshare_client("busy")
    with pytest.raises(RuntimeError, match="active"):
        CuMaskManager(gpu)


def test_equal_masks_validation():
    env, gpu, mgr = make_manager()
    with pytest.raises(ValueError):
        mgr.equal_masks(0)
    with pytest.raises(ValueError):
        mgr.equal_masks(SPEC.sms + 1)
