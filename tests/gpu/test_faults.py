"""Tests for partition-aware fault domains (repro.gpu.faults)."""

import pytest

from repro.gpu import (
    A100_40GB,
    A100_80GB,
    GpuEccError,
    Kernel,
    MigManager,
    MpsControlDaemon,
    SimulatedGPU,
    domain_of,
    fault_domains,
    kill_domain,
)
from repro.gpu.vgpu import VgpuManager
from repro.sim import Environment


def slow_kernel(spec=A100_40GB, seconds=10.0, sms=None):
    return Kernel(flops=spec.fp32_flops * seconds, bytes_moved=0.0,
                  max_sms=sms if sms is not None else spec.sms,
                  efficiency=1.0)


def mig_device(n_instances=2):
    env = Environment()
    gpu = SimulatedGPU(env, A100_80GB)
    manager = MigManager(gpu)
    env.run(until=env.process(manager.enable()))
    instances = [manager.create_instance("1g.10gb")
                 for _ in range(n_instances)]
    return env, gpu, instances


# --------------------------------------------------------- domain structure

def test_unpartitioned_device_has_one_shared_domain():
    env = Environment()
    gpu = SimulatedGPU(env, A100_40GB)
    domains = fault_domains(gpu)
    assert len(domains) == 1
    assert not domains[0].hardware_isolated
    assert gpu.default_group in domains[0]


def test_mps_daemon_stays_in_shared_domain():
    env = Environment()
    gpu = SimulatedGPU(env, A100_40GB)
    MpsControlDaemon(gpu).start()
    domains = fault_domains(gpu)
    assert len(domains) == 1
    assert not domains[0].hardware_isolated


def test_mig_instances_are_separate_hardware_domains():
    _env, gpu, (inst_a, inst_b) = mig_device()
    domains = fault_domains(gpu)
    # Shared residual domain first, then one per MIG instance.
    assert not domains[0].hardware_isolated
    isolated = domains[1:]
    assert len(isolated) == 2
    assert all(d.hardware_isolated for d in isolated)
    assert domain_of(gpu, inst_a.group) is not domain_of(gpu, inst_b.group)


def test_vgpu_vms_are_separate_hardware_domains():
    env = Environment()
    gpu = SimulatedGPU(env, A100_40GB)
    manager = VgpuManager(gpu, num_vms=2)
    isolated = [d for d in fault_domains(gpu) if d.hardware_isolated]
    assert len(isolated) == 2
    assert domain_of(gpu, manager.vms[0].group).hardware_isolated


def test_domain_of_rejects_foreign_group():
    env = Environment()
    gpu_a = SimulatedGPU(env, A100_40GB, name="gpu-a")
    gpu_b = SimulatedGPU(env, A100_40GB, name="gpu-b")
    with pytest.raises(ValueError):
        domain_of(gpu_a, gpu_b.default_group)


def test_kill_domain_rejects_foreign_domain():
    env = Environment()
    gpu_a = SimulatedGPU(env, A100_40GB, name="gpu-a")
    gpu_b = SimulatedGPU(env, A100_40GB, name="gpu-b")
    with pytest.raises(ValueError):
        kill_domain(gpu_a, fault_domains(gpu_b)[0])


# --------------------------------------------------------- blast radius

def test_ecc_on_one_mig_instance_spares_the_other():
    """The MIG isolation regression: a fault in one instance must not
    kill kernels resident in a different instance."""
    env, gpu, (inst_a, inst_b) = mig_device()
    ka = inst_a.client("a").launch(slow_kernel(A100_80GB, sms=14))
    kb = inst_b.client("b").launch(slow_kernel(A100_80GB, sms=14))
    ka._defused = True
    kb._defused = True
    env.run(until=env.now + 1.0)
    killed = kill_domain(gpu, domain_of(gpu, inst_a.group))
    assert killed == 1
    assert isinstance(ka.value, GpuEccError)
    assert not kb.triggered  # instance b's kernel still running
    env.run()
    assert kb.ok


def test_shared_domain_kill_spares_mig_instances():
    """inject_gpu_error(device) targets the shared context only."""
    from repro.faas import inject_gpu_error

    env, gpu, (inst_a, inst_b) = mig_device()
    ka = inst_a.client("a").launch(slow_kernel(A100_80GB, sms=14))
    ka._defused = True
    env.run(until=env.now + 1.0)
    # The monolithic context is empty in MIG mode; partitioned kernels
    # live behind their own memory and survive a shared-context error.
    assert inject_gpu_error(gpu) == 0
    assert not ka.triggered
    env.run()
    assert ka.ok


def test_scoped_inject_accepts_instance_and_group():
    from repro.faas import inject_gpu_error

    env, gpu, (inst_a, _inst_b) = mig_device()
    done = inst_a.client("a").launch(slow_kernel(A100_80GB, sms=14))
    done._defused = True
    env.run(until=env.now + 1.0)
    assert inject_gpu_error(gpu, inst_a) == 1  # object with .group
    assert isinstance(done.value, GpuEccError)
    # Empty now, via the ShareGroup spelling.
    assert inject_gpu_error(gpu, inst_a.group) == 0


def test_scoped_inject_rejects_nonsense_scope():
    from repro.faas import inject_gpu_error

    env = Environment()
    gpu = SimulatedGPU(env, A100_40GB)
    with pytest.raises(TypeError):
        inject_gpu_error(gpu, scope="everything")


def test_mps_error_kills_every_resident_client():
    """Software sharing has device-wide blast radius (the MPS contrast
    of the blast-radius experiment)."""
    env = Environment()
    gpu = SimulatedGPU(env, A100_40GB)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    dones = [daemon.client(f"c{i}").launch(slow_kernel(sms=10))
             for i in range(4)]
    for d in dones:
        d._defused = True
    env.run(until=env.now + 1.0)
    killed = kill_domain(gpu, fault_domains(gpu)[0])
    assert killed == 4
    assert all(isinstance(d.value, GpuEccError) for d in dones)
