"""Behavioural tests for the vGPU model."""

import pytest

from repro.sim import Environment
from repro.gpu import A100_40GB, Kernel, SimulatedGPU, VgpuManager
from repro.gpu.vgpu import VGPU_SCHEDULING_EFFICIENCY

SPEC = A100_40GB


def make_vgpu(num_vms=2):
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    return env, gpu, VgpuManager(gpu, num_vms)


def full_kernel(seconds=1.0):
    flops = SPEC.fp32_flops * seconds
    return Kernel(flops=flops, bytes_moved=0.0, max_sms=SPEC.sms, efficiency=1.0)


def test_vgpu_memory_is_homogeneous():
    env, gpu, mgr = make_vgpu(4)
    for vm in mgr.vms:
        assert vm.group.memory.capacity == pytest.approx(SPEC.memory_bytes / 4)


def test_single_vm_pays_scheduling_overhead():
    env, gpu, mgr = make_vgpu(2)
    c = mgr.vm(0).client("c")
    done = c.launch(full_kernel(1.0))
    env.run(until=done)
    assert env.now == pytest.approx(1.0 / VGPU_SCHEDULING_EFFICIENCY)


def test_two_active_vms_split_compute():
    env, gpu, mgr = make_vgpu(2)
    a = mgr.vm(0).client("a")
    b = mgr.vm(1).client("b")
    a.launch(full_kernel(1.0))
    done = b.launch(full_kernel(1.0))
    env.run(until=done)
    assert env.now == pytest.approx(2.0 / VGPU_SCHEDULING_EFFICIENCY)


def test_idle_vm_does_not_consume_share():
    """Only *active* VMs count toward the fair split (work conserving)."""
    env, gpu, mgr = make_vgpu(4)
    c = mgr.vm(0).client("c")
    done = c.launch(full_kernel(1.0))
    env.run(until=done)
    # The other three VMs are idle, so vm0 gets the whole device.
    assert env.now == pytest.approx(1.0 / VGPU_SCHEDULING_EFFICIENCY)


def test_processes_within_vm_timeshare():
    env, gpu, mgr = make_vgpu(1)
    a = mgr.vm(0).client("a")
    b = mgr.vm(0).client("b")
    a.launch(full_kernel(1.0))
    done = b.launch(full_kernel(1.0))
    env.run(until=done)
    expected = 2.0 / VGPU_SCHEDULING_EFFICIENCY + SPEC.timeslice_switch_seconds
    assert env.now == pytest.approx(expected)


def test_vm_restart_requires_idle():
    env, gpu, mgr = make_vgpu(2)
    c = mgr.vm(0).client("c")
    with pytest.raises(RuntimeError, match="close"):
        env.run(until=env.process(mgr.vm(0).restart()))


def test_vgpu_with_live_clients_rejected():
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    gpu.timeshare_client("bare")
    with pytest.raises(RuntimeError, match="bare-metal"):
        VgpuManager(gpu, 2)


def test_invalid_vm_count():
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    with pytest.raises(ValueError):
        VgpuManager(gpu, 0)
