"""Behavioural tests for the simulated GPU under each multiplexing mode."""

import pytest

from repro.sim import Environment
from repro.gpu import (
    A100_40GB,
    Kernel,
    MigManager,
    MpsControlDaemon,
    SimulatedGPU,
)

SPEC = A100_40GB


def make_gpu():
    env = Environment()
    return env, SimulatedGPU(env, SPEC)


def compute_kernel(seconds_at_full=1.0, max_sms=SPEC.sms, efficiency=1.0):
    """A pure-compute kernel lasting ``seconds_at_full`` on max_sms SMs."""
    flops = SPEC.flops_per_sm * efficiency * max_sms * seconds_at_full
    return Kernel(flops=flops, bytes_moved=0.0, max_sms=max_sms,
                  efficiency=efficiency)


def memory_kernel(seconds_at_full_bw=1.0, max_sms=SPEC.sms):
    """A pure-memory kernel lasting ``seconds_at_full_bw`` at device BW."""
    return Kernel(flops=0.0, bytes_moved=SPEC.bandwidth * seconds_at_full_bw,
                  max_sms=max_sms, efficiency=1.0)


# ---------------------------------------------------------------- time-sharing

def test_single_kernel_matches_roofline():
    env, gpu = make_gpu()
    client = gpu.timeshare_client("c0")
    k = compute_kernel(2.0)
    done = client.launch(k)
    env.run(until=done)
    expect = k.duration(SPEC.sms, SPEC.flops_per_sm, SPEC.bandwidth)
    assert env.now == pytest.approx(expect)


def test_timesharing_serialises_kernels():
    env, gpu = make_gpu()
    a = gpu.timeshare_client("a")
    b = gpu.timeshare_client("b")
    done_a = a.launch(compute_kernel(1.0))
    done_b = b.launch(compute_kernel(1.0))
    finish = {}
    done_a.callbacks.append(lambda ev: finish.__setitem__("a", env.now))
    done_b.callbacks.append(lambda ev: finish.__setitem__("b", env.now))
    env.run()
    # Serial execution plus one context switch between the two clients.
    assert finish["a"] == pytest.approx(1.0)
    assert finish["b"] == pytest.approx(2.0 + SPEC.timeslice_switch_seconds)


def test_timesharing_no_switch_cost_same_client():
    env, gpu = make_gpu()
    a = gpu.timeshare_client("a")
    d1 = a.launch(compute_kernel(1.0))
    d2 = a.launch(compute_kernel(1.0))
    env.run(until=d2)
    assert env.now == pytest.approx(2.0)


def test_timeshared_kernel_gets_full_device():
    """Even a small-grid kernel runs alone under time-sharing."""
    env, gpu = make_gpu()
    a = gpu.timeshare_client("a")
    b = gpu.timeshare_client("b")
    small = compute_kernel(1.0, max_sms=20)
    a.launch(small)
    done = b.launch(compute_kernel(1.0))
    env.run(until=done)
    # b waited for the full duration of a's kernel (no spatial overlap).
    assert env.now == pytest.approx(2.0 + SPEC.timeslice_switch_seconds)


# ------------------------------------------------------------------------ MPS

def test_mps_requires_daemon():
    env, gpu = make_gpu()
    daemon = MpsControlDaemon(gpu)
    with pytest.raises(RuntimeError, match="must be started"):
        daemon.client("c0")


def test_mps_start_with_live_clients_rejected():
    env, gpu = make_gpu()
    gpu.timeshare_client("old")
    daemon = MpsControlDaemon(gpu)
    with pytest.raises(RuntimeError, match="active time-shared clients"):
        daemon.start()


def test_mps_small_kernels_run_concurrently():
    """Two 20-SM kernels overlap perfectly under MPS (40 < 108 SMs)."""
    env, gpu = make_gpu()
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    a = daemon.client("a")
    b = daemon.client("b")
    k = compute_kernel(1.0, max_sms=20)
    a.launch(k)
    done = b.launch(compute_kernel(1.0, max_sms=20))
    env.run(until=done)
    assert env.now == pytest.approx(1.0)


def test_mps_sm_contention_scales_proportionally():
    """Two full-device kernels each get half the SMs -> 2x duration."""
    env, gpu = make_gpu()
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    a = daemon.client("a")
    b = daemon.client("b")
    a.launch(compute_kernel(1.0))
    done = b.launch(compute_kernel(1.0))
    env.run(until=done)
    assert env.now == pytest.approx(2.0)


def test_mps_percentage_caps_sms():
    env, gpu = make_gpu()
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    # 50% of an A100 -> 54 of 108 SMs (the paper's own example, §4.1).
    half = daemon.client("half", active_thread_percentage=50)
    assert half.sm_cap == 54
    done = half.launch(compute_kernel(1.0))
    env.run(until=done)
    assert env.now == pytest.approx(2.0)  # half the SMs, twice the time


def test_mps_percentage_validation():
    env, gpu = make_gpu()
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    with pytest.raises(ValueError):
        daemon.client("bad", active_thread_percentage=0)
    with pytest.raises(ValueError):
        daemon.client("bad", active_thread_percentage=101)


def test_mps_bandwidth_not_partitioned():
    """An MPS percentage client may still use the full device bandwidth."""
    env, gpu = make_gpu()
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    c = daemon.client("c", active_thread_percentage=25)
    k = memory_kernel(1.0, max_sms=20)
    done = c.launch(k)
    env.run(until=done)
    assert env.now == pytest.approx(1.0)  # full bandwidth despite 25% SMs


def test_mps_memory_bound_kernels_share_bandwidth():
    env, gpu = make_gpu()
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    a = daemon.client("a")
    b = daemon.client("b")
    a.launch(memory_kernel(1.0))
    done = b.launch(memory_kernel(1.0))
    env.run(until=done)
    assert env.now == pytest.approx(2.0)


def test_mps_stop_restores_timesharing():
    env, gpu = make_gpu()
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    daemon.stop()
    assert gpu.default_group.discipline == "temporal"
    gpu.timeshare_client("ok")


# ------------------------------------------------------------------------ MIG

def run_gen(env, gen):
    """Run a generator method to completion inside the simulation."""
    return env.run(until=env.process(gen))


def test_mig_enable_costs_reset():
    env, gpu = make_gpu()
    mig = MigManager(gpu)
    run_gen(env, mig.enable())
    assert env.now == pytest.approx(SPEC.reset_seconds)
    assert mig.enabled


def test_mig_enable_with_clients_rejected():
    env, gpu = make_gpu()
    gpu.timeshare_client("busy")
    mig = MigManager(gpu)
    with pytest.raises(RuntimeError, match="clients are active"):
        run_gen(env, mig.enable())


def test_mig_instance_gets_slice_resources():
    env, gpu = make_gpu()
    mig = MigManager(gpu)
    run_gen(env, mig.enable())
    inst = mig.create_instance("1g.5gb")
    assert inst.sm_count == 14
    c = inst.client("c0")
    start = env.now
    k = compute_kernel(1.0, max_sms=SPEC.sms)
    done = c.launch(k)
    env.run(until=done)
    # 14 of 108 SMs -> 108/14 x the full-device duration.
    assert env.now - start == pytest.approx(108.0 / 14.0)


def test_mig_bandwidth_is_hard_capped():
    env, gpu = make_gpu()
    mig = MigManager(gpu)
    run_gen(env, mig.enable())
    inst = mig.create_instance("1g.5gb")
    c = inst.client("c0")
    start = env.now
    done = c.launch(memory_kernel(1.0, max_sms=14))
    env.run(until=done)
    # 1g owns 1 of 8 memory slices -> 8x the full-bandwidth duration.
    assert env.now - start == pytest.approx(8.0)


def test_mig_instances_are_isolated():
    """Work on one instance must not slow another instance at all."""
    env, gpu = make_gpu()
    mig = MigManager(gpu)
    run_gen(env, mig.enable())
    i1 = mig.create_instance("3g.20gb")
    i2 = mig.create_instance("3g.20gb")
    c1 = i1.client("c1")
    c2 = i2.client("c2")
    start = env.now
    # A heavy co-tenant on i2...
    c2.launch(memory_kernel(50.0))
    # ...must not affect c1's memory-bound kernel.
    done = c1.launch(memory_kernel(1.0, max_sms=42))
    env.run(until=done)
    # 3g owns 4/8 slices -> 2x full-bandwidth duration, co-tenant or not.
    assert env.now - start == pytest.approx(2.0)


def test_mig_slice_capacity_enforced():
    env, gpu = make_gpu()
    mig = MigManager(gpu)
    run_gen(env, mig.enable())
    mig.create_instance("4g.20gb")
    mig.create_instance("3g.20gb")  # 7/7 compute slices now used
    with pytest.raises(RuntimeError, match="compute slices"):
        mig.create_instance("1g.5gb")


def test_mig_memory_slice_capacity_enforced():
    env, gpu = make_gpu()
    mig = MigManager(gpu)
    run_gen(env, mig.enable())
    mig.create_instance("3g.20gb")  # 4 memory slices, 3 compute
    mig.create_instance("3g.20gb")  # 8 of 8 memory used, 6 of 7 compute
    with pytest.raises(RuntimeError, match="memory slices"):
        # 1g still has a free compute slice but no memory slice left.
        mig.create_instance("1g.5gb")


def test_mig_instance_memory_oom():
    from repro.gpu import GpuOutOfMemory

    env, gpu = make_gpu()
    mig = MigManager(gpu)
    run_gen(env, mig.enable())
    inst = mig.create_instance("1g.5gb")
    c = inst.client("c0")
    with pytest.raises(GpuOutOfMemory):
        c.alloc(6e9)  # only 5 GB in a 1g.5gb instance


def test_mig_reconfigure_requires_idle_clients():
    env, gpu = make_gpu()
    mig = MigManager(gpu)
    run_gen(env, mig.enable())
    inst = mig.create_instance("3g.20gb")
    inst.client("busy")
    with pytest.raises(RuntimeError, match="shutting\\s+down all"):
        run_gen(env, mig.reconfigure(["7g.40gb"]))


def test_mig_reconfigure_costs_reset():
    env, gpu = make_gpu()
    mig = MigManager(gpu)
    run_gen(env, mig.enable())
    mig.create_instance("3g.20gb")
    t0 = env.now
    new = run_gen(env, mig.reconfigure(["2g.10gb", "2g.10gb", "2g.10gb"]))
    assert env.now - t0 == pytest.approx(SPEC.reset_seconds)
    assert [i.profile.name for i in new] == ["2g.10gb"] * 3


def test_mig_destroy_with_clients_rejected():
    env, gpu = make_gpu()
    mig = MigManager(gpu)
    run_gen(env, mig.enable())
    inst = mig.create_instance("1g.5gb")
    c = inst.client("c")
    with pytest.raises(RuntimeError, match="clients"):
        mig.destroy_instance(inst)
    c.close()
    mig.destroy_instance(inst)
    assert mig.instances == []


def test_mig_lookup_by_uuid():
    env, gpu = make_gpu()
    mig = MigManager(gpu)
    run_gen(env, mig.enable())
    inst = mig.create_instance("2g.10gb")
    assert mig.lookup(inst.uuid) is inst
    with pytest.raises(KeyError):
        mig.lookup("MIG-nonexistent")


def test_mig_on_non_mig_device_rejected():
    from repro.gpu import V100_32GB

    env = Environment()
    gpu = SimulatedGPU(env, V100_32GB)
    with pytest.raises(RuntimeError, match="does not support MIG"):
        MigManager(gpu)


# ---------------------------------------------------------------------- client

def test_client_close_releases_memory():
    env, gpu = make_gpu()
    c = gpu.timeshare_client("c")
    c.alloc(10e9)
    assert gpu.memory.used == pytest.approx(10e9)
    c.close()
    assert gpu.memory.used == 0.0
    with pytest.raises(RuntimeError, match="closed"):
        c.launch(compute_kernel(1.0))


def test_client_run_includes_launch_overhead():
    env, gpu = make_gpu()
    c = gpu.timeshare_client("c")

    def proc(env):
        yield from c.run(compute_kernel(1.0))

    env.run(until=env.process(proc(env)))
    assert env.now == pytest.approx(1.0 + SPEC.launch_overhead)


# ------------------------------------------------------------------ utilization

def test_sm_utilization_accounting():
    env, gpu = make_gpu()
    c = gpu.timeshare_client("c")
    done = c.launch(compute_kernel(1.0))
    env.run(until=done)
    env.run(until=2.0)  # one busy second, one idle second
    assert gpu.sm_utilization() == pytest.approx(0.5, rel=1e-3)


def test_sm_utilization_small_kernel():
    env, gpu = make_gpu()
    c = gpu.timeshare_client("c")
    k = compute_kernel(1.0, max_sms=27)  # quarter of the device
    done = c.launch(k)
    env.run(until=done)
    assert gpu.sm_utilization() == pytest.approx(27.0 / 108.0, rel=1e-3)
