"""The incremental allocator must be bit-identical to the full recompute.

Two layers of defence, both exercised here:

- ``cross_check=True`` makes the device run the full hierarchical
  recompute after every incremental allocation and raise
  ``AllocatorMismatch`` on the first float that differs — so simply
  *running* a schedule under cross-check is an exhaustive equality test
  over every membership change in it;
- twin runs (incremental vs ``incremental=False``) must produce
  exactly equal completion timestamps, which additionally pins the
  event-loop interaction (wakeup horizons derive from rates).

Schedules are randomised over client counts, kernel shapes, and launch
staggering, across the three sharing topologies (flat MPS, MIG+MPS,
vGPU fair-share), because the allocator's branches differ per topology:
MPS exercises the aggregate-cap shrink, MIG the per-group bandwidth
caps, and vGPU the fair SM policy with an overhead factor.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import (
    A100_40GB,
    Kernel,
    MigManager,
    MpsControlDaemon,
    SimulatedGPU,
)
from repro.gpu.vgpu import VgpuManager
from repro.sim import Environment

SPEC = A100_40GB


@st.composite
def launch_schedule(draw, max_clients=4, max_kernels=10):
    """A list of (client index, start delay, kernel shape) launches."""
    n_clients = draw(st.integers(min_value=1, max_value=max_clients))
    n_kernels = draw(st.integers(min_value=1, max_value=max_kernels))
    launches = []
    for _ in range(n_kernels):
        launches.append((
            draw(st.integers(min_value=0, max_value=n_clients - 1)),
            draw(st.floats(min_value=0.0, max_value=0.5,
                           allow_nan=False, allow_infinity=False)),
            draw(st.floats(min_value=1e6, max_value=1e12)),   # flops
            draw(st.floats(min_value=0.0, max_value=1e9)),    # bytes
            draw(st.integers(min_value=1, max_value=SPEC.sms)),
        ))
    return n_clients, launches


def _drive(env, clients, launches):
    """Launch every kernel on its schedule; return completion times."""
    finished = []

    def submit(env, client, delay, kernel):
        yield env.timeout(delay)
        yield client.launch(kernel)
        finished.append(env.now)

    procs = []
    for i, (c, delay, flops, nbytes, max_sms) in enumerate(launches):
        kernel = Kernel(flops=flops, bytes_moved=nbytes, max_sms=max_sms,
                        name=f"k{i}")
        procs.append(env.process(submit(env, clients[c], delay, kernel)))
    env.run(until=env.all_of(procs))
    return finished


def _mps_setup(env, gpu, n_clients):
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    pct = 100 // n_clients
    return [daemon.client(f"c{i}", active_thread_percentage=pct)
            for i in range(n_clients)]


def _mig_setup(env, gpu, n_clients):
    manager = MigManager(gpu)
    env.run(until=env.process(manager.enable()))
    instances = [manager.create_instance("1g.5gb"),
                 manager.create_instance("2g.10gb")]
    daemons = [inst.enable_mps() for inst in instances]
    return [daemons[i % 2].client(f"c{i}") for i in range(n_clients)]


def _vgpu_setup(env, gpu, n_clients):
    manager = VgpuManager(gpu, num_vms=min(2, n_clients))
    return [manager.vm(i % min(2, n_clients)).client(f"c{i}")
            for i in range(n_clients)]


TOPOLOGIES = {"mps": _mps_setup, "mig": _mig_setup, "vgpu": _vgpu_setup}


def _run(topology, schedule, incremental):
    n_clients, launches = schedule
    env = Environment()
    gpu = SimulatedGPU(env, SPEC, incremental=incremental,
                       cross_check=incremental)
    clients = TOPOLOGIES[topology](env, gpu, n_clients)
    finished = _drive(env, clients, launches)
    return finished, env.now, gpu


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@given(schedule=launch_schedule())
@settings(max_examples=25, deadline=None)
def test_incremental_matches_full_recompute(topology, schedule):
    """Twin runs agree exactly; cross-check guards every intermediate."""
    inc_times, inc_now, gpu = _run(topology, schedule, incremental=True)
    full_times, full_now, _ = _run(topology, schedule, incremental=False)
    assert inc_times == full_times      # exact float equality, no approx
    assert inc_now == full_now
    assert gpu.alloc_calls > 0


@given(schedule=launch_schedule())
@settings(max_examples=25, deadline=None)
def test_cancellation_keeps_paths_identical(schedule):
    """Admit/cancel churn (eviction mid-flight) stays bit-identical."""
    n_clients, launches = schedule

    def run(incremental):
        env = Environment()
        gpu = SimulatedGPU(env, SPEC, incremental=incremental,
                           cross_check=incremental)
        clients = _mps_setup(env, gpu, n_clients)
        events = []

        def submit(env, client, delay, kernel, cancel_after):
            yield env.timeout(delay)
            done = client.launch(kernel)
            # Spatial groups admit immediately, so the newest resident
            # task with our client is ours.
            mine = [t for t in gpu.pool.tasks
                    if t.meta.get("client") is client]
            task = mine[-1] if mine else None
            if cancel_after is not None and task is not None:
                yield env.timeout(cancel_after)
                if not done.triggered and task._pool is gpu.pool:
                    gpu.pool.cancel(task)
                    events.append(("cancel", env.now))
                    return
            yield done
            events.append(("done", env.now))

        def poker(env):
            # External capacity-change notifications interleaved with
            # the admit/cancel churn (the incremental path must survive
            # forced reallocations of an unchanged membership).
            for _ in range(3):
                yield env.timeout(0.07)
                gpu.pool.poke()

        procs = []
        for i, (c, delay, flops, nbytes, max_sms) in enumerate(launches):
            kernel = Kernel(flops=flops, bytes_moved=nbytes,
                            max_sms=max_sms, name=f"k{i}")
            cancel_after = 0.01 if i % 3 == 0 else None
            procs.append(env.process(
                submit(env, clients[c], delay, kernel, cancel_after)))
        env.process(poker(env))
        env.run(until=env.all_of(procs))
        return events, env.now

    assert run(True) == run(False)


def test_solo_fast_path_and_counters():
    env = Environment()
    gpu = SimulatedGPU(env, SPEC, incremental=True, cross_check=True)
    clients = _mps_setup(env, gpu, 2)

    def one(env):
        yield clients[0].launch(Kernel(flops=1e10, bytes_moved=1e8,
                                       max_sms=40))

    env.run(until=env.process(one(env)))
    # A single resident kernel goes through the solo collapse.
    assert gpu.alloc_fast_path > 0
    assert gpu.alloc_calls > 0

    def two(env):
        a = clients[0].launch(Kernel(flops=1e11, bytes_moved=1e8, max_sms=40))
        b = clients[1].launch(Kernel(flops=1e11, bytes_moved=1e8, max_sms=40))
        yield env.all_of([a, b])

    env.run(until=env.process(two(env)))
    assert gpu.alloc_group_recomputes > 0


def test_group_reuse_skips_clean_groups():
    """With two MIG groups, churn in one must not recompute the other."""
    env = Environment()
    gpu = SimulatedGPU(env, SPEC, incremental=True, cross_check=True)
    # Four clients over two MIG instances (even index -> instance 0).
    clients = _mig_setup(env, gpu, 4)

    def busy(env, client, n):
        for _ in range(n):
            yield client.launch(Kernel(flops=1e10, bytes_moved=1e7,
                                       max_sms=14))

    # Instance 0 churns (two clients trading short kernels) while
    # instance 1 holds one long kernel: every churn event dirties only
    # group 0, so group 1's cached state must be reused.  (Reuse needs
    # at least two resident tasks throughout — a single resident kernel
    # takes the solo path, which drops the cache on purpose.)
    def long_one(env):
        yield clients[1].launch(Kernel(flops=5e12, bytes_moved=1e7,
                                       max_sms=28))

    procs = [env.process(busy(env, clients[0], 10)),
             env.process(busy(env, clients[2], 10)),
             env.process(long_one(env))]
    env.run(until=env.all_of(procs))
    assert gpu.alloc_group_reuses > 0
    assert gpu.alloc_group_recomputes > 0


def test_incremental_default_on_and_env_cross_check(monkeypatch):
    monkeypatch.setenv("REPRO_ALLOC_CHECK", "1")
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    assert gpu.incremental is True
    assert gpu.cross_check is True
    monkeypatch.setenv("REPRO_ALLOC_CHECK", "0")
    assert SimulatedGPU(Environment(), SPEC).cross_check is False
