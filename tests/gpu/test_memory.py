"""Unit tests for the HBM allocator."""

import pytest

from repro.gpu import GpuOutOfMemory, MemoryPool


def test_basic_alloc_free():
    pool = MemoryPool(100.0)
    pool.allocate("a", 40.0)
    assert pool.used == pytest.approx(40.0)
    assert pool.free == pytest.approx(60.0)
    pool.release("a", 40.0)
    assert pool.used == 0.0


def test_oom_raised():
    pool = MemoryPool(100.0)
    pool.allocate("a", 80.0)
    with pytest.raises(GpuOutOfMemory):
        pool.allocate("b", 30.0)
    # Failed allocation must not change accounting.
    assert pool.used == pytest.approx(80.0)


def test_four_llama_instances_fit_in_80gb():
    """The paper's admission arithmetic: four 7B fp16 models in 80 GB."""
    pool = MemoryPool(80e9)
    weights = 7e9 * 2  # 14 GB of fp16 weights
    working = 4e9  # activations + KV cache headroom
    for i in range(4):
        pool.allocate(f"llama-{i}", weights + working)
    with pytest.raises(GpuOutOfMemory):
        pool.allocate("llama-4", weights + working)


def test_release_all_by_owner():
    pool = MemoryPool(100.0)
    pool.allocate("a", 30.0)
    pool.allocate("a", 20.0)
    freed = pool.release("a")
    assert freed == pytest.approx(50.0)
    assert pool.used == 0.0
    assert "a" not in pool.owners()


def test_over_release_rejected():
    pool = MemoryPool(100.0)
    pool.allocate("a", 10.0)
    with pytest.raises(ValueError):
        pool.release("a", 20.0)


def test_release_unknown_owner_is_zero():
    pool = MemoryPool(100.0)
    assert pool.release("ghost") == 0.0


def test_fits():
    pool = MemoryPool(100.0)
    pool.allocate("a", 90.0)
    assert pool.fits(10.0)
    assert not pool.fits(11.0)


def test_negative_sizes_rejected():
    pool = MemoryPool(100.0)
    with pytest.raises(ValueError):
        pool.allocate("a", -1.0)
    pool.allocate("a", 5.0)
    with pytest.raises(ValueError):
        pool.release("a", -1.0)


def test_usage_of():
    pool = MemoryPool(100.0)
    pool.allocate("a", 25.0)
    assert pool.usage_of("a") == pytest.approx(25.0)
    assert pool.usage_of("b") == 0.0


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        MemoryPool(0.0)
