"""Tests for quantum-based time-slicing (the default-scheduling model)."""

import pytest

from repro.gpu import A100_40GB, CudaStream, Kernel, SimulatedGPU
from repro.sim import Environment

SPEC = A100_40GB
QUANTUM = SPEC.timeslice_quantum_seconds
SWITCH = SPEC.timeslice_switch_seconds


def tiny_kernel(seconds):
    return Kernel(flops=SPEC.fp32_flops * seconds, bytes_moved=0.0,
                  max_sms=SPEC.sms, efficiency=1.0)


def test_same_client_kernels_share_a_quantum():
    """Many tiny kernels of one client pay no context switches."""
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    client = gpu.timeshare_client("c")
    stream = CudaStream(client)
    n = 10
    each = QUANTUM / 20  # 10 kernels fit well inside one quantum
    done = None
    for _ in range(n):
        done = stream.launch(tiny_kernel(each))
    env.run(until=done)
    assert env.now == pytest.approx(n * each, rel=1e-6)


def test_two_clients_alternate_per_quantum_not_per_kernel():
    """With tiny kernels, switches happen per quantum, not per kernel."""
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    a = gpu.timeshare_client("a")
    b = gpu.timeshare_client("b")
    each = QUANTUM / 4  # 4 kernels per quantum
    n = 8  # two quanta of work per client
    dones = []
    for client in (a, b):
        stream = CudaStream(client)
        for _ in range(n):
            dones.append(stream.launch(tiny_kernel(each)))
    env.run(until=env.all_of(dones))
    total_work = 2 * n * each
    # Rough switch accounting: ~4 quantum rotations => ~4 switches, far
    # fewer than the 16 per-kernel switches the naive model would charge.
    overhead = env.now - total_work
    assert overhead <= 6 * SWITCH
    assert overhead >= 1 * SWITCH  # but switching is not free either


def test_long_kernel_exceeds_quantum_without_preemption():
    """Kernels are non-preemptible: a long kernel overruns its quantum."""
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    a = gpu.timeshare_client("a")
    b = gpu.timeshare_client("b")
    long_done = a.launch(tiny_kernel(50 * QUANTUM))
    short_done = b.launch(tiny_kernel(QUANTUM / 2))
    env.run(until=env.all_of([long_done, short_done]))
    # b had to wait for the whole long kernel plus one switch.
    assert env.now == pytest.approx(50 * QUANTUM + SWITCH + QUANTUM / 2,
                                    rel=1e-6)


def test_work_conserving_when_one_client_idles():
    """A lone client keeps the GPU continuously (no artificial slicing)."""
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    client = gpu.timeshare_client("only")
    stream = CudaStream(client)
    done = None
    for _ in range(5):
        done = stream.launch(tiny_kernel(QUANTUM))
    env.run(until=done)
    assert env.now == pytest.approx(5 * QUANTUM, rel=1e-6)


def test_fairness_over_many_quanta():
    """Two equal clients finish equal work at (almost) the same time."""
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    finish = {}
    for name in ("a", "b"):
        client = gpu.timeshare_client(name)
        stream = CudaStream(client)
        done = None
        for _ in range(20):
            done = stream.launch(tiny_kernel(QUANTUM / 2))
        done.callbacks.append(
            lambda ev, n=name: finish.__setitem__(n, env.now))
    env.run()
    assert abs(finish["a"] - finish["b"]) <= 2 * (QUANTUM + SWITCH)
