"""Edge cases for the roofline allocator's water-filling helpers.

``_waterfill`` and ``_hierarchical_waterfill`` sit on the allocator hot
path; these tests pin the degenerate inputs (zero demand, binding caps,
single group) and the conservation invariant the roofline model relies
on: never hand out more than the device has.
"""

import pytest

from repro.gpu.device import _hierarchical_waterfill, _waterfill

INF = float("inf")


class _Task:
    """The allocator helpers only ever read ``.tid``."""

    def __init__(self, tid):
        self.tid = tid


def _group(*tids):
    return [_Task(t) for t in tids]


# ------------------------------------------------------------------ _waterfill

def test_zero_total_demand_allocates_nothing():
    alloc = _waterfill({1: 0.0, 2: 0.0}, {1: INF, 2: INF}, 100.0)
    assert alloc == {1: 0.0, 2: 0.0}


def test_zero_cap_client_is_skipped():
    alloc = _waterfill({1: 50.0, 2: 50.0}, {1: 0.0, 2: INF}, 60.0)
    assert alloc[1] == 0.0
    assert alloc[2] == pytest.approx(50.0)


def test_small_demand_fully_satisfied_surplus_refilled():
    alloc = _waterfill({1: 5.0, 2: 100.0}, {1: INF, 2: INF}, 50.0)
    assert alloc[1] == pytest.approx(5.0)
    assert alloc[2] == pytest.approx(45.0)


def test_cap_below_fair_share_releases_surplus():
    # Client 1's cap (10) binds below the 50/50 fair share; the freed 40
    # must flow to client 2, not evaporate.
    alloc = _waterfill({1: 100.0, 2: 100.0}, {1: 10.0, 2: 1000.0}, 100.0)
    assert alloc[1] == pytest.approx(10.0)
    assert alloc[2] == pytest.approx(90.0)


def test_unbounded_demands_split_equally():
    alloc = _waterfill({1: INF, 2: INF}, {1: INF, 2: INF}, 100.0)
    assert alloc[1] == pytest.approx(50.0)
    assert alloc[2] == pytest.approx(50.0)


def test_conservation_and_individual_bounds():
    demand = {1: 3.0, 2: INF, 3: 17.5, 4: 0.25, 5: INF}
    cap = {1: INF, 2: 12.0, 3: INF, 4: INF, 5: INF}
    total = 40.0
    alloc = _waterfill(demand, cap, total)
    assert sum(alloc.values()) <= total + 1e-9
    for k in demand:
        assert alloc[k] <= min(demand[k], cap[k]) + 1e-9
        assert alloc[k] >= 0.0
    # Demand exceeds supply, so every drop must be handed out.
    assert sum(alloc.values()) == pytest.approx(total)


def test_oversupply_leaves_surplus_unallocated():
    alloc = _waterfill({1: 10.0, 2: 20.0}, {1: INF, 2: INF}, 100.0)
    assert alloc == {1: pytest.approx(10.0), 2: pytest.approx(20.0)}


# ------------------------------------------------- _hierarchical_waterfill

def test_single_group_degenerates_to_flat_waterfill():
    tasks = _group(1, 2, 3)
    demand = {1: 5.0, 2: 50.0, 3: INF}
    flat = _waterfill(demand, {t: INF for t in demand}, 60.0)
    hier = _hierarchical_waterfill({7: tasks}, demand, {7: INF}, 60.0)
    assert hier == pytest.approx(flat)


def test_group_cap_binds_and_surplus_flows_across_groups():
    by_group = {1: _group(10, 11), 2: _group(20)}
    demand = {10: 100.0, 11: 100.0, 20: 100.0}
    alloc = _hierarchical_waterfill(by_group, demand, {1: 20.0, 2: INF}, 100.0)
    # Group 1 is clamped to its 20-unit cap (split fairly inside);
    # the other 80 units all reach group 2.
    assert alloc[10] == pytest.approx(10.0)
    assert alloc[11] == pytest.approx(10.0)
    assert alloc[20] == pytest.approx(80.0)


def test_idle_group_does_not_absorb_bandwidth():
    by_group = {1: _group(10), 2: _group(20)}
    demand = {10: 0.0, 20: INF}
    alloc = _hierarchical_waterfill(by_group, demand, {1: INF, 2: INF}, 50.0)
    assert alloc[10] == 0.0
    assert alloc[20] == pytest.approx(50.0)


def test_hierarchical_conservation():
    by_group = {1: _group(10, 11), 2: _group(20, 21), 3: _group(30)}
    demand = {10: INF, 11: 2.0, 20: 30.0, 21: INF, 30: 9.0}
    group_cap = {1: 40.0, 2: INF, 3: 5.0}
    total = 70.0
    alloc = _hierarchical_waterfill(by_group, demand, group_cap, total)
    assert sum(alloc.values()) <= total + 1e-9
    for gid, tasks in by_group.items():
        group_total = sum(alloc[t.tid] for t in tasks)
        assert group_total <= group_cap[gid] + 1e-9
    for tid, d in demand.items():
        assert 0.0 <= alloc[tid] <= d + 1e-9
