"""Tests for the host->device transfer engine (cold-start contention)."""

import pytest

from repro.gpu import TransferEngine
from repro.sim import Environment


def test_single_transfer_exact():
    env = Environment()
    engine = TransferEngine(env)
    done = engine.copy(5.0)
    env.run(until=done)
    assert env.now == pytest.approx(5.0)
    assert engine.transfers_completed == 1


def test_concurrent_transfers_share_the_path():
    """Two simultaneous 5 s loads each take 10 s (equal split)."""
    env = Environment()
    engine = TransferEngine(env)
    a = engine.copy(5.0)
    b = engine.copy(5.0)
    env.run(until=env.all_of([a, b]))
    assert env.now == pytest.approx(10.0)


def test_four_way_cold_start_storm():
    """Four concurrent 5 s model loads complete in 20 s, not 5 s —
    exactly why warm pools stagger replica startup."""
    env = Environment()
    engine = TransferEngine(env)
    dones = [engine.copy(5.0) for _ in range(4)]
    env.run(until=env.all_of(dones))
    assert env.now == pytest.approx(20.0)
    assert engine.in_flight == 0


def test_staggered_transfers_overlap_fairly():
    env = Environment()
    engine = TransferEngine(env)
    first = engine.copy(10.0)
    finish = {}
    first.callbacks.append(lambda ev: finish.__setitem__("a", env.now))

    def late(env):
        yield env.timeout(5.0)  # first has 5 s of work left
        second = engine.copy(2.5)
        yield second
        finish["b"] = env.now

    env.process(late(env))
    env.run()
    # From t=5 both at half speed: b (2.5 s work) finishes at t=10;
    # a has 2.5 s left, runs alone -> t=12.5.
    assert finish["b"] == pytest.approx(10.0)
    assert finish["a"] == pytest.approx(12.5)


def test_zero_size_transfer_completes_immediately():
    env = Environment()
    engine = TransferEngine(env)
    done = engine.copy(0.0)
    assert done.triggered


def test_negative_rejected():
    env = Environment()
    engine = TransferEngine(env)
    with pytest.raises(ValueError):
        engine.copy(-1.0)


def test_node_model_loads_contend(monkeypatch):
    """Through the FaaS stack: 2 workers cold-loading simultaneously."""
    from repro.faas import (ColdStartModel, Config, DataFlowKernel,
                            HighThroughputExecutor, LocalProvider, gpu_app)
    from repro.gpu import A100_80GB

    no_cold = ColdStartModel(function_init_seconds=0.0,
                             gpu_context_seconds=0.0)
    ex = HighThroughputExecutor(
        label="gpu", available_accelerators=["0", "0"],
        gpu_percentage=[50, 50], cold_start=no_cold,
        provider=LocalProvider(cores=8, gpu_specs=[A100_80GB]))
    dfk = DataFlowKernel(Config(executors=[ex]))

    @gpu_app(dfk=dfk)
    def load(ctx):
        yield from ctx.load_model(f"model-{ctx.worker.name}", 1e9, 4.0)
        return ctx.now

    times = dfk.wait([load(), load()])
    # Both 4 s loads share the path: each finishes at t=8.
    assert times == pytest.approx([8.0, 8.0])
