"""Unit tests for the GPU spec catalog and MIG profile tables."""

import pytest

from repro.gpu import A100_40GB, A100_80GB, H100_80GB, MI210, get_spec
from repro.gpu.specs import GB


def test_a100_datasheet_numbers():
    # The numbers the paper itself quotes (§3.4).
    assert A100_40GB.sms == 108
    assert A100_40GB.fp32_flops == pytest.approx(19.5e12)
    assert MI210.sms == 104
    assert MI210.fp32_flops == pytest.approx(22.6e12)


def test_flops_per_sm():
    assert A100_40GB.flops_per_sm == pytest.approx(19.5e12 / 108)


def test_mig_profile_names_match_paper():
    # §4.2 lists 1g.10gb, 2g.20gb, 3g.40gb, 4g.40gb, 7g.80gb for 80 GB;
    # the grid also carries the double-memory 1g profile (1g.20gb) NVIDIA
    # provides for memory-heavy single-slice workloads.
    names = [p.name for p in A100_80GB.mig_profiles]
    assert names == ["1g.10gb", "1g.20gb", "2g.20gb", "3g.40gb", "4g.40gb",
                     "7g.80gb"]
    names40 = [p.name for p in A100_40GB.mig_profiles]
    assert names40 == ["1g.5gb", "1g.10gb", "2g.10gb", "3g.20gb", "4g.20gb",
                       "7g.40gb"]


def test_mig_profile_sm_counts():
    # 98 usable SMs / 7 slices = 14 SMs per slice.
    prof = A100_40GB.profile("1g.5gb")
    assert prof.sm_count(A100_40GB) == 14
    assert A100_40GB.profile("3g.20gb").sm_count(A100_40GB) == 42
    assert A100_40GB.profile("7g.40gb").sm_count(A100_40GB) == 98


def test_mig_profile_bandwidth_slices():
    # 1g gets 1/8 of bandwidth; 3g gets 4/8 (memory-slice asymmetry).
    spec = A100_40GB
    assert spec.profile("1g.5gb").bandwidth(spec) == pytest.approx(
        spec.bandwidth / 8
    )
    assert spec.profile("3g.20gb").bandwidth(spec) == pytest.approx(
        spec.bandwidth / 2
    )


def test_mig_profile_memory_capacity():
    assert A100_80GB.profile("1g.10gb").memory_bytes == pytest.approx(10 * GB)
    assert A100_80GB.profile("7g.80gb").memory_bytes == pytest.approx(80 * GB)


def test_unknown_profile_raises():
    with pytest.raises(KeyError):
        A100_40GB.profile("5g.99gb")


def test_non_mig_device_has_no_profiles():
    assert MI210.mig_profiles == ()
    assert not MI210.mig_capable


def test_get_spec_roundtrip():
    assert get_spec("A100-SXM4-40GB") is A100_40GB
    assert get_spec("H100-SXM5-80GB") is H100_80GB


def test_get_spec_unknown():
    with pytest.raises(KeyError, match="unknown GPU"):
        get_spec("TPU-v5")
