"""Tests for CUDA streams and events."""

import pytest

from repro.faas import inject_gpu_error
from repro.gpu import (
    A100_40GB,
    CudaStream,
    Kernel,
    MpsControlDaemon,
    SimulatedGPU,
)
from repro.workloads import RESNET50
from repro.sim import Environment

SPEC = A100_40GB


def make_client():
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    return env, gpu, daemon.client("c")


def kernel(seconds=1.0, max_sms=20):
    return Kernel(flops=SPEC.flops_per_sm * max_sms * seconds,
                  bytes_moved=0.0, max_sms=max_sms, efficiency=1.0)


def test_same_stream_serialises():
    env, gpu, client = make_client()
    stream = CudaStream(client)
    stream.launch(kernel(1.0))
    done = stream.launch(kernel(1.0))
    env.run(until=done)
    # Both kernels could overlap spatially (20 SMs each), but stream
    # ordering forbids it.
    assert env.now == pytest.approx(2.0)


def test_different_streams_overlap():
    env, gpu, client = make_client()
    s1, s2 = CudaStream(client), CudaStream(client)
    a = s1.launch(kernel(1.0))
    b = s2.launch(kernel(1.0))
    env.run(until=env.all_of([a, b]))
    assert env.now == pytest.approx(1.0)


def test_streams_respect_client_sm_cap():
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    client = daemon.client("c", active_thread_percentage=20)  # ~22 SMs
    s1, s2 = CudaStream(client), CudaStream(client)
    a = s1.launch(kernel(1.0, max_sms=22))
    b = s2.launch(kernel(1.0, max_sms=22))
    env.run(until=env.all_of([a, b]))
    # Two 22-SM kernels under a 22-SM cap halve each other's rate.
    assert env.now == pytest.approx(2.0)


def test_synchronize_waits_for_all_enqueued():
    env, gpu, client = make_client()
    stream = CudaStream(client)
    for _ in range(3):
        stream.launch(kernel(1.0))
    env.run(until=stream.synchronize())
    assert env.now == pytest.approx(3.0)


def test_cross_stream_event_dependency():
    env, gpu, client = make_client()
    producer, consumer = CudaStream(client), CudaStream(client)
    producer.launch(kernel(2.0))
    marker = producer.record_event()
    marker.wait_into(consumer)
    done = consumer.launch(kernel(1.0))
    env.run(until=done)
    # Consumer's kernel waited for the producer's 2 s kernel.
    assert env.now == pytest.approx(3.0)
    assert marker.completed


def test_record_event_captures_position_not_future_work():
    env, gpu, client = make_client()
    producer, consumer = CudaStream(client), CudaStream(client)
    producer.launch(kernel(1.0))
    marker = producer.record_event()
    producer.launch(kernel(5.0))  # after the marker
    marker.wait_into(consumer)
    done = consumer.launch(kernel(1.0))
    env.run(until=done)
    # Consumer waited only for the first kernel (t=1), then ran 1 s.
    assert env.now == pytest.approx(2.0)


def test_stream_error_is_sticky():
    env, gpu, client = make_client()
    stream = CudaStream(client)
    first = stream.launch(kernel(10.0))
    second = stream.launch(kernel(1.0))
    env.run(until=2.0)
    inject_gpu_error(gpu)
    env.run()
    assert not first.ok
    assert not second.ok  # never ran: inherits the stream error
    assert type(second.value) is type(first.value)


def test_launch_group_runs_layers_in_order():
    env, gpu, client = make_client()
    stream = CudaStream(client)
    group = RESNET50.inference_kernels(batch_size=1)
    done = stream.launch_group(group)
    env.run(until=done)
    assert stream.kernels_launched == len(group)
    # Matches the serial closed-form sum (each layer alone on the GPU).
    expected = sum(k.duration(SPEC.sms, SPEC.flops_per_sm, SPEC.bandwidth)
                   for k in group)
    assert env.now == pytest.approx(expected, rel=1e-4)


def test_two_clients_two_streams_fig4_in_miniature():
    """Streams from different MPS clients overlap like Fig. 4's models."""
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    dones = []
    for i in range(2):
        client = daemon.client(f"c{i}", active_thread_percentage=50)
        stream = CudaStream(client)
        for _ in range(3):
            dones.append(stream.launch(kernel(1.0)))
    env.run(until=env.all_of(dones))
    assert env.now == pytest.approx(3.0)  # fully overlapped pipelines
