"""Colmena over Globus Compute — the paper's actual deployment stack.

§3.1: "These calculations were performed using the Colmena framework in
an implementation backed by Globus Compute and Parsl."  The thinker and
task server run 'at the lab'; methods execute on a remote endpoint
behind the cloud relay.
"""

import pytest

from repro.colmena import ColmenaQueues, TaskServer, Thinker, agent
from repro.faas import (
    ColdStartModel,
    Config,
    DataFlowKernel,
    Endpoint,
    GlobusComputeClient,
    GlobusComputeService,
    HighThroughputExecutor,
    python_app,
)
from repro.sim import Environment

NO_COLD = ColdStartModel(function_init_seconds=0.0, gpu_context_seconds=0.0)


def make_stack(wan_latency=0.25):
    env = Environment()
    service = GlobusComputeService(env, wan_latency_seconds=wan_latency,
                                   wan_bandwidth_bytes_per_s=1e9)
    remote_dfk = DataFlowKernel(Config(executors=[
        HighThroughputExecutor(label="cpu", max_workers=4,
                               cold_start=NO_COLD)]), env=env)
    endpoint = Endpoint("supercomputer", remote_dfk, service)
    client = GlobusComputeClient(service, default_endpoint="supercomputer")

    # The thinker-side DFK only drives the task server process.
    local_dfk = DataFlowKernel(Config(executors=[
        HighThroughputExecutor(label="local", max_workers=1,
                               cold_start=NO_COLD)]), env=env)
    queues = ColmenaQueues(env, ["sim"])

    @python_app(dfk=remote_dfk, walltime=2.0)
    def square(x):
        return x * x

    fid = client.register_function(square)
    server = TaskServer(
        queues, local_dfk, {"square": square},
        submit=lambda app, args, kwargs: client.submit(
            fid, *args, payload_bytes=1024.0, **kwargs))
    return env, queues, endpoint, server


def test_colmena_methods_run_on_remote_endpoint():
    env, queues, endpoint, server = make_stack()

    class Driver(Thinker):
        def __init__(self, queues):
            super().__init__(queues)
            self.results = []

        @agent
        def submit_and_collect(self):
            for i in range(4):
                self.queues.send_inputs(i, method="square", topic="sim")
            while len(self.results) < 4:
                result = yield self.queues.get_result("sim")
                self.results.append(result.value)

    thinker = Driver(queues)
    thinker.run_to_completion()
    assert sorted(thinker.results) == [0, 1, 4, 9]
    assert endpoint.tasks_received == 4
    assert server.tasks_dispatched == 4


def test_wan_latency_shows_up_in_result_timestamps():
    env, queues, endpoint, server = make_stack(wan_latency=0.5)

    class OneShot(Thinker):
        def __init__(self, queues):
            super().__init__(queues)
            self.result = None

        @agent
        def go(self):
            self.queues.send_inputs(3, method="square", topic="sim")
            self.result = yield self.queues.get_result("sim")

    thinker = OneShot(queues)
    thinker.run_to_completion()
    result = thinker.result
    assert result.value == 9
    # ~0.5 s out + 2 s compute + ~0.5 s back.
    assert result.time_returned - result.time_created >= 3.0 - 1e-6
