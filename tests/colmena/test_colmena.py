"""Tests for the Colmena-style steering framework."""

import pytest

from repro.colmena import ColmenaQueues, ColmenaResult, TaskServer, Thinker, agent
from repro.faas import (
    ColdStartModel,
    Config,
    DataFlowKernel,
    HighThroughputExecutor,
    python_app,
)
from repro.sim import Environment

NO_COLD = ColdStartModel(function_init_seconds=0.0, gpu_context_seconds=0.0)


def make_stack(topics=("sim",), workers=2, retries=0):
    dfk = DataFlowKernel(Config(
        executors=[HighThroughputExecutor(label="cpu", max_workers=workers,
                                          cold_start=NO_COLD)],
        retries=retries))
    queues = ColmenaQueues(dfk.env, topics)
    return dfk, queues


# ------------------------------------------------------------------- queues

def test_queue_topic_validation():
    env = Environment()
    with pytest.raises(ValueError):
        ColmenaQueues(env, [])
    with pytest.raises(ValueError):
        ColmenaQueues(env, ["a", "a"])
    queues = ColmenaQueues(env, ["a"])
    with pytest.raises(KeyError, match="unknown topic"):
        queues.send_inputs(method="m", topic="b")


def test_send_inputs_timestamps_creation():
    dfk, queues = make_stack()
    dfk.env.run(until=3.0)
    record = queues.send_inputs(1, 2, method="add", topic="sim")
    assert record.time_created == pytest.approx(3.0)
    assert not record.success
    assert queues.outstanding() == 1


# -------------------------------------------------------------- task server

def test_task_server_roundtrip():
    dfk, queues = make_stack()

    @python_app(dfk=dfk, walltime=2.0)
    def double(x):
        return 2 * x

    TaskServer(queues, dfk, {"double": double})

    def client(env):
        queues.send_inputs(21, method="double", topic="sim")
        result = yield queues.get_result("sim")
        return result

    result = dfk.env.run(until=dfk.env.process(client(dfk.env)))
    assert result.success
    assert result.value == 42
    assert result.compute_seconds == pytest.approx(2.0)
    assert result.time_returned == pytest.approx(2.0)


def test_task_server_unknown_method():
    dfk, queues = make_stack()

    @python_app(dfk=dfk)
    def noop():
        return None

    TaskServer(queues, dfk, {"noop": noop})

    def client(env):
        queues.send_inputs(method="missing", topic="sim")
        result = yield queues.get_result("sim")
        return result

    result = dfk.env.run(until=dfk.env.process(client(dfk.env)))
    assert not result.success
    assert isinstance(result.failure, KeyError)


def test_task_server_propagates_app_failure():
    dfk, queues = make_stack()

    @python_app(dfk=dfk)
    def boom():
        raise ValueError("method failed")

    TaskServer(queues, dfk, {"boom": boom})

    def client(env):
        queues.send_inputs(method="boom", topic="sim")
        result = yield queues.get_result("sim")
        return result

    result = dfk.env.run(until=dfk.env.process(client(dfk.env)))
    assert not result.success
    assert isinstance(result.failure, ValueError)


def test_task_server_queue_seconds_reflect_backlog():
    dfk, queues = make_stack(workers=1)

    @python_app(dfk=dfk, walltime=5.0)
    def slow():
        return "x"

    TaskServer(queues, dfk, {"slow": slow})

    def client(env):
        queues.send_inputs(method="slow", topic="sim")
        queues.send_inputs(method="slow", topic="sim")
        first = yield queues.get_result("sim")
        second = yield queues.get_result("sim")
        return first, second

    first, second = dfk.env.run(until=dfk.env.process(client(dfk.env)))
    assert first.queue_seconds == pytest.approx(0.0, abs=1e-9)
    assert second.queue_seconds == pytest.approx(5.0)


def test_task_server_validation():
    dfk, queues = make_stack()
    with pytest.raises(ValueError):
        TaskServer(queues, dfk, {})
    with pytest.raises(TypeError, match="decorated app"):
        TaskServer(queues, dfk, {"raw": lambda: 1})


# ------------------------------------------------------------------ thinker

def test_thinker_requires_agents():
    env = Environment()
    queues = ColmenaQueues(env, ["sim"])

    class Empty(Thinker):
        pass

    with pytest.raises(TypeError, match="no @agent"):
        Empty(queues)


def test_agent_must_be_generator():
    with pytest.raises(TypeError, match="generator"):
        @agent
        def not_gen(self):
            return 1


def test_thinker_agents_run_concurrently():
    dfk, queues = make_stack()
    log = []

    class TwoAgents(Thinker):
        @agent
        def a(self):
            yield self.env.timeout(1.0)
            log.append(("a", self.env.now))

        @agent
        def b(self):
            yield self.env.timeout(2.0)
            log.append(("b", self.env.now))

    thinker = TwoAgents(queues)
    assert thinker.agent_count == 2
    thinker.run_to_completion()
    assert log == [("a", 1.0), ("b", 2.0)]


def test_thinker_submit_consume_pattern():
    """The canonical Colmena shape: a submitter and a consumer agent."""
    dfk, queues = make_stack(workers=4)

    @python_app(dfk=dfk, walltime=3.0)
    def square(x):
        return x * x

    TaskServer(queues, dfk, {"square": square})

    class Driver(Thinker):
        N = 6

        def __init__(self, queues):
            super().__init__(queues)
            self.results = []

        @agent
        def submitter(self):
            for i in range(self.N):
                self.queues.send_inputs(i, method="square", topic="sim")
                yield self.env.timeout(0.5)

        @agent
        def consumer(self):
            while len(self.results) < self.N:
                result = yield self.queues.get_result("sim")
                self.results.append(result.value)

    thinker = Driver(queues)
    thinker.run_to_completion()
    assert sorted(thinker.results) == [0, 1, 4, 9, 16, 25]
    # Overlap: 6 tasks of 3 s on 4 workers, submitted over 2.5 s,
    # finish well before the serial 18 s.
    assert dfk.env.now < 9.0


def test_thinker_set_done_stops_polling_agent():
    dfk, queues = make_stack()

    class Poller(Thinker):
        def __init__(self, queues):
            super().__init__(queues)
            self.polls = 0

        @agent
        def poll(self):
            while not self.done:
                self.polls += 1
                yield self.env.timeout(1.0)

        @agent
        def stopper(self):
            yield self.env.timeout(5.5)
            self.set_done()

    thinker = Poller(queues)
    thinker.run_to_completion()
    assert thinker.polls == 6
    with pytest.raises(RuntimeError, match="already started"):
        thinker.start()
