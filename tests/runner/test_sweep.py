"""Tests for the parallel sweep runner and its result cache.

The worker functions live at module level so the executor can pickle
them by reference.
"""

import os
import pickle
import random

import pytest

from repro.runner import (
    MISS,
    ResultCache,
    SweepError,
    SweepRunner,
    derive_seed,
)


def _square(config):
    return config["x"] ** 2


def _seeded(config, seed):
    rng = random.Random(seed)
    return {"x": config["x"], "seed": seed,
            "draws": [rng.random() for _ in range(4)]}


def _fail_if_big(config):
    if config["x"] >= 10:
        raise ValueError(f"x too big: {config['x']}")
    return config["x"]


def _fail_until_flag(config):
    """Fail once per flag file, then succeed — a transient fault."""
    flag = config["flag"]
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("tried")
        raise RuntimeError("transient")
    return "ok"


def _grid(n):
    return [{"x": i} for i in range(n)]


# ------------------------------------------------------------- execution

def test_serial_results_in_config_order():
    runner = SweepRunner(jobs=1)
    assert runner.map(_square, _grid(5)) == [0, 1, 4, 9, 16]
    assert runner.executed == 5


def test_parallel_matches_serial_byte_for_byte():
    configs = _grid(8)
    serial = SweepRunner(jobs=1, retries=0).map(_seeded, configs)
    parallel = SweepRunner(jobs=3, retries=0).map(_seeded, configs)
    # Compare per-result pickles: whole-list pickles can differ by memo
    # references (interned keys shared across elements) even for equal
    # content.
    assert ([pickle.dumps(r) for r in serial]
            == [pickle.dumps(r) for r in parallel])


def test_seed_depends_on_content_not_position():
    configs = _grid(4)
    forward = SweepRunner(jobs=1).map(_seeded, configs, task="t")
    backward = SweepRunner(jobs=1).map(_seeded, list(reversed(configs)),
                                       task="t")
    assert forward == list(reversed(backward))


def test_derive_seed_distinct_per_config_and_task():
    a = derive_seed("t", {"x": 1})
    assert a == derive_seed("t", {"x": 1})
    assert a != derive_seed("t", {"x": 2})
    assert a != derive_seed("u", {"x": 1})
    assert 0 <= a < 2 ** 63


# --------------------------------------------------------------- failures

def test_worker_exception_becomes_sweep_error_serial():
    runner = SweepRunner(jobs=1, retries=0)
    with pytest.raises(SweepError) as excinfo:
        runner.map(_fail_if_big, [{"x": 1}, {"x": 50}], task="big")
    err = excinfo.value
    assert err.task == "big"
    assert err.config == {"x": 50}
    assert err.attempts == 1
    assert isinstance(err.__cause__, ValueError)


def test_worker_exception_becomes_sweep_error_parallel():
    runner = SweepRunner(jobs=2, retries=0)
    with pytest.raises(SweepError) as excinfo:
        runner.map(_fail_if_big, [{"x": 1}, {"x": 50}, {"x": 2}])
    assert excinfo.value.config == {"x": 50}


def test_deterministic_failure_exhausts_retries():
    runner = SweepRunner(jobs=2, retries=2)
    with pytest.raises(SweepError) as excinfo:
        runner.map(_fail_if_big, [{"x": 99}])
    assert excinfo.value.attempts == 3


@pytest.mark.parametrize("jobs", [1, 2])
def test_transient_failure_retried_to_success(tmp_path, jobs):
    flag = str(tmp_path / f"flag-{jobs}")
    runner = SweepRunner(jobs=jobs, retries=1)
    results = runner.map(_fail_until_flag, [{"flag": flag}])
    assert results == ["ok"]
    assert os.path.exists(flag)


# ---------------------------------------------------------------- caching

def test_warm_cache_skips_execution(tmp_path):
    configs = _grid(6)
    cold = SweepRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    first = cold.map(_square, configs, task="sq")
    assert cold.executed == 6

    warm_cache = ResultCache(str(tmp_path))
    warm = SweepRunner(jobs=1, cache=warm_cache)
    second = warm.map(_square, configs, task="sq")
    assert warm.executed == 0
    assert warm_cache.hit_rate == 1.0
    assert pickle.dumps(first) == pickle.dumps(second)


def test_changed_config_misses_cache(tmp_path):
    runner = SweepRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    runner.map(_square, _grid(3), task="sq")
    runner2 = SweepRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    runner2.map(_square, _grid(3) + [{"x": 77}], task="sq")
    assert runner2.executed == 1  # only the new config ran


def test_task_name_partitions_cache(tmp_path):
    cache = ResultCache(str(tmp_path))
    runner = SweepRunner(jobs=1, cache=cache)
    runner.map(_square, _grid(2), task="a")
    runner.map(_square, _grid(2), task="b")
    assert runner.executed == 4


def test_memory_layer_shares_within_invocation(tmp_path):
    # Disk off (--no-cache): the memory layer still deduplicates repeated
    # sweeps inside one invocation.
    cache = ResultCache(str(tmp_path), disk=False)
    runner = SweepRunner(jobs=1, cache=cache)
    runner.map(_square, _grid(4), task="sq")
    runner.map(_square, _grid(4), task="sq")
    assert runner.executed == 4
    assert not any(f.endswith(".pkl") for _, _, fs in os.walk(tmp_path)
                   for f in fs)


def test_cached_none_is_a_hit(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = cache.key("t", {"x": 1})
    cache.put(key, None)
    fresh = ResultCache(str(tmp_path))
    assert fresh.get(key) is None
    assert fresh.hits == 1


def test_non_json_config_rejected_with_cache(tmp_path):
    runner = SweepRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    with pytest.raises(TypeError):
        runner.map(_square, [{"x": object()}])


def test_clear_empties_both_layers(tmp_path):
    cache = ResultCache(str(tmp_path))
    runner = SweepRunner(jobs=1, cache=cache)
    runner.map(_square, _grid(3), task="sq")
    cache.clear()
    again = SweepRunner(jobs=1, cache=cache)
    again.map(_square, _grid(3), task="sq")
    assert again.executed == 3


def test_corrupt_disk_entry_treated_as_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = cache.key("t", {"x": 1})
    cache.put(key, 123)
    path = cache._path(key)
    with open(path, "wb") as fh:
        fh.write(b"not a pickle")
    fresh = ResultCache(str(tmp_path))
    assert fresh.get(key) is MISS
