"""ShardWorkerPool: long-lived reuse, crash respawn, deterministic replay.

The pool's contract (ISSUE satellite 4): workers are *reused* across
epoch barriers (one pipe round trip per epoch, no per-epoch spawn), and
a worker that dies mid-run is respawned and deterministically replayed
from the logged epochs — the run's merged output is bit-identical to a
run with no crash.  A worker that deterministically *raises* must fail
fast instead of respawn-looping.

Cells here are tiny module-level counters (picklable by reference) so
the tests exercise the pool mechanics, not a full simulation scenario.
"""

from __future__ import annotations

import os

import pytest

from repro.runner import ShardWorkerError, ShardWorkerPool
from repro.sim.sharded import CellSpec, ShardedSimulation


class CounterCell:
    """Deterministic test cell: emits one event per simulated second.

    ``crash_sentinel`` arms a one-shot hard crash: the first ``advance``
    past ``crash_at`` removes the sentinel file and kills the *process*
    (``os._exit``), exactly like a segfaulting worker.  The replayed
    worker finds no sentinel and sails through — crashes are environment
    events, not part of the deterministic model.  ``raise_at`` instead
    raises every time: a deterministic cell bug.
    """

    def __init__(self, cell_id, n_events=8, crash_sentinel=None,
                 crash_at=None, raise_at=None):
        self.cell_id = cell_id
        self.n_events = n_events
        self.crash_sentinel = crash_sentinel
        self.crash_at = crash_at
        self.raise_at = raise_at
        self.emitted = 0
        self.events = []
        self.commands = []

    def advance(self, horizon):
        if (self.crash_at is not None and horizon >= self.crash_at
                and self.crash_sentinel and
                os.path.exists(self.crash_sentinel)):
            try:
                os.remove(self.crash_sentinel)
            except OSError:
                pass  # undying sentinel (a directory): crash every time
            os._exit(1)
        if self.raise_at is not None and horizon >= self.raise_at:
            raise RuntimeError("deterministic cell bug")
        while self.emitted < self.n_events and self.emitted + 1 <= horizon:
            self.emitted += 1
            self.events.append((float(self.emitted), self.cell_id,
                                self.emitted))
        return self.emitted >= self.n_events

    def drain_events(self):
        out = list(self.events)
        self.events.clear()
        return out

    def apply_command(self, command):
        self.commands.append(command)

    def result(self):
        return {"cell_id": self.cell_id, "emitted": self.emitted,
                "commands": list(self.commands)}


def counter_specs(n_cells, **kwargs):
    return [CellSpec(CounterCell, dict(kwargs, cell_id=i),
                     name=f"counter{i}")
            for i in range(n_cells)]


def assignments(specs, n_workers):
    groups = [[] for _ in range(n_workers)]
    for cell_id, spec in enumerate(specs):
        groups[cell_id % n_workers].append((cell_id, spec))
    return groups


def drive(pool, epochs=(2.0, 4.0, 6.0, 8.0), commands=None):
    """Run the barriers; return (all snapshots, final results)."""
    snaps = [pool.step_epoch(t, (commands or {}).get(t)) for t in epochs]
    return snaps, pool.results()


# -- long-lived reuse --------------------------------------------------------

def test_workers_are_reused_across_epochs():
    """Same PIDs at every barrier — cells live in one process for the
    whole run instead of being rebuilt per epoch."""
    with ShardWorkerPool(assignments(counter_specs(4), 2)) as pool:
        pids0 = pool.worker_pids()
        assert len(pids0) == 2
        for t in (2.0, 4.0, 6.0, 8.0):
            pool.step_epoch(t)
            assert pool.worker_pids() == pids0
        out = pool.results()
    assert out["worker_pids"] == pids0
    assert out["worker_respawns"] == [0, 0]
    assert {cid: r["emitted"] for cid, r in out["cells"].items()} == \
        {0: 8, 1: 8, 2: 8, 3: 8}


def test_state_accumulates_in_worker_not_per_epoch():
    """Each barrier drains only the *new* events — proof the cell object
    persisted (a rebuilt cell would re-emit from scratch)."""
    with ShardWorkerPool(assignments(counter_specs(1), 1)) as pool:
        first = pool.step_epoch(3.0)[0]["events"]
        second = pool.step_epoch(6.0)[0]["events"]
    assert [ev[0] for ev in first] == [1.0, 2.0, 3.0]
    assert [ev[0] for ev in second] == [4.0, 5.0, 6.0]


def test_commands_are_delivered_before_the_epoch():
    with ShardWorkerPool(assignments(counter_specs(2), 2)) as pool:
        pool.step_epoch(2.0)
        pool.step_epoch(4.0, commands={1: {"op": "tune", "value": 7}})
        out = pool.results()
    assert out["cells"][0]["commands"] == []
    assert out["cells"][1]["commands"] == [{"op": "tune", "value": 7}]


# -- crash respawn + deterministic replay ------------------------------------

def run_with_optional_crash(tmp_path, crash):
    kwargs = {}
    if crash:
        sentinel = tmp_path / "crash-once"
        sentinel.write_text("armed")
        kwargs = {"crash_sentinel": str(sentinel), "crash_at": 4.0}
    specs = counter_specs(3)
    # Arm only cell 1 so the crash kills one worker of two.
    if crash:
        specs[1] = CellSpec(CounterCell, dict(kwargs, cell_id=1),
                            name="counter1")
    groups = assignments(specs, 2)
    commands = {6.0: {1: {"op": "note"}}}
    with ShardWorkerPool(groups) as pool:
        snaps, out = drive(pool, commands=commands)
    return snaps, out


def test_crashed_worker_respawns_and_replays_bit_identically(tmp_path):
    """One hard crash mid-run: the pool rebuilds the worker, replays the
    logged epochs, and the merged events + results equal the crash-free
    run exactly.  Only the respawn counter differs."""
    clean_snaps, clean = run_with_optional_crash(tmp_path, crash=False)
    crash_snaps, crashed = run_with_optional_crash(tmp_path, crash=True)

    assert crashed["worker_respawns"] == [0, 1]
    assert crashed["cells"] == clean["cells"]
    # Replay re-drains already-merged epochs inside _respawn (discarded
    # there); the snapshots the caller sees are still identical.
    assert crash_snaps == clean_snaps


def test_crash_during_replayed_command_epoch(tmp_path):
    """Crash armed *after* a command barrier: replay must re-apply the
    logged command so the rebuilt cell sees it exactly once."""
    sentinel = tmp_path / "late-crash"
    sentinel.write_text("armed")
    specs = counter_specs(2)
    specs[1] = CellSpec(CounterCell, {
        "cell_id": 1, "crash_sentinel": str(sentinel), "crash_at": 8.0,
    }, name="counter1")
    with ShardWorkerPool(assignments(specs, 2)) as pool:
        pool.step_epoch(2.0)
        pool.step_epoch(4.0, commands={1: {"op": "tune"}})
        pool.step_epoch(6.0)
        pool.step_epoch(8.0)  # crash + replay happens here
        out = pool.results()
    assert out["worker_respawns"] == [0, 1]
    assert out["cells"][1]["commands"] == [{"op": "tune"}]
    assert out["cells"][1]["emitted"] == 8


def test_respawn_budget_exhaustion_raises(tmp_path):
    """A worker that keeps dying (sentinel never consumed — a directory
    can't be os.remove'd) exhausts the budget instead of looping."""
    sentinel = tmp_path / "undying"
    sentinel.mkdir()
    specs = [CellSpec(CounterCell, {
        "cell_id": 0, "crash_sentinel": str(sentinel), "crash_at": 2.0,
    })]
    with ShardWorkerPool([[(0, specs[0])]], max_respawns=2) as pool:
        with pytest.raises(ShardWorkerError, match="respawn budget"):
            pool.step_epoch(2.0)


def test_deterministic_raise_fails_fast():
    """A cell that raises forwards its traceback; no respawn attempts —
    replaying a deterministic bug would loop forever."""
    specs = counter_specs(2)
    specs[1] = CellSpec(CounterCell, {"cell_id": 1, "raise_at": 4.0})
    with ShardWorkerPool(assignments(specs, 2)) as pool:
        pool.step_epoch(2.0)
        with pytest.raises(ShardWorkerError,
                           match="deterministic cell bug"):
            pool.step_epoch(4.0)
        assert pool._workers[1].respawns == 0


def test_duplicate_cell_id_rejected():
    spec = CellSpec(CounterCell, {"cell_id": 0})
    with pytest.raises(ValueError, match="duplicate cell id"):
        ShardWorkerPool([[(0, spec)], [(0, spec)]])


# -- end to end through ShardedSimulation ------------------------------------

def test_sharded_simulation_survives_a_crash(tmp_path):
    """Full engine: a pooled run with one mid-run crash produces the
    same deterministic payload as the in-process run."""
    sentinel = tmp_path / "sim-crash"
    sentinel.write_text("armed")

    def build(crash):
        specs = counter_specs(3, n_events=10)
        if crash:
            specs[2] = CellSpec(CounterCell, {
                "cell_id": 2, "n_events": 10,
                "crash_sentinel": str(sentinel), "crash_at": 6.0,
            }, name="counter2")
        return ShardedSimulation(specs, epoch_seconds=3.0)

    inline = build(False).run(n_shards=1, use_processes=False)
    pooled = build(True).run(n_shards=2, use_processes=True)

    # Round-robin puts cells {0, 2} on worker 0 — the one that crashed.
    assert pooled["execution"]["worker_respawns"] == [1, 0]
    assert pooled["cells"] == inline["cells"]
    assert pooled["events"] == inline["events"]
    assert pooled["epochs"] == inline["epochs"]
