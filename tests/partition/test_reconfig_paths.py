"""End-to-end ReconfigCost coverage: analytic breakdowns vs executed
timelines on a live node (§6's measured repartitioning costs, replayed).
"""

import pytest

from repro.faas import ColdStartModel, ComputeNode
from repro.gpu import A100_40GB, A100_80GB
from repro.partition import ReconfigurationPlanner, WeightCache
from repro.sim import Environment

COLD = ColdStartModel(function_init_seconds=1.0, gpu_context_seconds=0.5)


def make_node(spec=A100_40GB):
    env = Environment()
    return env, ComputeNode(env, cores=8, gpu_specs=[spec])


# --------------------------------------------------------- MPS resize path

def test_mps_cost_breakdown_matches_execution_without_cache():
    env, node = make_node()
    node.start_mps()
    client = node.mps_daemons[0].client("w0", active_thread_percentage=50)
    client.alloc(10e9)
    planner = ReconfigurationPlanner(A100_40GB, COLD)
    cost = planner.mps_repartition_cost(model_load_seconds=8.0)
    assert cost.technique == "mps"
    assert not cost.disturbs_cotenants
    assert cost.reset_seconds == 0.0
    assert cost.teardown_seconds == planner.TEARDOWN_SECONDS
    assert cost.restart_seconds == COLD.worker_start_seconds(True)
    assert cost.model_reload_seconds == 8.0
    proc = env.process(planner.execute_mps_repartition(
        node, 0, client, new_percentage=25,
        model_key="m", model_bytes=10e9, model_load_seconds=8.0))
    new_client = env.run(until=proc)
    # The executed timeline is exactly the analytic breakdown.
    assert env.now == pytest.approx(cost.total_seconds)
    assert new_client.sm_cap < A100_40GB.sms / 2


def test_mps_cost_breakdown_matches_execution_with_cache_hit():
    env, node = make_node()
    node.weight_cache = WeightCache()
    node.start_mps()
    client = node.mps_daemons[0].client("w0", active_thread_percentage=50)
    node.weight_cache.acquire(client, "m", 10e9)
    planner = ReconfigurationPlanner(A100_40GB, COLD)
    cost = planner.mps_repartition_cost(model_load_seconds=8.0,
                                        weight_cache_hit=True)
    assert cost.model_reload_seconds == 0.0
    proc = env.process(planner.execute_mps_repartition(
        node, 0, client, new_percentage=25,
        model_key="m", model_bytes=10e9, model_load_seconds=8.0))
    env.run(until=proc)
    assert env.now == pytest.approx(cost.total_seconds)
    assert node.weight_cache.hits == 1
    # The §7 payoff, as a cost delta: exactly the reload disappears.
    miss = planner.mps_repartition_cost(model_load_seconds=8.0)
    assert miss.total_seconds - cost.total_seconds == pytest.approx(8.0)


# ------------------------------------------------------- MIG resize path

def test_mig_cost_charges_cotenants_for_the_repartition():
    planner = ReconfigurationPlanner(A100_80GB, COLD)
    alone = planner.mig_repartition_cost(model_load_seconds=8.0,
                                         n_cotenants=0)
    crowd = planner.mig_repartition_cost(model_load_seconds=8.0,
                                         n_cotenants=3)
    assert not alone.disturbs_cotenants
    assert crowd.disturbs_cotenants
    # Everyone pays teardown + restart + reload; the reset is shared.
    assert crowd.teardown_seconds == 4 * planner.TEARDOWN_SECONDS
    assert crowd.restart_seconds == 4 * COLD.worker_start_seconds(True)
    assert crowd.model_reload_seconds == 4 * 8.0
    assert crowd.reset_seconds == alone.reset_seconds \
        == A100_80GB.reset_seconds
    # An off-instance weight cache removes only the reloads.
    cached = planner.mig_repartition_cost(model_load_seconds=8.0,
                                          n_cotenants=3,
                                          weight_cache_hit=True)
    assert cached.model_reload_seconds == 0.0
    assert crowd.total_seconds - cached.total_seconds \
        == pytest.approx(4 * 8.0)


def test_mig_execution_matches_teardown_and_reset_costs():
    env, node = make_node(A100_80GB)
    mig = node.mig_manager(0)
    env.run(until=env.process(mig.enable()))
    mig.create_instance("3g.40gb")
    mig.create_instance("3g.40gb")
    planner = ReconfigurationPlanner(A100_80GB, COLD)
    cost = planner.mig_repartition_cost(model_load_seconds=0.0,
                                        n_cotenants=1)
    t0 = env.now
    proc = env.process(planner.execute_mig_repartition(
        node, 0, ["1g.10gb"] * 4))
    instances = env.run(until=proc)
    assert [i.profile.name for i in instances] == ["1g.10gb"] * 4
    # Executed: one teardown per existing instance, then the GPU reset —
    # exactly the analytic teardown + reset terms for one co-tenant.
    assert env.now - t0 == pytest.approx(
        cost.teardown_seconds + cost.reset_seconds)


# ------------------------------------------------------------- validation

def test_cost_validation():
    planner = ReconfigurationPlanner(A100_40GB, COLD)
    with pytest.raises(ValueError, match="model_load_seconds"):
        planner.mps_repartition_cost(model_load_seconds=-1.0)
    with pytest.raises(ValueError, match="model_load_seconds"):
        planner.mig_repartition_cost(model_load_seconds=-1.0, n_cotenants=0)
    with pytest.raises(ValueError, match="n_cotenants"):
        planner.mig_repartition_cost(model_load_seconds=1.0, n_cotenants=-1)
