"""Tests for right-sizing, runtime prediction, and the reconfig planner."""

import pytest

from repro.faas import ColdStartModel
from repro.gpu import A100_40GB, V100_32GB
from repro.partition import (
    PartitionRecommendation,
    PlacementNeed,
    ReconfigurationPlanner,
    RightSizer,
    RuntimePredictor,
    StaticAnalyzer,
)
from repro.workloads import LLAMA2_7B, RESNET50, InferenceRuntime, LlamaInference

FP32 = InferenceRuntime(dtype_bytes=4)


def llama_latency_fn():
    llm = LlamaInference(LLAMA2_7B, FP32)
    return lambda sms: llm.completion_seconds(A100_40GB, sms)


# ----------------------------------------------------------------- rightsizer

def test_rightsizer_finds_fig2_knee():
    sizer = RightSizer(A100_40GB, tolerance=0.05)
    rec = sizer.recommend(llama_latency_fn())
    # Fig. 2: about 20-30 SMs suffice for LLaMa-2 7B.
    assert 15 <= rec.knee_sms <= 40
    assert rec.predicted_latency <= 1.05 * rec.full_gpu_latency
    assert rec.freed_fraction > 0.6


def test_rightsizer_recommendation_maps_to_mps_and_mig():
    sizer = RightSizer(A100_40GB, tolerance=0.05)
    rec = sizer.recommend(llama_latency_fn())
    # MPS percentage realises at least the knee.
    assert rec.mps_percentage >= 100 * rec.knee_sms / A100_40GB.sms - 1
    # The MIG profile offers at least knee_sms SMs.
    prof = A100_40GB.profile(rec.mig_profile)
    assert prof.sm_count(A100_40GB) >= rec.knee_sms


def test_rightsizer_meets_slo_invariant():
    """The recommended partition always meets the tolerance SLO."""
    fn = llama_latency_fn()
    for tol in (0.02, 0.05, 0.2, 0.5):
        sizer = RightSizer(A100_40GB, tolerance=tol)
        rec = sizer.recommend(fn)
        assert fn(rec.knee_sms) <= (1 + tol) * rec.full_gpu_latency + 1e-12


def test_rightsizer_non_mig_device():
    sizer = RightSizer(V100_32GB, tolerance=0.05)
    llm = LlamaInference(LLAMA2_7B, FP32)
    rec = sizer.recommend(lambda sms: llm.completion_seconds(V100_32GB, sms))
    assert rec.mig_profile is None
    # Regression: a dash used to be all callers got.  No MIG on a V100
    # means "share via MPS", not "needs a whole GPU".
    assert rec.placement is PlacementNeed.MPS_ONLY
    assert not rec.needs_whole_gpu


def test_rightsizer_placement_typed_verdicts():
    """The two cases ``_smallest_profile``'s None used to conflate."""
    # A knee inside a MIG profile: the common case.
    sizer = RightSizer(A100_40GB, tolerance=0.05)
    rec = sizer.recommend(llama_latency_fn())
    assert rec.placement is PlacementNeed.MIG_SLICE
    assert rec.mig_profile is not None
    assert not rec.needs_whole_gpu
    # A curve that only flattens at the very top: the knee exceeds the
    # largest MIG profile (98 usable SMs) but still fits the bare GPU.
    flat_late = lambda sms: 10.0 / min(sms, A100_40GB.sms) + 0.01
    rec = RightSizer(A100_40GB, tolerance=0.0).recommend(flat_late)
    assert rec.knee_sms > max(p.sm_count(A100_40GB)
                              for p in A100_40GB.mig_profiles)
    assert rec.placement is PlacementNeed.WHOLE_GPU
    assert rec.mig_profile is None
    assert rec.needs_whole_gpu


def test_rightsizer_validation():
    sizer = RightSizer(A100_40GB)
    with pytest.raises(ValueError):
        sizer.profile_curve(lambda s: 1.0, [0])
    with pytest.raises(ValueError):
        sizer.profile_curve(lambda s: -1.0, [10])
    with pytest.raises(ValueError):
        sizer.knee([])
    with pytest.raises(ValueError):
        RightSizer(A100_40GB, tolerance=-0.1)


# ------------------------------------------------------------ static analyzer

def test_static_analyzer_resnet_requirement():
    analyzer = StaticAnalyzer(A100_40GB)
    kernels = RESNET50.inference_kernels(batch_size=1)
    t_full = analyzer.predict_seconds(kernels, A100_40GB.sms)
    t_small = analyzer.predict_seconds(kernels, 10)
    assert t_small > t_full
    req = analyzer.sm_requirement(kernels, tolerance=0.05)
    assert 1 <= req <= A100_40GB.sms
    # Batch-32 inference needs more SMs than batch-1 (§3.4).
    req32 = analyzer.sm_requirement(RESNET50.inference_kernels(batch_size=32),
                                    tolerance=0.05)
    assert req32 >= req


def test_static_analyzer_validation():
    analyzer = StaticAnalyzer(A100_40GB)
    with pytest.raises(ValueError):
        analyzer.predict_seconds(RESNET50.inference_kernels(), 0)


# ---------------------------------------------------------- runtime predictor

def test_predictor_recovers_scaling_law():
    """Fit on noiseless samples of T(s) = 12/min(s,24) + 0.5."""
    truth = lambda s: 12.0 / min(s, 24) + 0.5
    samples = [(s, truth(s)) for s in (2, 4, 8, 16, 32, 64, 100)]
    predictor = RuntimePredictor()
    rmse = predictor.fit(samples)
    assert rmse < 0.05
    assert predictor.predict(12) == pytest.approx(truth(12), rel=0.1)
    assert predictor.saturation_sms == pytest.approx(24, abs=6)
    assert predictor.serial_seconds == pytest.approx(0.5, abs=0.15)


def test_predictor_sm_requirement():
    truth = lambda s: 12.0 / min(s, 24) + 0.5
    predictor = RuntimePredictor()
    predictor.fit([(s, truth(s)) for s in (2, 4, 8, 16, 24, 48, 96)])
    req = predictor.sm_requirement(tolerance=0.05)
    assert 15 <= req <= 24


def test_predictor_fits_simulator_profile():
    """Fit the predictor to the LLM cost model's own curve."""
    fn = llama_latency_fn()
    samples = [(s, fn(s)) for s in (4, 8, 16, 24, 32, 48, 64, 96, 108)]
    predictor = RuntimePredictor()
    predictor.fit(samples)
    for s in (6, 20, 80):
        assert predictor.predict(s) == pytest.approx(fn(s), rel=0.15)


def test_predictor_validation():
    p = RuntimePredictor()
    with pytest.raises(RuntimeError):
        p.predict(10)
    with pytest.raises(ValueError):
        p.fit([(1, 1.0), (2, 0.5)])  # too few samples
    with pytest.raises(ValueError):
        p.fit([(0, 1.0), (2, 0.5), (3, 0.4)])


# ----------------------------------------------------------- reconfig planner

def test_mps_reconfig_cost_matches_section6():
    """§6: MPS repartition of an LLM costs 10-20 s (mostly model reload)."""
    llm = LlamaInference(LLAMA2_7B, FP32)  # 27 GB fp32 -> ~10 s load
    planner = ReconfigurationPlanner(A100_40GB)
    cost = planner.mps_repartition_cost(llm.load_seconds)
    assert 5.0 < cost.total_seconds < 25.0
    assert not cost.disturbs_cotenants
    assert cost.reset_seconds == 0.0


def test_mig_reconfig_disturbs_cotenants_and_resets():
    llm = LlamaInference(LLAMA2_7B, FP32)
    planner = ReconfigurationPlanner(A100_40GB)
    cost = planner.mig_repartition_cost(llm.load_seconds, n_cotenants=2)
    assert cost.disturbs_cotenants
    assert cost.reset_seconds == pytest.approx(A100_40GB.reset_seconds)
    # Three applications restart, so it is far costlier than MPS.
    mps = planner.mps_repartition_cost(llm.load_seconds)
    assert cost.total_seconds > 2.5 * mps.total_seconds


def test_weight_cache_removes_reload_cost():
    """§7's payoff: with cached weights the restart is seconds, not tens."""
    llm = LlamaInference(LLAMA2_7B, FP32)
    planner = ReconfigurationPlanner(A100_40GB)
    cold = planner.mps_repartition_cost(llm.load_seconds)
    warm = planner.mps_repartition_cost(llm.load_seconds,
                                        weight_cache_hit=True)
    assert warm.model_reload_seconds == 0.0
    assert warm.total_seconds < 0.4 * cold.total_seconds


def test_reconfig_validation():
    planner = ReconfigurationPlanner(A100_40GB)
    with pytest.raises(ValueError):
        planner.mps_repartition_cost(-1.0)
    with pytest.raises(ValueError):
        planner.mig_repartition_cost(1.0, n_cotenants=-1)
