"""Tests for heterogeneous MIG layout planning and nested MPS."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import A100_80GB, A100_40GB, Kernel, MI210, MigManager, SimulatedGPU
from repro.partition import WorkloadRequirement, plan_mig_layout
from repro.sim import Environment


def req(name, sms, memory_gb=0.0):
    return WorkloadRequirement(name, min_sms=sms,
                               min_memory_bytes=memory_gb * 1e9)


def test_single_small_workload_gets_smallest_profile():
    plan = plan_mig_layout(A100_80GB, [req("tiny", 10)])
    assert plan.profile_for("tiny") == "1g.10gb"
    assert plan.leftover_profile is not None


def test_memory_floor_upgrades_profile():
    """A 17.5 GB model cannot live in 1g.10gb -> the planner picks the
    double-memory 1g.20gb (same compute cost)."""
    plan = plan_mig_layout(A100_80GB, [req("llama", 10, memory_gb=17.5)])
    assert plan.profile_for("llama") == "1g.20gb"


def test_sm_requirement_drives_compute_slices():
    plan = plan_mig_layout(A100_80GB, [req("wide", 50)])
    # 50 SMs needs >= 4 compute slices (14 SMs each).
    assert plan.profile_for("wide") == "4g.40gb"


def test_heterogeneous_mix():
    plan = plan_mig_layout(A100_80GB, [
        req("llm", 28, memory_gb=17.5),   # 2 slices of compute, 20 GB
        req("cnn", 14, memory_gb=2.0),    # 1 slice
        req("emulator", 40, memory_gb=8)  # 3 slices
    ])
    assert plan.profile_for("llm") in ("2g.20gb", "3g.40gb")
    assert plan.profile_for("cnn") == "1g.10gb"
    assert plan.profile_for("emulator") in ("3g.40gb", "4g.40gb")
    assert plan.used_compute_slices <= 7
    assert plan.used_memory_slices <= 8


def test_minimum_footprint_leaves_room():
    plan = plan_mig_layout(A100_80GB, [req("a", 14), req("b", 14)])
    # Two 1g instances: 5 compute slices remain -> a 4g profile fits.
    assert plan.used_compute_slices == 2
    assert plan.leftover_profile == "4g.40gb"


def test_full_gpu_has_no_leftover():
    plan = plan_mig_layout(A100_80GB, [req("everything", 98)])
    assert plan.profile_for("everything") == "7g.80gb"
    assert plan.leftover_profile is None


def test_infeasible_workload_diagnosed():
    with pytest.raises(ValueError, match="no A100.*MIG.*profile provides"):
        plan_mig_layout(A100_80GB, [req("huge", 14, memory_gb=200)])


def test_infeasible_combination_diagnosed():
    with pytest.raises(ValueError, match="slice budgets"):
        plan_mig_layout(A100_80GB, [req(f"w{i}", 42) for i in range(3)])


def test_validation():
    with pytest.raises(ValueError, match="does not support MIG"):
        plan_mig_layout(MI210, [req("x", 1)])
    with pytest.raises(ValueError, match="no workload"):
        plan_mig_layout(A100_80GB, [])
    with pytest.raises(ValueError, match="unique"):
        plan_mig_layout(A100_80GB, [req("x", 1), req("x", 1)])
    with pytest.raises(ValueError):
        WorkloadRequirement("x", min_sms=0)


@given(st.lists(
    st.tuples(st.integers(min_value=1, max_value=98),
              st.floats(min_value=0.0, max_value=80.0)),
    min_size=1, max_size=5))
@settings(max_examples=60)
def test_layout_plans_always_satisfy_requirements(reqs_spec):
    requirements = [req(f"w{i}", sms, mem)
                    for i, (sms, mem) in enumerate(reqs_spec)]
    try:
        plan = plan_mig_layout(A100_80GB, requirements)
    except ValueError:
        return  # infeasible is a legal outcome
    assert plan.used_compute_slices <= A100_80GB.mig_compute_slices
    assert plan.used_memory_slices <= A100_80GB.mig_memory_slices
    for requirement in requirements:
        profile = A100_80GB.profile(plan.profile_for(requirement.name))
        assert profile.sm_count(A100_80GB) >= requirement.min_sms
        assert profile.memory_bytes >= requirement.min_memory_bytes


# ------------------------------------------------------- MPS inside MIG

def test_mps_inside_a_mig_instance():
    """Nested sharing: two percentage-capped clients within one 3g slice."""
    env = Environment()
    gpu = SimulatedGPU(env, A100_40GB)
    mig = MigManager(gpu)
    env.run(until=env.process(mig.enable()))
    instance = mig.create_instance("3g.20gb")  # 42 SMs
    daemon = instance.enable_mps()
    a = daemon.client("a", active_thread_percentage=50)
    b = daemon.client("b", active_thread_percentage=50)
    assert a.sm_cap == 21 and b.sm_cap == 21

    spec = A100_40GB
    kernel = Kernel(flops=spec.flops_per_sm * 21, bytes_moved=0.0,
                    max_sms=21, efficiency=1.0)
    done_a = a.launch(kernel)
    done_b = b.launch(kernel)
    env.run(until=env.all_of([done_a, done_b]))
    # Both 21-SM kernels fit the 42-SM slice concurrently: 1 s, not 2.
    assert env.now - spec.reset_seconds == pytest.approx(1.0)


def test_mig_instance_without_mps_timeshares():
    env = Environment()
    gpu = SimulatedGPU(env, A100_40GB)
    mig = MigManager(gpu)
    env.run(until=env.process(mig.enable()))
    instance = mig.create_instance("3g.20gb")
    a = instance.client("a")
    b = instance.client("b")
    spec = A100_40GB
    kernel = Kernel(flops=spec.flops_per_sm * 21, bytes_moved=0.0,
                    max_sms=21, efficiency=1.0)
    done_a = a.launch(kernel)
    done_b = b.launch(kernel)
    env.run(until=env.all_of([done_a, done_b]))
    # Temporal within the instance: ~2 s plus a context switch.
    elapsed = env.now - spec.reset_seconds
    assert elapsed == pytest.approx(2.0 + spec.timeslice_switch_seconds,
                                    rel=1e-3)
