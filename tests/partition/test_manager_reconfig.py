"""Tests for the partition manager and executable reconfigurations."""

import pytest

from repro.faas import ColdStartModel, ComputeNode
from repro.gpu import A100_40GB, A100_80GB
from repro.partition import (
    EqualSharePolicy,
    GpuPartitionManager,
    ReconfigurationPlanner,
    StaticPolicy,
    WeightCache,
)
from repro.sim import Environment


def make_node(spec=A100_40GB, gpus=1):
    env = Environment()
    return env, ComputeNode(env, cores=8, gpu_specs=[spec] * gpus)


def test_apply_mps_policy_produces_listing2_config():
    env, node = make_node()
    manager = GpuPartitionManager(node)
    config = manager.apply_mps_policy(EqualSharePolicy(4))
    assert config.available_accelerators == ("0", "0", "0", "0")
    assert config.gpu_percentage == (25, 25, 25, 25)
    assert node.mps_daemons[0].running
    assert config.n_workers == 4


def test_apply_static_policy():
    env, node = make_node()
    manager = GpuPartitionManager(node)
    config = manager.apply_mps_policy(StaticPolicy([50, 25, 30]))
    assert config.gpu_percentage == (50, 25, 30)


def test_apply_mig_policy_produces_listing3_config():
    env, node = make_node(A100_80GB)
    manager = GpuPartitionManager(node)

    def driver(env):
        config = yield from manager.apply_mig_policy(EqualSharePolicy(3))
        return config

    config = env.run(until=env.process(driver(env)))
    assert config.gpu_percentage is None
    assert len(config.available_accelerators) == 3
    assert all(a.startswith("MIG-") for a in config.available_accelerators)
    mig = node.mig_manager(0)
    assert [i.profile.name for i in mig.instances] == ["2g.20gb"] * 3
    # Enabling MIG + reconfiguring costs two resets.
    assert env.now == pytest.approx(2 * A100_80GB.reset_seconds)


def test_timeshare_config():
    env, node = make_node()
    manager = GpuPartitionManager(node)
    config = manager.timeshare_config(3)
    assert config.available_accelerators == ("0", "0", "0")
    assert config.gpu_percentage is None
    with pytest.raises(ValueError):
        manager.timeshare_config(0)


def test_manager_gpu_index_validation():
    env, node = make_node()
    with pytest.raises(ValueError):
        GpuPartitionManager(node, gpu_index=2)


def test_describe_reflects_mode():
    env, node = make_node()
    manager = GpuPartitionManager(node)
    assert "time-sharing" in manager.describe()
    manager.apply_mps_policy(EqualSharePolicy(2))
    assert "MPS" in manager.describe()


def test_execute_mps_repartition_without_cache():
    env, node = make_node()
    node.start_mps()
    daemon = node.mps_daemons[0]
    client = daemon.client("w0", active_thread_percentage=50)
    client.alloc(10e9)
    planner = ReconfigurationPlanner(
        A100_40GB, ColdStartModel(function_init_seconds=1.0,
                                  gpu_context_seconds=0.5))

    def driver(env):
        new = yield from planner.execute_mps_repartition(
            node, 0, client, new_percentage=25,
            model_key="m", model_bytes=10e9, model_load_seconds=8.0)
        return new

    new_client = env.run(until=env.process(driver(env)))
    assert new_client.sm_cap == 27
    # teardown 0.25 + restart 1.5 + reload 8.0
    assert env.now == pytest.approx(0.25 + 1.5 + 8.0)
    # Old memory was freed, new model loaded.
    assert node.gpus[0].memory.used == pytest.approx(10e9)


def test_execute_mps_repartition_with_weight_cache():
    """§7 fast path: the reload disappears on a cache hit."""
    env, node = make_node()
    node.weight_cache = WeightCache()
    node.start_mps()
    daemon = node.mps_daemons[0]
    client = daemon.client("w0", active_thread_percentage=50)
    node.weight_cache.acquire(client, "m", 10e9)
    planner = ReconfigurationPlanner(
        A100_40GB, ColdStartModel(function_init_seconds=1.0,
                                  gpu_context_seconds=0.5))

    def driver(env):
        new = yield from planner.execute_mps_repartition(
            node, 0, client, new_percentage=25,
            model_key="m", model_bytes=10e9, model_load_seconds=8.0)
        return new

    env.run(until=env.process(driver(env)))
    # No 8 s reload: only teardown + restart.
    assert env.now == pytest.approx(0.25 + 1.5)
    assert node.weight_cache.hits == 1


def test_execute_mig_repartition():
    env, node = make_node(A100_80GB)
    mig = node.mig_manager(0)
    env.run(until=env.process(mig.enable()))
    mig.create_instance("3g.40gb")
    mig.create_instance("3g.40gb")
    planner = ReconfigurationPlanner(A100_80GB)
    t0 = env.now

    def driver(env):
        instances = yield from planner.execute_mig_repartition(
            node, 0, ["1g.10gb"] * 4)
        return instances

    instances = env.run(until=env.process(driver(env)))
    assert [i.profile.name for i in instances] == ["1g.10gb"] * 4
    # 2 teardowns + reset.
    assert env.now - t0 == pytest.approx(
        2 * planner.TEARDOWN_SECONDS + A100_80GB.reset_seconds)


def test_execute_mps_repartition_requires_daemon():
    env, node = make_node()
    gpu_client = node.gpus[0].timeshare_client("c")
    planner = ReconfigurationPlanner(A100_40GB)
    with pytest.raises(RuntimeError, match="daemon"):
        env.run(until=env.process(
            planner.execute_mps_repartition(node, 0, gpu_client, 50)))
