"""Tests for the online partition profiler (§7 pipeline end to end)."""

import pytest

from repro.gpu import A100_40GB
from repro.partition import PartitionProfiler
from repro.workloads import LLAMA2_7B, InferenceRuntime, LlamaInference, RESNET50

FP32 = InferenceRuntime(dtype_bytes=4)
LLM = LlamaInference(LLAMA2_7B, FP32)


def llama_completion(ctx, n_tokens=20):
    """A gpu_app-shaped generator: one 20-token completion."""
    for _ in range(n_tokens):
        yield ctx.launch(LLM.decode_kernel())
        yield ctx.compute(LLM.host_seconds_per_token)


def resnet_batch(ctx, batch=8):
    for kernel in RESNET50.inference_kernels(batch_size=batch):
        yield ctx.launch(kernel)


def test_measure_matches_closed_form():
    profiler = PartitionProfiler(A100_40GB)
    sms, seconds = profiler.measure(llama_completion, 50)
    assert sms == 54
    expected = LLM.completion_seconds(A100_40GB, 54)
    assert seconds == pytest.approx(expected, rel=1e-3)


def test_measured_curve_is_monotone():
    profiler = PartitionProfiler(A100_40GB)
    report = profiler.profile(llama_completion)
    latencies = [s for _, s in sorted(report.samples)]
    assert latencies == sorted(latencies, reverse=True)


def test_profile_recommendation_matches_fig2_knee():
    profiler = PartitionProfiler(A100_40GB, tolerance=0.05)
    report = profiler.profile(llama_completion)
    # The measured pipeline lands on the same knee the closed-form
    # right-sizer finds (Fig. 2's ~27 SMs).
    assert 15 <= report.recommendation.knee_sms <= 45
    assert report.fit_rmse < 0.1 * max(s for _, s in report.samples)
    assert report.recommendation.mig_profile is not None


def test_profile_resnet_needs_more_gpu_at_batch():
    profiler = PartitionProfiler(A100_40GB, tolerance=0.05)
    small = profiler.profile(resnet_batch, 1)
    large = profiler.profile(resnet_batch, 32)
    assert (large.recommendation.knee_sms
            >= small.recommendation.knee_sms)


def test_profiler_validation():
    with pytest.raises(ValueError, match="at least 3"):
        PartitionProfiler(A100_40GB, percentages=(50, 100))
    with pytest.raises(ValueError):
        PartitionProfiler(A100_40GB, percentages=(0, 50, 100))


def test_profiler_runs_are_independent():
    """Repeated profiling gives identical results (fresh environments)."""
    profiler = PartitionProfiler(A100_40GB)
    a = profiler.profile(llama_completion)
    b = profiler.profile(llama_completion)
    assert a.samples == b.samples
