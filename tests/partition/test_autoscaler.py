"""Tests for the demand-driven partition autoscaler (§7)."""

import math

import pytest

from repro.faas import ColdStartModel, ComputeNode
from repro.gpu import A100_40GB
from repro.partition import (
    ManagedFunction,
    PartitionAutoscaler,
    SizingResult,
    cooldown_elapsed,
    required_sms_for,
    scaled_percentages,
)
from repro.partition.reconfig import ReconfigurationPlanner
from repro.sim import Environment

FAST_COLD = ColdStartModel(function_init_seconds=0.5, gpu_context_seconds=0.5)


def weighted_sum(pcts, counts=None):
    counts = counts or {name: 1 for name in pcts}
    return sum(pcts[name] * counts[name] for name in pcts)


def latency_law(serial=0.05, work=2.0, saturation=40):
    """A latency(sms) law shaped like the Fig. 2 curve."""
    return lambda sms: work / min(sms, saturation) + serial


def make_stack(n_functions=2, slo=0.2, **scaler_kwargs):
    env = Environment()
    node = ComputeNode(env, cores=8, gpu_specs=[A100_40GB])
    node.start_mps()
    functions = []
    for i in range(n_functions):
        client = node.mps_daemons[0].client(
            f"fn{i}", active_thread_percentage=round(100 / n_functions))
        functions.append(ManagedFunction(
            name=f"fn{i}",
            client=client,
            latency_fn=latency_law(),
            slo_seconds=slo,
            model_key=f"model{i}",
            model_bytes=1e9,
            model_load_seconds=2.0,
        ))
    planner = ReconfigurationPlanner(A100_40GB, FAST_COLD)
    scaler = PartitionAutoscaler(node, functions, planner=planner,
                                 **scaler_kwargs)
    return env, node, functions, scaler


def test_required_sms_scales_with_demand():
    env, node, fns, scaler = make_stack()
    fn = fns[0]
    scaler.set_demand("fn0", 0.0)
    assert scaler.required_sms(fn) == 1
    scaler.set_demand("fn0", 2.0)
    low = scaler.required_sms(fn)
    scaler.set_demand("fn0", 8.0)
    high = scaler.required_sms(fn)
    assert high > low >= 1
    # The chosen allocation meets both the SLO and the stability ceiling.
    latency = fn.latency_fn(high)
    assert latency <= fn.slo_seconds
    assert 8.0 * latency <= scaler.utilization_ceiling + 1e-9


def test_infeasible_slo_gives_whole_gpu():
    env, node, fns, scaler = make_stack(slo=0.0001)
    scaler.set_demand("fn0", 1.0)
    assert scaler.required_sms(fns[0]) == A100_40GB.sms


def test_desired_percentages_normalised():
    env, node, fns, scaler = make_stack()
    scaler.set_demand("fn0", 12.0)
    scaler.set_demand("fn1", 12.0)
    pct = scaler.desired_percentages()
    # The repaired apportionment bounds the sum by the GPU itself, not
    # the old per-function-ceil "roughly 100 plus rounding slack".
    assert sum(pct.values()) <= 100
    assert all(p >= scaler.min_percentage for p in pct.values())


def test_autoscaler_repartitions_on_demand_shift():
    env, node, fns, scaler = make_stack(
        interval_seconds=10.0, cooldown_seconds=0.0)
    scaler.set_demand("fn0", 10.0)
    scaler.set_demand("fn1", 0.5)
    scaler.start()
    env.run(until=25.0)
    assert scaler.reconfigurations >= 1
    current = scaler.current_percentages()
    assert current["fn0"] > current["fn1"]
    # The repartition replaced the client objects.
    assert fns[0].client.sm_cap > fns[1].client.sm_cap


def test_autoscaler_stable_demand_no_thrashing():
    env, node, fns, scaler = make_stack(
        interval_seconds=10.0, cooldown_seconds=0.0)
    scaler.set_demand("fn0", 5.0)
    scaler.set_demand("fn1", 5.0)
    scaler.start()
    env.run(until=100.0)
    first = scaler.reconfigurations
    env.run(until=300.0)
    # After converging, no further repartitions occur.
    assert scaler.reconfigurations == first
    assert any(not d.applied and d.reason == "within threshold"
               for d in scaler.decisions)


def test_cooldown_blocks_rapid_changes():
    env, node, fns, scaler = make_stack(
        interval_seconds=5.0, cooldown_seconds=1000.0)
    scaler.set_demand("fn0", 10.0)
    scaler.start()
    env.run(until=12.0)
    applied = [d for d in scaler.decisions if d.applied]
    assert len(applied) <= 1
    # Flip demand: the change is deferred by the cooldown.
    scaler.set_demand("fn0", 0.1)
    scaler.set_demand("fn1", 10.0)
    env.run(until=30.0)
    assert any(d.reason == "cooldown" for d in scaler.decisions)


# ------------------------------------------------ cooldown gating (bugfix)

def test_cooldown_elapsed_first_decision_is_eligible():
    # A fresh controller's last_applied is -inf, so even an enormous
    # cooldown cannot gate the very first decision.
    assert cooldown_elapsed(0.0, -math.inf, 1e9)
    # The regression this pins: a 0 initialiser would silently gate
    # every reconfiguration in the first cooldown window.
    assert not cooldown_elapsed(10.0, 0.0, 60.0)
    assert cooldown_elapsed(60.0, 0.0, 60.0)


def test_cooldown_elapsed_slo_violation_shrinks_the_wait():
    # Half the cooldown has passed: gated while healthy...
    assert not cooldown_elapsed(150.0, 100.0, 100.0)
    # ...eligible once the SLO is burning (default factor halves it).
    assert cooldown_elapsed(150.0, 100.0, 100.0, slo_violated=True)
    # Factor 0 bypasses the cooldown outright; factor 1 disables bypass.
    assert cooldown_elapsed(100.0, 100.0, 100.0, slo_violated=True,
                            slo_bypass_factor=0.0)
    assert not cooldown_elapsed(150.0, 100.0, 100.0, slo_violated=True,
                                slo_bypass_factor=1.0)


def test_first_decision_is_not_cooldown_gated():
    """Regression: a huge cooldown must not suppress the initial fit."""
    env, node, fns, scaler = make_stack(
        interval_seconds=10.0, cooldown_seconds=10_000.0)
    scaler.set_demand("fn0", 10.0)
    scaler.set_demand("fn1", 0.5)
    scaler.start()
    env.run(until=25.0)
    assert scaler.reconfigurations >= 1
    assert scaler.decisions[0].applied
    assert scaler.decisions[0].reason == "repartitioned"


def test_slo_violation_halves_the_cooldown():
    """A/B: the bypass factor lets a burning SLO repartition sooner."""

    def drive(bypass_factor):
        env, node, fns, scaler = make_stack(
            interval_seconds=10.0, cooldown_seconds=200.0,
            slo_bypass_factor=bypass_factor)
        scaler.set_demand("fn0", 10.0)
        scaler.set_demand("fn1", 0.5)
        scaler.start()
        env.run(until=20.0)
        assert any(d.applied for d in scaler.decisions)
        # Flip the load: fn1's sliver is now hopelessly saturated, a
        # hard SLO violation under its current share.
        scaler.set_demand("fn0", 0.5)
        scaler.set_demand("fn1", 10.0)
        env.run(until=130.0)
        return scaler

    bypassing = drive(0.5)
    strict = drive(1.0)
    # With the bypass the flip is applied after half the cooldown
    # (~100 s); without it the full 200 s still gates at t=130.
    assert sum(d.applied for d in bypassing.decisions) == 2
    assert sum(d.applied for d in strict.decisions) == 1
    # Early ticks inside the shrunk window were still cooldown-gated.
    assert any(d.reason == "cooldown" for d in bypassing.decisions)


def test_slo_bypass_factor_validated():
    with pytest.raises(ValueError, match="slo_bypass_factor"):
        make_stack(slo_bypass_factor=1.5)


def test_autoscaler_downtime_accounted():
    env, node, fns, scaler = make_stack(
        interval_seconds=10.0, cooldown_seconds=0.0)
    scaler.set_demand("fn0", 10.0)
    scaler.start()
    env.run(until=40.0)
    if scaler.reconfigurations:
        assert scaler.reconfiguration_downtime > 0


def test_autoscaler_stop():
    env, node, fns, scaler = make_stack(interval_seconds=10.0)
    scaler.start()
    env.run(until=15.0)
    scaler.stop()
    decisions = len(scaler.decisions)
    env.run(until=100.0)
    assert len(scaler.decisions) == decisions
    scaler.stop()  # idempotent


def test_validation():
    env = Environment()
    node = ComputeNode(env, cores=4, gpu_specs=[A100_40GB])
    node.start_mps()
    client = node.mps_daemons[0].client("f", 50)
    fn = ManagedFunction("f", client, latency_law(), slo_seconds=1.0)
    with pytest.raises(ValueError, match="at least one"):
        PartitionAutoscaler(node, [])
    with pytest.raises(ValueError, match="unique"):
        PartitionAutoscaler(node, [fn, fn])
    with pytest.raises(ValueError):
        ManagedFunction("g", client, latency_law(), slo_seconds=0.0)
    scaler = PartitionAutoscaler(node, [fn])
    with pytest.raises(ValueError):
        scaler.set_demand("f", -1.0)
    with pytest.raises(RuntimeError, match="already started"):
        scaler.start()
        scaler.start()


# -------------------------------------- sizing arithmetic (bugfix sweep)
#
# The three regressions below all passed the *old* arithmetic's own
# tests while oversubscribing or misreporting: per-function ``ceil``
# caps summing past 100%, and ``required_sms_for`` silently returning a
# whole GPU for functions no GPU can serve.

def test_scaled_percentages_regression_ceil_overshoot():
    """Seven 16-SM functions on a 108-SM GPU, expand=True.

    The old code gave each function ``ceil(100 * 16/112) = 15%``:
    7 x 15 = 105% of the GPU promised to co-residents.  Largest
    remainder hands out 100 exactly.
    """
    needed = {f"fn{i}": 16 for i in range(7)}
    pcts = scaled_percentages(A100_40GB, needed, expand=True)
    assert weighted_sum(pcts) == 100
    assert max(pcts.values()) - min(pcts.values()) <= 1  # equal demand


def test_scaled_percentages_regression_floor_plus_ceil_overshoot():
    """Replicated shares: the overshoot compounded per *replica*.

    Three functions needing 30 SMs at 2 replicas each previously got
    ``ceil(100 * 30/180) = 17%`` per replica: 6 x 17 = 102%.
    """
    needed = {name: 30 for name in ("a", "b", "c")}
    counts = {name: 2 for name in needed}
    pcts = scaled_percentages(A100_40GB, needed, counts, expand=True)
    assert weighted_sum(pcts, counts) <= 100
    # Granularity: every +1 costs 2 weighted points, so the closest
    # reachable total is 100 exactly here (16/17/17 per replica).
    assert weighted_sum(pcts, counts) == 100


def test_scaled_percentages_never_oversubscribes_without_expand():
    needed = {"hot": 200, "cold": 90}  # far beyond one GPU
    pcts = scaled_percentages(A100_40GB, needed)
    assert weighted_sum(pcts) <= 100
    assert pcts["hot"] > pcts["cold"]


def test_scaled_percentages_floor_preserved():
    needed = {"whale": 500, **{f"krill{i}": 0 for i in range(6)}}
    pcts = scaled_percentages(A100_40GB, needed, expand=True)
    # 7 functions: the keep-warm floor min(5, 100 // 7) = 5 holds even
    # though the whale wants everything.
    assert all(p >= 5 for p in pcts.values())
    assert weighted_sum(pcts) <= 100
    assert pcts["whale"] == max(pcts.values())


def test_scaled_percentages_granularity_can_undershoot_100():
    """3+3 replicas: +1 costs 3 weighted points, so 99 is the max."""
    needed = {"hot": 40, "cold": 40}
    counts = {"hot": 3, "cold": 3}
    pcts = scaled_percentages(A100_40GB, needed, counts, expand=True)
    assert weighted_sum(pcts, counts) == 99


def test_scaled_percentages_rejects_impossible_replica_counts():
    with pytest.raises(ValueError, match="101 replicas"):
        scaled_percentages(A100_40GB, {"f": 10}, {"f": 101})
    with pytest.raises(ValueError, match="at least one replica"):
        scaled_percentages(A100_40GB, {"f": 10}, {"f": 0})


def test_required_sms_for_reports_infeasible():
    law = latency_law()  # serial floor 0.05 s
    sizing = required_sms_for(A100_40GB, law, slo_seconds=0.01,
                              demand_rps=1.0)
    assert sizing == A100_40GB.sms  # best effort unchanged
    assert isinstance(sizing, SizingResult)
    assert not sizing.feasible
    # And the happy path still carries an affirmative verdict.
    ok = required_sms_for(A100_40GB, law, slo_seconds=1.0, demand_rps=1.0)
    assert ok.feasible
    assert 1 <= ok < A100_40GB.sms


def test_sizing_result_is_arithmetically_an_int():
    sizing = SizingResult(40, feasible=False)
    assert sizing + 2 == 42
    assert sizing * 2 == 80
    assert round(100 * sizing / A100_40GB.sms) == 37
    assert "feasible=False" in repr(sizing)


def test_required_sms_for_bisect_matches_linear_scan():
    """The bisection answers exactly what the old scan answered."""
    law = latency_law(serial=0.02, work=3.0, saturation=60)

    def linear(slo, rps, ceiling=0.8):
        for sms in range(1, A100_40GB.sms + 1):
            lat = law(sms)
            if lat <= slo and rps * lat <= ceiling:
                return sms
        return A100_40GB.sms

    for slo in (0.05, 0.08, 0.1, 0.3, 1.0):
        for rps in (0.5, 2.0, 8.0, 20.0):
            got = required_sms_for(A100_40GB, law, slo, rps)
            assert got == linear(slo, rps), (slo, rps)


def test_required_sms_for_nonmonotone_curve_falls_back_to_scan():
    """A wobbly curve (cache cliff) must still get the exact answer."""

    def wobble(sms):
        # Non-monotone: a latency spike at 40-49 SMs.
        base = 2.0 / min(sms, 60) + 0.02
        return base + (0.5 if 40 <= sms < 50 else 0.0)

    got = required_sms_for(A100_40GB, wobble, slo_seconds=0.1,
                           demand_rps=1.0)
    # Exact smallest acceptable size, even though bisection landed
    # inside the spike region.
    assert got == min(s for s in range(1, A100_40GB.sms + 1)
                      if wobble(s) <= 0.1)
    assert got.feasible
