"""Tests for the demand-driven partition autoscaler (§7)."""

import math

import pytest

from repro.faas import ColdStartModel, ComputeNode
from repro.gpu import A100_40GB
from repro.partition import (
    ManagedFunction,
    PartitionAutoscaler,
    cooldown_elapsed,
)
from repro.partition.reconfig import ReconfigurationPlanner
from repro.sim import Environment

FAST_COLD = ColdStartModel(function_init_seconds=0.5, gpu_context_seconds=0.5)


def latency_law(serial=0.05, work=2.0, saturation=40):
    """A latency(sms) law shaped like the Fig. 2 curve."""
    return lambda sms: work / min(sms, saturation) + serial


def make_stack(n_functions=2, slo=0.2, **scaler_kwargs):
    env = Environment()
    node = ComputeNode(env, cores=8, gpu_specs=[A100_40GB])
    node.start_mps()
    functions = []
    for i in range(n_functions):
        client = node.mps_daemons[0].client(
            f"fn{i}", active_thread_percentage=round(100 / n_functions))
        functions.append(ManagedFunction(
            name=f"fn{i}",
            client=client,
            latency_fn=latency_law(),
            slo_seconds=slo,
            model_key=f"model{i}",
            model_bytes=1e9,
            model_load_seconds=2.0,
        ))
    planner = ReconfigurationPlanner(A100_40GB, FAST_COLD)
    scaler = PartitionAutoscaler(node, functions, planner=planner,
                                 **scaler_kwargs)
    return env, node, functions, scaler


def test_required_sms_scales_with_demand():
    env, node, fns, scaler = make_stack()
    fn = fns[0]
    scaler.set_demand("fn0", 0.0)
    assert scaler.required_sms(fn) == 1
    scaler.set_demand("fn0", 2.0)
    low = scaler.required_sms(fn)
    scaler.set_demand("fn0", 8.0)
    high = scaler.required_sms(fn)
    assert high > low >= 1
    # The chosen allocation meets both the SLO and the stability ceiling.
    latency = fn.latency_fn(high)
    assert latency <= fn.slo_seconds
    assert 8.0 * latency <= scaler.utilization_ceiling + 1e-9


def test_infeasible_slo_gives_whole_gpu():
    env, node, fns, scaler = make_stack(slo=0.0001)
    scaler.set_demand("fn0", 1.0)
    assert scaler.required_sms(fns[0]) == A100_40GB.sms


def test_desired_percentages_normalised():
    env, node, fns, scaler = make_stack()
    scaler.set_demand("fn0", 12.0)
    scaler.set_demand("fn1", 12.0)
    pct = scaler.desired_percentages()
    assert sum(pct.values()) <= 120  # bounded even when oversubscribed
    assert all(p >= scaler.min_percentage for p in pct.values())


def test_autoscaler_repartitions_on_demand_shift():
    env, node, fns, scaler = make_stack(
        interval_seconds=10.0, cooldown_seconds=0.0)
    scaler.set_demand("fn0", 10.0)
    scaler.set_demand("fn1", 0.5)
    scaler.start()
    env.run(until=25.0)
    assert scaler.reconfigurations >= 1
    current = scaler.current_percentages()
    assert current["fn0"] > current["fn1"]
    # The repartition replaced the client objects.
    assert fns[0].client.sm_cap > fns[1].client.sm_cap


def test_autoscaler_stable_demand_no_thrashing():
    env, node, fns, scaler = make_stack(
        interval_seconds=10.0, cooldown_seconds=0.0)
    scaler.set_demand("fn0", 5.0)
    scaler.set_demand("fn1", 5.0)
    scaler.start()
    env.run(until=100.0)
    first = scaler.reconfigurations
    env.run(until=300.0)
    # After converging, no further repartitions occur.
    assert scaler.reconfigurations == first
    assert any(not d.applied and d.reason == "within threshold"
               for d in scaler.decisions)


def test_cooldown_blocks_rapid_changes():
    env, node, fns, scaler = make_stack(
        interval_seconds=5.0, cooldown_seconds=1000.0)
    scaler.set_demand("fn0", 10.0)
    scaler.start()
    env.run(until=12.0)
    applied = [d for d in scaler.decisions if d.applied]
    assert len(applied) <= 1
    # Flip demand: the change is deferred by the cooldown.
    scaler.set_demand("fn0", 0.1)
    scaler.set_demand("fn1", 10.0)
    env.run(until=30.0)
    assert any(d.reason == "cooldown" for d in scaler.decisions)


# ------------------------------------------------ cooldown gating (bugfix)

def test_cooldown_elapsed_first_decision_is_eligible():
    # A fresh controller's last_applied is -inf, so even an enormous
    # cooldown cannot gate the very first decision.
    assert cooldown_elapsed(0.0, -math.inf, 1e9)
    # The regression this pins: a 0 initialiser would silently gate
    # every reconfiguration in the first cooldown window.
    assert not cooldown_elapsed(10.0, 0.0, 60.0)
    assert cooldown_elapsed(60.0, 0.0, 60.0)


def test_cooldown_elapsed_slo_violation_shrinks_the_wait():
    # Half the cooldown has passed: gated while healthy...
    assert not cooldown_elapsed(150.0, 100.0, 100.0)
    # ...eligible once the SLO is burning (default factor halves it).
    assert cooldown_elapsed(150.0, 100.0, 100.0, slo_violated=True)
    # Factor 0 bypasses the cooldown outright; factor 1 disables bypass.
    assert cooldown_elapsed(100.0, 100.0, 100.0, slo_violated=True,
                            slo_bypass_factor=0.0)
    assert not cooldown_elapsed(150.0, 100.0, 100.0, slo_violated=True,
                                slo_bypass_factor=1.0)


def test_first_decision_is_not_cooldown_gated():
    """Regression: a huge cooldown must not suppress the initial fit."""
    env, node, fns, scaler = make_stack(
        interval_seconds=10.0, cooldown_seconds=10_000.0)
    scaler.set_demand("fn0", 10.0)
    scaler.set_demand("fn1", 0.5)
    scaler.start()
    env.run(until=25.0)
    assert scaler.reconfigurations >= 1
    assert scaler.decisions[0].applied
    assert scaler.decisions[0].reason == "repartitioned"


def test_slo_violation_halves_the_cooldown():
    """A/B: the bypass factor lets a burning SLO repartition sooner."""

    def drive(bypass_factor):
        env, node, fns, scaler = make_stack(
            interval_seconds=10.0, cooldown_seconds=200.0,
            slo_bypass_factor=bypass_factor)
        scaler.set_demand("fn0", 10.0)
        scaler.set_demand("fn1", 0.5)
        scaler.start()
        env.run(until=20.0)
        assert any(d.applied for d in scaler.decisions)
        # Flip the load: fn1's sliver is now hopelessly saturated, a
        # hard SLO violation under its current share.
        scaler.set_demand("fn0", 0.5)
        scaler.set_demand("fn1", 10.0)
        env.run(until=130.0)
        return scaler

    bypassing = drive(0.5)
    strict = drive(1.0)
    # With the bypass the flip is applied after half the cooldown
    # (~100 s); without it the full 200 s still gates at t=130.
    assert sum(d.applied for d in bypassing.decisions) == 2
    assert sum(d.applied for d in strict.decisions) == 1
    # Early ticks inside the shrunk window were still cooldown-gated.
    assert any(d.reason == "cooldown" for d in bypassing.decisions)


def test_slo_bypass_factor_validated():
    with pytest.raises(ValueError, match="slo_bypass_factor"):
        make_stack(slo_bypass_factor=1.5)


def test_autoscaler_downtime_accounted():
    env, node, fns, scaler = make_stack(
        interval_seconds=10.0, cooldown_seconds=0.0)
    scaler.set_demand("fn0", 10.0)
    scaler.start()
    env.run(until=40.0)
    if scaler.reconfigurations:
        assert scaler.reconfiguration_downtime > 0


def test_autoscaler_stop():
    env, node, fns, scaler = make_stack(interval_seconds=10.0)
    scaler.start()
    env.run(until=15.0)
    scaler.stop()
    decisions = len(scaler.decisions)
    env.run(until=100.0)
    assert len(scaler.decisions) == decisions
    scaler.stop()  # idempotent


def test_validation():
    env = Environment()
    node = ComputeNode(env, cores=4, gpu_specs=[A100_40GB])
    node.start_mps()
    client = node.mps_daemons[0].client("f", 50)
    fn = ManagedFunction("f", client, latency_law(), slo_seconds=1.0)
    with pytest.raises(ValueError, match="at least one"):
        PartitionAutoscaler(node, [])
    with pytest.raises(ValueError, match="unique"):
        PartitionAutoscaler(node, [fn, fn])
    with pytest.raises(ValueError):
        ManagedFunction("g", client, latency_law(), slo_seconds=0.0)
    scaler = PartitionAutoscaler(node, [fn])
    with pytest.raises(ValueError):
        scaler.set_demand("f", -1.0)
    with pytest.raises(RuntimeError, match="already started"):
        scaler.start()
        scaler.start()
