"""Tests for partition policies."""

import pytest

from repro.gpu import A100_40GB, A100_80GB, MI210
from repro.partition import (
    DemandBasedPolicy,
    EqualSharePolicy,
    StaticPolicy,
    mig_profiles_for,
)


def test_equal_share_mps():
    assert EqualSharePolicy(2).mps_percentages() == [50, 50]
    assert EqualSharePolicy(3).mps_percentages() == [33, 33, 33]
    assert EqualSharePolicy(4).mps_percentages() == [25, 25, 25, 25]


def test_paper_mig_ladder():
    """§5.2: 2 models -> 3g each, 3 -> 2g, 4 -> 1g."""
    spec = A100_80GB
    assert mig_profiles_for(spec, 2) == ["3g.40gb", "3g.40gb"]
    assert mig_profiles_for(spec, 3) == ["2g.20gb"] * 3
    assert mig_profiles_for(spec, 4) == ["1g.10gb"] * 4
    assert mig_profiles_for(spec, 1) == ["7g.80gb"]


def test_mig_ladder_respects_memory_slices():
    # 2x 4g would need 8 memory slices and 8 compute slices -> only
    # 3g (4 memory slices each) fits twice.
    assert mig_profiles_for(A100_40GB, 2) == ["3g.20gb", "3g.20gb"]


def test_mig_ladder_validation():
    with pytest.raises(ValueError, match="does not support MIG"):
        mig_profiles_for(MI210, 2)
    with pytest.raises(ValueError, match="at most"):
        mig_profiles_for(A100_40GB, 8)
    with pytest.raises(ValueError):
        mig_profiles_for(A100_40GB, 0)


def test_equal_share_policy_mig_delegates():
    assert EqualSharePolicy(4).mig_profiles(A100_40GB) == ["1g.5gb"] * 4


def test_static_policy():
    policy = StaticPolicy([50, 25, 30])  # Listing 2's example
    assert policy.mps_percentages() == [50, 25, 30]
    assert policy.n_partitions == 3
    with pytest.raises(ValueError):
        StaticPolicy([])
    with pytest.raises(ValueError):
        StaticPolicy([0])
    with pytest.raises(ValueError):
        StaticPolicy([120])


def test_demand_based_fits_outright():
    # Two functions needing 20 SMs each on a 108-SM device.
    policy = DemandBasedPolicy([20, 20], A100_40GB)
    pcts = policy.mps_percentages()
    assert pcts == [19, 19]


def test_demand_based_scales_down_when_oversubscribed():
    policy = DemandBasedPolicy([108, 108], A100_40GB)
    pcts = policy.mps_percentages()
    assert pcts == [50, 50]


def test_demand_based_proportionality():
    policy = DemandBasedPolicy([80, 40], A100_40GB)
    a, b = policy.mps_percentages()
    assert a == pytest.approx(2 * b, abs=2)


def test_demand_based_validation():
    with pytest.raises(ValueError):
        DemandBasedPolicy([], A100_40GB)
    with pytest.raises(ValueError):
        DemandBasedPolicy([0], A100_40GB)
