"""Tests for the GPU-resident weight cache (§7 future work)."""

import pytest

from repro.sim import Environment
from repro.gpu import A100_80GB, GpuOutOfMemory, MpsControlDaemon, SimulatedGPU
from repro.partition import WeightCache


def make_clients(n=2):
    env = Environment()
    gpu = SimulatedGPU(env, A100_80GB)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    return env, gpu, [daemon.client(f"c{i}") for i in range(n)]


def test_first_acquire_is_miss_second_is_hit():
    env, gpu, (a, b) = make_clients(2)
    cache = WeightCache()
    assert cache.acquire(a, "llama-7b", 14e9) is False
    assert cache.acquire(b, "llama-7b", 14e9) is True
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == pytest.approx(0.5)
    # The weights are allocated once, owned by the cache.
    assert gpu.memory.used == pytest.approx(14e9)


def test_weights_survive_client_restart():
    """The §7 fast path: restart a client, skip the reload."""
    env, gpu, (a,) = make_clients(1)
    cache = WeightCache()
    cache.acquire(a, "llama-7b", 14e9)
    cache.release(a, "llama-7b")
    a.close()
    assert gpu.memory.used == pytest.approx(14e9)  # still resident
    # A restarted client on the same pool gets a hit.
    from repro.gpu.device import GpuClient

    restarted = GpuClient(gpu, gpu.default_group, "c0-restarted")
    assert cache.acquire(restarted, "llama-7b", 14e9) is True


def test_distinct_pools_do_not_share():
    """Weights cached on one MIG instance are invisible to another."""
    env = Environment()
    gpu = SimulatedGPU(env, A100_80GB)
    from repro.gpu import MigManager

    mig = MigManager(gpu)
    env.run(until=env.process(mig.enable()))
    i1 = mig.create_instance("3g.40gb")
    i2 = mig.create_instance("3g.40gb")
    c1, c2 = i1.client("a"), i2.client("b")
    cache = WeightCache()
    assert cache.acquire(c1, "model", 10e9) is False
    assert cache.acquire(c2, "model", 10e9) is False  # different pool


def test_release_requires_live_reference():
    env, gpu, (a,) = make_clients(1)
    cache = WeightCache()
    with pytest.raises(KeyError):
        cache.release(a, "ghost")
    cache.acquire(a, "m", 1e9)
    cache.release(a, "m")
    with pytest.raises(KeyError):
        cache.release(a, "m")  # refcount already zero


def test_evict_frees_memory():
    env, gpu, (a,) = make_clients(1)
    cache = WeightCache()
    cache.acquire(a, "m", 10e9)
    with pytest.raises(RuntimeError, match="live references"):
        cache.evict(a, "m")
    cache.release(a, "m")
    cache.evict(a, "m")
    assert gpu.memory.used == 0.0
    with pytest.raises(KeyError):
        cache.evict(a, "m")


def test_lru_eviction_under_pressure():
    env, gpu, (a,) = make_clients(1)
    cache = WeightCache()
    # Fill the 80 GB pool with three unreferenced 25 GB models.
    for i, key in enumerate(["m0", "m1", "m2"]):
        cache.acquire(a, key, 25e9)
        cache.release(a, key)
        env.run(until=env.now + 1.0)  # advance LRU clock
    # A fourth needs 25 GB; only 5 GB free -> evict the oldest (m0).
    assert cache.acquire(a, "m3", 25e9) is False
    assert "m0" not in cache.resident_keys(a)
    assert {"m1", "m2", "m3"} <= set(cache.resident_keys(a))


def test_oom_when_nothing_evictable():
    env, gpu, (a,) = make_clients(1)
    cache = WeightCache()
    cache.acquire(a, "pinned", 70e9)  # still referenced
    with pytest.raises(GpuOutOfMemory):
        cache.acquire(a, "big", 20e9)


def test_bytes_saved_accounting():
    env, gpu, (a, b) = make_clients(2)
    cache = WeightCache()
    cache.acquire(a, "m", 10e9)
    cache.acquire(b, "m", 10e9)
    assert cache.bytes_saved == pytest.approx(10e9)
    assert cache.resident_bytes(a) == pytest.approx(10e9)
