"""Property-based tests for the GPU simulator invariants."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.gpu import (
    A100_40GB,
    A100_80GB,
    GpuOutOfMemory,
    Kernel,
    MemoryPool,
    MigManager,
    MpsControlDaemon,
    SimulatedGPU,
)
from repro.gpu.device import _waterfill
from repro.sim import Environment

SPEC = A100_40GB

positive_floats = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)


# -------------------------------------------------------------- water-filling

@st.composite
def waterfill_case(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    demand = {i: draw(positive_floats) for i in range(n)}
    cap = {i: draw(positive_floats) for i in range(n)}
    total = draw(positive_floats)
    return demand, cap, total


@given(waterfill_case())
def test_waterfill_respects_caps_and_total(case):
    demand, cap, total = case
    alloc = _waterfill(demand, cap, total)
    assert set(alloc) == set(demand)
    for k in demand:
        assert alloc[k] <= demand[k] + 1e-9
        assert alloc[k] <= cap[k] + 1e-9
        assert alloc[k] >= 0
    assert sum(alloc.values()) <= total + 1e-6


@given(waterfill_case())
def test_waterfill_is_work_conserving(case):
    """No bandwidth is left idle while some demand is unmet."""
    demand, cap, total = case
    alloc = _waterfill(demand, cap, total)
    leftover = total - sum(alloc.values())
    if leftover > 1e-6:
        # Everyone must be satisfied up to their own cap/demand.
        for k in demand:
            assert alloc[k] == pytest.approx(min(demand[k], cap[k]),
                                             rel=1e-6)


@given(waterfill_case())
def test_waterfill_fairness(case):
    """An unsatisfied client never receives less than a satisfied one
    with higher demand (no starvation inversion)."""
    demand, cap, total = case
    alloc = _waterfill(demand, cap, total)
    unsatisfied = [k for k in demand
                   if alloc[k] < min(demand[k], cap[k]) - 1e-6]
    for u in unsatisfied:
        for k in demand:
            if k == u:
                continue
            # Anyone allocated more than an unsatisfied client either
            # demanded no more than they got, or hit their own cap.
            if alloc[k] > alloc[u] + 1e-6:
                assert (alloc[k] >= min(demand[k], cap[k]) - 1e-6
                        or cap[u] <= alloc[u] + 1e-6)


# -------------------------------------------------------------- memory pool

@given(st.lists(
    st.tuples(st.sampled_from(["alloc", "free"]),
              st.integers(min_value=0, max_value=4),
              st.floats(min_value=0.0, max_value=60.0)),
    max_size=60,
))
def test_memory_pool_accounting_invariants(ops):
    pool = MemoryPool(100.0)
    shadow: dict[str, float] = {}
    for op, owner_i, size in ops:
        owner = f"o{owner_i}"
        if op == "alloc":
            try:
                pool.allocate(owner, size)
                shadow[owner] = shadow.get(owner, 0.0) + size
            except GpuOutOfMemory:
                assert size > pool.free
        else:
            take = min(size, shadow.get(owner, 0.0))
            pool.release(owner, take)
            shadow[owner] = shadow.get(owner, 0.0) - take
        assert 0 <= pool.used <= pool.capacity + 1e-6
        assert pool.used == pytest.approx(sum(shadow.values()), abs=1e-5)


# -------------------------------------------------------------- kernel model

@st.composite
def kernels(draw):
    return Kernel(
        flops=draw(st.floats(min_value=1e6, max_value=1e15)),
        bytes_moved=draw(st.floats(min_value=0.0, max_value=1e12)),
        max_sms=draw(st.integers(min_value=1, max_value=256)),
        efficiency=draw(st.floats(min_value=0.01, max_value=1.0)),
    )


@given(kernels(), st.integers(min_value=1, max_value=107))
def test_kernel_duration_monotone_in_sms(kernel, sms):
    d_small = kernel.duration(sms, SPEC.flops_per_sm, SPEC.bandwidth)
    d_large = kernel.duration(sms + 1, SPEC.flops_per_sm, SPEC.bandwidth)
    assert d_large <= d_small + 1e-12


@given(kernels(), st.floats(min_value=1e9, max_value=2e12))
def test_kernel_duration_monotone_in_bandwidth(kernel, bw):
    assume(kernel.bytes_moved > 0)
    d_slow = kernel.duration(SPEC.sms, SPEC.flops_per_sm, bw)
    d_fast = kernel.duration(SPEC.sms, SPEC.flops_per_sm, 2 * bw)
    assert d_fast <= d_slow + 1e-12


@given(kernels())
@settings(max_examples=30, deadline=None)
def test_simulated_duration_matches_closed_form(kernel):
    """A kernel alone on the device runs for exactly its roofline time."""
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    client = gpu.timeshare_client("c")
    done = client.launch(kernel)
    env.run(until=done)
    expected = kernel.duration(SPEC.sms, SPEC.flops_per_sm, SPEC.bandwidth)
    assert env.now == pytest.approx(expected, rel=1e-5)


@given(st.lists(kernels(), min_size=2, max_size=6))
@settings(max_examples=25, deadline=None)
def test_mps_never_slower_than_serial(kernel_list):
    """Concurrent MPS execution of n kernels never exceeds their serial
    execution time (work conservation of spatial sharing)."""
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    dones = [daemon.client(f"c{i}").launch(k)
             for i, k in enumerate(kernel_list)]
    env.run(until=env.all_of(dones))
    serial = sum(k.duration(SPEC.sms, SPEC.flops_per_sm, SPEC.bandwidth)
                 for k in kernel_list)
    assert env.now <= serial * (1 + 1e-6)


@given(st.lists(kernels(), min_size=1, max_size=5))
@settings(max_examples=25, deadline=None)
def test_sm_utilization_bounded(kernel_list):
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    dones = [daemon.client(f"c{i}").launch(k)
             for i, k in enumerate(kernel_list)]
    env.run(until=env.all_of(dones))
    assert 0.0 <= gpu.sm_utilization() <= 1.0 + 1e-9


# ------------------------------------------------------------------- MIG

@given(st.lists(st.sampled_from([p.name for p in A100_80GB.mig_profiles]),
                min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_mig_placement_never_exceeds_slices(profile_names):
    env = Environment()
    gpu = SimulatedGPU(env, A100_80GB)
    mig = MigManager(gpu)
    env.run(until=env.process(mig.enable()))
    for name in profile_names:
        try:
            mig.create_instance(name)
        except RuntimeError:
            pass
        assert mig.used_compute_slices <= A100_80GB.mig_compute_slices
        assert mig.used_memory_slices <= A100_80GB.mig_memory_slices
    # Aggregate SMs and bandwidth of all instances fit the device.
    total_sms = sum(i.sm_count for i in mig.instances)
    total_bw = sum(i.group.bw_cap for i in mig.instances)
    assert total_sms <= A100_80GB.sms
    assert total_bw <= A100_80GB.bandwidth + 1e-6
