"""Property tests: an aborted resize leaves no trace.

The rollback contract of :class:`ResizeTransaction` (and the MIG
global-teardown abort path) is that a drain-watchdog abort restores the
fleet's control plane *bit for bit* — compared via
``AutoscaledServingFleet.control_state()`` serialised to JSON — so an
aborted resize is indistinguishable from one never attempted, and twin
runs of the same aborted scenario stay bit-identical.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faas import FaultEvent
from repro.partition.reconfig import ReconfigurationPlanner
from repro.sim import Environment
from repro.workloads import (
    AutoscaledServingFleet,
    FleetAutoscaler,
    FleetFunction,
    OpenLoopClient,
    iter_poisson_trace,
)


def build(n_replicas, pct, seed, weight_cache=True):
    env = Environment()
    functions = [
        FleetFunction("hot", n_replicas, slo_seconds=6.0, initial_pct=pct,
                      n_tokens=8),
        FleetFunction("cold", n_replicas, slo_seconds=6.0, initial_pct=pct,
                      n_tokens=8),
    ]
    fleet = AutoscaledServingFleet(env, functions, seed=seed,
                                   weight_cache=weight_cache)
    return env, fleet


def state_json(fleet):
    return json.dumps(fleet.control_state(), sort_keys=True)


@st.composite
def abort_cases(draw):
    return {
        "n_replicas": draw(st.integers(min_value=1, max_value=3)),
        "pct": draw(st.integers(min_value=5, max_value=30)),
        "target": draw(st.integers(min_value=0, max_value=7)),
        "new_pct": draw(st.integers(min_value=1, max_value=60)),
        "watchdog": draw(st.floats(min_value=1.0, max_value=30.0)),
        "warmup": draw(st.integers(min_value=0, max_value=6)),
        "weight_cache": draw(st.booleans()),
        "seed": draw(st.integers(min_value=0, max_value=2**16)),
    }


def run_aborted_mps(case):
    env, fleet = build(case["n_replicas"], case["pct"], case["seed"],
                       case["weight_cache"])
    planner = ReconfigurationPlanner(fleet.device.spec)
    for _ in range(case["warmup"]):
        fleet.submit("hot")
    env.run(until=1.0)
    # The same modulo arithmetic the fault handler uses picks the victim.
    pairs = [(name, r) for name, g in fleet.groups.items()
             for r in g.replicas]
    name, replica = pairs[case["target"] % len(pairs)]
    fleet.apply_fault(FaultEvent(time=env.now, kind="resize_stuck",
                                 target=case["target"], duration=0.0))
    before = state_json(fleet)
    new_pct = case["new_pct"]
    if new_pct == fleet.groups[name].pct_by_replica[replica.index]:
        new_pct += 1  # a resize must actually change something
    proc = env.process(fleet.resize_replica(
        name, replica, new_pct, planner,
        watchdog_seconds=case["watchdog"]))
    result = env.run(until=proc)
    env.run()  # let any queued warmup traffic finish
    return before, state_json(fleet), result, fleet


@given(abort_cases())
@settings(max_examples=15, deadline=None)
def test_aborted_mps_resize_is_invisible(case):
    before, after, result, fleet = run_aborted_mps(case)
    assert result["aborted"] is True
    assert result["rollback_verified"] is True
    assert after == before
    # Exactly-once survived the pause/resume around the abort.
    reports = fleet.report(fleet.env.now)
    assert sum(r["lost"] for r in reports.values()) == 0


@given(abort_cases())
@settings(max_examples=8, deadline=None)
def test_aborted_mps_resize_twin_runs_are_bit_identical(case):
    def payload():
        before, after, result, fleet = run_aborted_mps(case)
        return json.dumps({"before": before, "after": after,
                           "result": result,
                           "events": fleet.env.events_processed},
                          sort_keys=True)

    assert payload() == payload()


def run_mig_abort(seed, rate):
    env, fleet = build(2, 20, seed)
    # Hold every drain until further notice: the global MIG teardown can
    # only end in its watchdog abort.
    for target in range(4):
        fleet.apply_fault(FaultEvent(time=0.0, kind="resize_stuck",
                                     target=target, duration=0.0))
    before = state_json(fleet)
    scaler = FleetAutoscaler(fleet, technique="mig", interval_seconds=20.0,
                             cooldown_seconds=0.0,
                             resize_watchdog_seconds=5.0,
                             resize_max_retries=1,
                             resize_breaker_threshold=3)
    scaler.start()
    group = fleet.groups["hot"]
    client = OpenLoopClient(env, group.router, n_tokens=group.n_tokens,
                            streaming=True,
                            arrivals=iter_poisson_trace(rate, 100.0,
                                                        seed=seed + 1))
    env.run(until=client.done)
    scaler.stop()
    return before, state_json(fleet), scaler.summary(), fleet


@given(seed=st.integers(min_value=0, max_value=50),
       rate=st.floats(min_value=0.5, max_value=1.2))
@settings(max_examples=8, deadline=None)
def test_aborted_mig_teardown_is_invisible(seed, rate):
    before, after, summary, fleet = run_mig_abort(seed, rate)
    if summary["resize_aborts"] == 0:
        return  # demand never warranted a repartition this draw
    assert summary["resize_rollbacks"] == summary["resize_aborts"]
    assert summary["reconfigurations"] == 0  # nothing ever committed
    assert after == before
    reports = fleet.report(fleet.env.now)
    assert sum(r["lost"] for r in reports.values()) == 0


def test_aborted_mig_teardown_twin_runs_are_bit_identical():
    def payload():
        before, after, summary, fleet = run_mig_abort(seed=7, rate=1.0)
        return json.dumps({"before": before, "after": after,
                           "summary": summary,
                           "events": fleet.env.events_processed},
                          sort_keys=True)

    first = payload()
    assert first == payload()
    assert json.loads(first)["summary"]["resize_aborts"] >= 1
