"""Twin-run determinism of the chaos-hardened serving plane.

The resilience bench gate is only meaningful if a rerun with the same
seed reproduces the same numbers bit for bit.  These tests run the
full stack twice — fleet, router (retries/hedges/breakers), chaos
controller, open-loop client — under every sharing mode and a fault
plan mixing all classes, and require the *entire* report (fault times,
victims, latency quantiles, event counts, final sim clock) to compare
equal.
"""

import pytest

from repro.bench import canonical_fault_plan, run_resilient_fleet

MODES = ("mig-mps", "mps", "timeshare")

N_REQUESTS = 120
RATE_RPS = 2.0


def twin(mode, seed):
    horizon = N_REQUESTS / RATE_RPS
    plan = canonical_fault_plan(horizon, seed=seed)
    return run_resilient_fleet(mode, N_REQUESTS, rate_rps=RATE_RPS,
                               seed=seed, plan=plan, n_partitions=2,
                               servers_per_partition=3, n_tokens=8)


@pytest.mark.parametrize("mode", MODES)
def test_twin_runs_are_bit_identical(mode):
    a = twin(mode, seed=11)
    b = twin(mode, seed=11)
    # Dict equality covers fault counters, ecc (domain, killed, resident)
    # tuples, retry/hedge/breaker counts, and every latency statistic.
    assert a == b
    assert a["sim_seconds"] == b["sim_seconds"]
    assert a["events"] == b["events"]
    # The run exercised the machinery it claims to pin down.
    assert a["faults_applied"] > 0
    assert a["offered"] == N_REQUESTS
    assert a["lost"] == 0


@pytest.mark.parametrize("mode", MODES)
def test_different_seeds_diverge(mode):
    """Determinism must come from the seed, not from the plan being
    ignored — distinct seeds must visibly change the trajectory."""
    a = twin(mode, seed=11)
    b = twin(mode, seed=12)
    assert a != b


def test_fault_plan_replays_identically_across_modes():
    """The same plan drives every topology: fault times and kinds are
    mode-independent (victims and blast radius are not)."""
    horizon = N_REQUESTS / RATE_RPS
    plans = [canonical_fault_plan(horizon, seed=3) for _ in MODES]
    assert plans[0] == plans[1] == plans[2]
