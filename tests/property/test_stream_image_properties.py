"""Property-based tests for CUDA streams and the image cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import A100_40GB, CudaStream, Kernel, MpsControlDaemon, SimulatedGPU
from repro.faas.images import ContainerImage, ImageRegistry, NodeImageCache
from repro.sim import Environment

SPEC = A100_40GB

durations = st.floats(min_value=1e-4, max_value=2.0)


@given(st.lists(durations, min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_stream_completions_are_ordered(kernel_seconds):
    """Kernels on one stream complete in launch order, and the last
    completion equals the serial sum."""
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    stream = CudaStream(daemon.client("c"))
    finishes = []
    for seconds in kernel_seconds:
        k = Kernel(flops=SPEC.fp32_flops * seconds, bytes_moved=0.0,
                   max_sms=SPEC.sms, efficiency=1.0)
        done = stream.launch(k)
        done.callbacks.append(lambda ev: finishes.append(env.now))
    env.run(until=stream.synchronize())
    assert finishes == sorted(finishes)
    assert len(finishes) == len(kernel_seconds)
    assert env.now == pytest.approx(sum(kernel_seconds), rel=1e-4)


@given(st.lists(durations, min_size=1, max_size=6),
       st.lists(durations, min_size=1, max_size=6))
@settings(max_examples=30, deadline=None)
def test_two_streams_never_slower_than_serial_never_faster_than_max(
        work_a, work_b):
    """Concurrent streams: makespan in [max(serial_a, serial_b),
    serial_a + serial_b]."""
    env = Environment()
    gpu = SimulatedGPU(env, SPEC)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    for name, work in (("a", work_a), ("b", work_b)):
        stream = CudaStream(daemon.client(name))
        for seconds in work:
            stream.launch(Kernel(flops=SPEC.fp32_flops * seconds,
                                 bytes_moved=0.0, max_sms=SPEC.sms,
                                 efficiency=1.0))
        last = stream.synchronize()
    env.run()
    serial_a, serial_b = sum(work_a), sum(work_b)
    assert env.now >= max(serial_a, serial_b) - 1e-9
    assert env.now <= serial_a + serial_b + 1e-9


@st.composite
def image_sets(draw):
    n_images = draw(st.integers(min_value=1, max_value=4))
    images = [
        ContainerImage(f"img{i}",
                       draw(st.floats(min_value=1e6, max_value=5e9)),
                       draw(st.floats(min_value=0.0, max_value=5.0)))
        for i in range(n_images)
    ]
    requests = draw(st.lists(
        st.integers(min_value=0, max_value=n_images - 1),
        min_size=1, max_size=12))
    return images, requests


@given(image_sets())
@settings(max_examples=40, deadline=None)
def test_image_cache_pulls_each_image_at_most_once(case):
    """However requests interleave, each image downloads exactly once."""
    images, requests = case
    env = Environment()
    cache = NodeImageCache(env)
    registry = ImageRegistry(pull_bandwidth_bytes_per_s=500e6)
    for image in images:
        registry.push(image)

    def worker(env, image, delay):
        yield env.timeout(delay)
        yield from cache.ensure(image, registry)

    procs = [
        env.process(worker(env, images[idx], 0.1 * i))
        for i, idx in enumerate(requests)
    ]
    env.run(until=env.all_of(procs))
    distinct = len({images[idx].name for idx in requests})
    assert cache.pulls == distinct
    assert registry.pulls_served == distinct
    assert cache.hits == len(requests) - distinct
