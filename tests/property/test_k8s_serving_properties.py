"""Property-based tests for the k8s scheduler and the serving loop."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faas import ComputeNode
from repro.gpu import A100_80GB, MpsControlDaemon, SimulatedGPU
from repro.k8s import Cluster, Pod, PodPhase, ResourceSpec
from repro.sim import Environment
from repro.workloads import LLAMA2_7B, InferenceRuntime, InferenceServer, LlamaInference

FP16 = InferenceRuntime(dtype_bytes=2)


@st.composite
def pod_sets(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    return [
        (draw(st.floats(min_value=0.5, max_value=4.0)),   # cpu request
         draw(st.floats(min_value=0.5, max_value=20.0)))  # duration
        for _ in range(n)
    ]


@given(pod_sets(), st.integers(min_value=2, max_value=8),
       st.integers(min_value=1, max_value=3))
@settings(max_examples=40, deadline=None)
def test_scheduler_never_exceeds_allocatable(pods_spec, cores, n_nodes):
    env = Environment()
    nodes = [ComputeNode(env, cores=cores) for _ in range(n_nodes)]
    cluster = Cluster(env, nodes)
    pods = [
        cluster.submit(Pod(f"p{i}", ResourceSpec(cpu=min(cpu, cores)),
                           duration=duration))
        for i, (cpu, duration) in enumerate(pods_spec)
    ]
    cluster.run_until_done()
    assert all(p.phase is PodPhase.SUCCEEDED for p in pods)
    # Reconstruct per-node concurrent usage from the pod spans.
    for node in cluster.nodes:
        events = []
        for pod in pods:
            if pod.node_name != node.name:
                continue
            events.append((pod.start_time, pod.requests.cpu))
            events.append((pod.end_time, -pod.requests.cpu))
        events.sort()
        usage = 0.0
        for _t, delta in events:
            usage += delta
            assert usage <= node.allocatable.cpu + 1e-6
    # And capacity is restored at the end.
    for node in cluster.nodes:
        assert node.free.cpu == pytest.approx(node.allocatable.cpu)


@given(pod_sets())
@settings(max_examples=30, deadline=None)
def test_every_feasible_pod_eventually_runs(pods_spec):
    """No pod starves: FIFO retry schedules everything that can fit."""
    env = Environment()
    node = ComputeNode(env, cores=4)
    cluster = Cluster(env, [node])
    pods = [
        cluster.submit(Pod(f"p{i}", ResourceSpec(cpu=min(cpu, 4.0)),
                           duration=duration))
        for i, (cpu, duration) in enumerate(pods_spec)
    ]
    cluster.run_until_done()
    assert not cluster.pending
    assert all(p.wall_seconds == pytest.approx(d, rel=1e-6)
               for p, (_c, d) in zip(pods, pods_spec))


@st.composite
def request_batches(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    return [draw(st.integers(min_value=1, max_value=10)) for _ in range(n)]


@given(request_batches(), st.integers(min_value=1, max_value=6))
@settings(max_examples=30, deadline=None)
def test_serving_loses_no_request(token_counts, max_batch):
    """Every submitted request completes exactly once, whatever the
    batching configuration."""
    env = Environment()
    gpu = SimulatedGPU(env, A100_80GB)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    server = InferenceServer(env, daemon.client("s"),
                             LlamaInference(LLAMA2_7B, FP16),
                             max_batch_size=max_batch, batch_timeout=0.02)
    requests = [server.submit(n) for n in token_counts]
    env.run(until=env.all_of([r.done for r in requests]))
    assert len(server.completed) == len(requests)
    assert {r.rid for r in server.completed} == {r.rid for r in requests}
    for request in requests:
        assert request.latency is not None and request.latency > 0
    assert sum(server.batch_sizes) == len(requests)
    assert max(server.batch_sizes) <= max_batch


@given(request_batches(), st.integers(min_value=1, max_value=6))
@settings(max_examples=20, deadline=None)
def test_serving_latency_dominates_isolated_floor(token_counts, max_batch):
    """No request finishes faster than its isolated decode floor."""
    env = Environment()
    gpu = SimulatedGPU(env, A100_80GB)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    llm = LlamaInference(LLAMA2_7B, FP16)
    server = InferenceServer(env, daemon.client("s"), llm,
                             max_batch_size=max_batch, batch_timeout=0.02)
    requests = [server.submit(n) for n in token_counts]
    env.run(until=env.all_of([r.done for r in requests]))
    spec = A100_80GB
    for request, n in zip(requests, token_counts):
        floor = n * (llm.decode_kernel().duration(
            spec.sms, spec.flops_per_sm, spec.bandwidth)
            + llm.host_seconds_per_token)
        assert request.latency >= floor - 1e-9
