"""Property-based tests for the cluster packers.

The invariants the bench's 500-GPU contest gates on, checked across
randomly drawn (but seeded, via hypothesis) demand mixes and fleets:

- neither packer ever over-commits a device in any dimension, serves a
  placed function below its rate, or violates a placed SLO
  (``ClusterPlacement.validate`` recomputes all of it from scratch);
- the repacking optimiser never uses more GPUs than greedy FFD, at an
  identical rejection set;
- packing is a pure function of its inputs: twin runs produce equal
  canonical payloads.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    FunctionDemand,
    LatencyCurve,
    greedy_pack,
    optimize_pack,
)
from repro.gpu import A100_40GB, A100_80GB, H100_80GB, V100_32GB
from repro.gpu.specs import GB


@st.composite
def contest_cases(draw):
    inventory = []
    for spec in (A100_80GB, A100_40GB, H100_80GB, V100_32GB):
        count = draw(st.integers(min_value=0, max_value=12))
        if count:
            inventory.append((spec, count))
    if not inventory:
        inventory = [(A100_80GB, 4)]
    n = draw(st.integers(min_value=1, max_value=8))
    demands = []
    for i in range(n):
        work = draw(st.floats(min_value=0.2, max_value=8.0))
        serial = draw(st.floats(min_value=0.005, max_value=0.1))
        saturation = draw(st.integers(min_value=4, max_value=100))
        floor = serial + work / saturation
        slo = floor * draw(st.floats(min_value=1.05, max_value=6.0))
        rate = draw(st.floats(min_value=0.0, max_value=40.0))
        model_gb = draw(st.floats(min_value=0.1, max_value=60.0))
        demands.append(FunctionDemand(
            name=f"fn{i}", slo_seconds=slo, rate_rps=rate,
            curve=LatencyCurve(work=work, serial=serial,
                               saturation=saturation),
            model_bytes=model_gb * GB))
    return demands, inventory


@given(contest_cases())
@settings(max_examples=25, deadline=None)
def test_packers_never_overcommit(case):
    demands, inventory = case
    for pack in (greedy_pack, optimize_pack):
        placement = pack(demands, inventory)
        placement.validate()  # over-commit, capacity, SLO, rejections
        # Placed rate is covered; rejected functions have a reason.
        for d in demands:
            if d.name in placement.rejected:
                assert placement.rejected[d.name]
            else:
                assert placement.capacity_of(d.name) + 1e-9 >= d.rate_rps


@given(contest_cases())
@settings(max_examples=25, deadline=None)
def test_optimizer_dominates_greedy_on_gpu_count(case):
    demands, inventory = case
    greedy = greedy_pack(demands, inventory)
    optimized = optimize_pack(demands, inventory)
    # The oracle-infeasible set is admission, not packing: identical.
    oracle_rejects = {n for n, r in greedy.rejected.items()
                      if "capacity" not in r}
    assert oracle_rejects == {n for n, r in optimized.rejected.items()
                              if "capacity" not in r}
    if greedy.rejected == optimized.rejected:
        assert optimized.gpus_used <= greedy.gpus_used


@given(contest_cases())
@settings(max_examples=15, deadline=None)
def test_packing_is_deterministic(case):
    demands, inventory = case
    assert optimize_pack(demands, inventory).payload() \
        == optimize_pack(demands, inventory).payload()
    assert greedy_pack(demands, inventory).payload() \
        == greedy_pack(demands, inventory).payload()


@given(contest_cases())
@settings(max_examples=20, deadline=None)
def test_mps_caps_bounded_on_every_shared_device(case):
    demands, inventory = case
    placement = optimize_pack(demands, inventory)
    for per_gpu in placement.mps_caps().values():
        assert per_gpu["weighted_sum"] <= 100
        assert all(1 <= pct <= 100 for pct in per_gpu["caps"].values())
