"""Property-based tests for the autoscaler's sizing arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faas import ComputeNode
from repro.gpu import A100_40GB
from repro.partition import ManagedFunction, PartitionAutoscaler
from repro.sim import Environment


@st.composite
def scaler_cases(draw):
    n_functions = draw(st.integers(min_value=1, max_value=4))
    functions = []
    for i in range(n_functions):
        serial = draw(st.floats(min_value=0.01, max_value=0.5))
        work = draw(st.floats(min_value=0.1, max_value=20.0))
        saturation = draw(st.integers(min_value=2, max_value=108))
        slo = draw(st.floats(min_value=0.05, max_value=5.0))
        demand = draw(st.floats(min_value=0.0, max_value=20.0))
        functions.append((serial, work, saturation, slo, demand))
    return functions


@given(scaler_cases())
@settings(max_examples=60, deadline=None)
def test_desired_percentages_always_valid(case):
    env = Environment()
    node = ComputeNode(env, cores=4, gpu_specs=[A100_40GB])
    node.start_mps()
    functions = []
    for i, (serial, work, saturation, slo, demand) in enumerate(case):
        client = node.mps_daemons[0].client(f"fn{i}",
                                            active_thread_percentage=25)
        fn = ManagedFunction(
            name=f"fn{i}", client=client,
            latency_fn=lambda s, w=work, c=saturation, b=serial:
                w / min(s, c) + b,
            slo_seconds=slo, demand_rps=demand)
        functions.append(fn)
    scaler = PartitionAutoscaler(node, functions)
    desired = scaler.desired_percentages()
    assert set(desired) == {f.name for f in functions}
    for pct in desired.values():
        assert scaler.min_percentage <= pct <= 100
    # Requirements honoured: the raw SM needs never exceed the device
    # before normalisation, and normalisation never inflates shares.
    raw = {f.name: scaler.required_sms(f) for f in functions}
    for fn in functions:
        assert 1 <= raw[fn.name] <= A100_40GB.sms


@given(scaler_cases())
@settings(max_examples=40, deadline=None)
def test_required_sms_monotone_in_demand(case):
    env = Environment()
    node = ComputeNode(env, cores=4, gpu_specs=[A100_40GB])
    node.start_mps()
    serial, work, saturation, slo, _ = case[0]
    client = node.mps_daemons[0].client("fn", active_thread_percentage=50)
    fn = ManagedFunction(
        name="fn", client=client,
        latency_fn=lambda s: work / min(s, saturation) + serial,
        slo_seconds=slo)
    scaler = PartitionAutoscaler(node, [fn])
    previous = 0
    for demand in (0.0, 0.5, 1.0, 2.0, 4.0, 8.0):
        fn.demand_rps = demand
        needed = scaler.required_sms(fn)
        assert needed >= previous or needed == A100_40GB.sms
        previous = min(needed, previous) if needed == A100_40GB.sms \
            else needed
