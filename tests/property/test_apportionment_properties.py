"""Property-based tests for the largest-remainder MPS apportionment.

The bugfix these pin: per-function ``ceil`` rounding let co-resident
caps (weighted by replica counts) sum past 100%, oversubscribing the
GPU.  The repaired :func:`~repro.partition.autoscaler.
scaled_percentages` must keep the replica-weighted sum bounded by 100
for *every* demand vector, preserve the keep-warm floor, and stay
monotone in any one function's demand.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import A100_40GB
from repro.partition import scaled_percentages


@st.composite
def apportionment_cases(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    names = [f"fn{i}" for i in range(n)]
    needed = {name: draw(st.integers(min_value=0, max_value=400))
              for name in names}
    counts = {name: draw(st.integers(min_value=1, max_value=8))
              for name in names}
    # Stay within the 100-replica feasibility bound.
    while sum(counts.values()) > 100:
        counts = {name: max(1, c // 2) for name, c in counts.items()}
    expand = draw(st.booleans())
    min_pct = draw(st.integers(min_value=1, max_value=20))
    return needed, counts, expand, min_pct


def weighted_sum(pcts, counts):
    return sum(pcts[name] * counts[name] for name in pcts)


@given(apportionment_cases())
@settings(max_examples=200, deadline=None)
def test_weighted_sum_never_exceeds_100(case):
    needed, counts, expand, min_pct = case
    pcts = scaled_percentages(A100_40GB, needed, counts,
                              min_percentage=min_pct, expand=expand)
    assert set(pcts) == set(needed)
    assert weighted_sum(pcts, counts) <= 100


@given(apportionment_cases())
@settings(max_examples=200, deadline=None)
def test_floor_and_range_preserved(case):
    needed, counts, expand, min_pct = case
    pcts = scaled_percentages(A100_40GB, needed, counts,
                              min_percentage=min_pct, expand=expand)
    replicas = sum(counts.values())
    floor = max(1, min(min_pct, 100 // replicas))
    for pct in pcts.values():
        assert floor <= pct <= 100


@given(apportionment_cases(), st.integers(min_value=1, max_value=200))
@settings(max_examples=150, deadline=None)
def test_monotone_in_own_demand(case, bump):
    """Asking for more SMs never shrinks your own cap."""
    needed, counts, expand, min_pct = case
    name = sorted(needed)[0]
    before = scaled_percentages(A100_40GB, needed, counts,
                                min_percentage=min_pct, expand=expand)
    grown = {**needed, name: needed[name] + bump}
    after = scaled_percentages(A100_40GB, grown, counts,
                               min_percentage=min_pct, expand=expand)
    assert after[name] + 1 >= before[name]  # +-1 integerisation slack
    assert weighted_sum(after, counts) <= 100


@given(apportionment_cases())
@settings(max_examples=100, deadline=None)
def test_expand_reaches_100_when_granularity_allows(case):
    """With expand=True and any singleton-replica function present, the
    apportionment is work-conserving: +1 to a singleton costs exactly
    one weighted point, so the sum lands on 100 exactly."""
    needed, counts, _, min_pct = case
    if not any(c == 1 for c in counts.values()):
        counts = {**counts, sorted(counts)[0]: 1}
    if sum(counts.values()) > 100:
        return
    pcts = scaled_percentages(A100_40GB, needed, counts,
                              min_percentage=min_pct, expand=True)
    if any(pcts[n] < 100 for n, c in counts.items() if c == 1):
        assert weighted_sum(pcts, counts) == 100
