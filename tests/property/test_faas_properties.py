"""Property-based tests for the FaaS layer's scheduling invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faas import (
    ColdStartModel,
    Config,
    DataFlowKernel,
    HighThroughputExecutor,
    python_app,
)

NO_COLD = ColdStartModel(function_init_seconds=0.0, gpu_context_seconds=0.0)


def make_dfk(workers, retries=0):
    config = Config(
        executors=[HighThroughputExecutor(label="cpu", max_workers=workers,
                                          cold_start=NO_COLD)],
        retries=retries,
    )
    return DataFlowKernel(config)


@st.composite
def dags(draw):
    """A random DAG: each task depends on a subset of earlier tasks."""
    n = draw(st.integers(min_value=1, max_value=12))
    deps = []
    for i in range(n):
        if i == 0:
            deps.append([])
        else:
            deps.append(sorted(draw(st.sets(
                st.integers(min_value=0, max_value=i - 1), max_size=3))))
    walltimes = [draw(st.floats(min_value=0.1, max_value=5.0))
                 for _ in range(n)]
    return deps, walltimes


@given(dags(), st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_tasks_never_start_before_dependencies_finish(dag, workers):
    deps, walltimes = dag
    dfk = make_dfk(workers)
    spans = {}

    def body(i, *_args):
        return i

    futures = []
    for i, (dep_ids, wt) in enumerate(zip(deps, walltimes)):
        app = python_app(lambda i=i, *a: body(i), walltime=wt, dfk=dfk)
        futures.append(app(*[futures[d] for d in dep_ids]))
    dfk.run()
    for i, fut in enumerate(futures):
        assert fut.result() is not None or True
        record = fut.task
        spans[i] = (record.start_time, record.end_time)
    for i, dep_ids in enumerate(deps):
        for d in dep_ids:
            assert spans[i][0] >= spans[d][1] - 1e-9, (i, d)


@given(dags(), st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_worker_capacity_never_exceeded(dag, workers):
    """At no simulated instant do more than ``workers`` tasks run."""
    deps, walltimes = dag
    dfk = make_dfk(workers)
    futures = []
    for i, (dep_ids, wt) in enumerate(zip(deps, walltimes)):
        app = python_app(lambda *a: None, walltime=wt, dfk=dfk)
        futures.append(app(*[futures[d] for d in dep_ids]))
    dfk.run()
    events = []
    for fut in futures:
        record = fut.task
        events.append((record.start_time, 1))
        events.append((record.end_time, -1))
    events.sort()
    concurrent = 0
    for _t, delta in events:
        concurrent += delta
        assert concurrent <= workers


@given(st.integers(min_value=1, max_value=20),
       st.integers(min_value=1, max_value=6),
       st.floats(min_value=0.1, max_value=5.0))
def test_makespan_bounds(n_tasks, workers, walltime):
    """Independent equal tasks: makespan = ceil(n/workers) x walltime."""
    dfk = make_dfk(workers)
    app = python_app(lambda: None, walltime=walltime, dfk=dfk)
    futures = [app() for _ in range(n_tasks)]
    dfk.wait(futures)
    waves = -(-n_tasks // workers)
    assert dfk.env.now == pytest.approx(waves * walltime, rel=1e-9)


@given(st.integers(min_value=0, max_value=4),
       st.integers(min_value=0, max_value=6))
@settings(max_examples=40, deadline=None)
def test_retry_budget_respected(retries, failures_before_success):
    dfk = make_dfk(workers=1, retries=retries)
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) <= failures_before_success:
            raise RuntimeError("flaky")
        return "ok"

    fut = python_app(flaky, dfk=dfk)()
    dfk.run()
    if failures_before_success <= retries:
        assert fut.result() == "ok"
        assert len(attempts) == failures_before_success + 1
    else:
        assert isinstance(fut.exception(), RuntimeError)
        assert len(attempts) == retries + 1
