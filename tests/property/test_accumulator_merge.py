"""Merge-by-replay invariants for the streaming accumulators.

The sharded engine never merges accumulator *state* — P² markers,
Kahan compensation, and reservoir coin flips are order-sensitive, so no
O(1) state merge is bit-exact.  Instead it merges the per-cell event
streams into one canonical order and replays them through fresh
accumulators.  These properties pin the two facts that design rests on:

- the canonical merge is invariant in how the events were sharded —
  any assignment of events to cells, any epoch fragmentation of each
  cell's stream, any presentation order of the fragments;
- replaying the merged stream through an accumulator is bit-identical
  to feeding that accumulator the canonical sequence directly, for
  every streaming accumulator in the telemetry layer (P² quantiles,
  Kahan mean, reservoir sample, windowed rates).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.streaming import (
    P2Quantile,
    ReservoirSample,
    StreamingLatencyStats,
    WindowedRates,
    merge_event_streams,
    replay_latency_stats,
)

finite_time = st.floats(min_value=0.0, max_value=100.0,
                        allow_nan=False, allow_infinity=False)
finite_latency = st.floats(min_value=0.0, max_value=10.0,
                           allow_nan=False, allow_infinity=False)


@st.composite
def sharded_streams(draw):
    """Events assigned to cells, each cell's stream time-ordered.

    Returns ``(cells, fragments)`` where ``cells`` is the per-cell
    stream dict and ``fragments`` is an epoch-fragmented, interleaved
    presentation of the same streams (fragment order within a cell
    preserved — exactly what successive barrier drains produce).
    """
    n_cells = draw(st.integers(min_value=1, max_value=5))
    events = draw(st.lists(st.tuples(finite_time, finite_latency),
                           max_size=50))
    cells: dict[int, list] = {i: [] for i in range(n_cells)}
    for ev in events:
        cells[draw(st.integers(0, n_cells - 1))].append(ev)
    for stream in cells.values():
        stream.sort(key=lambda e: e[0])

    # Fragment each cell's stream at drawn cut points (epoch drains),
    # then interleave the fragments across cells without reordering any
    # one cell's fragments.
    queues = {}
    for cid, stream in cells.items():
        cuts = sorted(draw(st.lists(st.integers(0, len(stream)),
                                    max_size=3)))
        frags, lo = [], 0
        for hi in cuts + [len(stream)]:
            frags.append(stream[lo:hi])
            lo = hi
        queues[cid] = frags
    fragments = []
    while any(queues.values()):
        ready = sorted(cid for cid, q in queues.items() if q)
        cid = ready[draw(st.integers(0, len(ready) - 1))]
        fragments.append((cid, queues[cid].pop(0)))
    return cells, fragments


@given(sharded_streams())
@settings(max_examples=60, deadline=None)
def test_merge_invariant_under_fragmentation_and_order(streams):
    cells, fragments = streams
    canonical = merge_event_streams(sorted(cells.items()))
    assert merge_event_streams(fragments) == canonical


@given(sharded_streams())
@settings(max_examples=60, deadline=None)
def test_replay_equals_single_stream_latency_stats(streams):
    cells, fragments = streams
    merged = merge_event_streams(fragments)
    single = StreamingLatencyStats()
    for _t, latency in merge_event_streams(sorted(cells.items())):
        single.add(latency)
    replayed = replay_latency_stats(merged)
    assert replayed.count == single.count
    if single.count:
        assert replayed.stats() == single.stats()


@given(sharded_streams())
@settings(max_examples=60, deadline=None)
def test_replay_is_bit_identical_for_every_accumulator(streams):
    """P², reservoir, windowed, and Kahan state all match exactly when
    fed the merged stream of *any* sharding vs the canonical sequence."""
    cells, fragments = streams
    canonical = merge_event_streams(sorted(cells.items()))
    merged = merge_event_streams(fragments)

    def feed(events):
        p2 = P2Quantile(0.9)
        res = ReservoirSample(8, seed=7)
        win = WindowedRates(window=10.0)
        stats = StreamingLatencyStats()
        for t, latency in events:
            p2.add(latency)
            res.add(latency)
            win.add(t)
            stats.add(latency)
        return (p2.count, p2.value if p2.count else None,
                res.count, res.sample, win.count,
                win.peak_rate, win.recent_rates(),
                stats.stats() if stats.count else None)

    assert feed(merged) == feed(canonical)


@given(st.lists(finite_latency, max_size=80))
@settings(max_examples=80, deadline=None)
def test_add_many_is_bit_identical_to_repeated_add(latencies):
    """The vectorised bulk path the replay uses == the scalar path."""
    one = StreamingLatencyStats()
    for x in latencies:
        one.add(x)
    bulk = StreamingLatencyStats()
    bulk.add_many(latencies)
    assert bulk.count == one.count
    if one.count:
        assert bulk.stats() == one.stats()


def test_cross_cell_ties_order_by_cell_id():
    """Events at the same timestamp merge in cell-id order, whatever
    order the cells were presented in."""
    streams = [(2, [(5.0, 2.0)]), (0, [(5.0, 0.0)]), (1, [(5.0, 1.0)])]
    merged = merge_event_streams(streams)
    assert [ev[1] for ev in merged] == [0.0, 1.0, 2.0]


def test_merge_of_nothing_is_empty():
    assert merge_event_streams([]) == []
    assert merge_event_streams([(0, []), (1, [])]) == []
    assert replay_latency_stats([]).count == 0
