"""Property-based tests for the simulation kernel (DESIGN.md §7)."""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, FluidPool, FluidTask, Resource, Store

delays = st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                   allow_infinity=False)
works = st.floats(min_value=0.01, max_value=1e3, allow_nan=False,
                  allow_infinity=False)


@given(st.lists(delays, min_size=1, max_size=50))
def test_events_fire_in_nondecreasing_time_order(delay_list):
    env = Environment()
    fired = []
    for d in delay_list:
        env.timeout(d).callbacks.append(lambda ev, d=d: fired.append(env.now))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delay_list)
    assert env.now == pytest.approx(max(delay_list))


@given(st.lists(st.tuples(delays, delays), min_size=1, max_size=20))
def test_clock_monotone_under_process_interleaving(specs):
    env = Environment()
    observed = []

    def proc(env, d1, d2):
        yield env.timeout(d1)
        observed.append(env.now)
        yield env.timeout(d2)
        observed.append(env.now)

    for d1, d2 in specs:
        env.process(proc(env, d1, d2))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == 2 * len(specs)


@given(st.lists(works, min_size=1, max_size=20),
       st.floats(min_value=0.1, max_value=100.0))
def test_fluid_pool_conserves_work(work_list, capacity):
    env = Environment()

    def equal(tasks):
        share = capacity / len(tasks)
        for t in tasks:
            t.rate = share

    pool = FluidPool(env, equal)
    tasks = [FluidTask(env, work=w) for w in work_list]
    for t in tasks:
        pool.add(t)
    env.run()
    assert all(t.done.triggered for t in tasks)
    assert pool.work_drained == pytest.approx(sum(work_list), rel=1e-6)
    # Total time equals total work over capacity (single shared resource,
    # work-conserving equal split).
    assert env.now == pytest.approx(sum(work_list) / capacity, rel=1e-6)


@given(st.lists(st.tuples(delays, works), min_size=1, max_size=15),
       st.floats(min_value=0.5, max_value=50.0))
@settings(max_examples=50)
def test_fluid_pool_staggered_arrivals_finish_no_earlier_than_ideal(
        arrivals, capacity):
    """No task finishes before its isolated best case, and the pool
    drains by (last arrival + total work / capacity)."""
    env = Environment()

    def equal(tasks):
        share = capacity / len(tasks)
        for t in tasks:
            t.rate = share

    pool = FluidPool(env, equal)
    finish = {}

    def submit(env, delay, work, key):
        yield env.timeout(delay)
        task = FluidTask(env, work=work)
        pool.add(task)
        yield task.done
        finish[key] = env.now

    for i, (delay, work) in enumerate(arrivals):
        env.process(submit(env, delay, work, i))
    env.run()
    for i, (delay, work) in enumerate(arrivals):
        assert finish[i] >= delay + work / capacity - 1e-6
    latest = max(d for d, _ in arrivals)
    total = sum(w for _, w in arrivals)
    assert env.now <= latest + total / capacity + 1e-6


@given(st.lists(st.integers(min_value=1, max_value=4), min_size=1,
                max_size=30),
       st.integers(min_value=1, max_value=4))
def test_resource_never_overcommits(amounts, capacity):
    env = Environment()
    res = Resource(env, capacity=capacity)
    peak = {"value": 0}

    def proc(env, amount):
        amount = min(amount, capacity)
        yield res.request(amount)
        peak["value"] = max(peak["value"], res.in_use)
        assert res.in_use <= capacity
        yield env.timeout(1.0)
        res.release(amount)

    for a in amounts:
        env.process(proc(env, a))
    env.run()
    assert res.in_use == 0
    assert 0 < peak["value"] <= capacity


@given(st.lists(st.integers(), min_size=1, max_size=50))
def test_store_preserves_fifo_order(items):
    env = Environment()
    store = Store(env)
    received = []

    def consumer(env):
        for _ in items:
            value = yield store.get()
            received.append(value)

    def producer(env):
        for item in items:
            yield store.put(item)
            yield env.timeout(0.1)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert received == items


@given(st.lists(delays, min_size=1, max_size=30))
def test_all_of_fires_at_latest_constituent(delay_list):
    env = Environment()
    cond = env.all_of([env.timeout(d) for d in delay_list])
    env.run(until=cond)
    assert env.now == pytest.approx(max(delay_list))


@given(st.lists(delays, min_size=1, max_size=30))
def test_any_of_fires_at_earliest_constituent(delay_list):
    env = Environment()
    cond = env.any_of([env.timeout(d) for d in delay_list])
    env.run(until=cond)
    assert env.now == pytest.approx(min(delay_list))


@given(st.lists(st.tuples(delays, delays), min_size=1, max_size=25))
def test_simulation_is_deterministic(specs):
    """Two identical runs produce identical event traces."""

    def run():
        env = Environment()
        trace = []

        def proc(env, d1, d2, i):
            yield env.timeout(d1)
            trace.append((env.now, i, "a"))
            yield env.timeout(d2)
            trace.append((env.now, i, "b"))

        for i, (d1, d2) in enumerate(specs):
            env.process(proc(env, d1, d2, i))
        env.run()
        return trace

    assert run() == run()
