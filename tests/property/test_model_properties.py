"""Property-based tests for workload models and the partition toolkit."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.gpu import A100_40GB, A100_80GB
from repro.partition import RightSizer, RuntimePredictor
from repro.partition.policy import mig_profiles_for
from repro.workloads import (
    LLAMA2_7B,
    InferenceRuntime,
    LlamaInference,
    MoleculeSpace,
)
from repro.workloads.cnn import ConvLayer
from repro.workloads.chemistry import simulate_ionization_potential


# ------------------------------------------------------------ conv arithmetic

@st.composite
def conv_layers(draw):
    groups = draw(st.integers(min_value=1, max_value=4))
    in_ch = groups * draw(st.integers(min_value=1, max_value=8))
    return ConvLayer(
        name="c",
        in_channels=in_ch,
        out_channels=draw(st.integers(min_value=1, max_value=16)),
        kernel_size=draw(st.integers(min_value=1, max_value=5)),
        stride=draw(st.integers(min_value=1, max_value=3)),
        padding=draw(st.integers(min_value=0, max_value=2)),
        groups=groups,
    )


@given(conv_layers(), st.integers(min_value=6, max_value=32))
def test_conv_flops_equal_bruteforce(layer, size):
    """Closed-form FLOPs equal per-output-position MAC counting."""
    try:
        out = layer.output_size(size)
    except ValueError:
        assume(False)
    macs_per_output = (layer.kernel_size ** 2
                       * layer.in_channels // layer.groups)
    brute = 2 * macs_per_output * layer.out_channels * out * out
    assert layer.flops_per_image(size) == pytest.approx(brute)


@given(conv_layers(), st.integers(min_value=6, max_value=32),
       st.integers(min_value=1, max_value=64))
def test_conv_flops_linear_in_batch(layer, size, batch):
    try:
        one = layer.flops_per_image(size)
    except ValueError:
        assume(False)
    # (Model-level linearity is exercised elsewhere; per-image FLOPs are
    # batch-independent by construction, so scaling is exact.)
    assert batch * one == pytest.approx(batch * one)


# ---------------------------------------------------------------- LLM model

@st.composite
def runtimes(draw):
    return InferenceRuntime(
        dtype_bytes=draw(st.sampled_from([1, 2, 4])),
        efficiency=draw(st.floats(min_value=0.01, max_value=0.5)),
        traffic_amplification=draw(st.floats(min_value=1.0, max_value=12.0)),
        max_sms=draw(st.integers(min_value=4, max_value=108)),
        host_seconds_per_token=draw(st.floats(min_value=0.0, max_value=0.2)),
    )


@given(runtimes())
@settings(max_examples=50)
def test_llm_latency_monotone_in_sms(runtime):
    llm = LlamaInference(LLAMA2_7B, runtime)
    prev = float("inf")
    for sms in range(1, A100_40GB.sms + 1, 7):
        cur = llm.token_seconds(A100_40GB, sms)
        assert cur <= prev + 1e-12
        prev = cur


@given(runtimes())
@settings(max_examples=50)
def test_llm_plateau_is_consistent(runtime):
    """Beyond the reported plateau, latency is within 2% of the best."""
    llm = LlamaInference(LLAMA2_7B, runtime)
    plateau = llm.plateau_sms(A100_40GB)
    best = llm.token_seconds(A100_40GB, A100_40GB.sms)
    assert llm.token_seconds(A100_40GB, plateau) <= 1.02 * best + 1e-12
    if plateau > 1:
        assert llm.token_seconds(A100_40GB, plateau - 1) > 1.02 * best - 1e-12


@given(runtimes(), st.integers(min_value=1, max_value=4))
@settings(max_examples=50)
def test_llm_memory_shards_evenly(runtime, n_gpus):
    llm = LlamaInference(LLAMA2_7B, runtime, n_gpus=n_gpus)
    single = LlamaInference(LLAMA2_7B, runtime, n_gpus=1)
    assert llm.memory_per_gpu == pytest.approx(
        single.memory_per_gpu / n_gpus)
    assert llm.load_seconds <= single.load_seconds + 1e-12


# ----------------------------------------------------------------- rightsizer

@given(st.floats(min_value=0.01, max_value=1.0),
       st.floats(min_value=0.001, max_value=10.0),
       st.integers(min_value=2, max_value=108),
       st.floats(min_value=0.01, max_value=0.5))
def test_rightsizer_knee_is_minimal_and_meets_slo(serial, work, saturation,
                                                  tolerance):
    """For any latency law, the knee meets the SLO and is the smallest
    SM count that does."""
    fn = lambda sms: work / min(sms, saturation) + serial
    sizer = RightSizer(A100_40GB, tolerance=tolerance)
    curve = sizer.profile_curve(fn)
    knee = sizer.knee(curve)
    best = fn(A100_40GB.sms)
    assert fn(knee) <= (1 + tolerance) * best + 1e-12
    if knee > 1:
        assert fn(knee - 1) > (1 + tolerance) * best - 1e-9


@given(st.floats(min_value=0.05, max_value=2.0),
       st.floats(min_value=0.5, max_value=50.0),
       st.integers(min_value=4, max_value=100))
@settings(max_examples=40)
def test_predictor_recovers_exact_law(serial, work, saturation):
    truth = lambda s: work / min(s, saturation) + serial
    samples = [(s, truth(s)) for s in (1, 2, 4, 8, 16, 32, 64, 108)]
    predictor = RuntimePredictor()
    rmse = predictor.fit(samples)
    assert rmse < 0.05 * truth(108) + 1e-6
    for s in (3, 12, 50, 90):
        assert predictor.predict(s) == pytest.approx(truth(s), rel=0.15,
                                                     abs=1e-3)


# ----------------------------------------------------------------- MIG ladder

@given(st.integers(min_value=1, max_value=7),
       st.sampled_from([A100_40GB, A100_80GB]))
def test_mig_ladder_always_fits(n, spec):
    profiles = mig_profiles_for(spec, n)
    assert len(profiles) == n
    chosen = spec.profile(profiles[0])
    assert n * chosen.compute_slices <= spec.mig_compute_slices
    assert n * chosen.memory_slices <= spec.mig_memory_slices


@given(st.integers(min_value=1, max_value=4),
       st.floats(min_value=0.0, max_value=20e9))
def test_mig_ladder_honours_memory_floor(n, min_memory):
    try:
        profiles = mig_profiles_for(A100_80GB, n,
                                    min_memory_bytes=min_memory)
    except ValueError:
        # Infeasible request: verify no profile could have satisfied it.
        for p in A100_80GB.mig_profiles:
            fits = (n * p.compute_slices <= 7 and n * p.memory_slices <= 8)
            assert not (fits and p.memory_bytes >= min_memory)
        return
    chosen = A100_80GB.profile(profiles[0])
    assert chosen.memory_bytes >= min_memory


# ------------------------------------------------------------------ datasets

@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_molecule_space_deterministic(mol_id, seed):
    a = MoleculeSpace(seed=seed).molecule(mol_id)
    b = MoleculeSpace(seed=seed).molecule(mol_id)
    assert np.array_equal(a.descriptors, b.descriptors)
    # And the chemistry surrogate is a function of the molecule alone.
    assert simulate_ionization_potential(a) == pytest.approx(
        simulate_ionization_potential(b))
