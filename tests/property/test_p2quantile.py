"""Property tests pinning :class:`P2Quantile`'s edge behaviour.

The streaming P² estimator backs both the router's hedge delay and the
fleet autoscaler's SLO-violation window, so its small-sample and
duplicate-value edges are load-bearing: a wrong quantile either fires
hedges constantly or never bypasses a cooldown.  Stress testing found
no divergences from the sorted-list reference on these edges; these
properties pin that behaviour against regressions.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import P2Quantile


def reference_quantile(samples, p):
    """numpy.percentile's 'linear' interpolation, dependency-free."""
    s = sorted(samples)
    h = (len(s) - 1) * p
    lo = math.floor(h)
    hi = min(lo + 1, len(s) - 1)
    return s[lo] + (h - lo) * (s[hi] - s[lo])


finite = st.floats(min_value=-1e9, max_value=1e9,
                   allow_nan=False, allow_infinity=False)
quantiles = st.floats(min_value=0.05, max_value=0.95)


@given(st.lists(finite, min_size=1, max_size=5), quantiles)
def test_small_samples_match_the_sorted_list_exactly(xs, p):
    """Below six observations the estimator must be *exact*: small
    windows (e.g. right after a resize resets the monitor) feed real
    control decisions."""
    q = P2Quantile(p)
    for x in xs:
        q.add(x)
    assert q.count == len(xs)
    assert q.value == reference_quantile(xs, p)


@given(finite, st.integers(min_value=1, max_value=300), quantiles)
def test_constant_stream_returns_the_constant(x, n, p):
    q = P2Quantile(p)
    for _ in range(n):
        q.add(x)
    assert q.value == x


@given(st.lists(finite, min_size=6, max_size=200), quantiles)
def test_estimate_stays_within_the_observed_range(xs, p):
    q = P2Quantile(p)
    for x in xs:
        q.add(x)
    assert min(xs) <= q.value <= max(xs)


@given(st.lists(st.sampled_from([0.0, 1.0, 1.0, 2.0]),
                min_size=1, max_size=150), quantiles)
def test_duplicate_heavy_streams_stay_bounded(xs, p):
    """Tied marker heights exercise the degenerate interpolation path
    (parabolic fit with equal neighbour heights)."""
    q = P2Quantile(p)
    for x in xs:
        q.add(x)
    assert min(xs) <= q.value <= max(xs)


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_p95_tracks_the_sorted_quantile_on_latency_like_streams(seed):
    """On lognormal (latency-shaped) streams the streaming P95 lands
    near the exact one — the property the hedge delay and the SLO
    window both rely on."""
    rng = random.Random(seed)
    xs = [rng.lognormvariate(0.0, 0.5) for _ in range(500)]
    q = P2Quantile(0.95)
    for x in xs:
        q.add(x)
    ref = reference_quantile(xs, 0.95)
    assert abs(q.value - ref) <= 0.25 * ref


@given(st.lists(finite, min_size=1, max_size=40), quantiles)
def test_permutation_invariance_below_six_samples(xs, p):
    """Order cannot matter while the window stores raw observations."""
    head = xs[:5]
    q_fwd, q_rev = P2Quantile(p), P2Quantile(p)
    for x in head:
        q_fwd.add(x)
    for x in reversed(head):
        q_rev.add(x)
    assert q_fwd.value == q_rev.value
