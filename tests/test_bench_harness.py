"""Tests for the bench harness table formatter and result persistence."""

import os

import pytest

from repro.bench import format_table, save_results
from repro.bench.harness import _fmt, results_dir


def test_format_table_alignment():
    table = format_table(["name", "value"], [["short", 1], ["longer-name", 22]])
    lines = table.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    # Columns align: 'value' header and both values start at same offset.
    offset = lines[0].index("value")
    assert lines[2][offset] == "1" or lines[2][offset - 1] == " "


def test_format_table_with_title():
    table = format_table(["a"], [[1]], title="My Table")
    lines = table.splitlines()
    assert lines[0] == "My Table"
    assert lines[1] == "=" * len("My Table")


def test_format_table_empty_rows():
    table = format_table(["col1", "col2"], [])
    assert "col1" in table and "col2" in table


def test_float_formatting():
    assert _fmt(0) == "0"
    assert _fmt(0.0) == "0"
    assert _fmt(1.5) == "1.5"
    assert _fmt(1.0) == "1"
    assert _fmt(0.001) == "0.001"
    assert _fmt(123456.0) == "1.23e+05"
    assert _fmt(0.000123) == "0.000123"
    assert _fmt("text") == "text"


def test_save_results_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    path = save_results("unit-test", "hello\nworld")
    assert os.path.dirname(path) == str(tmp_path)
    with open(path) as fh:
        assert fh.read() == "hello\nworld\n"


def test_results_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "sub"))
    assert results_dir() == str(tmp_path / "sub")
    assert os.path.isdir(results_dir())
