"""Tests for the telemetry exporters."""

import csv
import io
import json

import pytest

from repro.telemetry import (
    Timeline,
    series_to_csv,
    stats_to_dict,
    summarize,
    timeline_to_csv,
    timeline_to_jsonl,
)


def make_timeline():
    tl = Timeline()
    tl.add("sim", 0.0, 5.0, label="t1")
    tl.add("train", 5.0, 7.0, label="t2")
    tl.add("sim", 2.0, 4.0, label="t3")
    return tl


def test_timeline_to_csv_roundtrip():
    text = timeline_to_csv(make_timeline())
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["category", "start", "end", "duration", "label"]
    assert len(rows) == 4
    # Sorted by start time.
    starts = [float(r[1]) for r in rows[1:]]
    assert starts == sorted(starts)
    assert rows[1][0] == "sim"


def test_timeline_to_jsonl():
    lines = timeline_to_jsonl(make_timeline()).splitlines()
    assert len(lines) == 3
    first = json.loads(lines[0])
    assert first["category"] == "sim"
    assert first["duration"] == pytest.approx(5.0)


def test_series_to_csv():
    text = series_to_csv(["sms", "latency"], [[10, 1.5], [20, 0.9]])
    rows = list(csv.reader(io.StringIO(text)))
    assert rows == [["sms", "latency"], ["10", "1.5"], ["20", "0.9"]]


def test_series_to_csv_validation():
    with pytest.raises(ValueError, match="non-empty"):
        series_to_csv([], [])
    with pytest.raises(ValueError, match="cells"):
        series_to_csv(["a", "b"], [[1]])


def test_stats_to_dict():
    d = stats_to_dict(summarize([1.0, 2.0, 3.0]))
    assert d["count"] == 3
    assert d["mean"] == pytest.approx(2.0)
    assert set(d) == {"count", "mean", "p50", "p95", "p99", "min", "max"}
    json.dumps(d)  # JSON-ready
