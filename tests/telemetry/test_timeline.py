"""Tests for span timelines and metrics aggregation."""

import pytest

from repro.telemetry import (
    Span,
    ThroughputMeter,
    Timeline,
    render_ascii_gantt,
    summarize,
)
from repro.sim import Environment


def test_span_validation():
    with pytest.raises(ValueError):
        Span("x", start=2.0, end=1.0)
    assert Span("x", 1.0, 3.0).duration == pytest.approx(2.0)


def test_timeline_categories_in_insertion_order():
    tl = Timeline()
    tl.add("b", 0, 1)
    tl.add("a", 1, 2)
    tl.add("b", 2, 3)
    assert tl.categories() == ["b", "a"]


def test_makespan():
    tl = Timeline()
    tl.add("x", 2.0, 5.0)
    tl.add("y", 4.0, 10.0)
    assert tl.makespan == pytest.approx(8.0)
    assert Timeline().makespan == 0.0


def test_busy_time_merges_overlaps():
    tl = Timeline()
    tl.add("gpu", 0.0, 4.0)
    tl.add("gpu", 2.0, 6.0)  # overlaps
    tl.add("gpu", 10.0, 12.0)
    assert tl.busy_time("gpu") == pytest.approx(8.0)
    assert tl.total_task_time("gpu") == pytest.approx(10.0)


def test_idle_gaps():
    tl = Timeline()
    tl.add("train", 0.0, 2.0)
    tl.add("infer", 5.0, 6.0)
    tl.add("train", 6.0, 7.0)
    tl.add("infer", 9.0, 10.0)
    gaps = tl.idle_gaps(["train", "infer"])
    assert gaps == [(2.0, 5.0), (7.0, 9.0)]


def test_idle_fraction():
    tl = Timeline()
    tl.add("sim", 0.0, 10.0)
    tl.add("gpu", 0.0, 2.0)
    tl.add("gpu", 8.0, 10.0)
    # GPU busy 4 of 10 s -> 60% idle.
    assert tl.idle_fraction(["gpu"]) == pytest.approx(0.6)


def test_idle_gaps_empty_category():
    tl = Timeline()
    tl.add("cpu", 0.0, 1.0)
    assert tl.idle_gaps(["gpu"]) == []
    assert tl.idle_fraction(["gpu"]) == pytest.approx(1.0)


def test_render_ascii_gantt():
    tl = Timeline()
    tl.add("sim", 0.0, 50.0)
    tl.add("train", 50.0, 100.0)
    art = render_ascii_gantt(tl, width=20)
    lines = art.splitlines()
    assert "sim" in lines[0] and "#" in lines[0]
    assert "train" in lines[1]
    assert render_ascii_gantt(Timeline()) == "(empty timeline)"


def test_summarize():
    stats = summarize([1.0, 2.0, 3.0, 4.0])
    assert stats.count == 4
    assert stats.mean == pytest.approx(2.5)
    assert stats.p50 == pytest.approx(2.5)
    assert stats.minimum == 1.0 and stats.maximum == 4.0


def test_summarize_validation():
    with pytest.raises(ValueError):
        summarize([])
    with pytest.raises(ValueError):
        summarize([-1.0])


def test_throughput_meter():
    env = Environment()
    meter = ThroughputMeter(env)
    meter.record(10)
    env.timeout(5.0)
    env.run()
    assert meter.per_second == pytest.approx(2.0)
    with pytest.raises(ValueError):
        meter.record(-1)
