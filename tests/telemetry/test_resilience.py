"""Tests for the resilience accumulators (repro.telemetry.resilience)."""

import json

import pytest

from repro.telemetry import ResilienceStats


def test_conservation_invariant():
    stats = ResilienceStats()
    for _ in range(10):
        stats.offered += 1
    for lat in (1.0, 2.0, 3.0):
        stats.record_completion(lat, in_slo=True)
    stats.record_completion(50.0, in_slo=False)
    stats.shed += 2
    stats.failed += 1
    assert stats.completed == 4
    assert stats.slo_ok == 3
    assert stats.lost == 3  # 10 - 4 - 2 - 1


def test_goodput_vs_throughput():
    stats = ResilienceStats()
    stats.offered = 4
    stats.record_completion(1.0, in_slo=True)
    stats.record_completion(2.0, in_slo=True)
    stats.record_completion(90.0, in_slo=False)
    stats.failed = 1
    assert stats.throughput(10.0) == pytest.approx(0.3)
    assert stats.goodput(10.0) == pytest.approx(0.2)
    assert stats.slo_attainment == pytest.approx(2 / 4)
    with pytest.raises(ValueError):
        stats.goodput(0.0)


def test_amplification():
    stats = ResilienceStats()
    assert stats.amplification == 0.0  # no completions yet
    stats.attempts = 6
    stats.record_completion(1.0, in_slo=True)
    stats.record_completion(1.0, in_slo=True)
    assert stats.amplification == 3.0


def test_fault_counters():
    stats = ResilienceStats()
    stats.record_fault("ecc")
    stats.record_fault("ecc")
    stats.record_fault("replica_crash")
    assert stats.faults == {"ecc": 2, "replica_crash": 1}


def test_report_is_json_ready():
    stats = ResilienceStats()
    stats.offered = 2
    stats.record_completion(1.5, in_slo=True)
    stats.failed = 1
    stats.record_fault("launch_failure")
    report = stats.report(horizon=10.0)
    text = json.dumps(report)  # must serialise cleanly
    round_tripped = json.loads(text)
    assert round_tripped["offered"] == 2
    assert round_tripped["lost"] == 0
    assert round_tripped["latency"]["count"] == 1
    assert round_tripped["latency"]["mean"] == pytest.approx(1.5)
    assert round_tripped["faults"] == {"launch_failure": 1}


def test_empty_report_has_no_latency_block():
    report = ResilienceStats().report(horizon=1.0)
    assert report["latency"] is None
    assert report["slo_attainment"] == 0.0
