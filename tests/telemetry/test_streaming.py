"""Streaming accumulators vs their batch counterparts."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.numerics import KahanSum
from repro.telemetry import summarize
from repro.telemetry.streaming import (
    P2Quantile,
    ReservoirSample,
    StreamingLatencyStats,
    WindowedRates,
)


# ------------------------------------------------------------------ P2

def test_p2_small_samples_match_numpy_exactly():
    xs = [4.0, 1.0, 3.0, 2.0, 5.0]
    for p in (0.5, 0.95, 0.99):
        est = P2Quantile(p)
        for i, x in enumerate(xs):
            est.add(x)
            # Fewer than six samples: exact linear interpolation.
            expect = float(np.percentile(xs[: i + 1], 100 * p))
            assert est.value == pytest.approx(expect)


@pytest.mark.parametrize("dist,args", [
    ("uniform", (0.0, 10.0)),
    ("exponential", (2.0,)),
    ("normal", (5.0, 1.0)),
])
@pytest.mark.parametrize("p", [0.5, 0.95, 0.99])
def test_p2_accuracy_vs_numpy(dist, args, p):
    """Within a few percent of the exact sample quantile at n=20k."""
    rng = np.random.default_rng(7)
    xs = getattr(rng, dist)(*args, size=20_000)
    est = P2Quantile(p)
    for x in xs:
        est.add(float(x))
    exact = float(np.percentile(xs, 100 * p))
    spread = float(np.percentile(xs, 99.5) - np.percentile(xs, 0.5))
    assert est.value == pytest.approx(exact, abs=0.05 * spread)
    assert est.count == len(xs)


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                max_size=200))
@settings(max_examples=50, deadline=None)
def test_p2_estimate_stays_within_sample_range(xs):
    est = P2Quantile(0.95)
    for x in xs:
        est.add(x)
    assert min(xs) <= est.value <= max(xs)


def test_p2_rejects_bad_quantile():
    for p in (0.0, 1.0, -0.5, 2.0):
        with pytest.raises(ValueError):
            P2Quantile(p)
    with pytest.raises(ValueError):
        P2Quantile(0.5).value


# ------------------------------------------------------------ reservoir

def test_reservoir_bounded_and_uniformish():
    res = ReservoirSample(100, seed=3)
    for i in range(10_000):
        res.add(float(i))
    assert len(res.sample) == 100
    assert res.count == 10_000
    # A uniform 100-sample of [0, 10000) should span the range broadly.
    assert min(res.sample) < 2_000
    assert max(res.sample) > 8_000


def test_reservoir_keeps_everything_when_small():
    res = ReservoirSample(10)
    for i in range(7):
        res.add(float(i))
    assert sorted(res.sample) == [float(i) for i in range(7)]


# ------------------------------------------------------ latency stats

def test_streaming_latency_stats_vs_summarize():
    rng = np.random.default_rng(11)
    lats = [float(x) for x in rng.exponential(0.5, size=5_000)]
    stats = StreamingLatencyStats()
    for x in lats:
        stats.add(x)
    batch = summarize(lats)
    s = stats.stats()
    assert s.count == batch.count
    assert s.mean == pytest.approx(batch.mean, rel=1e-12)
    assert s.minimum == batch.minimum
    assert s.maximum == batch.maximum
    for name in ("p50", "p95", "p99"):
        assert getattr(s, name) == pytest.approx(getattr(batch, name),
                                                 rel=0.1)


def test_streaming_latency_stats_rejects_negative():
    stats = StreamingLatencyStats()
    with pytest.raises(ValueError):
        stats.add(-1.0)
    with pytest.raises(ValueError):
        stats.stats()


# -------------------------------------------------------------- kahan

def test_kahan_survives_tiny_increments():
    """The conservation failure mode the naive sum exhibits at scale."""
    naive = 1e9
    kahan = KahanSum(1e9)
    for _ in range(1_000_000):
        naive += 1e-9
        kahan.add(1e-9)
    assert kahan.value == pytest.approx(1e9 + 1e-3, rel=1e-12)
    # The naive total lost a visible fraction of the increments.
    assert abs(naive - (1e9 + 1e-3)) > 1e-4


# ----------------------------------------------------------- windowed

def test_windowed_rates_matches_to_rate_series_peak():
    from repro.workloads.traces import poisson_trace, to_rate_series

    trace = poisson_trace(5.0, 600.0, seed=4)
    wr = WindowedRates(window=60.0, keep=4)
    for t in trace:
        wr.add(t)
    series = to_rate_series(trace, 600.0, window=60.0)
    assert wr.peak_rate == pytest.approx(max(series))
    assert wr.count == len(trace)
    # Bounded retention: only the last `keep` windows (plus the open
    # one) survive.
    assert len(wr.recent_rates()) <= 5


def test_windowed_rates_rejects_out_of_order():
    wr = WindowedRates(window=1.0)
    wr.add(5.0)
    with pytest.raises(ValueError):
        wr.add(4.0)
    assert math.isclose(wr.peak_rate, 1.0)


# ------------------------------------------------- batch-path bit-identity

sorted_times = st.lists(
    st.floats(min_value=0.0, max_value=5000.0,
              allow_nan=False, allow_infinity=False),
    max_size=300,
).map(sorted)


@given(ts=sorted_times,
       window=st.sampled_from([1.0, 7.5, 60.0]),
       splits=st.lists(st.integers(0, 300), max_size=3))
@settings(max_examples=120, deadline=None)
def test_windowed_add_many_bit_identical_to_scalar(ts, window, splits):
    """add_many == the scalar add loop: counts, ring, peak, clock —
    regardless of how the stream is cut into batches."""
    scalar = WindowedRates(window, keep=5)
    for t in ts:
        scalar.add(t)
    batch = WindowedRates(window, keep=5)
    cuts = sorted(min(s, len(ts)) for s in splits) + [len(ts)]
    prev = 0
    for c in cuts:
        batch.add_many(np.asarray(ts[prev:c]))
        prev = c
    assert batch.count == scalar.count
    assert batch.peak_rate == scalar.peak_rate
    assert batch.recent_rates() == scalar.recent_rates()
    assert batch._last_t == scalar._last_t


def test_windowed_add_many_window_boundaries_exact():
    """Events landing exactly on k*window must bucket like the scalar
    path (int(t // window) — same floor-divide semantics)."""
    w = 60.0
    ts = [0.0, 59.999999999999996, 60.0, 119.99999999999999, 120.0, 180.0]
    scalar, batch = WindowedRates(w), WindowedRates(w)
    for t in ts:
        scalar.add(t)
    batch.add_many(ts)
    assert batch.recent_rates() == scalar.recent_rates()
    assert batch.peak_rate == scalar.peak_rate


def test_windowed_add_many_rejects_out_of_order_before_ingesting():
    w = WindowedRates(60.0)
    w.add(10.0)
    with pytest.raises(ValueError, match="out-of-order"):
        w.add_many([5.0])
    with pytest.raises(ValueError, match="out-of-order"):
        w.add_many([11.0, 12.0, 11.5])
    # Validated up front: the failed batch ingested nothing.
    assert w.count == 1
    assert w._last_t == 10.0


def test_windowed_add_many_empty_is_noop():
    w = WindowedRates(60.0)
    w.add_many([])
    w.add_many(np.empty(0))
    assert w.count == 0


@given(xs=st.lists(st.floats(min_value=0.0, max_value=1e6,
                             allow_nan=False, allow_infinity=False),
                   max_size=200),
       k=st.integers(1, 25),
       seed=st.integers(0, 2 ** 20))
@settings(max_examples=120, deadline=None)
def test_reservoir_add_many_bit_identical_to_scalar(xs, k, seed):
    """add_many == the scalar add loop including the RNG draw sequence,
    so the surviving sample AND the generator state match."""
    scalar = ReservoirSample(k, seed=seed)
    for x in xs:
        scalar.add(x)
    batch = ReservoirSample(k, seed=seed)
    mid = len(xs) // 2
    batch.add_many(xs[:mid])
    batch.add_many(np.asarray(xs[mid:]))
    assert batch.sample == scalar.sample
    assert batch.count == scalar.count
    assert batch._rng.getstate() == scalar._rng.getstate()


def test_reservoir_add_many_fill_phase_draws_nothing():
    """The pre-fill prefix consumes no RNG draws (scalar add's fill
    branch never touches the generator either)."""
    r = ReservoirSample(8, seed=1)
    state0 = r._rng.getstate()
    r.add_many([1.0, 2.0, 3.0])
    assert r.sample == [1.0, 2.0, 3.0]
    assert r._rng.getstate() == state0
