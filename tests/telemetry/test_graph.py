"""Tests for task-graph export, critical path, and parallelism profile."""

import networkx as nx
import pytest

from repro.faas import (
    ColdStartModel,
    Config,
    DataFlowKernel,
    HighThroughputExecutor,
    python_app,
)
from repro.telemetry import critical_path, parallelism_profile, task_graph
from repro.workloads import CampaignConfig, MolecularDesignCampaign
from repro.gpu import A100_40GB
from repro.faas import LocalProvider

NO_COLD = ColdStartModel(function_init_seconds=0.0, gpu_context_seconds=0.0)


def make_dfk(workers=8):
    return DataFlowKernel(Config(executors=[
        HighThroughputExecutor(label="cpu", max_workers=workers,
                               cold_start=NO_COLD)]))


def diamond(dfk):
    """a -> (b, c) -> d with distinct runtimes."""

    @python_app(dfk=dfk, walltime=1.0)
    def a():
        return "a"

    @python_app(dfk=dfk, walltime=2.0)
    def b(x):
        return "b"

    @python_app(dfk=dfk, walltime=5.0)
    def c(x):
        return "c"

    @python_app(dfk=dfk, walltime=1.0)
    def d(x, y):
        return "d"

    fa = a()
    fb, fc = b(fa), c(fa)
    fd = d(fb, fc)
    dfk.run()
    return fa, fb, fc, fd


def test_task_graph_structure():
    dfk = make_dfk()
    fa, fb, fc, fd = diamond(dfk)
    graph = task_graph(dfk)
    assert graph.number_of_nodes() == 4
    assert graph.number_of_edges() == 4
    assert nx.is_directed_acyclic_graph(graph)
    assert graph.has_edge(fa.task.tid, fb.task.tid)
    assert graph.has_edge(fc.task.tid, fd.task.tid)
    assert graph.nodes[fc.task.tid]["run_seconds"] == pytest.approx(5.0)
    assert graph.nodes[fa.task.tid]["app"] == "a"


def test_critical_path_picks_heavier_branch():
    dfk = make_dfk()
    fa, fb, fc, fd = diamond(dfk)
    path, seconds = critical_path(dfk)
    assert path == [fa.task.tid, fc.task.tid, fd.task.tid]
    assert seconds == pytest.approx(1.0 + 5.0 + 1.0)
    # The run's makespan equals the critical path (enough workers).
    assert dfk.env.now == pytest.approx(seconds)


def test_critical_path_empty_dfk():
    dfk = make_dfk()
    assert critical_path(dfk) == ([], 0.0)


def test_parallelism_profile_diamond():
    dfk = make_dfk()
    diamond(dfk)
    profile = parallelism_profile(dfk, resolution=0.5)
    counts = dict(profile)
    # During (1, 3): b and c overlap.
    assert counts[2.0] == 2
    # During (3, 6): only c runs.
    assert counts[4.0] == 1
    with pytest.raises(ValueError):
        parallelism_profile(dfk, resolution=0.0)


def test_campaign_critical_path_is_the_sim_train_spine():
    """Fig. 3's structure: the critical path alternates simulation and
    GPU phases — the serial spine that keeps the GPU idle."""
    cpu = HighThroughputExecutor(label="cpu", max_workers=8,
                                 cold_start=NO_COLD)
    gpu = HighThroughputExecutor(
        label="gpu", available_accelerators=["0"], cold_start=NO_COLD,
        provider=LocalProvider(cores=8, gpu_specs=[A100_40GB]))
    dfk = DataFlowKernel(Config(executors=[cpu, gpu]))
    campaign = MolecularDesignCampaign(
        dfk, CampaignConfig(n_initial=8, n_rounds=2,
                            simulations_per_round=4,
                            candidate_pool_size=64))
    campaign.run_to_completion()
    path, seconds = critical_path(dfk)
    apps = [task_graph(dfk).nodes[t]["app"] for t in path]
    # Simulation dominates the critical path, and GPU tasks appear on it.
    assert apps.count("simulation") >= 1
    assert seconds > 0
    # The path is a real dependency chain.
    graph = task_graph(dfk)
    for upstream, downstream in zip(path, path[1:]):
        assert graph.has_edge(upstream, downstream)
