"""Tests for GPU cost accounting."""

import pytest

from repro.telemetry import CostReport, GpuCostModel, cost_report


def test_device_seconds_pricing():
    model = GpuCostModel(hourly_usd=3.60)
    assert model.device_seconds_usd(3600.0) == pytest.approx(3.60)
    assert model.device_seconds_usd(1800.0) == pytest.approx(1.80)


def test_occupancy_billing():
    rental = GpuCostModel(hourly_usd=3.60, bill_by_occupancy=False)
    chargeback = GpuCostModel(hourly_usd=3.60, bill_by_occupancy=True)
    assert rental.device_seconds_usd(3600.0, 0.25) == pytest.approx(3.60)
    assert chargeback.device_seconds_usd(3600.0, 0.25) == pytest.approx(0.90)


def test_cost_report_amortisation():
    report = cost_report("mps-4", makespan_seconds=3600.0, completions=500,
                         mean_sm_utilization=0.8,
                         model=GpuCostModel(hourly_usd=3.60))
    assert report.total_usd == pytest.approx(3.60)
    assert report.usd_per_1000 == pytest.approx(7.20)
    assert report.effective_throughput_per_usd == pytest.approx(500 / 3.60)


def test_multiplexing_profitability_example():
    """The abstract's claim in miniature: 2.5x throughput at the same
    rental price means 2.5x cheaper completions."""
    model = GpuCostModel()
    single = cost_report("single", 1000.0, 100, 1.0, model)
    multiplexed = cost_report("mps-4", 400.0, 100, 1.0, model)
    assert (single.usd_per_1000 / multiplexed.usd_per_1000
            == pytest.approx(2.5))


def test_validation():
    with pytest.raises(ValueError):
        GpuCostModel(hourly_usd=0.0)
    model = GpuCostModel()
    with pytest.raises(ValueError):
        model.device_seconds_usd(-1.0)
    with pytest.raises(ValueError):
        model.device_seconds_usd(1.0, 1.5)
    with pytest.raises(ValueError):
        cost_report("x", 0.0, 1, 1.0)
    report = cost_report("x", 1.0, 0, 1.0)
    with pytest.raises(ValueError):
        _ = report.usd_per_1000
