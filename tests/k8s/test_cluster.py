"""Tests for the Kubernetes-style orchestrator and device plugins."""

import pytest

from repro.faas import ComputeNode
from repro.gpu import A100_40GB, Kernel
from repro.k8s import (
    Cluster,
    MigDevicePlugin,
    Pod,
    PodPhase,
    ResourceSpec,
    TimeSlicingPlugin,
    WholeGpuPlugin,
)
from repro.sim import Environment

GPU = "nvidia.com/gpu"


def small_kernel(seconds=1.0, max_sms=20):
    return Kernel(flops=A100_40GB.flops_per_sm * max_sms * seconds,
                  bytes_moved=0.0, max_sms=max_sms, efficiency=1.0)


def make_cluster(plugin=None, gpus=1, cores=8, nodes=1):
    env = Environment()
    compute = [ComputeNode(env, cores=cores, gpu_specs=[A100_40GB] * gpus)
               for _ in range(nodes)]
    return env, compute, Cluster(env, compute, plugin=plugin)


# -------------------------------------------------------------- resources

def test_resource_spec_arithmetic():
    a = ResourceSpec(cpu=2.0, extended={GPU: 1})
    b = ResourceSpec(cpu=1.0, extended={GPU: 1})
    assert b.fits_within(a)
    assert not a.fits_within(b)
    total = a.plus(b)
    assert total.cpu == 3.0 and total.extended[GPU] == 2
    back = total.minus(b)
    assert back.cpu == 2.0 and back.extended[GPU] == 1
    with pytest.raises(ValueError):
        b.minus(a)


def test_resource_spec_validation():
    with pytest.raises(ValueError):
        ResourceSpec(cpu=-1.0)
    with pytest.raises(ValueError):
        ResourceSpec(extended={GPU: -1})


def test_pod_validation():
    with pytest.raises(ValueError, match="exactly one"):
        Pod("p", ResourceSpec(cpu=1.0))
    with pytest.raises(ValueError, match="exactly one"):
        Pod("p", ResourceSpec(cpu=1.0), duration=1.0,
            main=lambda ctx: iter(()))


# ---------------------------------------------------------------- scheduling

def test_cpu_pods_schedule_and_finish():
    env, _, cluster = make_cluster(cores=4)
    pods = [cluster.submit(Pod(f"p{i}", ResourceSpec(cpu=1.0), duration=5.0))
            for i in range(4)]
    cluster.run_until_done()
    assert all(p.phase is PodPhase.SUCCEEDED for p in pods)
    # All four fit at once on the 4-core node.
    assert max(p.start_time for p in pods) < 1.0


def test_cpu_contention_queues_pods():
    env, _, cluster = make_cluster(cores=2)
    pods = [cluster.submit(Pod(f"p{i}", ResourceSpec(cpu=2.0), duration=5.0))
            for i in range(3)]
    cluster.run_until_done()
    starts = sorted(p.start_time for p in pods)
    assert starts[1] >= 5.0 and starts[2] >= 10.0
    assert cluster.preempted_schedule_attempts > 0


def test_spreading_across_nodes():
    env, computes, cluster = make_cluster(cores=4, nodes=2)
    pods = [cluster.submit(Pod(f"p{i}", ResourceSpec(cpu=2.0), duration=3.0))
            for i in range(2)]
    cluster.run_until_done()
    assert {p.node_name for p in pods} == {c.name for c in computes}


def test_most_allocated_strategy_bin_packs():
    env = Environment()
    computes = [ComputeNode(env, cores=4) for _ in range(2)]
    cluster = Cluster(env, computes, strategy="most-allocated")
    pods = [cluster.submit(Pod(f"p{i}", ResourceSpec(cpu=1.0), duration=3.0))
            for i in range(3)]
    cluster.run_until_done()
    # All three pods pack onto one node; the other stays empty.
    assert len({p.node_name for p in pods}) == 1


def test_unknown_strategy_rejected():
    env = Environment()
    node = ComputeNode(env, cores=2)
    with pytest.raises(ValueError, match="unknown strategy"):
        Cluster(env, [node], strategy="random")


def test_failing_pod_marked_failed_and_resources_released():
    env, _, cluster = make_cluster(cores=2)

    def bad(ctx):
        yield ctx.env.timeout(1.0)
        raise RuntimeError("container crashed")

    failed = cluster.submit(Pod("bad", ResourceSpec(cpu=2.0), main=bad))
    ok = cluster.submit(Pod("ok", ResourceSpec(cpu=2.0), duration=1.0))
    cluster.run_until_done()
    assert failed.phase is PodPhase.FAILED
    assert isinstance(failed.failure, RuntimeError)
    assert ok.phase is PodPhase.SUCCEEDED  # got the freed cpu


# ------------------------------------------------------------ whole-GPU plugin

def test_whole_gpu_plugin_serialises_pods():
    """The intro's limitation: 1 GPU = 1 pod, however small the pods."""
    env, _, cluster = make_cluster(plugin=WholeGpuPlugin(), gpus=1)

    def tiny_gpu_work(ctx):
        yield ctx.gpu.launch(small_kernel(2.0, max_sms=20))

    pods = [cluster.submit(Pod(
        f"infer{i}", ResourceSpec(cpu=1.0, extended={GPU: 1}),
        main=tiny_gpu_work)) for i in range(3)]
    cluster.run_until_done()
    starts = sorted(p.start_time for p in pods)
    # Strictly one at a time despite the GPU being 80% idle.
    assert starts[1] >= 2.0 and starts[2] >= 4.0


def test_whole_gpu_plugin_advertises_gpu_count():
    env = Environment()
    node = ComputeNode(env, cores=4, gpu_specs=[A100_40GB, A100_40GB])
    assert WholeGpuPlugin().advertise(node) == {GPU: 2}
    cpu_node = ComputeNode(env, cores=4)
    assert WholeGpuPlugin().advertise(cpu_node) == {}


# ----------------------------------------------------------- time-slicing

def test_time_slicing_plugin_shares_temporally():
    env, _, cluster = make_cluster(plugin=TimeSlicingPlugin(replicas=4))

    def gpu_work(ctx):
        yield ctx.gpu.launch(small_kernel(2.0))

    pods = [cluster.submit(Pod(
        f"infer{i}", ResourceSpec(cpu=1.0, extended={GPU: 1}),
        main=gpu_work)) for i in range(4)]
    cluster.run_until_done()
    # All start immediately (4 replicas advertised)...
    assert max(p.start_time for p in pods) < 1.0
    # ...but kernels serialize on the device (plus context switches).
    assert max(p.end_time for p in pods) >= 8.0


def test_time_slicing_replica_limit():
    env, _, cluster = make_cluster(plugin=TimeSlicingPlugin(replicas=2))
    pods = [cluster.submit(Pod(
        f"p{i}", ResourceSpec(cpu=1.0, extended={GPU: 1}), duration=5.0))
        for i in range(3)]
    cluster.run_until_done()
    starts = sorted(p.start_time for p in pods)
    assert starts[2] >= 5.0  # only two replicas -> third pod waits
    with pytest.raises(ValueError):
        TimeSlicingPlugin(replicas=0)


# ------------------------------------------------------------------- MIG

def make_mig_cluster(profiles):
    env = Environment()
    node = ComputeNode(env, cores=8, gpu_specs=[A100_40GB])
    mig = node.mig_manager(0)
    env.run(until=env.process(mig.enable()))
    for profile in profiles:
        mig.create_instance(profile)
    cluster = Cluster(env, [node], plugin=MigDevicePlugin())
    return env, node, cluster


def test_mig_plugin_advertises_instances():
    env, node, cluster = make_mig_cluster(["2g.10gb", "2g.10gb", "1g.5gb"])
    advertised = MigDevicePlugin().advertise(node)
    assert advertised == {"nvidia.com/mig-2g.10gb": 2,
                          "nvidia.com/mig-1g.5gb": 1}


def test_mig_pods_run_spatially_isolated():
    env, node, cluster = make_mig_cluster(["2g.10gb", "2g.10gb"])

    def gpu_work(ctx):
        yield ctx.gpu.launch(small_kernel(2.0, max_sms=20))
        return ctx.gpu.group.name

    pods = [cluster.submit(Pod(
        f"infer{i}",
        ResourceSpec(cpu=1.0, extended={"nvidia.com/mig-2g.10gb": 1}),
        main=gpu_work)) for i in range(2)]
    cluster.run_until_done()
    assert all(p.phase is PodPhase.SUCCEEDED for p in pods)
    # Concurrent (same scheduling round), each on its own instance.
    starts = [p.start_time for p in pods]
    assert max(starts) - min(starts) < 0.5
    assert pods[0].result != pods[1].result
    # 20-SM kernel on a 28-SM slice runs at full speed: ~2 s each.
    assert max(p.wall_seconds for p in pods) < 2.5


def test_mig_pod_waits_for_free_instance():
    env, node, cluster = make_mig_cluster(["3g.20gb"])
    pods = [cluster.submit(Pod(
        f"p{i}", ResourceSpec(cpu=1.0,
                              extended={"nvidia.com/mig-3g.20gb": 1}),
        duration=4.0)) for i in range(2)]
    cluster.run_until_done()
    starts = sorted(p.start_time for p in pods)
    assert starts[1] >= 4.0


def test_mig_pod_unknown_profile_never_schedules():
    env, node, cluster = make_mig_cluster(["3g.20gb"])
    pod = cluster.submit(Pod(
        "p", ResourceSpec(extended={"nvidia.com/mig-7g.40gb": 1}),
        duration=1.0))
    with pytest.raises(TimeoutError):
        cluster.run_until_done(max_seconds=50.0)
    assert pod.phase is PodPhase.PENDING


def test_cluster_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Cluster(env, [])
    node = ComputeNode(env, cores=2)
    cluster = Cluster(env, [node])
    pod = Pod("p", ResourceSpec(cpu=1.0), duration=1.0)
    cluster.submit(pod)
    with pytest.raises(ValueError, match="already"):
        pod.phase = PodPhase.RUNNING
        cluster.submit(pod)
