"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_process_runs_and_returns():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        yield env.timeout(2.0)
        return 99

    p = env.process(proc(env))
    assert env.run(until=p) == 99
    assert env.now == 3.0


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_processes_interleave():
    env = Environment()
    log = []

    def proc(env, name, delay):
        for _ in range(3):
            yield env.timeout(delay)
            log.append((env.now, name))

    env.process(proc(env, "a", 1.0))
    env.process(proc(env, "b", 1.5))
    env.run()
    # At t=3.0 both fire; b's timeout was scheduled earlier (at t=1.5 vs
    # t=2.0), so by creation-order tie-breaking b resumes first.
    assert log == [
        (1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b"), (3.0, "a"), (4.5, "b"),
    ]


def test_process_waits_on_process():
    env = Environment()

    def child(env):
        yield env.timeout(5.0)
        return "child-result"

    def parent(env):
        v = yield env.process(child(env))
        return v

    assert env.run(until=env.process(parent(env))) == "child-result"


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        raise ValueError("child failed")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            return f"caught {exc}"

    assert env.run(until=env.process(parent(env))) == "caught child failed"


def test_unhandled_process_exception_raises_from_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise ValueError("unhandled")

    env.process(proc(env))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_defused_process_exception_is_silent():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise ValueError("defused")

    p = env.process(proc(env))
    p.defuse()
    env.run()
    assert not p.ok
    assert isinstance(p.value, ValueError)


def test_interrupt_wakes_process_early():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as i:
            log.append((env.now, i.cause))

    p = env.process(sleeper(env))

    def interrupter(env):
        yield env.timeout(3.0)
        p.interrupt("wake up")

    env.process(interrupter(env))
    env.run()
    assert log == [(3.0, "wake up")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_yield_non_event_raises_inside_process():
    env = Environment()

    def bad(env):
        yield 42

    p = env.process(bad(env))
    p.defuse()
    env.run()
    assert not p.ok
    assert isinstance(p.value, SimulationError)


def test_yield_already_processed_event():
    env = Environment()
    done = env.event()
    done.succeed("early")

    def proc(env):
        yield env.timeout(1.0)
        v = yield done  # fired long ago
        return v

    assert env.run(until=env.process(proc(env))) == "early"


def test_is_alive():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive
