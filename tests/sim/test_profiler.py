"""The event-loop profiler: observation without perturbation."""

import json

import pytest

from repro.profile import EventLoopProfiler, profiling, site_name
from repro.sim import Environment, SimulationError
from repro.sim import core as sim_core


def _run_scenario(env):
    """A small deterministic workload with three distinct callback sites."""
    order = []

    def site_a(ev):
        order.append(("a", env.now))

    def site_b(ev):
        order.append(("b", env.now))

    for d in (1.0, 1.0, 2.0, 3.0):
        env.timeout(d).callbacks.append(site_a)
    for d in (2.0, 4.5):
        env.timeout(d).callbacks.append(site_b)
    env.schedule_batch([5.0, 5.0], callback=site_a)
    env.run()
    return order


def test_profiler_does_not_perturb_the_simulation():
    plain_env = Environment()
    plain = _run_scenario(plain_env)

    prof_env = Environment()
    prof = EventLoopProfiler()
    prof.attach(prof_env)
    profiled = _run_scenario(prof_env)

    assert profiled == plain
    assert prof_env.now == plain_env.now
    assert prof_env.events_processed == plain_env.events_processed


def test_profiler_deterministic_counts():
    """Event counts, sim attribution, and the depth histogram are pure
    functions of the scenario — identical across runs."""
    reports = []
    for _ in range(2):
        env = Environment()
        prof = EventLoopProfiler()
        prof.attach(env)
        _run_scenario(env)
        rep = prof.report()
        # Strip the wall-clock columns, the only nondeterministic part.
        for row in rep["sites"]:
            row.pop("wall_seconds")
            row.pop("wall_pct")
        rep.pop("wall_seconds_in_callbacks")
        reports.append(rep)
    assert reports[0] == reports[1]


def test_profiler_site_attribution():
    env = Environment()
    prof = EventLoopProfiler()
    prof.attach(env)
    _run_scenario(env)
    rep = prof.report()
    assert rep["schema"] == "repro-profile/1"
    assert rep["events"] == env.events_processed == 8
    names = {r["site"]: r for r in rep["sites"]}
    a = next(v for k, v in names.items() if k.endswith("site_a"))
    b = next(v for k, v in names.items() if k.endswith("site_b"))
    assert a["events"] == 6
    assert b["events"] == 2
    # Sim-time gaps attribute to the first callback of each event;
    # total attributed sim time is the final clock (monotone scenario).
    assert a["sim_seconds"] + b["sim_seconds"] == env.now


def test_profiler_sim_gap_goes_to_first_callback():
    env = Environment()
    prof = EventLoopProfiler()
    prof.attach(env)

    def first(ev):
        pass

    def second(ev):
        pass

    ev = env.timeout(3.0)
    ev.callbacks.append(first)
    ev.callbacks.append(second)
    env.run()
    rows = {r["site"]: r for r in prof.report()["sites"]}
    f = next(v for k, v in rows.items() if k.endswith("first"))
    s = next(v for k, v in rows.items() if k.endswith("second"))
    assert f["sim_seconds"] == 3.0
    assert s["sim_seconds"] == 0.0


def test_profiler_queue_depth_histogram():
    env = Environment()
    prof = EventLoopProfiler()
    prof.attach(env)
    for d in (1.0, 2.0, 3.0):
        env.timeout(d)
    env.run()
    hist = prof.report()["queue_depth_hist"]
    # Pops happen at depths 2, 1, 0 (depth sampled after the pop).
    assert hist == {"0": 1, "1": 1, "2-3": 1}


def test_profiling_context_manager_hooks_new_envs():
    with profiling() as prof:
        env = Environment()
        assert env._profiler is prof
        _run_scenario(env)
    assert env._profiler is None
    assert sim_core.ENV_CREATED_HOOK is None
    assert prof.report()["events"] == 8


def test_profiling_context_manager_explicit_env():
    env = Environment()
    with profiling(env) as prof:
        _run_scenario(env)
    assert env._profiler is None
    assert prof.report()["events"] == 8
    # Environments created *outside* the explicit-env form are untouched.
    assert Environment()._profiler is None


def test_profiling_chains_previous_hook():
    seen = []
    hook = seen.append
    prev = sim_core.ENV_CREATED_HOOK
    sim_core.ENV_CREATED_HOOK = hook
    try:
        with profiling() as prof:
            env = Environment()
            assert env._profiler is prof
        assert seen == [env]                    # previous hook still ran
        assert sim_core.ENV_CREATED_HOOK is hook
    finally:
        sim_core.ENV_CREATED_HOOK = prev


def test_profiler_preserves_exception_semantics():
    """A failing un-defused event raises through the profiled step just
    as through the plain one."""
    env = Environment()
    prof = EventLoopProfiler()
    prof.attach(env)
    ev = env.timeout(1.0)
    ev.callbacks.append(lambda e: (_ for _ in ()).throw(RuntimeError("boom")))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_report_json_round_trips():
    env = Environment()
    prof = EventLoopProfiler()
    prof.attach(env)
    _run_scenario(env)
    rep = json.loads(prof.report_json(top=2))
    assert rep["schema"] == "repro-profile/1"
    assert len(rep["sites"]) <= 2
    summ = prof.summary(top=1)
    assert summ["events"] == 8
    assert len(summ["top_sites"]) == 1


def test_site_name_formats():
    def f(ev):
        pass

    name = site_name(f)
    # file:line:qualname — the qualname of a nested function ends ".f".
    assert name.endswith(".f") and "test_profiler" in name
    # C callables without __code__ fall back to a type-derived name.
    assert site_name(len).startswith("<")
