"""Unit tests for the fluid task pool."""

import pytest

from repro.sim import Environment, FluidPool, FluidTask, SimulationError


def equal_share_allocator(capacity):
    """Divide ``capacity`` units/s equally among resident tasks."""

    def allocate(tasks):
        share = capacity / len(tasks)
        for t in tasks:
            t.rate = share

    return allocate


def test_single_task_duration():
    env = Environment()
    pool = FluidPool(env, equal_share_allocator(10.0))
    task = FluidTask(env, work=50.0)
    pool.add(task)
    env.run(until=task.done)
    assert env.now == pytest.approx(5.0)


def test_two_tasks_share_equally():
    env = Environment()
    pool = FluidPool(env, equal_share_allocator(10.0))
    a = FluidTask(env, work=50.0)
    b = FluidTask(env, work=50.0)
    pool.add(a)
    pool.add(b)
    env.run()
    # Each progresses at 5 units/s throughout.
    assert env.now == pytest.approx(10.0)


def test_late_arrival_slows_first_task():
    env = Environment()
    pool = FluidPool(env, equal_share_allocator(10.0))
    a = FluidTask(env, work=100.0)
    pool.add(a)
    finish_times = {}
    a.done.callbacks.append(lambda ev: finish_times.__setitem__("a", env.now))

    def late(env):
        yield env.timeout(5.0)  # a has drained 50 units alone
        b = FluidTask(env, work=25.0)
        pool.add(b)
        yield b.done
        finish_times["b"] = env.now

    env.process(late(env))
    env.run()
    # From t=5: both at 5 units/s. b (25 units) finishes at t=10;
    # a has 50-25=25 left, then runs alone at 10/s -> t=12.5.
    assert finish_times["b"] == pytest.approx(10.0)
    assert finish_times["a"] == pytest.approx(12.5)


def test_early_finisher_speeds_up_survivor():
    env = Environment()
    pool = FluidPool(env, equal_share_allocator(10.0))
    short = FluidTask(env, work=10.0)
    long = FluidTask(env, work=100.0)
    pool.add(short)
    pool.add(long)
    env.run(until=long.done)
    # Shared until t=2 (short drains 10 at 5/s; long drains 10),
    # then long runs alone: 90 left at 10/s -> t=11.
    assert env.now == pytest.approx(11.0)


def test_cancel_returns_remaining_work():
    env = Environment()
    pool = FluidPool(env, equal_share_allocator(10.0))
    task = FluidTask(env, work=100.0)
    pool.add(task)
    env.run(until=3.0)
    remaining = pool.cancel(task)
    assert remaining == pytest.approx(70.0)
    assert len(pool) == 0


def test_cancel_non_resident_rejected():
    env = Environment()
    pool = FluidPool(env, equal_share_allocator(1.0))
    task = FluidTask(env, work=1.0)
    with pytest.raises(SimulationError):
        pool.cancel(task)


def test_double_add_rejected():
    env = Environment()
    pool = FluidPool(env, equal_share_allocator(1.0))
    task = FluidTask(env, work=1.0)
    pool.add(task)
    with pytest.raises(SimulationError):
        pool.add(task)


def test_zero_work_task_completes_immediately():
    env = Environment()
    pool = FluidPool(env, equal_share_allocator(1.0))
    task = FluidTask(env, work=0.0)
    pool.add(task)
    assert task.done.triggered


def test_negative_work_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        FluidTask(env, work=-1.0)


def test_starved_task_waits_for_poke():
    env = Environment()
    capacity = {"value": 0.0}

    def allocate(tasks):
        for t in tasks:
            t.rate = capacity["value"] / len(tasks)

    pool = FluidPool(env, allocate)
    task = FluidTask(env, work=10.0)
    pool.add(task)
    env.run(until=5.0)
    assert not task.done.triggered

    capacity["value"] = 10.0
    pool.poke()
    env.run(until=task.done)
    assert env.now == pytest.approx(6.0)


def test_work_conservation():
    env = Environment()
    pool = FluidPool(env, equal_share_allocator(7.0))
    total = 0.0
    for w in (5.0, 13.0, 2.5, 40.0):
        pool.add(FluidTask(env, work=w))
        total += w
    env.run()
    assert pool.work_drained == pytest.approx(total)


def test_progress_property():
    env = Environment()
    pool = FluidPool(env, equal_share_allocator(10.0))
    task = FluidTask(env, work=100.0)
    pool.add(task)
    env.run(until=4.0)
    pool.poke()  # force progress accounting
    assert task.progress == pytest.approx(0.4)


class CountingAllocator:
    """Equal-share allocator that records every invocation."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.calls = 0

    def __call__(self, tasks):
        self.calls += 1
        share = self.capacity / len(tasks)
        for t in tasks:
            t.rate = share


def test_poke_on_empty_pool_skips_allocator():
    env = Environment()
    alloc = CountingAllocator(10.0)
    pool = FluidPool(env, alloc)
    pool.poke()
    pool.poke()
    assert alloc.calls == 0


def test_zero_work_add_skips_allocator():
    # An instant-finish task never becomes resident, so the allocator
    # must not run for it (empty -> empty membership).
    env = Environment()
    alloc = CountingAllocator(10.0)
    pool = FluidPool(env, alloc)
    task = FluidTask(env, work=0.0)
    pool.add(task)
    assert task.done.triggered
    assert alloc.calls == 0
    assert len(pool) == 0


def test_zero_work_add_does_not_disturb_resident_tasks():
    env = Environment()
    alloc = CountingAllocator(10.0)
    pool = FluidPool(env, alloc)
    resident = FluidTask(env, work=50.0)
    pool.add(resident)
    calls_before = alloc.calls
    flash = FluidTask(env, work=0.0)
    pool.add(flash)
    assert flash.done.triggered
    assert alloc.calls == calls_before  # membership unchanged: no realloc
    env.run(until=resident.done)
    assert env.now == pytest.approx(5.0)


def test_instant_finish_task_succeeds_exactly_once():
    # Regression: an instant-finish task used to stay resident and be
    # finished a second time by the next advance (double succeed).
    env = Environment()
    pool = FluidPool(env, equal_share_allocator(10.0))
    flash = FluidTask(env, work=0.0)
    slow = FluidTask(env, work=20.0)
    pool.add(flash)
    pool.add(slow)
    env.run(until=slow.done)  # would raise SimulationError before the fix
    assert env.now == pytest.approx(2.0)


def test_unchanged_membership_skips_reallocation():
    env = Environment()
    alloc = CountingAllocator(10.0)
    pool = FluidPool(env, alloc)
    pool.add(FluidTask(env, work=30.0))
    pool.add(FluidTask(env, work=30.0))
    calls_after_adds = alloc.calls
    env.run(until=2.0)
    # No membership change between t=0 and t=2: the wakeup machinery may
    # advance the pool but must not re-invoke the allocator.
    assert alloc.calls == calls_after_adds
    env.run()
    assert pool.work_drained == pytest.approx(60.0)


def test_poke_forces_reallocation_when_capacity_changes():
    env = Environment()
    alloc = CountingAllocator(10.0)
    pool = FluidPool(env, alloc)
    task = FluidTask(env, work=100.0)
    pool.add(task)
    env.run(until=5.0)
    alloc.capacity = 20.0
    pool.poke()  # same membership, but poke signals external change
    env.run(until=task.done)
    # 50 units drained by t=5, the rest at 20/s -> t=7.5.
    assert env.now == pytest.approx(7.5)


def test_allocator_negative_rate_rejected():
    env = Environment()

    def bad(tasks):
        for t in tasks:
            t.rate = -1.0

    pool = FluidPool(env, bad)
    with pytest.raises(SimulationError):
        pool.add(FluidTask(env, work=1.0))


def test_work_conservation_at_scale_with_tiny_tasks():
    """Compensated accumulation: many tiny drains into a large total.

    A naive running sum loses increments once the total outgrows them;
    the pool's Kahan accumulator keeps conservation tight however many
    tasks drain (the regression this guards appeared first in
    million-request trace-serving runs).
    """
    env = Environment()
    pool = FluidPool(env, equal_share_allocator(1e9))

    def churn(env):
        # One huge task to grow the total, then a stream of tiny ones.
        big = FluidTask(env, work=1e9)
        pool.add(big)
        yield big.done
        for _ in range(20_000):
            t = FluidTask(env, work=1e-3)
            pool.add(t)
            yield t.done

    env.run(until=env.process(churn(env)))
    expected = 1e9 + 20_000 * 1e-3
    assert pool.work_drained == pytest.approx(expected, rel=1e-12)


def test_on_change_hook_sees_every_mutation():
    env = Environment()
    seen = []
    pool = FluidPool(env, equal_share_allocator(10.0),
                     on_change=lambda t, added: seen.append((t.tid, added)))
    a = FluidTask(env, work=5.0)
    b = FluidTask(env, work=50.0)
    pool.add(a)
    pool.add(b)
    env.run(until=a.done)          # a drains -> removal via _advance
    pool.cancel(b)                 # explicit eviction
    assert seen == [(a.tid, True), (b.tid, True),
                    (a.tid, False), (b.tid, False)]
