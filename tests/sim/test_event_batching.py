"""Batched scheduling and batched-drain edge cases.

``schedule_batch`` and the inlined drain loops (same-timestamp batch
popping) are pure speedups: every test here pins their observable
behaviour to what per-event ``timeout`` + ``step`` would have done.
"""

import numpy as np
import pytest

from repro.sim import Environment, SimulationError


# ------------------------------------------------------------ schedule_batch

def test_schedule_batch_matches_individual_timeouts():
    """Same times via schedule_batch and via timeout() process in the
    same order with the same clock trajectory."""
    times = [1.0, 2.0, 2.0, 3.5, 3.5, 3.5, 10.0]

    ref_env = Environment()
    ref = []
    for i, t in enumerate(times):
        ev = ref_env.timeout(t)
        ev.callbacks.append(lambda e, i=i: ref.append((ref_env.now, i)))
    ref_env.run()

    env = Environment()
    got = []
    events = env.schedule_batch(times)
    for i, ev in enumerate(events):
        ev.callbacks.append(lambda e, i=i: got.append((env.now, i)))
    env.run()

    assert got == ref
    assert env.now == ref_env.now
    assert env.events_processed == ref_env.events_processed


def test_schedule_batch_event_value_is_timestamp():
    env = Environment()
    seen = []
    env.schedule_batch([0.5, 1.5], callback=lambda ev: seen.append(ev.value))
    env.run()
    assert seen == [0.5, 1.5]


def test_schedule_batch_accepts_numpy_array():
    env = Environment()
    seen = []
    env.schedule_batch(np.array([1.0, 2.0, 3.0]),
                       callback=lambda ev: seen.append(env.now))
    env.run()
    assert seen == [1.0, 2.0, 3.0]


def test_schedule_batch_interleaves_with_existing_events():
    """Batch events merge correctly into a non-empty heap."""
    env = Environment()
    order = []
    for d in (0.5, 2.5, 9.0):
        env.timeout(d).callbacks.append(
            lambda e, d=d: order.append(("timeout", d)))
    env.schedule_batch([1.0, 2.5, 8.0],
                       callback=lambda ev: order.append(("batch", ev.value)))
    env.run()
    assert order == [("timeout", 0.5), ("batch", 1.0), ("timeout", 2.5),
                     ("batch", 2.5), ("batch", 8.0), ("timeout", 9.0)]


def test_schedule_batch_same_time_later_enqueue_processes_after():
    """An event enqueued *after* the batch at one of the batch's
    timestamps processes after the whole batch at that timestamp —
    exactly as with individual scheduling."""
    env = Environment()
    order = []
    env.schedule_batch([1.0, 1.0], callback=lambda ev: order.append("batch"))
    env.timeout(1.0).callbacks.append(lambda e: order.append("later"))
    env.run()
    assert order == ["batch", "batch", "later"]


def test_schedule_batch_callback_scheduling_at_same_time():
    """A batch callback that enqueues a new event at the *current*
    timestamp: the new event still runs (same timestamp batch pop must
    re-check the heap), after the remaining batch events."""
    env = Environment()
    order = []

    def cb(ev):
        order.append(("batch", ev.value))
        if ev.value == 1.0 and len(order) == 1:
            env.timeout(0.0).callbacks.append(
                lambda e: order.append(("child", env.now)))

    env.schedule_batch([1.0, 1.0], callback=cb)
    env.run()
    assert order == [("batch", 1.0), ("batch", 1.0), ("child", 1.0)]


def test_schedule_batch_rejects_decreasing_times():
    env = Environment()
    with pytest.raises(SimulationError, match="non-decreasing"):
        env.schedule_batch([1.0, 2.0, 1.5])


def test_schedule_batch_rejects_times_before_now():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(SimulationError, match="non-decreasing"):
        env.schedule_batch([4.0])


def test_schedule_batch_failed_call_leaves_queue_intact():
    """A rejected batch must not leave partial events behind (the heap
    would be unheapified garbage)."""
    env = Environment()
    env.timeout(3.0).callbacks.append(lambda e: None)
    seq_before = env._seq
    with pytest.raises(SimulationError):
        env.schedule_batch([1.0, 2.0, 0.5])
    assert len(env._queue) == 1
    assert env._seq == seq_before
    env.run()
    assert env.now == 3.0
    assert env.events_processed == 1


def test_schedule_batch_empty():
    env = Environment()
    assert env.schedule_batch([]) == []
    assert env.schedule_batch(np.empty(0)) == []
    env.run()
    assert env.events_processed == 0


# --------------------------------------------------- advance/step edge cases

def test_advance_event_exactly_at_horizon_is_processed():
    env = Environment()
    fired = []
    env.timeout(2.0).callbacks.append(lambda e: fired.append(env.now))
    env.advance(2.0)
    assert fired == [2.0]
    # advance never jumps the clock past the last event.
    assert env.now == 2.0


def test_advance_event_just_past_horizon_is_not_processed():
    env = Environment()
    fired = []
    env.timeout(2.0).callbacks.append(lambda e: fired.append(env.now))
    env.advance(2.0 - 1e-9)
    assert fired == []
    assert env.now == 0.0
    env.advance(2.0)
    assert fired == [2.0]


def test_advance_with_stop_already_processed_returns_true():
    env = Environment()
    stop = env.timeout(1.0)
    env.run(until=1.5)
    assert stop.processed
    fired = []
    env.timeout(2.0).callbacks.append(lambda e: fired.append(env.now))
    assert env.advance(10.0, stop=stop) is True
    # Nothing was processed: the stop condition held before the loop.
    assert fired == []


def test_advance_stop_halts_midway_same_timestamp():
    """The event after the stop event — even at the same timestamp —
    must not be processed early."""
    env = Environment()
    order = []
    env.timeout(1.0).callbacks.append(lambda e: order.append("a"))
    stop = env.timeout(1.0)
    stop.callbacks.append(lambda e: order.append("stop"))
    env.timeout(1.0).callbacks.append(lambda e: order.append("b"))
    assert env.advance(5.0, stop=stop) is True
    assert order == ["a", "stop"]
    env.advance(5.0)
    assert order == ["a", "stop", "b"]


def test_same_timestamp_batch_pop_preserves_seq_order():
    """The drain's same-timestamp inner loop pops strictly in sequence
    order across priorities and sources."""
    env = Environment()
    order = []
    n = 50
    for i in range(n):
        env.timeout(1.0).callbacks.append(lambda e, i=i: order.append(i))
    env.run()
    assert order == list(range(n))


def test_pooled_events_recycled_under_batch_pop():
    """timeout_pooled events popped in a same-timestamp batch go back
    to the free list and are reborn correctly."""
    env = Environment()
    fired = []
    evs = [env.timeout_pooled(1.0) for _ in range(8)]
    for i, ev in enumerate(evs):
        ev.callbacks.append(lambda e, i=i: fired.append(i))
    env.run()
    assert fired == list(range(8))
    assert len(env._tpool) == 8
    # Rebirth: the recycled objects are reused, state fully reset.
    again = [env.timeout_pooled(1.0) for _ in range(8)]
    assert set(map(id, again)) == set(map(id, evs))
    for ev in again:
        ev.callbacks.append(lambda e: fired.append("again"))
    env.run()
    assert fired[8:] == ["again"] * 8


def test_pool_limit_respected_under_batch_pop():
    env = Environment()
    n = Environment._POOL_LIMIT + 10
    for _ in range(n):
        env.timeout_pooled(1.0)
    env.run()
    assert len(env._tpool) == Environment._POOL_LIMIT


def test_advance_in_epochs_identical_to_single_run():
    """Epoch-sliced advance == one run: same clock, same event count."""
    def build():
        env = Environment()
        order = []
        env.schedule_batch([0.5, 1.0, 1.0, 2.5, 4.0],
                           callback=lambda ev: order.append(ev.value))
        return env, order

    env1, order1 = build()
    env1.run()

    env2, order2 = build()
    for h in (0.7, 1.0, 1.3, 5.0):
        env2.advance(h)
    assert order2 == order1
    assert env2.now == 4.0
    assert env2.events_processed == env1.events_processed
