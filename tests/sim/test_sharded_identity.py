"""Differential harness: sharded simulation is bit-identical.

Three families of checks, each comparing *complete* deterministic
payloads (cells, merged counters, merged-stream digest, replayed
latency stats — everything except the ``execution`` section):

- a one-cell sharded run equals the legacy single-process engine
  verbatim, for every fleet mode, with and without a fault plan;
- a multi-cell run is invariant in shard count (1, 2, 7), in pooled vs
  in-process execution, and in epoch-barrier spacing;
- the same holds for the scale and autoscale scenarios.

Results are compared as sorted-key JSON dumps so a failure diff names
the exact divergent field.
"""

from __future__ import annotations

import json
from functools import lru_cache

import pytest

from repro.workloads.shardcells import (
    sharded_autoscale_report,
    sharded_fleet_report,
    sharded_scale_report,
)

SHARD_COUNTS = (1, 2, 7)

#: Small fleet topology: 2 partitions x 2 replicas keeps each run under
#: a couple of seconds while still exercising routing, chaos, and MIG
#: fault domains.
FLEET_KW = dict(n_partitions=2, servers_per_partition=2)
FLEET_REQUESTS = 100
FLEET_RATE = 3.4

SCALE_REQUESTS = 200  # -> 112 requests (1 per server) per cell
AUTOSCALE_HORIZON = 200.0


def payload(report: dict) -> str:
    """The deterministic half of a sharded report, canonically dumped."""
    return json.dumps({k: v for k, v in report.items() if k != "execution"},
                      sort_keys=True, default=repr)


@lru_cache(maxsize=None)
def fleet_sharded(mode: str, chaos: bool, n_cells: int, n_shards: int,
                  seed: int, use_processes: bool,
                  epoch_seconds: float = 60.0) -> str:
    return payload(sharded_fleet_report(
        mode, FLEET_REQUESTS, n_cells=n_cells, n_shards=n_shards,
        rate_rps=FLEET_RATE, seed=seed, chaos=chaos,
        epoch_seconds=epoch_seconds, use_processes=use_processes,
        **FLEET_KW))


# -- fleet: one cell == legacy engine ---------------------------------------

@pytest.mark.parametrize("mode", ("mig-mps", "mps", "timeshare"))
@pytest.mark.parametrize("chaos", (False, True),
                         ids=("no-faults", "chaos"))
def test_one_cell_matches_legacy_fleet(mode, chaos):
    from repro.bench.resilience_experiments import (
        canonical_fault_plan,
        run_resilient_fleet,
    )

    plan = (canonical_fault_plan(FLEET_REQUESTS / FLEET_RATE, seed=0)
            if chaos else None)
    legacy = run_resilient_fleet(mode, FLEET_REQUESTS, rate_rps=FLEET_RATE,
                                 seed=0, plan=plan, **FLEET_KW)
    sharded = sharded_fleet_report(mode, FLEET_REQUESTS, n_cells=1,
                                   n_shards=1, rate_rps=FLEET_RATE, seed=0,
                                   chaos=chaos, use_processes=False,
                                   **FLEET_KW)
    assert sharded["cells"][0] == legacy


def test_one_cell_pooled_matches_legacy_fleet():
    """``--shards 1`` in a real worker process still equals legacy."""
    from repro.bench.resilience_experiments import run_resilient_fleet

    legacy = run_resilient_fleet("mig-mps", FLEET_REQUESTS,
                                 rate_rps=FLEET_RATE, seed=0, **FLEET_KW)
    sharded = sharded_fleet_report("mig-mps", FLEET_REQUESTS, n_cells=1,
                                   n_shards=1, rate_rps=FLEET_RATE, seed=0,
                                   use_processes=True, **FLEET_KW)
    assert sharded["cells"][0] == legacy


# -- fleet: shard-count / epoch invariance ----------------------------------

@pytest.mark.parametrize("mode", ("mig-mps", "mps", "timeshare"))
@pytest.mark.parametrize("chaos", (False, True),
                         ids=("no-faults", "chaos"))
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_fleet_shard_count_invariance(mode, chaos, n_shards):
    reference = fleet_sharded(mode, chaos, 3, 1, 0, False)
    assert fleet_sharded(mode, chaos, 3, n_shards, 0, True) == reference


@pytest.mark.parametrize("seed", (0, 11))
def test_fleet_seed_sensitivity_and_stability(seed):
    """Twin runs agree; different seeds genuinely differ."""
    twin_a = fleet_sharded("mig-mps", True, 2, 2, seed, True)
    twin_b = payload(sharded_fleet_report(
        "mig-mps", FLEET_REQUESTS, n_cells=2, n_shards=2,
        rate_rps=FLEET_RATE, seed=seed, chaos=True, **FLEET_KW))
    assert twin_a == twin_b
    other = fleet_sharded("mig-mps", True, 2, 2, seed + 1, True)
    assert twin_a != other


def test_fleet_epoch_length_invariance():
    reference = fleet_sharded("mig-mps", True, 3, 1, 0, False)
    assert fleet_sharded("mig-mps", True, 3, 2, 0, True,
                         epoch_seconds=17.0) == reference


def test_adding_a_cell_never_perturbs_existing_cells():
    """Cell seeds come from named substreams: growing the fleet from 2
    to 3 cells leaves cells 0 and 1 bit-identical."""
    small = sharded_fleet_report("mig-mps", FLEET_REQUESTS, n_cells=2,
                                 n_shards=1, rate_rps=FLEET_RATE, seed=0,
                                 use_processes=False, **FLEET_KW)
    large = sharded_fleet_report("mig-mps", FLEET_REQUESTS, n_cells=3,
                                 n_shards=1, rate_rps=FLEET_RATE, seed=0,
                                 use_processes=False, **FLEET_KW)
    assert large["cells"][:2] == small["cells"]


# -- scale scenario ----------------------------------------------------------

def test_one_cell_matches_legacy_scale_engine():
    from repro.bench.scale_experiments import trace_serving_scale

    legacy = trace_serving_scale("streaming", SCALE_REQUESTS, seed=3,
                                 isolate=False)
    # Wall clock and RSS are measurements of the run, not of the model.
    for key in ("wall_seconds", "events_per_sec", "rss_growth_kb"):
        legacy.pop(key)
    sharded = sharded_scale_report(1, 1, SCALE_REQUESTS, seed=3,
                                   use_processes=False)
    assert sharded["cells"][0] == legacy


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_scale_shard_count_invariance(n_shards):
    reference = scale_payload(3, 1, False, 60.0)
    assert scale_payload(3, n_shards, True, 60.0) == reference


def test_scale_epoch_length_invariance():
    assert scale_payload(3, 2, True, 13.0) == scale_payload(3, 1, False,
                                                            60.0)


@lru_cache(maxsize=None)
def scale_payload(n_cells: int, n_shards: int, use_processes: bool,
                  epoch_seconds: float) -> str:
    return payload(sharded_scale_report(
        n_cells, n_shards, SCALE_REQUESTS, seed=0,
        epoch_seconds=epoch_seconds, use_processes=use_processes))


# -- autoscale scenario ------------------------------------------------------

def test_one_cell_matches_legacy_autoscale():
    from repro.bench.autoscale_experiments import (
        STATIC_SMALL,
        run_autoscale_fleet,
    )

    legacy = run_autoscale_fleet(AUTOSCALE_HORIZON, True, STATIC_SMALL,
                                 seed=0)
    sharded = sharded_autoscale_report(AUTOSCALE_HORIZON, True,
                                       STATIC_SMALL, n_cells=1, n_shards=1,
                                       seed=0, use_processes=False)
    assert sharded["cells"][0] == legacy


@pytest.mark.parametrize("n_shards", (1, 2))
def test_autoscale_shard_count_invariance(n_shards):
    from repro.bench.autoscale_experiments import STATIC_SMALL

    reference = payload(sharded_autoscale_report(
        AUTOSCALE_HORIZON, True, STATIC_SMALL, n_cells=2, n_shards=1,
        seed=0, use_processes=False))
    pooled = payload(sharded_autoscale_report(
        AUTOSCALE_HORIZON, True, STATIC_SMALL, n_cells=2,
        n_shards=n_shards, seed=0, use_processes=True))
    assert pooled == reference


def test_merged_stream_is_complete_and_ordered():
    """The merged stream carries every completion exactly once, in
    canonical (time, cell_id) order."""
    out = sharded_fleet_report("mig-mps", FLEET_REQUESTS, n_cells=3,
                               n_shards=2, rate_rps=FLEET_RATE, seed=0,
                               **FLEET_KW)
    events = out["events"]
    assert len(events) == out["merged"]["n_events"] == \
        sum(c["latency"]["count"] for c in out["cells"])
    times = [ev[0] for ev in events]
    assert times == sorted(times)
