"""Unit tests for the DES kernel: clock, events, combinators."""

import pytest

from repro.sim import Environment, SimulationError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(3.5)
    env.run()
    assert env.now == 3.5


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()
    seen = []

    def proc(env):
        v = yield env.timeout(1.0, value="payload")
        seen.append(v)

    env.process(proc(env))
    env.run()
    assert seen == ["payload"]


def test_events_fire_in_time_order():
    env = Environment()
    order = []
    for delay in (5.0, 1.0, 3.0):
        ev = env.timeout(delay)
        ev.callbacks.append(lambda e, d=delay: order.append(d))
    env.run()
    assert order == [1.0, 3.0, 5.0]


def test_same_time_events_fire_in_creation_order():
    env = Environment()
    order = []
    for i in range(10):
        ev = env.timeout(1.0)
        ev.callbacks.append(lambda e, i=i: order.append(i))
    env.run()
    assert order == list(range(10))


def test_event_succeed_once_only():
    env = Environment()
    ev = env.event()
    ev.succeed(42)
    with pytest.raises(SimulationError):
        ev.succeed(43)


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_run_until_time_stops_exactly():
    env = Environment()
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0
    env.run()
    assert env.now == 10.0


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=2.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"
    assert env.now == 2.0


def test_run_until_event_that_never_fires():
    env = Environment()
    orphan = env.event()
    env.timeout(1.0)
    with pytest.raises(SimulationError):
        env.run(until=orphan)


def test_all_of_collects_all_values():
    env = Environment()
    evs = [env.timeout(d, value=d) for d in (1.0, 2.0, 3.0)]
    result = env.run(until=env.all_of(evs))
    assert sorted(result.values()) == [1.0, 2.0, 3.0]
    assert env.now == 3.0


def test_any_of_fires_on_first():
    env = Environment()
    evs = [env.timeout(d, value=d) for d in (5.0, 1.0)]
    result = env.run(until=env.any_of(evs))
    assert list(result.values()) == [1.0]
    assert env.now == 1.0


def test_all_of_empty_fires_immediately():
    env = Environment()
    cond = env.all_of([])
    assert cond.triggered


def test_all_of_mixed_processed_and_pending():
    """Regression: processed constituents must not fire an AllOf early."""
    env = Environment()
    early = [env.timeout(1.0, value=i) for i in range(3)]
    env.run(until=2.0)  # the three early events are processed now
    late = env.timeout(5.0, value="late")
    cond = env.all_of(early + [late])
    assert not cond.triggered
    result = env.run(until=cond)
    assert env.now == pytest.approx(7.0)
    assert sorted(map(str, result.values())) == ["0", "1", "2", "late"]


def test_all_of_processed_failure_decides_immediately():
    env = Environment()
    bad = env.event()
    bad.fail(RuntimeError("early failure"))
    bad._defused = True
    env.run(until=0.5)
    pending = env.timeout(5.0)
    cond = env.all_of([bad, pending])
    cond._defused = True
    assert cond.triggered and not cond.ok


def test_any_of_with_processed_event_fires_immediately():
    env = Environment()
    done = env.timeout(1.0, value="first")
    env.run(until=2.0)
    pending = env.timeout(100.0)
    cond = env.any_of([done, pending])
    assert cond.triggered and cond.ok
    assert list(cond.value.values()) == ["first"]


def test_unhandled_failed_event_raises_from_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_mixing_environments_rejected():
    env1, env2 = Environment(), Environment()
    ev2 = env2.event()
    with pytest.raises(SimulationError):
        env1.all_of([ev2])


def test_schedule_callback():
    env = Environment()
    hits = []
    env.schedule_callback(2.0, lambda: hits.append(env.now))
    env.run()
    assert hits == [2.0]


def test_peek():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(7.0)
    assert env.peek() == 7.0
