"""Tests for named deterministic RNG streams."""

import numpy as np
import pytest

from repro.sim import RngRegistry
from repro.sim.rng import substream_seed


def test_same_seed_same_stream():
    a = RngRegistry(seed=42).stream("arrivals").normal(size=16)
    b = RngRegistry(seed=42).stream("arrivals").normal(size=16)
    assert np.array_equal(a, b)


def test_streams_are_independent_by_name():
    registry = RngRegistry(seed=0)
    a = registry.stream("arrivals").normal(size=64)
    b = registry.stream("failures").normal(size=64)
    assert not np.array_equal(a, b)
    # Statistically uncorrelated (loose sanity bound).
    assert abs(np.corrcoef(a, b)[0, 1]) < 0.5


def test_stream_is_cached_not_recreated():
    registry = RngRegistry(seed=0)
    s1 = registry.stream("x")
    first = s1.normal(size=4)
    s2 = registry.stream("x")
    assert s1 is s2
    # The cached stream continues rather than restarting.
    assert not np.array_equal(first, s2.normal(size=4))


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("s").normal(size=16)
    b = RngRegistry(seed=2).stream("s").normal(size=16)
    assert not np.array_equal(a, b)


def test_reset_rederives_from_seed():
    registry = RngRegistry(seed=7)
    first = registry.stream("s").normal(size=8)
    registry.reset()
    again = registry.stream("s").normal(size=8)
    assert np.array_equal(first, again)


def test_ordering_of_stream_creation_is_irrelevant():
    r1 = RngRegistry(seed=5)
    r1.stream("a")
    b_after_a = r1.stream("b").normal(size=8)
    r2 = RngRegistry(seed=5)
    b_first = r2.stream("b").normal(size=8)
    assert np.array_equal(b_after_a, b_first)


# -- spawn_key-style substream derivation ------------------------------------

def test_substream_seed_pinned_draws():
    """Exact pinned values: the derivation is part of the deterministic
    contract — a change here silently invalidates every recorded
    sharded-run digest, so it must fail loudly instead."""
    assert substream_seed(0, "fleet-cell", 1) == 4595503360141647987
    assert substream_seed(0, "fleet-cell", 2) == 9097030627395976567
    assert substream_seed(42, "scale", 3) == 3949590586571999657
    assert substream_seed(7, "autoscale-hot", 1) == 4091064817082521644


def test_registry_stream_pinned_draws():
    """The registry's per-name derivation is pinned the same way."""
    draws = RngRegistry(seed=42).stream("arrivals").integers(
        0, 1_000_000, size=4)
    assert list(draws) == [954422, 110283, 316123, 254795]
    draws = RngRegistry(seed=0).stream("failures").integers(
        0, 1_000_000, size=4)
    assert list(draws) == [251842, 785108, 227982, 623491]


def test_substream_depends_on_every_path_component():
    base = substream_seed(3, "cell", 0)
    assert substream_seed(4, "cell", 0) != base      # root
    assert substream_seed(3, "cellx", 0) != base     # name
    assert substream_seed(3, "cell", 1) != base      # index


def test_long_names_never_collide():
    """Regression: the pre-fix scheme truncated names to 8 bytes, so
    long names sharing a prefix aliased the same stream."""
    a = substream_seed(0, "partition1-arrivals")
    b = substream_seed(0, "partition2-arrivals")
    assert a != b
    r = RngRegistry(seed=0)
    x = r.stream("partition1-arrivals").normal(size=16)
    y = r.stream("partition2-arrivals").normal(size=16)
    assert not np.array_equal(x, y)


def test_substream_seed_fits_every_seed_consumer():
    """63-bit non-negative: valid for numpy, random.Random, and every
    ``seed=`` parameter in the package."""
    import random

    for path in (("a",), ("fleet-cell", 7), ("x", "y", 123)):
        s = substream_seed(1234, *path)
        assert 0 <= s < 2 ** 63
        random.Random(s)
        np.random.default_rng(s)


def test_path_components_are_unambiguous():
    """("ab", "c") and ("a", "bc") are distinct paths — the separator
    byte keeps component boundaries in the hash."""
    assert substream_seed(0, "ab", "c") != substream_seed(0, "a", "bc")


# ------------------------------------------------------------- memoisation

def _cold(fn, *args):
    """Run ``fn`` with both derivation caches cleared first."""
    from repro.sim import rng as _rng

    _rng._SEED_CACHE.clear()
    _rng._SPAWN_KEY_CACHE.clear()
    return fn(*args)


def test_substream_seed_cached_equals_uncached():
    """Pinned-draw regression: the memoised derivation returns exactly
    the seed (and therefore exactly the generator stream) the cold
    sha256 + SeedSequence derivation produces."""
    from repro.sim import rng as _rng

    paths = [(0, "fleet-cell", 3), (42, "arrivals"), (7, "a", "b", 99)]
    cold = [_cold(substream_seed, root, *p) for root, *p in paths]
    # Same-process warm hits.
    warm = [substream_seed(root, *p) for root, *p in paths]
    assert cold == warm
    assert all((int(root),) + tuple(p) in _rng._SEED_CACHE
               for root, *p in paths)
    # The downstream draws — what consumers actually see — match too.
    a = np.random.default_rng(cold[0]).random(8)
    b = np.random.default_rng(warm[0]).random(8)
    assert np.array_equal(a, b)


def test_substream_seed_pinned_value():
    """The derivation itself must never drift: pin one known seed.
    (Changing this value silently re-seeds every named stream in every
    scenario — the bit-identity gates all move.)"""
    assert _cold(substream_seed, 0, "fleet-cell", 3) == \
        8061693004527610605
    # And the cached path returns the identical pin.
    assert substream_seed(0, "fleet-cell", 3) == 8061693004527610605


def test_spawn_key_cache_consistent():
    from repro.sim.rng import _spawn_key

    k_cold = _cold(_spawn_key, "fleet-cell", 3)
    k_warm = _spawn_key("fleet-cell", 3)
    assert k_cold == k_warm
    assert len(k_cold) == 8
    assert all(0 <= w < 2 ** 32 for w in k_cold)


def test_unhashable_path_elements_bypass_cache():
    """Lists (or any unhashable component) derive uncached — same
    result every time, nothing stored."""
    from repro.sim import rng as _rng

    s1 = _cold(substream_seed, 7, "a", [1, 2])
    s2 = substream_seed(7, "a", [1, 2])
    assert s1 == s2
    assert not _rng._SEED_CACHE          # nothing was cached
    assert not _rng._SPAWN_KEY_CACHE
    # str()-equal path (documented: derivation hashes str(component))
    # gives the same stream whether or not it is cacheable.
    assert s1 == substream_seed(7, "a", "[1, 2]")
