"""Tests for named deterministic RNG streams."""

import numpy as np
import pytest

from repro.sim import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(seed=42).stream("arrivals").normal(size=16)
    b = RngRegistry(seed=42).stream("arrivals").normal(size=16)
    assert np.array_equal(a, b)


def test_streams_are_independent_by_name():
    registry = RngRegistry(seed=0)
    a = registry.stream("arrivals").normal(size=64)
    b = registry.stream("failures").normal(size=64)
    assert not np.array_equal(a, b)
    # Statistically uncorrelated (loose sanity bound).
    assert abs(np.corrcoef(a, b)[0, 1]) < 0.5


def test_stream_is_cached_not_recreated():
    registry = RngRegistry(seed=0)
    s1 = registry.stream("x")
    first = s1.normal(size=4)
    s2 = registry.stream("x")
    assert s1 is s2
    # The cached stream continues rather than restarting.
    assert not np.array_equal(first, s2.normal(size=4))


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("s").normal(size=16)
    b = RngRegistry(seed=2).stream("s").normal(size=16)
    assert not np.array_equal(a, b)


def test_reset_rederives_from_seed():
    registry = RngRegistry(seed=7)
    first = registry.stream("s").normal(size=8)
    registry.reset()
    again = registry.stream("s").normal(size=8)
    assert np.array_equal(first, again)


def test_ordering_of_stream_creation_is_irrelevant():
    r1 = RngRegistry(seed=5)
    r1.stream("a")
    b_after_a = r1.stream("b").normal(size=8)
    r2 = RngRegistry(seed=5)
    b_first = r2.stream("b").normal(size=8)
    assert np.array_equal(b_after_a, b_first)
