"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Environment, Resource, SimulationError, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    granted = []

    def proc(env, name, hold):
        yield res.request()
        granted.append((env.now, name))
        yield env.timeout(hold)
        res.release()

    env.process(proc(env, "a", 5.0))
    env.process(proc(env, "b", 5.0))
    env.process(proc(env, "c", 5.0))
    env.run()
    assert granted == [(0.0, "a"), (0.0, "b"), (5.0, "c")]


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=3)

    def proc(env):
        yield res.request(2)

    env.process(proc(env))
    env.run()
    assert res.in_use == 2
    assert res.available == 1
    res.release(2)
    assert res.in_use == 0


def test_resource_over_release_rejected():
    env = Environment()
    res = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_request_over_capacity_rejected():
    env = Environment()
    res = Resource(env, capacity=2)
    with pytest.raises(ValueError):
        res.request(3)


def test_resource_fifo_no_bypass():
    env = Environment()
    res = Resource(env, capacity=2)
    order = []

    def proc(env, name, amount):
        yield res.request(amount)
        order.append(name)
        res.release(amount)

    # 'big' needs both units and arrives first; 'small' must not bypass it.
    def setup(env):
        yield res.request(1)  # occupy one unit
        env.process(proc(env, "big", 2))
        env.process(proc(env, "small", 1))
        yield env.timeout(1.0)
        res.release(1)

    env.process(setup(env))
    env.run()
    assert order == ["big", "small"]


def test_resource_cancel_request():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        yield res.request()
        yield env.timeout(10.0)
        res.release()

    env.process(holder(env))
    env.run(until=1.0)
    req = res.request()
    assert res.queue_length == 1
    req.cancel()
    assert res.queue_length == 0


def test_store_fifo():
    env = Environment()
    store = Store(env)
    out = []

    def producer(env):
        for i in range(3):
            yield env.timeout(1.0)
            yield store.put(i)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            out.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        log.append(("put-a", env.now))
        yield store.put("b")
        log.append(("put-b", env.now))

    def consumer(env):
        yield env.timeout(5.0)
        item = yield store.get()
        log.append((f"got-{item}", env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("put-a", 0.0), ("got-a", 5.0), ("put-b", 5.0)]


def test_store_get_blocks_until_item():
    env = Environment()
    store = Store(env)
    out = []

    def consumer(env):
        item = yield store.get()
        out.append((env.now, item))

    def producer(env):
        yield env.timeout(3.0)
        yield store.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert out == [(3.0, "x")]


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    env.run()
    assert len(store) == 2
