"""Soak tests: long steady-state runs stay bounded and linear."""

import time

import pytest

from repro.bench import run_llm_multiplexing
from repro.gpu import A100_80GB, MpsControlDaemon, SimulatedGPU
from repro.sim import Environment
from repro.workloads import (
    LLAMA2_7B,
    InferenceRuntime,
    InferenceServer,
    LlamaInference,
    OpenLoopClient,
)

FP16 = InferenceRuntime(dtype_bytes=2)


def test_fig4_scales_linearly_in_completions():
    """5x the work => ~5x the simulated time, same per-item latency
    (no drift, no superlinear event blowup)."""
    small = run_llm_multiplexing("mps", 4, n_completions=40)
    large = run_llm_multiplexing("mps", 4, n_completions=200)
    assert large.total_seconds == pytest.approx(
        5 * small.total_seconds, rel=0.05)
    assert large.mean_latency == pytest.approx(small.mean_latency,
                                               rel=0.02)


def test_long_serving_run_holds_state_bounded():
    """An hour of simulated serving leaves no residue in the device."""
    env = Environment()
    gpu = SimulatedGPU(env, A100_80GB)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    llm = LlamaInference(LLAMA2_7B, FP16)
    server = InferenceServer(env, daemon.client("s"), llm,
                             max_batch_size=4, batch_timeout=0.05)
    client = OpenLoopClient(env, server, rate_rps=0.4, n_requests=1000,
                            n_tokens=20)
    wall0 = time.monotonic()
    env.run(until=client.done)
    wall = time.monotonic() - wall0
    assert len(server.completed) == 1000
    assert len(gpu.pool) == 0  # nothing resident
    assert len(server._queue.items) == 0
    # 0 <= utilization <= 1 after tens of thousands of reallocations.
    assert 0.0 <= gpu.sm_utilization() <= 1.0 + 1e-9
    # And the whole hour of simulated serving costs modest wall time.
    assert wall < 30.0


def test_event_counts_stay_proportional():
    env = Environment()
    gpu = SimulatedGPU(env, A100_80GB)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    llm = LlamaInference(LLAMA2_7B, FP16)
    client = daemon.client("c")

    def decode(env, tokens):
        for _ in range(tokens):
            yield client.launch(llm.decode_kernel())
            yield env.timeout(llm.host_seconds_per_token)

    env.run(until=env.process(decode(env, 200)))
    events_200 = env.events_processed
    env2 = Environment()
    gpu2 = SimulatedGPU(env2, A100_80GB)
    daemon2 = MpsControlDaemon(gpu2)
    daemon2.start()
    client2 = daemon2.client("c")

    def decode2(env, tokens):
        for _ in range(tokens):
            yield client2.launch(llm.decode_kernel())
            yield env.timeout(llm.host_seconds_per_token)

    env2.run(until=env2.process(decode2(env2, 400)))
    # Twice the tokens, about twice the events (fluid model, not
    # time-stepped).
    assert env2.events_processed == pytest.approx(2 * events_200, rel=0.05)