"""Integration tests: full FaaS-over-GPU scenarios spanning modules."""

import pytest

from repro.faas import (
    ColdStartModel,
    ComputeNode,
    Config,
    DataFlowKernel,
    HighThroughputExecutor,
    LocalProvider,
    MonitoringHub,
    StaticProvider,
    gpu_app,
    python_app,
)
from repro.gpu import A100_40GB, A100_80GB, GpuOutOfMemory, Kernel
from repro.partition import EqualSharePolicy, GpuPartitionManager, WeightCache
from repro.sim import Environment
from repro.workloads import LLAMA2_7B, InferenceRuntime, LlamaInference

NO_COLD = ColdStartModel(function_init_seconds=0.0, gpu_context_seconds=0.0)
FP16 = InferenceRuntime(dtype_bytes=2)


def small_kernel(seconds=1.0, max_sms=20):
    return Kernel(flops=A100_40GB.flops_per_sm * max_sms * seconds,
                  bytes_moved=0.0, max_sms=max_sms, efficiency=1.0)


def test_mixed_cpu_gpu_pipeline_with_monitoring():
    """CPU preprocessing feeding GPU inference, fully monitored."""
    hub = MonitoringHub()
    config = Config(
        executors=[
            HighThroughputExecutor(label="cpu", max_workers=4,
                                   cold_start=NO_COLD),
            HighThroughputExecutor(
                label="gpu", available_accelerators=["0", "0"],
                gpu_percentage=[50, 50], cold_start=NO_COLD,
                provider=LocalProvider(cores=8, gpu_specs=[A100_40GB])),
        ],
        monitoring=hub,
    )
    dfk = DataFlowKernel(config)

    @python_app(executors=["cpu"], walltime=1.0, dfk=dfk)
    def preprocess(i):
        return i * 2

    @gpu_app(executors=["gpu"], dfk=dfk)
    def infer(ctx, x):
        yield ctx.launch(small_kernel(0.5))
        return x + 1

    results = dfk.wait([infer(preprocess(i)) for i in range(6)])
    assert results == [2 * i + 1 for i in range(6)]
    assert hub.app_stats("preprocess")["completed"] == 6
    assert hub.app_stats("infer")["completed"] == 6
    assert set(hub.executors()) == {"cpu", "gpu"}


def test_gpu_oom_triggers_retry_then_fails():
    """An app that over-allocates fails cleanly through the retry path."""
    config = Config(
        executors=[HighThroughputExecutor(
            label="gpu", available_accelerators=["0"], cold_start=NO_COLD,
            provider=LocalProvider(cores=4, gpu_specs=[A100_40GB]))],
        retries=1,
    )
    dfk = DataFlowKernel(config)

    @gpu_app(dfk=dfk)
    def hog(ctx):
        ctx.gpu.alloc(100e9)  # 100 GB on a 40 GB device
        yield ctx.sleep(0)

    fut = hog()
    dfk.run()
    assert isinstance(fut.exception(), GpuOutOfMemory)
    assert fut.task.tries == 2  # original + one retry


def test_partition_manager_to_executor_roundtrip():
    """policy -> manager -> executor config -> workers -> partitions."""
    env = Environment()
    node = ComputeNode(env, cores=8, gpu_specs=[A100_80GB])
    manager = GpuPartitionManager(node)
    htex_config = manager.apply_mps_policy(EqualSharePolicy(4))
    executor = HighThroughputExecutor(
        label="gpu",
        available_accelerators=htex_config.available_accelerators,
        gpu_percentage=htex_config.gpu_percentage,
        provider=StaticProvider([node]),
        cold_start=NO_COLD,
    )
    dfk = DataFlowKernel(Config(executors=[executor]), env=env)

    @gpu_app(dfk=dfk)
    def whoami(ctx):
        yield ctx.sleep(0)
        return ctx.gpu.sm_cap

    caps = dfk.wait([whoami() for _ in range(4)])
    assert caps == [27, 27, 27, 27]  # 25% of 108 SMs each


def test_weight_cache_shared_across_workers():
    """Two workers on the same GPU share one cached copy of the model."""
    env = Environment()
    node = ComputeNode(env, cores=8, gpu_specs=[A100_80GB])
    node.weight_cache = WeightCache()
    node.start_mps()
    executor = HighThroughputExecutor(
        label="gpu", available_accelerators=["0", "0"],
        gpu_percentage=[50, 50], provider=StaticProvider([node]),
        cold_start=NO_COLD)
    dfk = DataFlowKernel(Config(executors=[executor]), env=env)
    llm = LlamaInference(LLAMA2_7B, FP16)

    @gpu_app(dfk=dfk)
    def serve(ctx):
        hit = yield from ctx.load_model("llama", llm.memory_per_gpu,
                                        llm.load_seconds)
        return hit

    hits = dfk.wait([serve(), serve()])
    # One worker missed (streamed the weights), the other hit the cache.
    assert sorted(hits) == [False, True]
    assert node.gpus[0].memory.used == pytest.approx(llm.memory_per_gpu)
    assert node.weight_cache.hits == 1


def test_two_gpu_node_spreads_workers():
    """Workers bind round-robin across the node's two GPUs."""
    executor = HighThroughputExecutor(
        label="gpu", available_accelerators=["0", "1"],
        provider=LocalProvider(cores=24, gpu_specs=[A100_40GB, A100_40GB]),
        cold_start=NO_COLD)
    dfk = DataFlowKernel(Config(executors=[executor]))

    @gpu_app(dfk=dfk)
    def device_name(ctx):
        yield ctx.sleep(0)
        return ctx.gpu.device.name

    names = set(dfk.wait([device_name(), device_name()]))
    assert len(names) == 2


def test_timesharing_vs_mps_on_the_same_workload():
    """End-to-end sanity of the paper's core claim at small scale."""

    def run(gpu_percentage):
        executor = HighThroughputExecutor(
            label="gpu", available_accelerators=["0", "0"],
            gpu_percentage=gpu_percentage, cold_start=NO_COLD,
            provider=LocalProvider(cores=8, gpu_specs=[A100_40GB]))
        dfk = DataFlowKernel(Config(executors=[executor]))

        @gpu_app(dfk=dfk)
        def work(ctx):
            for _ in range(5):
                yield ctx.launch(small_kernel(0.2, max_sms=20))
                yield ctx.compute(0.05)

        dfk.wait([work(), work()])
        return dfk.env.now

    t_timeshare = run(None)
    t_mps = run([50, 50])
    assert t_mps < t_timeshare  # spatial sharing wins


def test_app_chain_across_executors_with_slurm():
    """A SLURM-provisioned GPU executor joins mid-simulation."""
    from repro.faas import SlurmProvider

    cpu = HighThroughputExecutor(label="cpu", max_workers=2,
                                 cold_start=NO_COLD)
    gpu = HighThroughputExecutor(
        label="gpu", available_accelerators=["0"], cold_start=NO_COLD,
        provider=SlurmProvider(nodes=1, cores_per_node=8,
                               gpu_specs=[A100_40GB],
                               queue_wait_seconds=30.0))
    dfk = DataFlowKernel(Config(executors=[cpu, gpu]))

    @python_app(executors=["cpu"], walltime=1.0, dfk=dfk)
    def prep():
        return 10

    @gpu_app(executors=["gpu"], dfk=dfk)
    def accel(ctx, x):
        yield ctx.launch(small_kernel(1.0))
        return x * 2

    fut = accel(prep())
    dfk.run()
    assert fut.result() == 20
    # GPU work could only start after the 30 s queue wait.
    assert fut.task.start_time >= 30.0
