"""Integration tests: determinism guarantees and fault-load behaviour."""

import pytest

from repro.bench import run_llm_multiplexing
from repro.faas import (
    ColdStartModel,
    Config,
    DataFlowKernel,
    FailureInjector,
    HighThroughputExecutor,
    LocalProvider,
    MonitoringHub,
    gpu_app,
)
from repro.faas.images import ContainerImage, ImageRegistry
from repro.gpu import A100_80GB
from repro.workloads import LLAMA2_7B, InferenceRuntime, LlamaInference

NO_COLD = ColdStartModel(function_init_seconds=0.0, gpu_context_seconds=0.0)
FP16 = InferenceRuntime(dtype_bytes=2)


def test_fig4_experiment_is_deterministic():
    """The headline experiment reproduces bit-for-bit across runs."""
    a = run_llm_multiplexing("mps", 3, n_completions=15)
    b = run_llm_multiplexing("mps", 3, n_completions=15)
    assert a.total_seconds == b.total_seconds
    assert a.latencies == b.latencies


def test_llm_serving_survives_fault_load():
    """LLaMa serving under worker crashes + GPU errors still finishes
    every completion (with retries), at degraded but bounded cost."""
    llm = LlamaInference(LLAMA2_7B, FP16)
    executor = HighThroughputExecutor(
        label="gpu", available_accelerators=["0", "0"],
        gpu_percentage=[50, 50], cold_start=NO_COLD,
        provider=LocalProvider(cores=8, gpu_specs=[A100_80GB]))
    hub = MonitoringHub()
    dfk = DataFlowKernel(Config(executors=[executor], retries=3,
                                monitoring=hub))

    @gpu_app(dfk=dfk)
    def completion(ctx, n_tokens=20):
        yield from ctx.load_model(llm.spec.name, llm.memory_per_gpu,
                                  llm.load_seconds)
        for _ in range(n_tokens):
            yield ctx.launch(llm.decode_kernel())
            yield ctx.compute(llm.host_seconds_per_token)
        return "ok"

    futures = [completion() for _ in range(12)]
    injector = FailureInjector(dfk.env, seed=3)
    gpu = executor.nodes[0].gpus[0]
    injector.start_gpu_errors(gpu, mtbf_seconds=20.0, horizon=60.0)
    injector.start_worker_crashes(executor, mtbf_seconds=40.0,
                                  respawn_after=2.0, horizon=60.0)
    dfk.run()
    results = [f.result() for f in futures]
    assert results == ["ok"] * 12
    stats = hub.app_stats("completion")
    assert stats["completed"] == 12
    # Faults actually fired and the retry machinery absorbed them.
    assert injector.gpu_errors + injector.worker_crashes > 0
    assert stats["retries"] >= 1


def test_cold_start_stack_composes():
    """Image pull + function init + GPU context + model load, in order,
    with node-level caches collapsing the repeated costs."""
    registry = ImageRegistry(pull_bandwidth_bytes_per_s=500e6)
    image = registry.push(ContainerImage("llm-env", 5e9,
                                         extract_seconds=2.0))
    llm = LlamaInference(LLAMA2_7B, FP16)
    cold = ColdStartModel(function_init_seconds=1.0, gpu_context_seconds=0.5)
    executor = HighThroughputExecutor(
        label="gpu", available_accelerators=["0", "0"],
        gpu_percentage=[50, 50], cold_start=cold,
        image=image, registry=registry,
        provider=LocalProvider(cores=8, gpu_specs=[A100_80GB]))
    dfk = DataFlowKernel(Config(executors=[executor]))

    @gpu_app(dfk=dfk)
    def first_request(ctx):
        yield from ctx.load_model(llm.spec.name, llm.memory_per_gpu,
                                  llm.load_seconds)
        return ctx.now

    t_first, t_second = sorted(dfk.wait([first_request(), first_request()]))
    node = executor.nodes[0]
    # One image pull shared by both workers.
    assert node.image_cache.pulls == 1
    # Image (10 + 2) + init (1.5) lower-bounds readiness; the two 5.2 s
    # model loads share the h2d path, so the last load lands ~10.4 s
    # after that.
    assert t_first > 12.0 + 1.5
    assert t_second == pytest.approx(t_first)  # contended loads co-finish


def test_crash_during_model_load_releases_everything():
    llm = LlamaInference(LLAMA2_7B, FP16)
    executor = HighThroughputExecutor(
        label="gpu", available_accelerators=["0"], cold_start=NO_COLD,
        provider=LocalProvider(cores=4, gpu_specs=[A100_80GB]))
    dfk = DataFlowKernel(Config(executors=[executor]))

    @gpu_app(dfk=dfk)
    def serve(ctx):
        yield from ctx.load_model(llm.spec.name, llm.memory_per_gpu,
                                  llm.load_seconds)
        return "served"

    fut = serve()

    def saboteur(env):
        yield env.timeout(2.0)  # mid-load
        FailureInjector(env).crash_worker(executor.workers[0])

    dfk.env.process(saboteur(dfk.env))
    dfk.run()
    assert fut.exception() is not None
    # The dead worker's allocation is gone.
    assert executor.nodes[0].gpus[0].memory.used == 0.0
