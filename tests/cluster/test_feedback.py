"""Tests for the fleet-to-cluster feedback adapter."""

import pytest

from repro.cluster import (
    ClusterFeedback,
    FunctionDemand,
    LatencyCurve,
    WindowedRateSensor,
    optimize_pack,
    placement_diff,
)
from repro.gpu import A100_80GB, V100_32GB
from repro.gpu.specs import GB

INVENTORY = [(A100_80GB, 12), (V100_32GB, 4)]


def demand(name, rate=4.0, slo=0.5, model_gb=4.0):
    return FunctionDemand(
        name=name, slo_seconds=slo, rate_rps=rate,
        curve=LatencyCurve(work=2.0, serial=0.05, saturation=40),
        model_bytes=model_gb * GB)


def demands():
    return [demand("a", 6.0), demand("b", 3.0), demand("c", 1.0)]


# ------------------------------------------------------------------- sensor

def test_sensor_primes_then_rates():
    sensor = WindowedRateSensor()
    assert sensor.observe("f", 100.0, 10.0) is None  # priming
    assert sensor.observe("f", 130.0, 20.0) == pytest.approx(3.0)
    # Counter rewind (restart) re-primes instead of yielding a negative.
    assert sensor.observe("f", 5.0, 30.0) is None
    assert sensor.observe("f", 25.0, 40.0) == pytest.approx(2.0)
    # Stalled clock yields nothing rather than dividing by zero.
    assert sensor.observe("f", 50.0, 40.0) is None


# ----------------------------------------------------------------- feedback

def test_feedback_initial_plan_and_no_drift():
    loop = ClusterFeedback(demands(), INVENTORY)
    loop.placement.validate()
    assert loop.drift() == 0.0
    assert loop.replan() is None  # nothing sensed yet
    assert loop.replans == 0


def test_feedback_drift_triggers_replan():
    loop = ClusterFeedback(demands(), INVENTORY, drift_threshold=0.25)
    before = loop.placement.gpus_used
    # Prime, then double function "a"'s arrivals over the next minute.
    loop.observe_counters({"a": (0.0, 0.0), "b": (0.0, 0.0),
                           "c": (0.0, 0.0)})
    loop.observe_counters({"a": (12.0 * 60, 60.0), "b": (3.0 * 60, 60.0),
                           "c": (1.0 * 60, 60.0)})
    # EWMA with smoothing 0.5: sensed a-rate = (12 + 6) / 2 = 9.
    assert loop.rates["a"] == pytest.approx(9.0)
    assert loop.drift() == pytest.approx(0.5)
    diff = loop.replan(now=60.0)
    assert diff is not None
    assert diff["drift"] == pytest.approx(0.5)
    assert loop.replans == 1
    loop.placement.validate()
    assert loop.placement.gpus_used >= before  # more demand, more GPUs
    # The new plan absorbs the sensed rates; drift resets.
    assert loop.drift() == 0.0
    assert loop.replan(now=120.0) is None


def test_feedback_small_drift_is_ignored():
    loop = ClusterFeedback(demands(), INVENTORY, drift_threshold=0.5)
    loop.observe_counters({"a": (0.0, 0.0)})
    loop.observe_counters({"a": (7.0 * 60, 60.0)})  # 6 -> EWMA 6.5
    assert 0.0 < loop.drift() < 0.5
    assert loop.replan() is None
    # force=True replans regardless.
    assert loop.replan(force=True) is not None


def test_feedback_summary_shape():
    loop = ClusterFeedback(demands(), INVENTORY)
    summary = loop.summary()
    assert summary["replans"] == 0
    assert set(summary["rates"]) == {"a", "b", "c"}
    assert summary["score"]["gpus_used"] == loop.placement.gpus_used


def test_feedback_validation():
    with pytest.raises(ValueError):
        ClusterFeedback(demands(), INVENTORY, drift_threshold=0.0)
    with pytest.raises(ValueError):
        ClusterFeedback(demands(), INVENTORY, smoothing=0.0)


# ------------------------------------------------------------ placement diff

def test_placement_diff_counts_moves():
    base = demands()
    old = optimize_pack(base, INVENTORY)
    same = optimize_pack(base, INVENTORY)
    diff = placement_diff(old, same)
    assert diff["segments_added"] == diff["segments_removed"] == 0
    assert diff["functions_touched"] == []
    assert diff["gpus_freed"] == 0

    grown = [demand("a", 20.0)] + base[1:]
    new = optimize_pack(grown, INVENTORY)
    diff = placement_diff(old, new)
    assert diff["segments_added"] > 0
    assert "a" in diff["functions_touched"]
    assert diff["gpus_after"] == new.gpus_used
