"""Tests for the MISO-style sizing oracle."""

import pytest

from repro.cluster import (
    FunctionDemand,
    LatencyCurve,
    SizingOracle,
    build_fleet,
)
from repro.gpu import A100_40GB, A100_80GB, V100_32GB
from repro.gpu.specs import GB
from repro.partition import PlacementNeed

SPECS = [A100_80GB, A100_40GB, V100_32GB]


def demand(name="fn", slo=0.5, rate=2.0, model_gb=4.0,
           work=2.0, serial=0.05, saturation=40):
    return FunctionDemand(
        name=name, slo_seconds=slo, rate_rps=rate,
        curve=LatencyCurve(work=work, serial=serial, saturation=saturation),
        model_bytes=model_gb * GB)


def test_candidates_hold_slo_and_memory():
    oracle = SizingOracle(SPECS)
    d = demand(slo=0.2, model_gb=8.0)
    for spec in SPECS:
        for cand in oracle.candidates(d, spec):
            assert cand.latency_seconds <= d.slo_seconds
            assert cand.memory_bytes + 1e-9 >= d.model_bytes
            assert cand.capacity_rps == pytest.approx(
                oracle.utilization_ceiling / cand.latency_seconds)
            assert 0 < cand.gpu_fraction <= 1.0


def test_candidates_sorted_smallest_first_and_knee_pruned():
    oracle = SizingOracle([A100_40GB])
    d = demand(slo=1.0, model_gb=4.0)  # a tiny slice suffices
    cands = oracle.candidates(d, A100_40GB)
    assert cands
    fractions = [c.gpu_fraction for c in cands]
    assert fractions == sorted(fractions)
    # The curve saturates at 40 SMs; slices far past the knee that have
    # a smaller adequate sibling are pruned.
    assert cands[0].geometry == "1g.5gb"
    assert all(c.sms <= 98 for c in cands)


def test_mps_grid_on_non_mig_device():
    oracle = SizingOracle([V100_32GB], mps_step=10)
    d = demand(slo=1.0, model_gb=4.0)
    cands = oracle.candidates(d, V100_32GB)
    assert cands
    assert all(c.kind == "mps" for c in cands)
    assert all(c.mps_percentage % 10 == 0 for c in cands)
    # MPS reserves the model weights, not a slice capacity.
    assert all(c.memory_bytes == d.model_bytes for c in cands)


def test_oracle_rejects_impossible_slo():
    oracle = SizingOracle(SPECS)
    plan = oracle.plan(demand(slo=0.01, serial=0.2))  # serial floor 0.2 s
    assert not plan.feasible
    assert "SLO" in plan.reason
    assert plan.candidate is None and plan.replicas == 0


def test_oracle_rejects_oversized_weights():
    oracle = SizingOracle(SPECS)
    plan = oracle.plan(demand(model_gb=200.0))  # fits no slice anywhere
    assert not plan.feasible
    assert "weights" in plan.reason


def test_oracle_plan_replicas_cover_rate():
    oracle = SizingOracle(SPECS)
    d = demand(rate=40.0, slo=0.3)
    plan = oracle.plan(d)
    assert plan.feasible
    assert plan.replicas * plan.candidate.capacity_rps + 1e-9 >= d.rate_rps
    assert plan.cost == pytest.approx(
        plan.replicas * plan.candidate.gpu_fraction)
    # Alternatives span the catalog, preferred model first.
    assert plan.alternatives[0] == plan.candidate
    assert len({c.spec_name for c in plan.alternatives}) \
        == len(plan.alternatives)


def test_oracle_placement_verdicts():
    oracle = SizingOracle(SPECS)
    assert oracle.plan(demand(rate=0.5, slo=1.0)).placement in (
        PlacementNeed.MIG_SLICE, PlacementNeed.MPS_ONLY)
    many = oracle.plan(demand(name="whale", rate=500.0, slo=0.3))
    assert many.placement is PlacementNeed.MULTI_GPU
    assert many.replicas > 1


def test_oracle_keep_warm_gets_one_replica():
    oracle = SizingOracle(SPECS)
    plan = oracle.plan(demand(rate=0.0))
    assert plan.feasible and plan.replicas == 1


def test_tail_candidate_is_smaller_than_uniform():
    oracle = SizingOracle(SPECS)
    d = demand(rate=40.0, slo=0.3)
    plan = oracle.plan(d)
    tail = oracle.tail_candidate(d, plan.candidate.spec_name, 0.5)
    assert tail is not None
    assert tail.gpu_fraction <= plan.candidate.gpu_fraction
    assert tail.capacity_rps + 1e-9 >= 0.5
    assert oracle.tail_candidate(d, "no-such-model", 0.5) is None


def test_fit_candidate_respects_current_occupancy():
    oracle = SizingOracle([A100_40GB])
    d = demand(slo=1.0, model_gb=4.0, rate=1.0)
    gpu = build_fleet([(A100_40GB, 1)])[0]
    first = oracle.fit_candidate(d, gpu, 1.0)
    assert first is not None
    # Fill the device completely: nothing fits any more.
    while True:
        cand = oracle.fit_candidate(d, gpu, 0.0)
        if cand is None:
            break
        gpu.place(cand.segment(d.name))
    assert gpu.used_compute_slices > 0
    assert oracle.fit_candidate(d, gpu, 1.0) is None


def test_oracle_caches_plans_per_demand():
    oracle = SizingOracle(SPECS)
    d = demand()
    assert oracle.plan(d) is oracle.plan(d)
    assert oracle.candidates(d, A100_40GB) is oracle.candidates(d, A100_40GB)


def test_oracle_validation():
    with pytest.raises(ValueError):
        SizingOracle([])
    with pytest.raises(ValueError):
        SizingOracle(SPECS, utilization_ceiling=0.0)
    with pytest.raises(ValueError):
        SizingOracle(SPECS, mps_step=0)
