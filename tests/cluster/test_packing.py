"""Tests for the ParvaGPU-style packers (greedy FFD + repacking)."""

import pytest

from repro.cluster import (
    FunctionDemand,
    LatencyCurve,
    SizingOracle,
    greedy_pack,
    optimize_pack,
)
from repro.gpu import A100_40GB, A100_80GB, V100_32GB
from repro.gpu.specs import GB

INVENTORY = [(A100_80GB, 20), (A100_40GB, 10), (V100_32GB, 5)]


def demand(name, slo=0.5, rate=2.0, model_gb=4.0,
           work=2.0, serial=0.05, saturation=40):
    return FunctionDemand(
        name=name, slo_seconds=slo, rate_rps=rate,
        curve=LatencyCurve(work=work, serial=serial, saturation=saturation),
        model_bytes=model_gb * GB)


def mixed_demands():
    return [
        demand("whale", rate=60.0, slo=0.3, model_gb=16.0),
        demand("mid-a", rate=8.0, slo=0.4),
        demand("mid-b", rate=6.0, slo=0.6, model_gb=8.0),
        demand("sliver-a", rate=0.5, slo=1.0, model_gb=1.0),
        demand("sliver-b", rate=0.2, slo=2.0, model_gb=1.0),
        demand("keepwarm", rate=0.0, slo=1.0, model_gb=1.0),
    ]


def test_both_packers_produce_valid_placements():
    for pack in (greedy_pack, optimize_pack):
        placement = pack(mixed_demands(), INVENTORY)
        placement.validate()
        assert not placement.rejected
        # Every demand is fully covered.
        for d in mixed_demands():
            assert placement.capacity_of(d.name) + 1e-9 >= d.rate_rps


def test_optimizer_never_uses_more_gpus():
    demands = mixed_demands()
    greedy = greedy_pack(demands, INVENTORY)
    optimized = optimize_pack(demands, INVENTORY)
    assert optimized.gpus_used <= greedy.gpus_used
    assert optimized.score()["in_slo_fraction"] == pytest.approx(
        greedy.score()["in_slo_fraction"])


def test_packers_are_deterministic():
    a = optimize_pack(mixed_demands(), INVENTORY).payload()
    b = optimize_pack(mixed_demands(), INVENTORY).payload()
    assert a == b


def test_infeasible_functions_get_typed_rejections():
    demands = mixed_demands() + [
        demand("bad-slo", slo=0.01, serial=0.2),
        demand("bad-mem", model_gb=200.0),
    ]
    placement = optimize_pack(demands, INVENTORY)
    placement.validate()
    assert "SLO" in placement.rejected["bad-slo"]
    assert "weights" in placement.rejected["bad-mem"]
    # Rejections never leak segments.
    assert not placement.segments_of("bad-slo")
    assert not placement.segments_of("bad-mem")


def test_capacity_exhaustion_rejects_not_overcommits():
    tiny = [(A100_40GB, 1)]
    demands = [demand(f"f{i}", rate=30.0, slo=0.3) for i in range(4)]
    placement = optimize_pack(demands, tiny)
    placement.validate()  # whatever landed is still sound
    assert placement.rejected  # not everything fits one device
    for name, reason in placement.rejected.items():
        assert reason == "insufficient cluster capacity"


def test_spillover_crosses_gpu_models():
    # 1 A100 cannot hold four 3g.40gb-sized asks; the rest spill to the
    # V100s via each plan's alternatives.
    inventory = [(A100_80GB, 1), (V100_32GB, 4)]
    demands = [demand(f"f{i}", rate=6.0, slo=0.4, model_gb=20.0)
               for i in range(4)]
    placement = optimize_pack(demands, inventory)
    placement.validate()
    assert not placement.rejected
    models = {gpu.spec.name for gpu in placement.gpus if gpu.used}
    assert len(models) == 2


def test_tail_rightsizing_shrinks_the_last_instance():
    # rate 9 with uniform capacity ~4/instance: greedy deploys 3 full
    # slices; the optimiser's tail instance is smaller.
    inventory = [(A100_80GB, 4)]
    demands = [demand("f", rate=9.0, slo=0.3)]
    greedy = greedy_pack(demands, inventory)
    optimized = optimize_pack(demands, inventory)
    g_sms = sorted(s.sms for _, s in greedy.segments_of("f"))
    o_sms = sorted(s.sms for _, s in optimized.segments_of("f"))
    assert len(set(g_sms)) == 1  # uniform slices
    assert sum(o_sms) <= sum(g_sms)
    assert optimized.capacity_of("f") + 1e-9 >= 9.0


def test_repacking_frees_fragmented_gpus():
    # Many slivers first land beside big asks; repacking coalesces
    # them and returns whole devices to the free pool.
    demands = ([demand(f"big{i}", rate=12.0, slo=0.3) for i in range(3)]
               + [demand(f"tiny{i}", rate=0.3, slo=2.0, model_gb=1.0)
                  for i in range(12)])
    greedy = greedy_pack(demands, INVENTORY)
    optimized = optimize_pack(demands, INVENTORY)
    optimized.validate()
    assert optimized.gpus_used < greedy.gpus_used
    frag = optimized.fragmentation()
    assert frag["free_compute_slices"] <= \
        greedy.fragmentation()["free_compute_slices"]


def test_shared_oracle_reuses_caches():
    oracle = SizingOracle([spec for spec, _ in INVENTORY])
    demands = mixed_demands()
    greedy_pack(demands, INVENTORY, oracle)
    cached = len(oracle._plans)
    optimize_pack(demands, INVENTORY, oracle)
    assert len(oracle._plans) == cached  # second pack hit the cache


def test_duplicate_names_rejected():
    with pytest.raises(ValueError, match="unique"):
        greedy_pack([demand("f"), demand("f")], INVENTORY)
