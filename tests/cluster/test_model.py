"""Tests for the cluster placement data model."""

import pytest

from repro.cluster import (
    ClusterGpu,
    ClusterPlacement,
    FunctionDemand,
    GpuSegment,
    LatencyCurve,
    build_fleet,
)
from repro.gpu import A100_40GB, V100_32GB
from repro.gpu.specs import GB


def curve(work=2.0, serial=0.05, saturation=40):
    return LatencyCurve(work=work, serial=serial, saturation=saturation)


def demand(name="fn", slo=0.5, rate=2.0, model_gb=1.0):
    return FunctionDemand(name=name, slo_seconds=slo, rate_rps=rate,
                          curve=curve(), model_bytes=model_gb * GB)


def mig_segment(fn="fn", profile="1g.5gb", cslices=1, mslices=1,
                sms=14, capacity=4.0, latency=0.2):
    return GpuSegment(function=fn, kind="mig", geometry=profile, sms=sms,
                      compute_slices=cslices, memory_slices=mslices,
                      mps_percentage=0, memory_bytes=5 * GB,
                      capacity_rps=capacity, latency_seconds=latency)


def mps_segment(fn="fn", pct=25, sms=20, capacity=4.0, latency=0.2,
                model_gb=1.0):
    return GpuSegment(function=fn, kind="mps", geometry=f"mps:{pct}",
                      sms=sms, compute_slices=0, memory_slices=0,
                      mps_percentage=pct, memory_bytes=model_gb * GB,
                      capacity_rps=capacity, latency_seconds=latency)


# ------------------------------------------------------------- latency curve

def test_latency_curve_shape_and_validation():
    c = curve(work=4.0, serial=0.1, saturation=20)
    assert c(1) == pytest.approx(4.1)
    assert c(20) == c(100) == pytest.approx(0.3)  # saturates
    with pytest.raises(ValueError):
        c(0)
    with pytest.raises(ValueError):
        LatencyCurve(work=-1.0, serial=0.0, saturation=10)
    with pytest.raises(ValueError):
        LatencyCurve(work=1.0, serial=0.0, saturation=0)
    # Frozen and hashable: usable as an oracle cache key.
    assert hash(c) == hash(curve(work=4.0, serial=0.1, saturation=20))


def test_function_demand_validation():
    with pytest.raises(ValueError):
        FunctionDemand("f", slo_seconds=0.0, rate_rps=1.0, curve=curve())
    with pytest.raises(ValueError):
        FunctionDemand("f", slo_seconds=1.0, rate_rps=-1.0, curve=curve())
    with pytest.raises(ValueError):
        FunctionDemand("f", slo_seconds=1.0, rate_rps=1.0, curve=curve(),
                       model_bytes=-1.0)


# --------------------------------------------------------------- cluster GPU

def test_mig_gpu_hosts_mig_segments_only():
    gpu = ClusterGpu("a100/0000", A100_40GB)
    assert gpu.fits(mig_segment())
    assert not gpu.fits(mps_segment())  # isolation domains never mix
    mps_gpu = ClusterGpu("v100/0000", V100_32GB)
    assert mps_gpu.fits(mps_segment())
    assert not mps_gpu.fits(mig_segment())


def test_mig_slice_accounting_and_limits():
    gpu = ClusterGpu("a100/0000", A100_40GB)
    # 7 compute slices, 8 memory slices on an A100.
    for _ in range(4):
        gpu.place(mig_segment(mslices=2))
    assert gpu.used_compute_slices == 4
    assert gpu.used_memory_slices == 8
    # Memory slices are exhausted before compute slices.
    assert not gpu.fits(mig_segment(mslices=1))
    assert gpu.compute_fraction() == pytest.approx(4 / 7)
    seg = gpu.segments[0]
    gpu.remove(seg)
    assert gpu.used_memory_slices == 6
    assert gpu.fits(mig_segment(mslices=2))
    with pytest.raises(ValueError):
        gpu.remove(mig_segment("absent"))  # not on this device


def test_mps_percentage_and_hbm_limits():
    gpu = ClusterGpu("v100/0000", V100_32GB)
    gpu.place(mps_segment(pct=60))
    assert not gpu.fits(mps_segment(pct=41))  # 60 + 41 > 100
    assert gpu.fits(mps_segment(pct=40))
    # HBM is a hard dimension too: 32 GB device.
    assert not gpu.fits(mps_segment(pct=10, model_gb=32.0))
    with pytest.raises(ValueError):
        gpu.place(mps_segment(pct=41))


def test_segment_validation():
    with pytest.raises(ValueError, match="kind"):
        GpuSegment(function="f", kind="vgpu", geometry="x", sms=1,
                   compute_slices=0, memory_slices=0, mps_percentage=0,
                   memory_bytes=0, capacity_rps=1.0, latency_seconds=0.1)
    with pytest.raises(ValueError, match="compute slice"):
        mig_segment(cslices=0)
    with pytest.raises(ValueError, match="percentage"):
        mps_segment(pct=0)


def test_build_fleet_addresses_devices():
    fleet = build_fleet([(A100_40GB, 2), (V100_32GB, 1)])
    assert [g.gpu_id for g in fleet] == [
        "A100-SXM4-40GB/0000", "A100-SXM4-40GB/0001",
        "V100-SXM2-32GB/0000"]
    # Spec names resolve too.
    assert build_fleet([("V100-SXM2-32GB", 1)])[0].spec is V100_32GB
    with pytest.raises(ValueError):
        build_fleet([(A100_40GB, -1)])


# ---------------------------------------------------------------- placement

def make_placement():
    fleet = build_fleet([(A100_40GB, 1), (V100_32GB, 1)])
    demands = {"f": demand("f", rate=3.0), "g": demand("g", rate=3.0)}
    return ClusterPlacement(fleet, demands), fleet


def test_placement_validate_catches_overcommit():
    placement, fleet = make_placement()
    placement.validate()  # empty placement is fine
    fleet[0].place(mig_segment("f"))
    fleet[1].place(mps_segment("g", capacity=4.0))
    placement.validate()
    # Sneak past place() by mutating the list directly: validate recomputes.
    fleet[1].segments.append(mps_segment("g", pct=90))
    with pytest.raises(AssertionError):
        placement.validate()


def test_placement_validate_catches_underprovision_and_slo():
    placement, fleet = make_placement()
    fleet[0].place(mig_segment("f", capacity=1.0))  # rate 3.0 > 1.0
    with pytest.raises(AssertionError, match="under-provisioned"):
        placement.validate()
    fleet[0].place(mig_segment("f", capacity=4.0, latency=0.9))  # SLO 0.5
    with pytest.raises(AssertionError, match="SLO"):
        placement.validate()


def test_placement_validate_rejected_must_not_be_placed():
    placement, fleet = make_placement()
    fleet[0].place(mig_segment("f", capacity=4.0))
    placement.rejected["f"] = "test"
    with pytest.raises(AssertionError, match="rejected"):
        placement.validate()


def test_placement_score_counts_rejections_against():
    placement, fleet = make_placement()
    fleet[0].place(mig_segment("f", capacity=4.0))
    placement.rejected["g"] = "infeasible"
    score = placement.score()
    assert score["gpus_used"] == 1
    assert score["served_in_slo_rps"] == pytest.approx(3.0)
    assert score["in_slo_fraction"] == pytest.approx(0.5)
    assert score["rejected"] == ["g"]


def test_placement_mps_caps_weighted_sum_bounded():
    placement, fleet = make_placement()
    for pct, sms in ((30, 24), (30, 24), (30, 16)):
        fleet[1].place(mps_segment("g", pct=pct, sms=sms, capacity=2.0))
    caps = placement.mps_caps()
    per_gpu = caps["V100-SXM2-32GB/0000"]
    assert per_gpu["weighted_sum"] <= 100
    assert len(per_gpu["caps"]) == 3  # one cap per instance
    # MIG devices never appear: caps are an MPS artefact.
    assert len(caps) == 1


def test_placement_payload_is_json_stable():
    import json

    placement, fleet = make_placement()
    fleet[0].place(mig_segment("f", capacity=4.0))
    payload = placement.payload()
    assert json.dumps(payload, sort_keys=True)  # serialisable
    assert payload["gpus"][0]["gpu_id"] == "A100-SXM4-40GB/0000"
    assert payload["score"]["gpus_used"] == 1
