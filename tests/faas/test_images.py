"""Tests for container images, registries, and node image caches."""

import pytest

from repro.faas import (
    ColdStartModel,
    ComputeNode,
    Config,
    DataFlowKernel,
    HighThroughputExecutor,
    LocalProvider,
    python_app,
)
from repro.faas.images import ContainerImage, ImageRegistry, NodeImageCache
from repro.sim import Environment

NO_COLD = ColdStartModel(function_init_seconds=0.0, gpu_context_seconds=0.0)


def test_image_validation():
    with pytest.raises(ValueError):
        ContainerImage("bad", size_bytes=-1)
    with pytest.raises(ValueError):
        ImageRegistry(pull_bandwidth_bytes_per_s=0)


def test_registry_push_lookup():
    registry = ImageRegistry(pull_bandwidth_bytes_per_s=100e6)
    image = registry.push(ContainerImage("torch", 2e9, extract_seconds=3.0))
    assert registry.lookup("torch") is image
    assert registry.pull_seconds(image) == pytest.approx(20.0)
    with pytest.raises(KeyError, match="not in registry"):
        registry.lookup("missing")


def test_cache_pull_then_hit():
    env = Environment()
    cache = NodeImageCache(env)
    registry = ImageRegistry(pull_bandwidth_bytes_per_s=100e6)
    image = registry.push(ContainerImage("torch", 1e9, extract_seconds=2.0))

    def first(env):
        yield from cache.ensure(image, registry)
        return env.now

    t_first = env.run(until=env.process(first(env)))
    assert t_first == pytest.approx(10.0 + 2.0)
    assert cache.is_cached(image)

    def second(env):
        t0 = env.now
        yield from cache.ensure(image, registry)
        return env.now - t0

    assert env.run(until=env.process(second(env))) == 0.0
    assert cache.pulls == 1 and cache.hits == 1


def test_concurrent_pulls_deduplicate():
    env = Environment()
    cache = NodeImageCache(env)
    registry = ImageRegistry(pull_bandwidth_bytes_per_s=100e6)
    image = registry.push(ContainerImage("torch", 1e9))
    finished = []

    def worker(env, name):
        yield from cache.ensure(image, registry)
        finished.append((name, env.now))

    env.process(worker(env, "a"))
    env.process(worker(env, "b"))
    env.run()
    # Both ready at t=10 (one pull, not two sequential ones).
    assert [t for _, t in finished] == pytest.approx([10.0, 10.0])
    assert cache.pulls == 1
    assert registry.pulls_served == 1


def test_evict_forces_repull():
    env = Environment()
    cache = NodeImageCache(env)
    registry = ImageRegistry(pull_bandwidth_bytes_per_s=1e9)
    image = registry.push(ContainerImage("torch", 1e9))
    env.run(until=env.process(_pull(cache, image, registry, env)))
    cache.evict(image)
    env.run(until=env.process(_pull(cache, image, registry, env)))
    assert cache.pulls == 2


def _pull(cache, image, registry, env):
    yield from cache.ensure(image, registry)


def test_executor_workers_share_one_pull():
    """4 workers, one node: the image downloads once, everyone waits."""
    registry = ImageRegistry(pull_bandwidth_bytes_per_s=100e6)
    image = registry.push(ContainerImage("inference-env", 3e9,
                                         extract_seconds=2.0))
    ex = HighThroughputExecutor(label="cpu", max_workers=4,
                                cold_start=NO_COLD, image=image,
                                registry=registry)
    dfk = DataFlowKernel(Config(executors=[ex]))

    @python_app(dfk=dfk, walltime=1.0)
    def job(i):
        return i

    futs = [job(i) for i in range(4)]
    dfk.wait(futs)
    node = ex.nodes[0]
    assert node.image_cache.pulls == 1
    assert node.image_cache.hits == 3
    # 30 s pull + 2 s extract + 1 s task.
    assert dfk.env.now == pytest.approx(33.0)


def test_image_requires_registry():
    image = ContainerImage("x", 1e9)
    with pytest.raises(ValueError, match="requires a registry"):
        HighThroughputExecutor(label="cpu", max_workers=1, image=image)


def test_second_node_pulls_independently():
    registry = ImageRegistry(pull_bandwidth_bytes_per_s=1e9)
    image = registry.push(ContainerImage("env", 1e9))
    ex_a = HighThroughputExecutor(label="a", max_workers=1,
                                  cold_start=NO_COLD, image=image,
                                  registry=registry)
    ex_b = HighThroughputExecutor(label="b", max_workers=1,
                                  cold_start=NO_COLD, image=image,
                                  registry=registry)
    dfk = DataFlowKernel(Config(executors=[ex_a, ex_b]))
    dfk.run(until=5.0)
    # Different nodes: two pulls served by the registry.
    assert registry.pulls_served == 2
