"""Tests for model-aware task routing across endpoints."""

import pytest

from repro.faas import (
    ColdStartModel,
    Config,
    DataFlowKernel,
    Endpoint,
    GlobusComputeService,
    GpuTaskRouter,
    HighThroughputExecutor,
    LeastLoadedRouter,
    LocalProvider,
    ModelAffinityRouter,
    RoundRobinRouter,
    gpu_app,
    python_app,
)
from repro.faas.routing import endpoint_outstanding, endpoint_warm_models
from repro.gpu import A100_80GB
from repro.sim import Environment

NO_COLD = ColdStartModel(function_init_seconds=0.0, gpu_context_seconds=0.0)


def make_site(env, service, name, gpu=False):
    if gpu:
        executor = HighThroughputExecutor(
            label="gpu", available_accelerators=["0"], cold_start=NO_COLD,
            provider=LocalProvider(cores=8, gpu_specs=[A100_80GB]))
    else:
        executor = HighThroughputExecutor(label="cpu", max_workers=2,
                                          cold_start=NO_COLD)
    dfk = DataFlowKernel(Config(executors=[executor]), env=env)
    return Endpoint(name, dfk, service), dfk


def make_federation(n=3, gpu=False):
    env = Environment()
    service = GlobusComputeService(env, wan_latency_seconds=0.0,
                                   wan_bandwidth_bytes_per_s=1e12)
    sites = [make_site(env, service, f"site-{i}", gpu=gpu) for i in range(n)]
    endpoints = [s[0] for s in sites]
    dfks = [s[1] for s in sites]
    return env, service, endpoints, dfks


def test_round_robin_rotates():
    env, service, endpoints, dfks = make_federation(3)
    router = GpuTaskRouter(service, endpoints, policy=RoundRobinRouter())

    @python_app(dfk=dfks[0])
    def job():
        return "ok"

    fid = router.register_function(job)
    for _ in range(6):
        router.submit(fid, payload_bytes=0.0)
    env.run()
    assert router.routed == {"site-0": 2, "site-1": 2, "site-2": 2}


def test_least_loaded_balances():
    env, service, endpoints, dfks = make_federation(2)
    router = GpuTaskRouter(service, endpoints, policy=LeastLoadedRouter())

    @python_app(dfk=dfks[0], walltime=10.0)
    def slow():
        return "ok"

    fid = router.register_function(slow)
    # Submit 4 at once: each site has 2 workers, load spreads 2/2.
    futs = [router.submit(fid, payload_bytes=0.0) for _ in range(4)]
    env.run()
    assert router.routed == {"site-0": 2, "site-1": 2}
    assert all(f.result() == "ok" for f in futs)


def test_endpoint_outstanding_counts():
    env, service, endpoints, dfks = make_federation(1)

    @python_app(dfk=dfks[0], walltime=5.0)
    def slow():
        return 1

    slow()
    slow()
    assert endpoint_outstanding(endpoints[0]) == 2
    env.run()
    assert endpoint_outstanding(endpoints[0]) == 0


def test_warm_model_detection_via_worker():
    env, service, endpoints, dfks = make_federation(1, gpu=True)

    @gpu_app(dfk=dfks[0])
    def load(ctx):
        yield from ctx.load_model("llama", 1e9, 1.0)
        return True

    fut = load()
    env.run()
    assert fut.result() is True
    assert "llama" in endpoint_warm_models(endpoints[0])
    assert "mistral" not in endpoint_warm_models(endpoints[0])


def test_affinity_router_prefers_warm_endpoint():
    env, service, endpoints, dfks = make_federation(3, gpu=True)
    policy = ModelAffinityRouter()
    router = GpuTaskRouter(service, endpoints, policy=policy)

    @gpu_app(dfk=dfks[0])
    def serve(ctx):
        yield from ctx.load_model("llama", 1e9, 2.0)
        return ctx.worker.name

    fid = router.register_function(serve)
    # First task: no endpoint is warm -> least-loaded fallback (site-0).
    first = router.submit(fid, model_key="llama", payload_bytes=0.0)
    env.run()
    assert policy.affinity_misses == 1
    # Now site-0 is warm: subsequent tasks stick to it.
    for _ in range(3):
        router.submit(fid, model_key="llama", payload_bytes=0.0)
        env.run()
    assert policy.affinity_hits == 3
    assert router.routed["site-0"] == 4


def test_affinity_avoids_repeated_cold_loads():
    """Affinity routing loads the model once; round-robin loads it on
    every endpoint — measurably slower in total."""

    def run(policy_cls):
        env, service, endpoints, dfks = make_federation(3, gpu=True)
        router = GpuTaskRouter(service, endpoints, policy=policy_cls())

        @gpu_app(dfk=dfks[0])
        def serve(ctx):
            yield from ctx.load_model("llama", 1e9, 8.0)
            yield ctx.compute(0.1)
            return True

        fid = router.register_function(serve)
        for _ in range(6):
            router.submit(fid, model_key="llama", payload_bytes=0.0)
            env.run()
        return env.now

    t_affinity = run(ModelAffinityRouter)
    t_rr = run(RoundRobinRouter)
    assert t_affinity < t_rr  # 1 load vs 3 loads


def test_router_validation():
    env, service, endpoints, dfks = make_federation(1)
    with pytest.raises(ValueError, match="at least one"):
        GpuTaskRouter(service, [])
    other_service = GlobusComputeService(env)
    with pytest.raises((ValueError, KeyError)):
        GpuTaskRouter(other_service, endpoints)
    with pytest.raises(ValueError, match="no endpoints"):
        RoundRobinRouter().choose([], None)
    with pytest.raises(ValueError, match="no endpoints"):
        LeastLoadedRouter().choose([], None)
