"""Tests for @bash_app (the mechanism that launches the MPS daemon)."""

import pytest

from repro.faas import (
    ColdStartModel,
    Config,
    DataFlowKernel,
    HighThroughputExecutor,
    bash_app,
)

NO_COLD = ColdStartModel(function_init_seconds=0.0, gpu_context_seconds=0.0)


def make_dfk():
    return DataFlowKernel(Config(executors=[
        HighThroughputExecutor(label="cpu", max_workers=2,
                               cold_start=NO_COLD)]))


def test_bash_app_returns_rendered_command():
    dfk = make_dfk()

    @bash_app(dfk=dfk, walltime=0.5)
    def start_mps(pipe_dir: str):
        return (f"CUDA_MPS_PIPE_DIRECTORY={pipe_dir} "
                "nvidia-cuda-mps-control -d")

    fut = start_mps("/tmp/mps")
    dfk.run()
    assert fut.result() == ("CUDA_MPS_PIPE_DIRECTORY=/tmp/mps "
                            "nvidia-cuda-mps-control -d")
    assert dfk.env.now == pytest.approx(0.5)


def test_bash_app_must_return_string():
    dfk = make_dfk()

    @bash_app(dfk=dfk)
    def bad():
        return 42

    fut = bad()
    dfk.run()
    assert isinstance(fut.exception(), TypeError)


def test_bash_app_chains_with_futures():
    dfk = make_dfk()

    @bash_app(dfk=dfk, walltime=1.0)
    def produce():
        return "echo ready"

    @bash_app(dfk=dfk, walltime=1.0)
    def consume(prev_cmd: str):
        return f"{prev_cmd} && echo done"

    fut = consume(produce())
    dfk.run()
    assert fut.result() == "echo ready && echo done"
    assert dfk.env.now == pytest.approx(2.0)


def test_cnn_training_kernels():
    from repro.workloads import RESNET50

    fwd = RESNET50.inference_kernels(batch_size=32)
    train = RESNET50.training_kernels(batch_size=32)
    assert len(train) == len(fwd)
    assert train.total_flops == pytest.approx(3 * fwd.total_flops)
    assert train.total_bytes == pytest.approx(2 * fwd.total_bytes)
    # Training steps can fill the GPU harder than inference.
    assert (max(k.max_sms for k in train)
            >= max(k.max_sms for k in fwd))
