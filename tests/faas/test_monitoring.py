"""Tests for the monitoring hub (Listing 1's monitoring DB analogue)."""

import json

import pytest

from repro.faas import (
    ColdStartModel,
    Config,
    DataFlowKernel,
    HighThroughputExecutor,
    MonitoringHub,
    python_app,
)

NO_COLD = ColdStartModel(function_init_seconds=0.0, gpu_context_seconds=0.0)


def make_dfk(hub, retries=0, workers=2):
    config = Config(
        executors=[HighThroughputExecutor(label="cpu", max_workers=workers,
                                          cold_start=NO_COLD)],
        retries=retries,
        monitoring=hub,
    )
    return DataFlowKernel(config)


def test_transitions_recorded_in_order():
    hub = MonitoringHub()
    dfk = make_dfk(hub)

    @python_app(dfk=dfk, walltime=2.0)
    def work():
        return 1

    fut = work()
    dfk.run()
    states = [t.state for t in hub.task_history(fut.task.tid)]
    assert states == ["submitted", "running", "done"]
    times = [t.time for t in hub.task_history(fut.task.tid)]
    assert times == sorted(times)


def test_failed_and_retry_states():
    hub = MonitoringHub()
    dfk = make_dfk(hub, retries=1)
    attempts = []

    @python_app(dfk=dfk)
    def flaky():
        attempts.append(1)
        raise RuntimeError("nope")

    fut = flaky()
    dfk.run()
    states = [t.state for t in hub.task_history(fut.task.tid)]
    assert states == ["submitted", "running", "retry", "running", "failed"]


def test_app_stats():
    hub = MonitoringHub()
    dfk = make_dfk(hub, workers=1)

    @python_app(dfk=dfk, walltime=3.0)
    def job():
        return 1

    dfk.wait([job(), job()])
    stats = hub.app_stats("job")
    assert stats["completed"] == 2
    assert stats["failed"] == 0
    assert stats["mean_run_seconds"] == pytest.approx(3.0)
    # Second task queued behind the first for 3 s -> mean queue 1.5 s.
    assert stats["mean_queue_seconds"] == pytest.approx(1.5)


def test_app_stats_counts_retries():
    hub = MonitoringHub()
    dfk = make_dfk(hub, retries=2, workers=1)
    attempts = []

    @python_app(dfk=dfk)
    def flaky():
        attempts.append(1)
        if len(attempts) == 1:
            raise RuntimeError("transient")
        return "ok"

    fut = flaky()
    dfk.run()
    assert fut.result() == "ok"
    stats = hub.app_stats("flaky")
    assert stats["completed"] == 1
    assert stats["failed"] == 0
    assert stats["retries"] == 1
    assert stats["max_tries"] == 1
    # An app that never retried reports zeros, not the other app's counts.
    @python_app(dfk=dfk)
    def steady():
        return 1

    dfk.wait([steady()])
    clean = hub.app_stats("steady")
    assert clean["retries"] == 0
    assert clean["max_tries"] == 0


def test_worker_busy_fraction():
    hub = MonitoringHub()
    dfk = make_dfk(hub, workers=1)

    @python_app(dfk=dfk, walltime=4.0)
    def job():
        return 1

    dfk.wait([job()])
    dfk.run(until=8.0)
    worker = f"cpu-worker0"
    assert hub.worker_busy_fraction(worker, 8.0) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        hub.worker_busy_fraction(worker, 0.0)


def test_jsonl_export_roundtrip():
    hub = MonitoringHub()
    dfk = make_dfk(hub)

    @python_app(dfk=dfk)
    def job():
        return 1

    dfk.wait([job()])
    lines = hub.to_jsonl().splitlines()
    assert len(lines) == len(hub)
    parsed = [json.loads(line) for line in lines]
    assert parsed[0]["state"] == "submitted"
    assert parsed[-1]["state"] == "done"


def test_executors_listing():
    hub = MonitoringHub()
    dfk = make_dfk(hub)

    @python_app(dfk=dfk)
    def job():
        return 1

    dfk.wait([job()])
    assert hub.executors() == ["cpu"]


def test_no_hub_is_fine():
    dfk = make_dfk(None)

    @python_app(dfk=dfk)
    def job():
        return "ok"

    assert dfk.wait([job()]) == ["ok"]
