"""Tests for fault plans and the chaos controller (repro.faas.chaos)."""

import json

import pytest

from repro.faas import ChaosController, FaultEvent, FaultPlan
from repro.sim import Environment


# ------------------------------------------------------------- FaultEvent

def test_fault_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(time=1.0, kind="meteor-strike")
    with pytest.raises(ValueError):
        FaultEvent(time=-1.0, kind="ecc")
    with pytest.raises(ValueError):
        FaultEvent(time=1.0, kind="ecc", target=-2)
    with pytest.raises(ValueError):
        FaultEvent(time=1.0, kind="straggler_replica", duration=-1.0)
    with pytest.raises(ValueError):
        FaultEvent(time=1.0, kind="straggler_replica", factor=0.0)


# -------------------------------------------------------------- FaultPlan

def test_plan_sorts_events_by_time():
    plan = FaultPlan([FaultEvent(time=5.0, kind="ecc"),
                      FaultEvent(time=1.0, kind="replica_crash")])
    assert [ev.time for ev in plan] == [1.0, 5.0]


def test_exponential_plan_is_deterministic():
    a = FaultPlan.exponential("ecc", mtbf_seconds=10.0, horizon=100.0,
                              seed=42)
    b = FaultPlan.exponential("ecc", mtbf_seconds=10.0, horizon=100.0,
                              seed=42)
    assert a == b
    assert len(a) > 0
    assert all(ev.time < 100.0 for ev in a)
    assert a != FaultPlan.exponential("ecc", mtbf_seconds=10.0,
                                      horizon=100.0, seed=43)


def test_merge_preserves_each_class_schedule():
    """Composability: merging another fault class must not perturb the
    first class's times (each class owns its own generator)."""
    ecc = FaultPlan.exponential("ecc", 10.0, 100.0, seed=1)
    crash = FaultPlan.exponential("replica_crash", 15.0, 100.0, seed=2,
                                  duration=5.0)
    merged = ecc.merge(crash)
    assert len(merged) == len(ecc) + len(crash)
    assert [ev.time for ev in merged
            if ev.kind == "ecc"] == [ev.time for ev in ecc]
    assert [ev.time for ev in merged
            if ev.kind == "replica_crash"] == [ev.time for ev in crash]


def test_until_truncates():
    plan = FaultPlan.exponential("ecc", 5.0, 100.0, seed=0)
    cut = plan.until(50.0)
    assert all(ev.time < 50.0 for ev in cut)
    assert len(cut) < len(plan)


def test_json_round_trip(tmp_path):
    plan = FaultPlan.exponential("straggler_replica", 10.0, 60.0, seed=9,
                                 duration=8.0, factor=3.0)
    assert FaultPlan.from_json(plan.to_json()) == plan
    path = tmp_path / "plan.json"
    plan.save(path)
    assert FaultPlan.load(path) == plan


def test_from_json_rejects_wrong_schema():
    with pytest.raises(ValueError):
        FaultPlan.from_json('{"schema": "repro-faultplan/99", "events": []}')


def test_validation():
    with pytest.raises(ValueError):
        FaultPlan.exponential("ecc", mtbf_seconds=0.0, horizon=10.0)
    with pytest.raises(ValueError):
        FaultPlan.exponential("ecc", mtbf_seconds=1.0, horizon=0.0)


# --------------------------------- control-plane kinds (repro-faultplan/2)

def test_control_plane_kinds_round_trip():
    plan = FaultPlan([
        FaultEvent(time=1.0, kind="resize_stuck", target=3, duration=0.0),
        FaultEvent(time=2.0, kind="cache_load_failure", target=1),
        FaultEvent(time=3.0, kind="sensor_dropout", duration=40.0),
        FaultEvent(time=4.0, kind="telemetry_corruption", duration=30.0,
                   factor=8.0),
    ])
    text = plan.to_json()
    assert json.loads(text)["schema"] == "repro-faultplan/2"
    assert FaultPlan.from_json(text) == plan
    assert plan == FaultPlan.from_json(
        FaultPlan.from_json(plan.to_json()).to_json())


def test_from_json_accepts_schema_1_documents():
    doc = json.dumps({"schema": "repro-faultplan/1",
                      "events": [{"time": 5.0, "kind": "ecc", "target": 3}]})
    plan = FaultPlan.from_json(doc)
    assert plan.events == (FaultEvent(time=5.0, kind="ecc", target=3),)


def test_from_json_names_the_offending_event():
    bad_kind = json.dumps({
        "schema": "repro-faultplan/2",
        "events": [{"time": 1.0, "kind": "ecc"},
                   {"time": 2.0, "kind": "quantum-flux"}]})
    with pytest.raises(ValueError, match=r"fault plan event 1: .*quantum"):
        FaultPlan.from_json(bad_kind)
    bad_duration = json.dumps({
        "schema": "repro-faultplan/2",
        "events": [{"time": 1.0, "kind": "sensor_dropout",
                    "duration": -3.0}]})
    with pytest.raises(ValueError, match=r"fault plan event 0: .*duration"):
        FaultPlan.from_json(bad_duration)


def test_until_boundary_excludes_event_at_horizon():
    plan = FaultPlan([FaultEvent(time=10.0, kind="ecc"),
                      FaultEvent(time=20.0, kind="ecc")])
    assert [ev.time for ev in plan.until(20.0)] == [10.0]
    assert len(plan.until(20.0 + 1e-9)) == 2


# -------------------------------------------------------- ChaosController

class RecordingFleet:
    def __init__(self):
        self.seen = []

    def apply_fault(self, event):
        self.seen.append(event)
        return f"{event.kind}@{event.target}"


def test_controller_applies_events_at_their_times():
    env = Environment()
    fleet = RecordingFleet()
    plan = FaultPlan([FaultEvent(time=2.0, kind="ecc", target=1),
                      FaultEvent(time=5.0, kind="replica_crash", target=2)])
    controller = ChaosController(env, fleet, plan)
    env.run(until=10.0)
    assert [ev.time for ev in fleet.seen] == [2.0, 5.0]
    assert controller.applied == [(2.0, "ecc", "ecc@1"),
                                  (5.0, "replica_crash", "replica_crash@2")]


def test_controller_horizon_clips_plan():
    env = Environment()
    fleet = RecordingFleet()
    plan = FaultPlan([FaultEvent(time=2.0, kind="ecc"),
                      FaultEvent(time=50.0, kind="ecc")])
    ChaosController(env, fleet, plan, horizon=10.0)
    env.run()
    assert len(fleet.seen) == 1
