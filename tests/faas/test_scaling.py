"""Tests for executor elasticity (scale out / scale in) and prefill."""

import pytest

from repro.faas import (
    ColdStartModel,
    Config,
    DataFlowKernel,
    HighThroughputExecutor,
    LocalProvider,
    gpu_app,
    python_app,
)
from repro.gpu import A100_80GB
from repro.workloads import LLAMA2_7B, InferenceRuntime, LlamaInference

NO_COLD = ColdStartModel(function_init_seconds=0.0, gpu_context_seconds=0.0)
FP16 = InferenceRuntime(dtype_bytes=2)


def make_dfk(workers=1, cold=NO_COLD):
    ex = HighThroughputExecutor(label="cpu", max_workers=workers,
                                cold_start=cold)
    return DataFlowKernel(Config(executors=[ex])), ex


def test_scale_out_adds_capacity():
    dfk, ex = make_dfk(workers=1)

    @python_app(dfk=dfk, walltime=4.0)
    def job():
        return 1

    futs = [job() for _ in range(4)]
    ex.scale_out(3)
    dfk.wait(futs)
    # 4 tasks on 4 workers -> one wave.
    assert dfk.env.now == pytest.approx(4.0)
    assert ex.live_workers == 4


def test_scale_out_pays_cold_start():
    cold = ColdStartModel(function_init_seconds=2.0, gpu_context_seconds=0.0)
    dfk, ex = make_dfk(workers=1, cold=cold)
    dfk.run(until=5.0)  # original worker warm

    @python_app(dfk=dfk, walltime=1.0)
    def job():
        return 1

    ex.scale_out(1)
    futs = [job(), job()]
    dfk.run()
    # One task ran immediately on the warm worker; the other waited for
    # the new worker's 2 s cold start (or the warm worker's 1 s task).
    starts = sorted(f.task.start_time for f in futs)
    assert starts[0] == pytest.approx(5.0)
    assert starts[1] <= 7.0 + 1e-9


def test_scale_in_idle_workers_stop_immediately():
    dfk, ex = make_dfk(workers=4)
    dfk.run(until=1.0)
    retired = ex.scale_in(2)
    assert retired == 2
    dfk.run(until=2.0)
    assert ex.live_workers == 2

    @python_app(dfk=dfk, walltime=1.0)
    def job():
        return "ok"

    assert dfk.wait([job()]) == ["ok"]  # survivors still serve


def test_scale_in_busy_worker_drains():
    dfk, ex = make_dfk(workers=2)

    @python_app(dfk=dfk, walltime=10.0)
    def slow(i):
        return i

    futs = [slow(0), slow(1)]
    dfk.run(until=2.0)  # both workers busy
    ex.scale_in(1)
    dfk.run()
    # The draining worker finished its task first (nothing lost).
    assert [f.result() for f in futs] == [0, 1]
    assert ex.live_workers == 1


def test_scale_in_keeps_at_least_one():
    dfk, ex = make_dfk(workers=2)
    dfk.run(until=1.0)
    assert ex.scale_in(10) == 1
    assert ex.live_workers == 1


def test_scale_validation():
    dfk, ex = make_dfk()
    with pytest.raises(ValueError):
        ex.scale_out(0)
    with pytest.raises(ValueError):
        ex.scale_in(0)
    fresh = HighThroughputExecutor(label="x", max_workers=1)
    with pytest.raises(RuntimeError, match="not started"):
        fresh.scale_out(1)


def test_scaled_out_gpu_workers_reuse_partition_slots():
    ex = HighThroughputExecutor(
        label="gpu", available_accelerators=["0", "0"],
        gpu_percentage=[50, 50], cold_start=NO_COLD,
        provider=LocalProvider(cores=8, gpu_specs=[A100_80GB]))
    dfk = DataFlowKernel(Config(executors=[ex]))
    dfk.run(until=1.0)
    (new_worker,) = ex.scale_out(1)
    # Worker index 2 wraps to slot 0: same GPU, same 50% percentage.
    assert new_worker.fenv.visible_device == "0"
    assert new_worker.fenv.mps_percentage == 50


# ----------------------------------------------------------------- prefill

def test_prefill_kernel_is_parallel_and_compute_heavy():
    llm = LlamaInference(LLAMA2_7B, FP16)
    prefill = llm.prefill_kernel(prompt_tokens=128)
    decode = llm.decode_kernel()
    assert prefill.max_sms > decode.max_sms
    assert prefill.efficiency > decode.efficiency
    assert prefill.flops == pytest.approx(128 * decode.flops)
    # Per token, prefill is far cheaper than decode on a full GPU.
    t_prefill = prefill.duration(108, A100_80GB.flops_per_sm,
                                 A100_80GB.bandwidth) / 128
    t_decode = decode.duration(108, A100_80GB.flops_per_sm,
                               A100_80GB.bandwidth)
    assert t_prefill < 0.2 * t_decode


def test_prefill_validation():
    llm = LlamaInference(LLAMA2_7B, FP16)
    with pytest.raises(ValueError):
        llm.prefill_kernel(0)
