"""Tests for app decorators, futures, and the DataFlowKernel."""

import pytest

from repro.faas import (
    Config,
    DataFlowKernel,
    HighThroughputExecutor,
    clear,
    current_dfk,
    gpu_app,
    join_app,
    load,
    python_app,
)
from repro.faas import ColdStartModel
from repro.faas.dataflow import DependencyError
from repro.faas.futures import TaskState

NO_COLD_START = ColdStartModel(function_init_seconds=0.0,
                               gpu_context_seconds=0.0)


@pytest.fixture(autouse=True)
def clean_global_dfk():
    clear()
    yield
    clear()


def make_dfk(retries=0, workers=4):
    config = Config(
        executors=[HighThroughputExecutor(label="cpu", max_workers=workers,
                                          cold_start=NO_COLD_START)],
        retries=retries,
    )
    return DataFlowKernel(config)


def test_python_app_returns_future_immediately():
    dfk = make_dfk()

    @python_app(dfk=dfk)
    def add(a, b):
        return a + b

    fut = add(1, 2)
    assert not fut.done()
    dfk.run()
    assert fut.done()
    assert fut.result() == 3


def test_result_before_run_raises():
    dfk = make_dfk()

    @python_app(dfk=dfk)
    def f():
        return 1

    fut = f()
    with pytest.raises(RuntimeError, match="has not completed"):
        fut.result()


def test_walltime_occupies_worker():
    dfk = make_dfk(workers=1)

    @python_app(dfk=dfk, walltime=5.0)
    def slow():
        return "done"

    futs = [slow(), slow()]
    dfk.wait(futs)
    # Two 5 s tasks on one worker run back to back.
    assert dfk.env.now == pytest.approx(10.0)


def test_parallel_tasks_on_multiple_workers():
    dfk = make_dfk(workers=4)

    @python_app(dfk=dfk, walltime=5.0)
    def slow(i):
        return i

    results = dfk.wait([slow(i) for i in range(4)])
    assert results == [0, 1, 2, 3]
    assert dfk.env.now == pytest.approx(5.0)


def test_future_dependencies_chain():
    dfk = make_dfk()
    order = []

    @python_app(dfk=dfk, walltime=1.0)
    def stage(name, value):
        order.append(name)
        return value + 1

    a = stage("a", 0)
    b = stage("b", a)  # depends on a's future
    c = stage("c", b)
    assert dfk.wait([c]) == [3]
    assert order == ["a", "b", "c"]
    assert dfk.env.now == pytest.approx(3.0)


def test_dependencies_inside_lists():
    dfk = make_dfk()

    @python_app(dfk=dfk)
    def produce(x):
        return x

    @python_app(dfk=dfk)
    def total(values):
        return sum(values)

    futs = [produce(i) for i in range(5)]
    assert dfk.wait([total(futs)]) == [10]


def test_app_exception_reported_via_future():
    dfk = make_dfk()

    @python_app(dfk=dfk)
    def boom():
        raise ValueError("kapow")

    fut = boom()
    dfk.run()
    assert isinstance(fut.exception(), ValueError)
    with pytest.raises(ValueError, match="kapow"):
        fut.result()


def test_dependency_failure_propagates():
    dfk = make_dfk()

    @python_app(dfk=dfk)
    def boom():
        raise ValueError("dead upstream")

    @python_app(dfk=dfk)
    def consume(x):
        return x

    fut = consume(boom())
    dfk.run()
    assert isinstance(fut.exception(), DependencyError)


def test_retries_rerun_failed_tasks():
    dfk = make_dfk(retries=2)
    attempts = []

    @python_app(dfk=dfk)
    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise RuntimeError("transient")
        return "recovered"

    fut = flaky()
    dfk.run()
    assert fut.result() == "recovered"
    assert len(attempts) == 3


def test_retries_exhausted():
    dfk = make_dfk(retries=1)
    attempts = []

    @python_app(dfk=dfk)
    def always_fails():
        attempts.append(1)
        raise RuntimeError("permanent")

    fut = always_fails()
    dfk.run()
    assert len(attempts) == 2
    assert isinstance(fut.exception(), RuntimeError)


def test_join_app_flattens_future():
    dfk = make_dfk()

    @python_app(dfk=dfk, walltime=1.0)
    def inner(x):
        return x * 10

    @join_app(dfk=dfk)
    def outer(x):
        return inner(x)

    assert dfk.wait([outer(4)]) == [40]


def test_join_app_list_of_futures():
    dfk = make_dfk()

    @python_app(dfk=dfk)
    def inner(x):
        return x

    @join_app(dfk=dfk)
    def fan_out(n):
        return [inner(i) for i in range(n)]

    assert dfk.wait([fan_out(3)]) == [[0, 1, 2]]


def test_join_app_non_future_return_fails():
    dfk = make_dfk()

    @join_app(dfk=dfk)
    def bad():
        return 42

    fut = bad()
    dfk.run()
    assert isinstance(fut.exception(), TypeError)


def test_global_load_and_clear():
    config = Config(executors=[HighThroughputExecutor(label="cpu",
                                                      max_workers=1)])
    dfk = load(config)
    assert current_dfk() is dfk

    @python_app
    def f():
        return "global"

    fut = f()
    dfk.run()
    assert fut.result() == "global"
    with pytest.raises(RuntimeError, match="already loaded"):
        load(config)
    clear()
    assert current_dfk() is None


def test_app_without_dfk_raises():
    @python_app
    def orphan():
        return 1

    with pytest.raises(RuntimeError, match="no DataFlowKernel"):
        orphan()


def test_executor_selection_by_label():
    config = Config(executors=[
        HighThroughputExecutor(label="cpu", max_workers=1),
        HighThroughputExecutor(label="other", max_workers=1),
    ])
    dfk = DataFlowKernel(config)

    @python_app(executors=["other"], dfk=dfk)
    def f():
        return "ran"

    fut = f()
    dfk.run()
    assert fut.result() == "ran"
    assert fut.task.executor_label == "other"


def test_unknown_executor_label():
    dfk = make_dfk()

    @python_app(executors=["nonexistent"], dfk=dfk)
    def f():
        return 1

    with pytest.raises(KeyError, match="nonexistent"):
        f()


def test_gpu_app_requires_generator():
    with pytest.raises(TypeError, match="generator"):
        @gpu_app
        def not_a_generator(ctx):
            return 1


def test_task_summary_and_records():
    dfk = make_dfk()

    @python_app(dfk=dfk, walltime=2.0)
    def f():
        return 1

    futs = [f() for _ in range(3)]
    dfk.wait(futs)
    assert dfk.task_summary() == {"done": 3}
    for record in dfk.tasks:
        assert record.state is TaskState.DONE
        assert record.run_seconds == pytest.approx(2.0)
        assert record.queue_seconds is not None


def test_config_validation():
    with pytest.raises(ValueError, match="at least one executor"):
        Config(executors=[])
    with pytest.raises(ValueError, match="duplicate"):
        Config(executors=[
            HighThroughputExecutor(label="x", max_workers=1),
            HighThroughputExecutor(label="x", max_workers=1),
        ])
    with pytest.raises(ValueError, match="retries"):
        Config(executors=[HighThroughputExecutor(label="x", max_workers=1)],
               retries=-1)
