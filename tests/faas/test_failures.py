"""Tests for failure injection: worker crashes and GPU errors."""

import pytest

from repro.faas import (
    ColdStartModel,
    Config,
    DataFlowKernel,
    FailureInjector,
    GpuEccError,
    HighThroughputExecutor,
    LocalProvider,
    WorkerCrash,
    gpu_app,
    inject_gpu_error,
    python_app,
)
from repro.gpu import A100_40GB, Kernel, MpsControlDaemon, SimulatedGPU
from repro.sim import Environment

NO_COLD = ColdStartModel(function_init_seconds=0.0, gpu_context_seconds=0.0)


def slow_kernel(seconds=10.0):
    return Kernel(flops=A100_40GB.fp32_flops * seconds, bytes_moved=0.0,
                  max_sms=A100_40GB.sms, efficiency=1.0)


# -------------------------------------------------------------- GPU errors

def test_inject_gpu_error_kills_resident_kernels():
    env = Environment()
    gpu = SimulatedGPU(env, A100_40GB)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    a = daemon.client("a")
    b = daemon.client("b")
    done_a = a.launch(slow_kernel())
    done_b = b.launch(slow_kernel())
    done_a._defused = True
    done_b._defused = True
    env.run(until=2.0)
    killed = inject_gpu_error(gpu)
    assert killed == 2
    assert isinstance(done_a.value, GpuEccError)
    assert isinstance(done_b.value, GpuEccError)
    assert gpu.kernels_completed == 0  # failures are not completions


def test_gpu_error_spares_queued_timeshared_kernels():
    env = Environment()
    gpu = SimulatedGPU(env, A100_40GB)
    a = gpu.timeshare_client("a")
    b = gpu.timeshare_client("b")
    running = a.launch(slow_kernel(5.0))
    queued = b.launch(slow_kernel(1.0))
    running._defused = True
    env.run(until=1.0)
    assert inject_gpu_error(gpu) == 1  # only the resident kernel dies
    env.run()
    assert queued.ok  # the queued kernel ran afterwards


def test_gpu_app_retries_after_ecc_error():
    """A killed kernel surfaces as an app exception and retries cleanly."""
    ex = HighThroughputExecutor(
        label="gpu", available_accelerators=["0"], cold_start=NO_COLD,
        provider=LocalProvider(cores=4, gpu_specs=[A100_40GB]))
    dfk = DataFlowKernel(Config(executors=[ex], retries=1))
    gpu = ex.nodes[0].gpus[0]

    @gpu_app(dfk=dfk)
    def work(ctx):
        yield ctx.launch(slow_kernel(5.0))
        return "survived"

    fut = work()

    def saboteur(env):
        yield env.timeout(2.0)
        inject_gpu_error(gpu)

    dfk.env.process(saboteur(dfk.env))
    dfk.run()
    assert fut.result() == "survived"
    assert fut.task.tries == 1  # one failed attempt, one retry


# ------------------------------------------------------------ worker crashes

def make_dfk(workers=2, retries=1):
    ex = HighThroughputExecutor(label="cpu", max_workers=workers,
                                cold_start=NO_COLD)
    return DataFlowKernel(Config(executors=[ex], retries=retries)), ex


def test_crash_idle_worker_is_clean():
    dfk, ex = make_dfk(workers=2)
    dfk.run(until=1.0)
    injector = FailureInjector(dfk.env)
    injector.crash_worker(ex.workers[0])
    assert not ex.workers[0].alive

    @python_app(dfk=dfk, walltime=1.0)
    def job():
        return "ok"

    # The surviving worker still serves tasks.
    assert dfk.wait([job()]) == ["ok"]


def test_crash_mid_task_retries_on_survivor():
    dfk, ex = make_dfk(workers=2, retries=1)

    @python_app(dfk=dfk, walltime=10.0)
    def job(i):
        return i

    futs = [job(0), job(1), job(2)]  # third queues behind the first two

    def saboteur(env):
        yield env.timeout(3.0)
        FailureInjector(env).crash_worker(ex.workers[0])

    dfk.env.process(saboteur(dfk.env))
    dfk.run()
    assert [f.result() for f in futs] == [0, 1, 2]
    # The crashed task was retried (its tries counter advanced).
    assert sum(f.task.tries for f in futs) == 1


def test_crash_without_retries_fails_task():
    dfk, ex = make_dfk(workers=1, retries=0)

    @python_app(dfk=dfk, walltime=10.0)
    def job():
        return "never"

    fut = job()

    def saboteur(env):
        yield env.timeout(2.0)
        FailureInjector(env).crash_worker(ex.workers[0])

    dfk.env.process(saboteur(dfk.env))
    dfk.run()
    assert isinstance(fut.exception(), WorkerCrash)


def test_crashed_gpu_worker_releases_memory():
    ex = HighThroughputExecutor(
        label="gpu", available_accelerators=["0"], cold_start=NO_COLD,
        provider=LocalProvider(cores=4, gpu_specs=[A100_40GB]))
    dfk = DataFlowKernel(Config(executors=[ex]))
    node = ex.nodes[0]

    @gpu_app(dfk=dfk)
    def hold(ctx):
        ctx.gpu.alloc(10e9)
        yield ctx.sleep(100.0)

    hold()
    dfk.run(until=5.0)
    assert node.gpus[0].memory.used == pytest.approx(10e9)
    FailureInjector(dfk.env).crash_worker(ex.workers[0])
    dfk.run(until=6.0)
    # The process's CUDA context died: its allocations are gone.
    assert node.gpus[0].memory.used == 0.0


def test_respawn_replaces_worker_and_pays_cold_start():
    cold = ColdStartModel(function_init_seconds=2.0, gpu_context_seconds=0.0)
    ex = HighThroughputExecutor(label="cpu", max_workers=1, cold_start=cold)
    dfk = DataFlowKernel(Config(executors=[ex], retries=1))
    dfk.run(until=3.0)  # original worker warm
    injector = FailureInjector(dfk.env)
    old = ex.workers[0]
    replacement = injector.crash_worker(old, respawn_after=1.0)
    assert replacement is not None
    assert ex.workers[0] is replacement

    @python_app(dfk=dfk, walltime=1.0)
    def job():
        return "ok"

    fut = job()
    dfk.run()
    assert fut.result() == "ok"
    # Respawn delay (1 s) + cold start (2 s) before the task could run.
    assert fut.task.start_time >= 3.0 + 1.0 + 2.0 - 1e-9


def test_background_crash_process_is_deterministic():
    def run(seed):
        dfk, ex = make_dfk(workers=4, retries=3)

        @python_app(dfk=dfk, walltime=2.0)
        def job(i):
            return i

        futs = [job(i) for i in range(20)]
        injector = FailureInjector(dfk.env, seed=seed)
        injector.start_worker_crashes(ex, mtbf_seconds=10.0,
                                      respawn_after=1.0, horizon=60.0)
        dfk.run(until=200.0)
        results = [f.result() for f in futs if f.done() and
                   f.exception() is None]
        return injector.worker_crashes, sorted(results)

    assert run(7) == run(7)


def test_injector_validation():
    dfk, ex = make_dfk()
    injector = FailureInjector(dfk.env)
    with pytest.raises(ValueError):
        injector.start_worker_crashes(ex, mtbf_seconds=0.0)
    with pytest.raises(ValueError):
        injector.start_gpu_errors(None, mtbf_seconds=-1.0)


def test_crash_worker_rejects_negative_respawn():
    """Validation fires before any side effect: the worker survives."""
    dfk, ex = make_dfk(workers=1)
    dfk.run(until=1.0)
    injector = FailureInjector(dfk.env)
    with pytest.raises(ValueError):
        injector.crash_worker(ex.workers[0], respawn_after=-1.0)
    assert ex.workers[0].alive
    assert injector.worker_crashes == 0


def test_crash_worker_zero_respawn_is_valid():
    dfk, ex = make_dfk(workers=1)
    dfk.run(until=1.0)
    replacement = FailureInjector(dfk.env).crash_worker(
        ex.workers[0], respawn_after=0.0)
    assert replacement is not None
    assert ex.workers[0] is replacement


def test_respawned_replacement_is_eligible_crash_victim():
    """start_worker_crashes must see replacements in the victim pool —
    a respawned worker is as mortal as the one it replaced."""
    dfk, ex = make_dfk(workers=1, retries=3)
    injector = FailureInjector(dfk.env, seed=5)
    injector.start_worker_crashes(ex, mtbf_seconds=3.0, respawn_after=0.5,
                                  horizon=100.0)
    dfk.run(until=200.0)
    # With one slot, every crash after the first must have hit a
    # replacement; the roster still holds exactly one (live) worker.
    assert injector.worker_crashes > 1
    assert len(ex.workers) == 1


def test_replacement_registered_even_if_victim_left_roster():
    dfk, ex = make_dfk(workers=2)
    dfk.run(until=1.0)
    victim = ex.workers[0]
    ex.workers.remove(victim)  # e.g. scaled in concurrently
    replacement = FailureInjector(dfk.env).crash_worker(
        victim, respawn_after=1.0)
    assert replacement in ex.workers
    assert len(ex.workers) == 2
