"""Tests for executors, providers, env-var plumbing, and cold starts."""

import pytest

from repro.faas import (
    ColdStartModel,
    ComputeNode,
    Config,
    DataFlowKernel,
    FunctionEnvironment,
    HighThroughputExecutor,
    LocalProvider,
    SlurmProvider,
    ThreadPoolExecutor,
    gpu_app,
    python_app,
)
from repro.gpu import A100_40GB, Kernel
from repro.sim import Environment

NO_COLD = ColdStartModel(function_init_seconds=0.0, gpu_context_seconds=0.0)


def small_kernel(seconds=1.0):
    spec = A100_40GB
    return Kernel(flops=spec.flops_per_sm * 20 * seconds, bytes_moved=0.0,
                  max_sms=20, efficiency=1.0)


# ------------------------------------------------------------- configuration

def test_accelerator_int_shorthand():
    ex = HighThroughputExecutor(label="g", available_accelerators=2)
    assert ex.accelerators == ["0", "1"]
    assert ex.max_workers == 2


def test_accelerator_list_with_repeats():
    """Listing 2: repeating a GPU id multiplexes it between workers."""
    ex = HighThroughputExecutor(
        label="g",
        available_accelerators=["1", "2", "4"],
        gpu_percentage=[50, 25, 30],
    )
    env0 = ex.worker_environment(0)
    env1 = ex.worker_environment(1)
    env2 = ex.worker_environment(2)
    assert env0.visible_device == "1" and env0.mps_percentage == 50
    assert env1.visible_device == "2" and env1.mps_percentage == 25
    assert env2.visible_device == "4" and env2.mps_percentage == 30


def test_gpu_percentage_length_mismatch():
    with pytest.raises(ValueError, match="must match"):
        HighThroughputExecutor(label="g", available_accelerators=["0", "0"],
                               gpu_percentage=[50])


def test_gpu_percentage_without_accelerators():
    with pytest.raises(ValueError, match="requires available_accelerators"):
        HighThroughputExecutor(label="g", gpu_percentage=[50])


def test_gpu_percentage_range_checked():
    with pytest.raises(ValueError, match="0, 100"):
        HighThroughputExecutor(label="g", available_accelerators=["0"],
                               gpu_percentage=[150])


def test_gpu_percentage_implies_mps():
    ex = HighThroughputExecutor(label="g", available_accelerators=["0"],
                                gpu_percentage=[50])
    assert ex.start_mps_flag
    with pytest.raises(ValueError, match="requires the MPS daemon"):
        HighThroughputExecutor(label="g", available_accelerators=["0"],
                               gpu_percentage=[50], start_mps=False)


# ------------------------------------------------------------ function envs

def test_function_environment_roundtrip():
    fenv = FunctionEnvironment()
    fenv.visible_device = "0"
    fenv.mps_percentage = 30
    assert fenv.visible_device == "0"
    assert fenv.mps_percentage == 30
    assert not fenv.is_mig_uuid()
    fenv.visible_device = "MIG-gpu0-0001"
    assert fenv.is_mig_uuid()


def test_function_environment_bad_percentage():
    fenv = FunctionEnvironment()
    fenv.set("CUDA_MPS_ACTIVE_THREAD_PERCENTAGE", "abc")
    with pytest.raises(ValueError, match="not an.*integer"):
        _ = fenv.mps_percentage
    fenv.set("CUDA_MPS_ACTIVE_THREAD_PERCENTAGE", "0")
    with pytest.raises(ValueError, match="0, 100"):
        _ = fenv.mps_percentage


# ------------------------------------------------------------ compute nodes

def test_node_client_timeshare_without_mps():
    env = Environment()
    node = ComputeNode(env, cores=4, gpu_specs=[A100_40GB])
    fenv = FunctionEnvironment()
    fenv.visible_device = "0"
    client = node.make_gpu_client(fenv, "c")
    assert client.group is node.gpus[0].default_group


def test_node_client_mps_percentage_requires_daemon():
    env = Environment()
    node = ComputeNode(env, cores=4, gpu_specs=[A100_40GB])
    fenv = FunctionEnvironment()
    fenv.visible_device = "0"
    fenv.mps_percentage = 50
    with pytest.raises(RuntimeError, match="nvidia-cuda-mps-control"):
        node.make_gpu_client(fenv, "c")
    node.start_mps()
    client = node.make_gpu_client(fenv, "c")
    assert client.sm_cap == 54


def test_node_client_mig_uuid_resolution():
    env = Environment()
    node = ComputeNode(env, cores=4, gpu_specs=[A100_40GB])
    mig = node.mig_manager(0)
    env.run(until=env.process(mig.enable()))
    inst = mig.create_instance("2g.10gb")
    fenv = FunctionEnvironment()
    fenv.visible_device = inst.uuid
    client = node.make_gpu_client(fenv, "c")
    assert client.group is inst.group


def test_node_client_unknown_mig_uuid():
    env = Environment()
    node = ComputeNode(env, cores=4, gpu_specs=[A100_40GB])
    fenv = FunctionEnvironment()
    fenv.visible_device = "MIG-bogus"
    with pytest.raises(KeyError, match="does not match"):
        node.make_gpu_client(fenv, "c")


def test_node_client_gpu_index_out_of_range():
    env = Environment()
    node = ComputeNode(env, cores=4, gpu_specs=[A100_40GB])
    fenv = FunctionEnvironment()
    fenv.visible_device = "3"
    with pytest.raises(IndexError):
        node.make_gpu_client(fenv, "c")


def test_node_no_visible_device_gives_no_client():
    env = Environment()
    node = ComputeNode(env, cores=4, gpu_specs=[A100_40GB])
    assert node.make_gpu_client(FunctionEnvironment(), "c") is None


# ---------------------------------------------------------------- providers

def test_local_provider_immediate():
    env = Environment()
    ready, nodes = LocalProvider(cores=8).provision(env)
    assert ready.triggered
    assert len(nodes) == 1
    assert nodes[0].cores == 8


def test_slurm_provider_queue_wait():
    env = Environment()
    provider = SlurmProvider(nodes=2, cores_per_node=16,
                             queue_wait_seconds=120.0)
    ready, nodes = provider.provision(env)
    assert len(nodes) == 2
    assert not ready.processed  # queue wait has not elapsed yet
    env.run(until=ready)
    assert env.now == pytest.approx(120.0)


def test_slurm_executor_tasks_wait_for_nodes():
    provider = SlurmProvider(nodes=1, cores_per_node=4,
                             queue_wait_seconds=60.0)
    ex = HighThroughputExecutor(label="cpu", max_workers=2,
                                provider=provider, cold_start=NO_COLD)
    dfk = DataFlowKernel(Config(executors=[ex]))

    @python_app(dfk=dfk, walltime=1.0)
    def f():
        return "ran"

    fut = f()
    dfk.run()
    assert fut.result() == "ran"
    assert fut.task.start_time == pytest.approx(60.0)


# --------------------------------------------------------------- cold start

def test_cold_start_delays_first_task():
    cold = ColdStartModel(function_init_seconds=2.0, gpu_context_seconds=1.0)
    ex = HighThroughputExecutor(
        label="gpu", available_accelerators=["0"], cold_start=cold,
        provider=LocalProvider(cores=4, gpu_specs=[A100_40GB]))
    dfk = DataFlowKernel(Config(executors=[ex]))

    @gpu_app(dfk=dfk)
    def probe(ctx):
        yield ctx.launch(small_kernel(1.0))
        return ctx.now

    fut = probe()
    dfk.run()
    # 2 s function init + 1 s GPU context + 1 s kernel.
    assert fut.result() == pytest.approx(4.0)


def test_cpu_worker_skips_gpu_context_cost():
    cold = ColdStartModel(function_init_seconds=2.0, gpu_context_seconds=9.0)
    ex = HighThroughputExecutor(label="cpu", max_workers=1, cold_start=cold)
    dfk = DataFlowKernel(Config(executors=[ex]))

    @python_app(dfk=dfk)
    def f():
        return "x"

    fut = f()
    dfk.run()
    assert dfk.env.now == pytest.approx(2.0)


def test_cold_start_paid_once_per_worker():
    cold = ColdStartModel(function_init_seconds=3.0, gpu_context_seconds=0.0)
    ex = HighThroughputExecutor(label="cpu", max_workers=1, cold_start=cold)
    dfk = DataFlowKernel(Config(executors=[ex]))

    @python_app(dfk=dfk, walltime=1.0)
    def f():
        return "x"

    dfk.wait([f(), f()])
    assert dfk.env.now == pytest.approx(3.0 + 2.0)


# ------------------------------------------------------------- thread pool

def test_thread_pool_executor():
    ex = ThreadPoolExecutor(label="threads", max_threads=2)
    dfk = DataFlowKernel(Config(executors=[ex]))

    @python_app(dfk=dfk, walltime=2.0)
    def f(i):
        return i

    results = dfk.wait([f(i) for i in range(4)])
    assert results == [0, 1, 2, 3]
    # 4 tasks, 2 threads, no cold start -> 2 waves.
    assert dfk.env.now == pytest.approx(4.0)


# --------------------------------------------------- GPU multiplexing e2e

def test_workers_share_gpu_via_mps_percentages():
    """Two workers on one GPU at 50% each run kernels concurrently."""
    ex = HighThroughputExecutor(
        label="gpu",
        available_accelerators=["0", "0"],
        gpu_percentage=[50, 50],
        provider=LocalProvider(cores=4, gpu_specs=[A100_40GB]),
        cold_start=NO_COLD,
    )
    dfk = DataFlowKernel(Config(executors=[ex]))

    @gpu_app(dfk=dfk)
    def work(ctx):
        start = ctx.now
        yield ctx.launch(small_kernel(1.0))
        return (start, ctx.now)

    spans = dfk.wait([work(), work()])
    # Both kernels started at t=0 and, being 20-SM kernels under 54-SM
    # caps, ran concurrently at full speed.
    for start, end in spans:
        assert start == pytest.approx(0.0)
        assert end == pytest.approx(1.0)


def test_workers_on_separate_mig_instances():
    env = Environment()
    node_provider = LocalProvider(cores=4, gpu_specs=[A100_40GB])
    ready, nodes = node_provider.provision(env)
    node = nodes[0]
    mig = node.mig_manager(0)
    env.run(until=env.process(mig.enable()))
    i1 = mig.create_instance("3g.20gb")
    i2 = mig.create_instance("3g.20gb")

    class FixedProvider:
        def provision(self, env2):
            ev = env2.event()
            ev.succeed()
            return ev, [node]

    ex = HighThroughputExecutor(
        label="gpu",
        available_accelerators=[i1.uuid, i2.uuid],
        provider=FixedProvider(),
        cold_start=NO_COLD,
    )
    dfk = DataFlowKernel(Config(executors=[ex]), env=env)

    @gpu_app(dfk=dfk)
    def work(ctx):
        yield ctx.launch(small_kernel(1.0))
        return ctx.gpu.group.name

    groups = dfk.wait([work(), work()])
    assert set(groups) == {i1.uuid, i2.uuid}


def test_executor_stats():
    ex = HighThroughputExecutor(label="cpu", max_workers=2,
                                cold_start=NO_COLD)
    dfk = DataFlowKernel(Config(executors=[ex]))

    @python_app(dfk=dfk)
    def ok():
        return 1

    @python_app(dfk=dfk)
    def bad():
        raise RuntimeError("x")

    f1, f2 = ok(), bad()
    dfk.run()
    assert ex.tasks_submitted == 2
    assert ex.tasks_completed == 1
    assert ex.tasks_failed == 1
    assert ex.outstanding == 0
