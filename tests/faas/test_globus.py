"""Tests for the Globus Compute style federation layer."""

import pytest

from repro.faas import (
    ColdStartModel,
    Config,
    DataFlowKernel,
    Endpoint,
    GlobusComputeClient,
    GlobusComputeService,
    HighThroughputExecutor,
    python_app,
)
from repro.sim import Environment

NO_COLD = ColdStartModel(function_init_seconds=0.0, gpu_context_seconds=0.0)


def make_stack(latency=0.1, bandwidth=1e6):
    env = Environment()
    service = GlobusComputeService(env, wan_latency_seconds=latency,
                                   wan_bandwidth_bytes_per_s=bandwidth)
    dfk = DataFlowKernel(Config(executors=[
        HighThroughputExecutor(label="cpu", max_workers=2,
                               cold_start=NO_COLD)]), env=env)
    endpoint = Endpoint("hpc-endpoint", dfk, service)
    client = GlobusComputeClient(service, default_endpoint="hpc-endpoint")
    return env, service, dfk, endpoint, client


def test_register_and_submit_roundtrip():
    env, service, dfk, endpoint, client = make_stack()

    @python_app(dfk=dfk, walltime=1.0)
    def double(x):
        return 2 * x

    fid = client.register_function(double)
    fut = client.submit(fid, 21, payload_bytes=0.0)
    env.run()
    assert fut.result() == 42
    assert endpoint.tasks_received == 1
    assert service.tasks_relayed == 1


def test_wan_latency_applied_both_ways():
    env, service, dfk, endpoint, client = make_stack(latency=0.5,
                                                     bandwidth=1e9)

    @python_app(dfk=dfk, walltime=1.0)
    def job():
        return "done"

    fid = client.register_function(job)
    fut = client.submit(fid, payload_bytes=0.0)
    env.run()
    # 0.5 s inbound + 1 s run + ~0.5 s outbound.
    assert env.now == pytest.approx(2.0, abs=0.01)


def test_payload_size_adds_transfer_time():
    env, service, dfk, endpoint, client = make_stack(latency=0.0,
                                                     bandwidth=1e6)

    @python_app(dfk=dfk)
    def job(_blob):
        return "ok"

    fid = client.register_function(job)
    fut = client.submit(fid, b"", payload_bytes=2e6)  # 2 s at 1 MB/s
    env.run()
    assert fut.result() == "ok"
    assert env.now >= 2.0


def test_remote_failure_propagates_to_client():
    env, service, dfk, endpoint, client = make_stack()

    @python_app(dfk=dfk)
    def boom():
        raise ValueError("remote failure")

    fid = client.register_function(boom)
    fut = client.submit(fid, payload_bytes=0.0)
    env.run()
    assert isinstance(fut.exception(), ValueError)


def test_unknown_function_and_endpoint():
    env, service, dfk, endpoint, client = make_stack()
    with pytest.raises(KeyError, match="unknown function"):
        client.submit("fn-999999", payload_bytes=0.0)

    @python_app(dfk=dfk)
    def job():
        return 1

    fid = client.register_function(job)
    with pytest.raises(KeyError, match="unknown endpoint"):
        client.submit(fid, endpoint="nowhere", payload_bytes=0.0)


def test_client_requires_endpoint():
    env, service, dfk, endpoint, _ = make_stack()
    client = GlobusComputeClient(service)  # no default

    @python_app(dfk=dfk)
    def job():
        return 1

    fid = client.register_function(job)
    with pytest.raises(ValueError, match="no endpoint"):
        client.submit(fid)


def test_register_requires_app():
    env, service, dfk, endpoint, client = make_stack()
    with pytest.raises(TypeError, match="decorated app"):
        client.register_function(lambda: 1)


def test_duplicate_endpoint_rejected():
    env, service, dfk, endpoint, client = make_stack()
    with pytest.raises(ValueError, match="already registered"):
        Endpoint("hpc-endpoint", dfk, service)


def test_multiple_endpoints_routing():
    env = Environment()
    service = GlobusComputeService(env, wan_latency_seconds=0.0)
    dfk_a = DataFlowKernel(Config(executors=[
        HighThroughputExecutor(label="cpu", max_workers=1,
                               cold_start=NO_COLD)]), env=env)
    dfk_b = DataFlowKernel(Config(executors=[
        HighThroughputExecutor(label="cpu", max_workers=1,
                               cold_start=NO_COLD)]), env=env)
    ep_a = Endpoint("site-a", dfk_a, service)
    ep_b = Endpoint("site-b", dfk_b, service)
    client = GlobusComputeClient(service)

    @python_app(dfk=dfk_a)
    def job():
        return "ran"

    fid = client.register_function(job)
    f1 = client.submit(fid, endpoint="site-a", payload_bytes=0.0)
    f2 = client.submit(fid, endpoint="site-b", payload_bytes=0.0)
    env.run()
    assert f1.result() == "ran" and f2.result() == "ran"
    assert ep_a.tasks_received == 1
    assert ep_b.tasks_received == 1


def test_mismatched_environment_rejected():
    env1 = Environment()
    env2 = Environment()
    service = GlobusComputeService(env1)
    dfk = DataFlowKernel(Config(executors=[
        HighThroughputExecutor(label="cpu", max_workers=1,
                               cold_start=NO_COLD)]), env=env2)
    with pytest.raises(ValueError, match="share an"):
        Endpoint("x", dfk, service)
