"""Tests for control-plane fault injection on the autoscaled fleet.

Covers the four ``repro-faultplan/2`` kinds end to end against
:class:`AutoscaledServingFleet` — stuck drains aborting a
:class:`ResizeTransaction` with a verified rollback, weight-cache
corruption forcing a cold reload, and the two telemetry faults as seen
through :meth:`sensor_snapshot` — plus the data-plane ``replica_crash``
respawn path and the :meth:`control_state` snapshot the rollback
verification compares against.
"""

import json

import pytest

from repro.faas import FaultEvent
from repro.partition.reconfig import ReconfigurationPlanner
from repro.sim import Environment
from repro.workloads import (
    AutoscaledServingFleet,
    FleetFunction,
    ServingFleet,
)


def make_fleet(weight_cache=True, n_replicas=2, pct=20, seed=0):
    env = Environment()
    functions = [
        FleetFunction("hot", n_replicas, slo_seconds=6.0, initial_pct=pct,
                      n_tokens=8),
        FleetFunction("cold", n_replicas, slo_seconds=6.0, initial_pct=pct,
                      n_tokens=8),
    ]
    fleet = AutoscaledServingFleet(env, functions, seed=seed,
                                   weight_cache=weight_cache)
    return env, fleet


# ------------------------------------------------------------ resize_stuck

def test_stuck_drain_aborts_with_a_verified_rollback():
    env, fleet = make_fleet()
    planner = ReconfigurationPlanner(fleet.device.spec)
    group = fleet.groups["hot"]
    # Targets resolve modulo the flat (function, replica) pool; with two
    # functions of two replicas each, target 0 is hot-r0.
    fleet.apply_fault(FaultEvent(time=0.0, kind="resize_stuck", target=0,
                                 duration=0.0))  # held until further notice
    before = fleet.control_state()
    proc = env.process(fleet.resize_replica("hot", group.replicas[0], 35,
                                            planner, watchdog_seconds=10.0))
    result = env.run(until=proc)
    assert result["aborted"] is True
    assert result["rollback_verified"] is True
    assert env.now == pytest.approx(10.0)  # the watchdog decided
    # The abort restored the whole control plane bit for bit.
    assert fleet.control_state() == before
    assert group.pct_by_replica[0] == 20
    stats = group.stats
    assert stats.resize_attempts == 1
    assert stats.resize_aborts == 1
    assert stats.resize_rollbacks == 1
    # Admission resumed at the old percentage: traffic still flows.
    req = fleet.submit("hot")
    env.run(until=req.done)
    assert req.outcome == "ok"
    assert group.stats.lost == 0


def test_bounded_stuck_drain_delays_but_commits():
    env, fleet = make_fleet()
    planner = ReconfigurationPlanner(fleet.device.spec)
    group = fleet.groups["hot"]
    fleet.apply_fault(FaultEvent(time=0.0, kind="resize_stuck", target=0,
                                 duration=5.0))
    proc = env.process(fleet.resize_replica("hot", group.replicas[0], 35,
                                            planner, watchdog_seconds=30.0))
    result = env.run(until=proc)
    # The hold expired before the watchdog: a slow commit, not an abort.
    assert result["aborted"] is False
    assert result["to_pct"] == 35
    assert result["downtime_seconds"] >= 5.0
    assert group.pct_by_replica[0] == 35
    assert group.stats.resize_aborts == 0


def test_resize_transaction_validation():
    from repro.workloads.fleet import ResizeTransaction
    env, fleet = make_fleet()
    planner = ReconfigurationPlanner(fleet.device.spec)
    replica = fleet.groups["hot"].replicas[0]
    with pytest.raises(ValueError, match="new_pct"):
        ResizeTransaction(fleet, "hot", replica, 0, planner)
    with pytest.raises(ValueError, match="watchdog"):
        ResizeTransaction(fleet, "hot", replica, 30, planner,
                          watchdog_seconds=0.0)


# ------------------------------------------------------ cache_load_failure

def test_cache_corruption_forces_one_cold_reload():
    env, fleet = make_fleet(weight_cache=True)
    planner = ReconfigurationPlanner(fleet.device.spec)
    group = fleet.groups["hot"]
    refs_before = fleet.weight_cache.refcounts()
    # Group targets resolve modulo the function list: target 0 is hot.
    fleet.apply_fault(FaultEvent(time=0.0, kind="cache_load_failure",
                                 target=0))
    proc = env.process(fleet.resize_replica("hot", group.replicas[0], 35,
                                            planner))
    result = env.run(until=proc)
    # The corrupt entry cost the full reload despite the standing cache.
    assert result["weight_cache_hit"] is False
    expected = planner.TEARDOWN_SECONDS + \
        planner.cold_start.worker_start_seconds(True) + \
        group.model_load_seconds
    assert result["downtime_seconds"] == pytest.approx(expected)
    assert group.stats.cache_load_failures == 1
    # Reloading repaired the entry: the next restart hits again, and the
    # standing refcounts never moved.
    proc = env.process(fleet.resize_replica("hot", group.replicas[1], 35,
                                            planner))
    result = env.run(until=proc)
    assert result["weight_cache_hit"] is True
    assert group.stats.cache_load_failures == 1
    assert fleet.weight_cache.refcounts() == refs_before


# -------------------------------------------- sensor_dropout / corruption

def test_sensor_dropout_freezes_the_published_snapshot():
    env, fleet = make_fleet()
    for _ in range(3):
        fleet.submit("hot")
    env.run(until=5.0)
    fleet.apply_fault(FaultEvent(time=5.0, kind="sensor_dropout", target=0,
                                 duration=10.0))
    assert fleet.sensor_snapshot("hot") == (3, 5.0)
    for _ in range(2):
        fleet.submit("hot")
    env.run(until=10.0)
    # Mid-fault: both the count and the as-of timestamp stay frozen.
    assert fleet.sensor_snapshot("hot") == (3, 5.0)
    assert fleet.groups["hot"].stats.offered == 5  # ground truth moved on
    env.run(until=16.0)
    # Expired: the snapshot self-cleans back to ground truth.
    assert fleet.sensor_snapshot("hot") == (5, 16.0)
    assert "hot" not in fleet._sensor_dropout


def test_telemetry_corruption_inflates_the_offered_delta():
    env, fleet = make_fleet()
    env.run(until=2.0)
    fleet.apply_fault(FaultEvent(time=2.0, kind="telemetry_corruption",
                                 target=0, duration=20.0, factor=4.0))
    for _ in range(4):
        fleet.submit("hot")
    env.run(until=3.0)
    offered, as_of = fleet.sensor_snapshot("hot")
    assert offered == 16  # 0 at onset + (4 - 0) x 4
    assert as_of == 3.0   # corruption lies about the value, not the time
    env.run(until=30.0)
    assert fleet.sensor_snapshot("hot") == (4, 30.0)


# ----------------------------------------------- data-plane kinds (PR 4)

def test_replica_crash_respawns_with_the_ledger_intact():
    env, fleet = make_fleet()
    group = fleet.groups["hot"]
    replica = group.replicas[0]
    fleet.apply_fault(FaultEvent(time=0.0, kind="replica_crash", target=0,
                                 duration=7.0))
    env.run(until=1.0)
    assert not replica.alive
    # Down replicas provision nothing.
    assert fleet.control_state()["provisioned"]["hot/0"] == 0
    env.run(until=8.0)
    assert replica.alive
    assert replica.incarnations == 2
    # Identity survives the respawn: same Replica object, same router slot.
    assert group.router.replicas[0] is replica
    assert fleet.control_state()["provisioned"]["hot/0"] == 20
    req = fleet.submit("hot")
    env.run(until=req.done)
    assert req.outcome == "ok"


def test_fault_counters_and_unknown_kinds():
    env, fleet = make_fleet()
    fleet.apply_fault(FaultEvent(time=0.0, kind="sensor_dropout",
                                 duration=5.0))
    fleet.apply_fault(FaultEvent(time=0.0, kind="cache_load_failure"))
    assert fleet.faults == {"sensor_dropout": 1, "cache_load_failure": 1}

    class Rogue:
        kind = "meteor-strike"
    with pytest.raises(ValueError, match="meteor-strike"):
        fleet.apply_fault(Rogue())


# ----------------------------------------------------------- control_state

def test_control_state_is_json_able_and_stable_when_idle():
    env, fleet = make_fleet()
    state = fleet.control_state()
    # The rollback property tests compare this verbatim — it must be
    # JSON-able and must not drift while nothing happens.
    text = json.dumps(state, sort_keys=True)
    env.run(until=50.0)
    assert json.dumps(fleet.control_state(), sort_keys=True) == text
    assert state["alloc_total_pct"] == 80  # 2 functions x 2 replicas x 20%
    assert state["provisioned"] == {"hot/0": 20, "hot/1": 20,
                                    "cold/0": 20, "cold/1": 20}


# ---------------------------------------- static fleet: graceful no-ops

def test_static_fleet_skips_control_plane_kinds():
    env = Environment()
    fleet = ServingFleet(env, mode="mps", n_partitions=2,
                         servers_per_partition=1)
    for kind in ("resize_stuck", "cache_load_failure", "sensor_dropout",
                 "telemetry_corruption"):
        desc = fleet.apply_fault(FaultEvent(time=0.0, kind=kind))
        assert "no control plane" in desc
