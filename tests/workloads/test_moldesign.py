"""Tests for the molecular-design campaign and its substrates."""

import numpy as np
import pytest

from repro.faas import (
    ColdStartModel,
    Config,
    DataFlowKernel,
    HighThroughputExecutor,
    LocalProvider,
)
from repro.gpu import A100_40GB
from repro.workloads import (
    CampaignConfig,
    MolecularDesignCampaign,
    Molecule,
    MoleculeSpace,
    RidgeEmulator,
    simulate_ionization_potential,
)
from repro.workloads.chemistry import ground_truth_batch

NO_COLD = ColdStartModel(function_init_seconds=0.0, gpu_context_seconds=0.0)


# ------------------------------------------------------------------ datasets

def test_molecule_space_deterministic():
    s1, s2 = MoleculeSpace(seed=7), MoleculeSpace(seed=7)
    m1, m2 = s1.molecule(42), s2.molecule(42)
    assert np.allclose(m1.descriptors, m2.descriptors)
    assert m1 == m2


def test_molecule_space_distinct_ids_differ():
    space = MoleculeSpace(seed=0)
    a, b = space.molecule(0), space.molecule(1)
    assert not np.allclose(a.descriptors, b.descriptors)


def test_molecule_space_sample_and_features():
    space = MoleculeSpace(seed=0)
    mols = space.sample(10, offset=5)
    assert [m.mol_id for m in mols] == list(range(5, 15))
    feats = space.features(mols)
    assert feats.shape == (10, space.n_descriptors)
    assert space.features([]).shape == (0, space.n_descriptors)


def test_molecule_validation():
    space = MoleculeSpace()
    with pytest.raises(ValueError):
        space.molecule(-1)
    with pytest.raises(ValueError):
        Molecule(0, np.zeros((2, 2)))


# ----------------------------------------------------------------- chemistry

def test_simulation_deterministic():
    space = MoleculeSpace(seed=0)
    mol = space.molecule(3)
    assert simulate_ionization_potential(mol) == pytest.approx(
        simulate_ionization_potential(mol))


def test_simulation_values_in_plausible_ev_range():
    space = MoleculeSpace(seed=0)
    values = [simulate_ionization_potential(m) for m in space.sample(100)]
    assert all(2.0 < v < 16.0 for v in values)
    assert np.std(values) > 0.1  # the landscape is not flat


# ------------------------------------------------------------------ emulator

def test_emulator_learns_ground_truth():
    space = MoleculeSpace(seed=1)
    train = space.sample(400)
    test = space.sample(100, offset=400)
    x_train, x_test = space.features(train), space.features(test)
    y_train = ground_truth_batch(x_train)
    y_test = ground_truth_batch(x_test)
    emulator = RidgeEmulator(seed=0)
    train_rmse = emulator.train(x_train, y_train)
    pred = emulator.predict(x_test)
    test_rmse = float(np.sqrt(np.mean((pred - y_test) ** 2)))
    # The emulator must beat the trivial predict-the-mean baseline.
    baseline = float(np.std(y_test))
    assert train_rmse < baseline
    assert test_rmse < 0.8 * baseline


def test_emulator_validation():
    e = RidgeEmulator()
    with pytest.raises(RuntimeError):
        e.predict(np.zeros((1, 4)))
    with pytest.raises(ValueError):
        e.train(np.zeros((0, 4)), np.zeros(0))
    with pytest.raises(ValueError):
        e.train(np.zeros((3, 4)), np.zeros(5))


def test_emulator_kernels():
    e = RidgeEmulator()
    k_train = e.training_kernel(100)
    k_infer = e.inference_kernel(1000)
    assert k_train.flops > k_infer.flops / 10
    assert k_train.max_sms > 0 and k_infer.max_sms > 0


# ------------------------------------------------------------------ campaign

def make_dfk():
    cpu = HighThroughputExecutor(label="cpu", max_workers=8,
                                 cold_start=NO_COLD)
    gpu = HighThroughputExecutor(
        label="gpu", available_accelerators=["0"], cold_start=NO_COLD,
        provider=LocalProvider(cores=8, gpu_specs=[A100_40GB]))
    return DataFlowKernel(Config(executors=[cpu, gpu]))


def small_config():
    return CampaignConfig(n_initial=16, n_rounds=3, simulations_per_round=8,
                          candidate_pool_size=128, simulation_seconds=12.0)


def test_campaign_runs_to_completion():
    dfk = make_dfk()
    campaign = MolecularDesignCampaign(dfk, small_config())
    result = campaign.run_to_completion()
    assert result.n_simulated == 16 + 3 * 8
    assert len(result.round_best) == 3
    assert len(result.train_rmse) == 3
    assert result.best_ip >= max(result.round_best) - 1e-9


def test_campaign_active_learning_beats_random():
    """Selected molecules must be enriched relative to the space average."""
    dfk = make_dfk()
    campaign = MolecularDesignCampaign(dfk, small_config())
    result = campaign.run_to_completion()
    space = MoleculeSpace(seed=small_config().seed)
    population = ground_truth_batch(space.features(space.sample(2000)))
    # The last round's best simulated IP should be far out in the tail.
    assert result.round_best[-1] > np.percentile(population, 90)


def test_campaign_timeline_has_all_three_phases():
    dfk = make_dfk()
    campaign = MolecularDesignCampaign(dfk, small_config())
    result = campaign.run_to_completion()
    cats = set(result.timeline.categories())
    assert {"simulation", "training", "inference"} <= cats


def test_campaign_has_gpu_idle_gaps():
    """Fig. 3: the GPU idles while simulations run (the 'white lines')."""
    dfk = make_dfk()
    campaign = MolecularDesignCampaign(dfk, small_config())
    result = campaign.run_to_completion()
    idle = result.timeline.idle_fraction(["training", "inference"])
    assert idle > 0.5  # simulation phases dominate the makespan


def test_campaign_config_validation():
    with pytest.raises(ValueError):
        CampaignConfig(n_initial=0)
    with pytest.raises(ValueError):
        CampaignConfig(simulations_per_round=0)
