"""Tests for the CNN conv-arithmetic zoo (Fig. 1's substrate)."""

import pytest

from repro.workloads import (
    ALEXNET,
    CNN_ZOO,
    RESNET50,
    RESNET101,
    VGG16,
    ConvLayer,
    conv_output_size,
)


def test_conv_output_size():
    # AlexNet conv1: (224 + 2*2 - 11)/4 + 1 = 55.
    assert conv_output_size(224, 11, 4, 2) == 55
    assert conv_output_size(224, 3, 1, 1) == 224
    assert conv_output_size(224, 7, 2, 3) == 112


def test_conv_output_size_validation():
    with pytest.raises(ValueError):
        conv_output_size(0, 3, 1, 1)
    with pytest.raises(ValueError):
        conv_output_size(2, 7, 1, 0)


def test_conv_flops_formula():
    layer = ConvLayer("c", in_channels=3, out_channels=64, kernel_size=11,
                      stride=4, padding=2)
    # 2 * 11^2 * 3 * 64 * 55 * 55
    assert layer.flops_per_image(224) == pytest.approx(
        2 * 121 * 3 * 64 * 55 * 55
    )


def test_conv_flops_brute_force_equivalence():
    """Closed form equals counting multiply-adds position by position."""
    layer = ConvLayer("c", in_channels=4, out_channels=8, kernel_size=3,
                      stride=2, padding=1)
    size = 16
    out = layer.output_size(size)
    brute = 0
    for _oy in range(out):
        for _ox in range(out):
            for _oc in range(8):
                brute += 2 * 3 * 3 * 4  # one MAC per tap per in-channel
    assert layer.flops_per_image(size) == pytest.approx(brute)


def test_grouped_conv_divides_flops():
    dense = ConvLayer("d", 16, 32, 3, padding=1)
    grouped = ConvLayer("g", 16, 32, 3, padding=1, groups=4)
    assert grouped.flops_per_image(32) == pytest.approx(
        dense.flops_per_image(32) / 4
    )
    with pytest.raises(ValueError):
        ConvLayer("bad", 10, 20, 3, groups=3)


def test_alexnet_layer_count_and_sizes():
    layers = list(ALEXNET.conv_layers())
    assert len(layers) == 5
    sizes = [size for _, size in layers]
    assert sizes == [224, 27, 13, 13, 13]


def test_vgg16_has_13_convs():
    assert len(list(VGG16.conv_layers())) == 13


def test_resnet50_layer_count():
    # 1 stem + (3+4+6+3) bottlenecks x 3 convs + 4 downsamples = 53.
    assert len(list(RESNET50.conv_layers())) == 53


def test_resnet101_layer_count():
    # 1 + (3+4+23+3)*3 + 4 = 104.
    assert len(list(RESNET101.conv_layers())) == 104


def test_resnet50_total_flops_plausible():
    """ResNet-50 inference is ~4 GFLOPs MACs x2 = ~8 GFLOP (conv-only ~7.6)."""
    total = RESNET50.total_flops(batch_size=1)
    assert 6e9 < total < 9e9


def test_vgg16_total_flops_plausible():
    """VGG-16 is famously ~15.5 GMACs -> ~31 GFLOPs (conv-only ~30)."""
    total = VGG16.total_flops(batch_size=1)
    assert 25e9 < total < 35e9


def test_fig1_per_layer_variation_is_large():
    """Fig. 1's point: per-layer compute varies rapidly within a model."""
    for model in (ALEXNET, VGG16, RESNET50, RESNET101):
        assert model.flop_variation() > 3.0, model.name


def test_fig1_variation_persists_across_batch_sizes():
    """'Even with different batch sizes, this variability remains.'"""
    for batch in (1, 8, 32):
        assert RESNET50.flop_variation(batch) == pytest.approx(
            RESNET50.flop_variation(1)
        )


def test_batch_scales_flops_linearly():
    assert RESNET50.total_flops(8) == pytest.approx(8 * RESNET50.total_flops(1))


def test_inference_kernels_cover_all_layers():
    group = RESNET50.inference_kernels(batch_size=1)
    assert len(group) == 53
    assert group.total_flops == pytest.approx(RESNET50.total_flops(1))


def test_inference_kernel_parallelism_grows_with_batch():
    g1 = RESNET50.inference_kernels(batch_size=1)
    g32 = RESNET50.inference_kernels(batch_size=32)
    # Larger batches can fill more SMs (the §3.4 observation).
    assert max(k.max_sms for k in g32) > max(k.max_sms for k in g1)


def test_weight_bytes_plausible():
    # ResNet-50 has ~23.5M conv weights (25.6M total incl. fc) -> ~94 MB fp32.
    assert 80e6 < RESNET50.weight_bytes(4) < 110e6


def test_zoo_contains_paper_models():
    for name in ("alexnet", "vgg16", "resnet50", "resnet101"):
        assert name in CNN_ZOO
