"""Tests for the online repartitioning control plane (§7, closed loop).

Covers the :class:`AutoscaledServingFleet` (live resizes, weight-cache
standing references, provisioned-capacity accounting) and the
:class:`FleetAutoscaler` that drives it (windowed sensing, cooldown
gating, rolling MPS waves, the MIG global-teardown alternative).
"""

import json

import pytest

from repro.partition.reconfig import ReconfigurationPlanner
from repro.sim import Environment
from repro.workloads import (
    AutoscaledServingFleet,
    FleetAutoscaler,
    FleetFunction,
    OpenLoopClient,
    iter_poisson_trace,
)

def make_fleet(weight_cache=True, n_replicas=2, pct=20, seed=0):
    env = Environment()
    functions = [
        FleetFunction("hot", n_replicas, slo_seconds=6.0, initial_pct=pct,
                      n_tokens=8),
        FleetFunction("cold", n_replicas, slo_seconds=6.0, initial_pct=pct,
                      n_tokens=8),
    ]
    fleet = AutoscaledServingFleet(env, functions, seed=seed,
                                   weight_cache=weight_cache)
    return env, fleet


def drive(env, fleet, name, rate, horizon, seed=1):
    group = fleet.groups[name]
    return OpenLoopClient(env, group.router, n_tokens=group.n_tokens,
                          streaming=True,
                          arrivals=iter_poisson_trace(rate, horizon,
                                                      seed=seed))


# ------------------------------------------------------- fleet construction

def test_fleet_validation():
    env = Environment()
    with pytest.raises(ValueError, match="at least one"):
        AutoscaledServingFleet(env, [])
    fn = FleetFunction("f", 1, slo_seconds=1.0, initial_pct=10)
    with pytest.raises(ValueError, match="unique"):
        AutoscaledServingFleet(env, [fn, fn])
    with pytest.raises(ValueError):
        FleetFunction("g", 0, slo_seconds=1.0, initial_pct=10)
    with pytest.raises(ValueError):
        FleetFunction("g", 1, slo_seconds=0.0, initial_pct=10)
    with pytest.raises(ValueError):
        FleetFunction("g", 1, slo_seconds=1.0, initial_pct=0)


def test_fleet_holds_standing_weight_references():
    env, fleet = make_fleet()
    cache = fleet.weight_cache
    # One resident entry per function, pinned for the fleet's lifetime.
    resident = cache.resident_keys(
        fleet.groups["hot"].replicas[0].server.client)
    assert sorted(resident) == ["cold", "hot"]
    assert fleet.n_replicas == 4


def test_fleet_routes_per_function():
    env, fleet = make_fleet()
    req = fleet.submit("hot")
    env.run(until=req.done)
    assert req.outcome == "ok"
    assert fleet.groups["hot"].stats.offered == 1
    assert fleet.groups["cold"].stats.offered == 0


# ------------------------------------------------------------- live resize

def test_resize_replica_pays_restart_but_not_reload_on_cache_hit():
    env, fleet = make_fleet(weight_cache=True)
    planner = ReconfigurationPlanner(fleet.device.spec)
    group = fleet.groups["hot"]
    replica = group.replicas[0]
    old_client = replica.server.client
    proc = env.process(fleet.resize_replica("hot", replica, 35, planner))
    result = env.run(until=proc)
    assert result["weight_cache_hit"] is True
    assert result["from_pct"] == 20 and result["to_pct"] == 35
    # Downtime = teardown + worker start; the reload is cached away.
    expected = planner.TEARDOWN_SECONDS + \
        planner.cold_start.worker_start_seconds(True)
    assert result["downtime_seconds"] == pytest.approx(expected)
    assert replica.server.client is not old_client
    assert group.pct_by_replica[0] == 35
    # Identity survives: same Replica object, same breaker, router slot.
    assert group.router.replicas[0] is replica
    req = fleet.submit("hot")
    env.run(until=req.done)
    assert req.outcome == "ok"


def test_resize_replica_pays_the_reload_without_the_cache():
    env, fleet = make_fleet(weight_cache=False)
    planner = ReconfigurationPlanner(fleet.device.spec)
    group = fleet.groups["hot"]
    proc = env.process(
        fleet.resize_replica("hot", group.replicas[0], 35, planner))
    result = env.run(until=proc)
    assert result["weight_cache_hit"] is False
    expected = planner.TEARDOWN_SECONDS + \
        planner.cold_start.worker_start_seconds(True) + \
        group.model_load_seconds
    assert result["downtime_seconds"] == pytest.approx(expected)


def test_resize_replica_completes_inflight_work_exactly_once():
    env, fleet = make_fleet()
    planner = ReconfigurationPlanner(fleet.device.spec)
    group = fleet.groups["hot"]
    requests = [fleet.submit("hot") for _ in range(4)]
    env.run(until=env.now + 0.01)  # kernels in flight on both replicas
    procs = [env.process(fleet.resize_replica("hot", r, 30, planner))
             for r in group.replicas]
    env.run()
    assert all(r.outcome == "ok" for r in requests)
    assert group.stats.lost == 0
    assert all(p.value["weight_cache_hit"] for p in procs)
    # Concurrent sibling resizes left the standing references intact:
    # both functions' weights are still resident in the shared pool.
    resident = fleet.weight_cache.resident_keys(
        group.replicas[0].server.client)
    assert sorted(resident) == ["cold", "hot"]


def test_resize_replica_on_dead_replica_returns_none():
    env, fleet = make_fleet()
    planner = ReconfigurationPlanner(fleet.device.spec)
    group = fleet.groups["hot"]
    group.replicas[0].server.crash()
    env.run(until=env.now + 0.001)
    proc = env.process(
        fleet.resize_replica("hot", group.replicas[0], 30, planner))
    assert env.run(until=proc) is None


def test_provisioned_gpu_seconds_tracks_resizes():
    env, fleet = make_fleet(n_replicas=1, pct=20)  # 2 functions x 20%
    planner = ReconfigurationPlanner(fleet.device.spec)
    env.run(until=10.0)
    assert fleet.provisioned_gpu_seconds() == pytest.approx(4.0)  # 40%*10s
    group = fleet.groups["hot"]
    proc = env.process(
        fleet.resize_replica("hot", group.replicas[0], 40, planner))
    env.run(until=proc)
    restart = planner.TEARDOWN_SECONDS + \
        planner.cold_start.worker_start_seconds(True)
    env.run(until=env.now + 10.0)
    # The restart window provisions nothing for the resized replica.
    expected = 4.0 + 0.2 * restart + 0.6 * 10.0
    assert fleet.provisioned_gpu_seconds() == pytest.approx(expected)


# --------------------------------------------------------- controller loop

def test_autoscaler_validation():
    env, fleet = make_fleet()
    with pytest.raises(ValueError, match="technique"):
        FleetAutoscaler(fleet, technique="vgpu")
    with pytest.raises(ValueError, match="waves"):
        FleetAutoscaler(fleet, waves=0)
    with pytest.raises(ValueError, match="slo_bypass_factor"):
        FleetAutoscaler(fleet, slo_bypass_factor=2.0)
    with pytest.raises(ValueError, match="intervals"):
        FleetAutoscaler(fleet, interval_seconds=0.0)
    scaler = FleetAutoscaler(fleet)
    scaler.start()
    with pytest.raises(RuntimeError, match="already started"):
        scaler.start()
    scaler.stop()
    scaler.stop()  # idempotent


def test_autoscaler_shifts_shares_toward_the_loaded_function():
    env, fleet = make_fleet(pct=20)
    scaler = FleetAutoscaler(fleet, interval_seconds=20.0,
                             cooldown_seconds=0.0)
    scaler.start()
    hot = drive(env, fleet, "hot", rate=1.2, horizon=200.0, seed=1)
    cold = drive(env, fleet, "cold", rate=0.05, horizon=200.0, seed=2)
    env.run(until=env.all_of([hot.done, cold.done]))
    scaler.stop()
    assert scaler.reconfigurations >= 1
    assert fleet.groups["hot"].current_pct > fleet.groups["cold"].current_pct
    reports = fleet.report(env.now)
    assert sum(r["lost"] for r in reports.values()) == 0
    # Every restart hit the standing weight cache.
    assert scaler.weight_cache_hits == scaler.replica_restarts > 0


def test_autoscaler_is_deterministic_across_twin_runs():
    def run_once():
        env, fleet = make_fleet(pct=20, seed=3)
        scaler = FleetAutoscaler(fleet, interval_seconds=20.0,
                                 cooldown_seconds=40.0)
        scaler.start()
        hot = drive(env, fleet, "hot", rate=1.0, horizon=150.0, seed=1)
        cold = drive(env, fleet, "cold", rate=0.1, horizon=150.0, seed=2)
        env.run(until=env.all_of([hot.done, cold.done]))
        scaler.stop()
        payload = {"summary": scaler.summary(),
                   "log": scaler.reconfig_log,
                   "report": fleet.report(env.now),
                   "events": env.events_processed}
        return json.dumps(payload, sort_keys=True)

    assert run_once() == run_once()


def test_reconfig_log_costs_match_the_executed_timeline():
    env, fleet = make_fleet(pct=20)
    scaler = FleetAutoscaler(fleet, interval_seconds=20.0,
                             cooldown_seconds=0.0, waves=2)
    scaler.start()
    hot = drive(env, fleet, "hot", rate=1.2, horizon=120.0, seed=1)
    cold = drive(env, fleet, "cold", rate=0.05, horizon=120.0, seed=2)
    env.run(until=env.all_of([hot.done, cold.done]))
    scaler.stop()
    assert scaler.reconfig_log
    restart = scaler.planner.TEARDOWN_SECONDS + \
        scaler.planner.cold_start.worker_start_seconds(True)
    for entry in scaler.reconfig_log:
        cost = entry["cost"]
        assert cost["technique"] == "mps"
        assert not cost["disturbs_cotenants"]
        floor = cost["teardown_seconds"] + cost["restart_seconds"]
        for replica_entry in entry["replicas"]:
            # Cache hit: measured downtime is the analytic teardown +
            # restart plus however long the drain waited on in-flight
            # kernels — never less, and never a reload on top.
            assert replica_entry["weight_cache_hit"]
            assert replica_entry["downtime_seconds"] >= floor - 1e-9
        assert cost["model_reload_seconds"] == 0.0
        assert entry["downtime_seconds"] == pytest.approx(sum(
            r["downtime_seconds"] for r in entry["replicas"]))


def test_mig_technique_forces_reloads_and_disturbs_everyone():
    env, fleet = make_fleet(pct=20)
    scaler = FleetAutoscaler(fleet, interval_seconds=20.0,
                             cooldown_seconds=0.0, technique="mig")
    scaler.start()
    hot = drive(env, fleet, "hot", rate=1.2, horizon=120.0, seed=1)
    cold = drive(env, fleet, "cold", rate=0.05, horizon=120.0, seed=2)
    env.run(until=env.all_of([hot.done, cold.done]))
    scaler.stop()
    assert scaler.reconfigurations >= 1
    # The repartition destroyed the instances' memory pools: the cache
    # cannot help, and *every* function was torn down, hot and cold.
    assert scaler.weight_cache_hits == 0
    resized = {entry["function"] for entry in scaler.reconfig_log}
    assert resized == {"hot", "cold"}
    for entry in scaler.reconfig_log:
        assert entry["technique"] == "mig"
        assert entry["cost"]["reset_seconds"] == fleet.device.spec.reset_seconds
    reports = fleet.report(env.now)
    assert sum(r["lost"] for r in reports.values()) == 0


def test_quiet_fleet_never_reconfigures():
    env, fleet = make_fleet(pct=20)
    scaler = FleetAutoscaler(fleet, interval_seconds=20.0,
                             cooldown_seconds=0.0)
    scaler.start()
    env.run(until=100.0)
    scaler.stop()
    # Zero demand maps every function to the minimum sliver; from the
    # expand-normalised layout that is a real repartition at most once,
    # then the controller holds steady.
    assert scaler.reconfigurations <= len(fleet.groups)
    assert all(d.reason in ("within threshold", "repartitioned")
               for d in scaler.decisions)


# ------------------------------------------------ control-plane resilience

def test_autoscaler_resilience_knob_validation():
    env, fleet = make_fleet()
    with pytest.raises(ValueError, match="watchdog"):
        FleetAutoscaler(fleet, resize_watchdog_seconds=0.0)
    with pytest.raises(ValueError, match="breaker_threshold"):
        FleetAutoscaler(fleet, resize_breaker_threshold=0)
    with pytest.raises(ValueError, match="stale"):
        FleetAutoscaler(fleet, sensor_stale_after_seconds=0.0)


def test_sensor_dropout_puts_the_loop_in_degraded_mode():
    from repro.faas import FaultEvent
    env, fleet = make_fleet(pct=20)
    scaler = FleetAutoscaler(fleet, interval_seconds=20.0,
                             cooldown_seconds=0.0)
    scaler.start()
    hot = drive(env, fleet, "hot", rate=1.0, horizon=150.0, seed=1)
    env.run(until=30.0)
    fleet.apply_fault(FaultEvent(time=env.now, kind="sensor_dropout",
                                 target=0, duration=80.0))
    env.run(until=hot.done)
    scaler.stop()
    degraded = [d for d in scaler.decisions
                if d.reason.startswith("degraded")]
    assert degraded
    assert any("hot: stale sensor" in d.reason for d in degraded)
    # Recovery step absorbed: the tick after the fault clears re-baselines
    # instead of reading the catch-up delta as a demand spike.
    assert any("sensor re-baseline" in d.reason for d in degraded)
    # Degraded ticks hold the last safe shares and actuate nothing.
    for d in degraded:
        assert not d.applied
    summary = scaler.summary()
    assert summary["degraded_ticks"] == len(degraded)
    assert summary["degraded_seconds"] == pytest.approx(
        len(degraded) * 20.0)
    assert 0.0 < summary["degraded_fraction"] < 1.0
    reports = fleet.report(env.now)
    assert sum(r["lost"] for r in reports.values()) == 0


def test_repeated_drain_timeouts_trip_the_resize_breaker():
    from repro.faas import FaultEvent
    env, fleet = make_fleet(pct=20)
    # Hold every replica's drain until further notice: every resize
    # cycle can only end in a watchdog abort.
    for target in range(4):
        fleet.apply_fault(FaultEvent(time=0.0, kind="resize_stuck",
                                     target=target, duration=0.0))
    scaler = FleetAutoscaler(fleet, interval_seconds=20.0,
                             cooldown_seconds=0.0,
                             resize_watchdog_seconds=4.0,
                             resize_max_retries=1,
                             resize_breaker_threshold=2)
    scaler.start()
    hot = drive(env, fleet, "hot", rate=1.2, horizon=200.0, seed=1)
    env.run(until=hot.done)
    scaler.stop()
    summary = scaler.summary()
    assert summary["resize_attempts"] >= summary["resize_aborts"] >= 2
    # Every abort rolled back provably clean.
    assert summary["resize_rollbacks"] == summary["resize_aborts"]
    assert summary["resize_breaker_opens"] >= 1
    assert scaler.reconfigurations == 0  # nothing ever committed
    assert any(d.reason == "resize aborted: drain watchdog"
               for d in scaler.decisions)
    # Once open, the breaker takes the function out of actuation.
    assert any(d.reason.startswith("resize-breaker open")
               for d in scaler.decisions)
    # Shares never moved and nothing was lost while the loop flailed.
    assert all(g.current_pct == 20 for g in fleet.groups.values())
    reports = fleet.report(env.now)
    assert sum(r["lost"] for r in reports.values()) == 0


def test_desired_percentages_guards_empty_pools_and_missing_rates():
    env, fleet = make_fleet()
    scaler = FleetAutoscaler(fleet)
    fleet.groups["hot"].replicas.clear()  # pathological: no pool at all
    desired = scaler.desired_percentages({"cold": 0.5})  # "hot" missing too
    assert set(desired) == {"hot", "cold"}
    assert all(pct >= scaler.min_percentage for pct in desired.values())


def test_summary_counters_are_consistent():
    env, fleet = make_fleet(pct=20)
    scaler = FleetAutoscaler(fleet, interval_seconds=20.0,
                             cooldown_seconds=0.0)
    scaler.start()
    hot = drive(env, fleet, "hot", rate=1.0, horizon=100.0, seed=1)
    env.run(until=hot.done)
    scaler.stop()
    summary = scaler.summary()
    assert summary["ticks"] == len(scaler.decisions)
    assert summary["applied"] == sum(d.applied for d in scaler.decisions)
    assert summary["replica_restarts"] == sum(
        len(e["replicas"]) for e in scaler.reconfig_log)
    if summary["replica_restarts"]:
        assert summary["mean_restart_downtime"] == pytest.approx(
            summary["reconfiguration_downtime"]
            / summary["replica_restarts"])
