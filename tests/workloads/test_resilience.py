"""Tests for the SLO-aware resilient router and the serving fleet."""

import pytest

from repro.gpu import A100_40GB, MpsControlDaemon, SimulatedGPU
from repro.sim import Environment
from repro.workloads import (
    LLAMA2_7B,
    CircuitBreaker,
    InferenceRuntime,
    InferenceServer,
    LlamaInference,
    Replica,
    ResilientRouter,
    ServingFleet,
    SLOPolicy,
)
from repro.faas.chaos import FaultEvent


def make_router(n_servers=2, seed=1, **policy_kwargs):
    env = Environment()
    gpu = SimulatedGPU(env, A100_40GB)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    llm = LlamaInference(LLAMA2_7B, InferenceRuntime(dtype_bytes=1))
    policy = SLOPolicy(**policy_kwargs)
    servers = [InferenceServer(env, daemon.client(f"s{i}"), llm,
                               max_batch_size=1, name=f"s{i}")
               for i in range(n_servers)]
    replicas = [Replica(i, s, policy) for i, s in enumerate(servers)]
    router = ResilientRouter(env, replicas, policy, seed=seed)
    return env, servers, router


# ------------------------------------------------------------ happy path

def test_request_completes_through_router():
    env, _servers, router = make_router()
    request = router.submit(n_tokens=4)
    env.run(until=request.done)
    assert request.outcome == "ok"
    assert request.latency is not None and request.latency > 0
    assert request.attempts == 1
    stats = router.stats
    assert stats.offered == 1 and stats.completed == 1
    assert stats.slo_ok == 1 and stats.lost == 0


def test_router_balances_by_queue_depth():
    env, servers, router = make_router(n_servers=2)
    for _ in range(4):
        router.submit(n_tokens=4)
    # Synchronous submits alternate over the two empty replicas.
    assert servers[0].queue_depth == 2
    assert servers[1].queue_depth == 2
    env.run()
    assert router.stats.completed == 4


def test_submit_validates_tokens():
    _env, _servers, router = make_router()
    with pytest.raises(ValueError):
        router.submit(n_tokens=0)


# --------------------------------------------------------------- retries

def test_retry_fails_over_to_surviving_replica():
    env, servers, router = make_router(n_servers=2, backoff_base=0.01)
    request = router.submit(n_tokens=200)
    env.run(until=env.now + 0.05)
    victim = servers[request.tried[0]]
    victim.crash()
    env.run(until=request.done)
    assert request.outcome == "ok"
    assert request.attempts == 2
    assert len(set(request.tried)) == 2  # second attempt went elsewhere
    assert router.stats.retries == 1
    assert router.stats.attempt_failures == 1
    assert router.stats.lost == 0


def test_crash_failover_is_exactly_once():
    env, servers, router = make_router(n_servers=2, backoff_base=0.01)
    requests = [router.submit(n_tokens=50) for _ in range(10)]
    env.run(until=env.now + 0.05)
    servers[0].crash()
    env.run()
    assert all(r.outcome == "ok" for r in requests)
    stats = router.stats
    assert stats.completed == 10
    assert stats.lost == 0
    # Everything that was queued or running on srv0 retried exactly once.
    assert stats.retries == stats.attempt_failures > 0


def test_max_attempts_exhaustion_fails_request():
    env, servers, router = make_router(n_servers=1, max_attempts=1)
    request = router.submit(n_tokens=200)
    env.run(until=env.now + 0.05)
    servers[0].crash()
    env.run()
    assert request.outcome == "failed"
    assert router.stats.failed == 1
    assert router.stats.retries == 0
    assert router.stats.lost == 0


def test_retry_budget_gates_retries():
    env, servers, router = make_router(
        n_servers=2, retry_budget_initial=0.0, retry_budget_rate=0.0)
    request = router.submit(n_tokens=200)
    env.run(until=env.now + 0.05)
    servers[request.tried[0]].crash()
    env.run()
    assert request.outcome == "failed"  # no budget, no retry
    assert router.stats.retries == 0


def test_done_event_always_succeeds():
    """Clients await ``done`` without special-casing failures — the
    outcome field carries the verdict."""
    env, servers, router = make_router(n_servers=1, max_attempts=1)
    request = router.submit(n_tokens=200)
    env.run(until=env.now + 0.05)
    servers[0].crash()
    env.run(until=request.done)  # would raise if done failed
    assert request.done.ok
    assert request.outcome == "failed"


# ------------------------------------------------------ admission control

def test_infeasible_deadline_is_shed():
    env, _servers, router = make_router(deadline_seconds=0.5)
    router._est_prior = 10.0  # pretend service takes 10s
    request = router.submit(n_tokens=4)
    assert request.outcome == "shed"
    assert request.done.triggered
    assert router.stats.shed == 1
    assert router.stats.lost == 0


def test_admission_control_can_be_disabled():
    env, _servers, router = make_router(deadline_seconds=0.5,
                                        admission_control=False)
    router._est_prior = 10.0
    request = router.submit(n_tokens=400)
    assert request.outcome == "pending"
    env.run()
    assert request.outcome == "ok"  # late, but served
    assert request.latency > 0.5
    assert router.stats.slo_ok == 0  # missed the SLO


# ---------------------------------------------------------------- hedging

def test_hedge_rescues_straggling_replica():
    env, servers, router = make_router(
        n_servers=2, hedge_quantile=0.5, hedge_min_samples=5,
        hedge_max_fraction=1.0)
    # Seed the latency quantile with normal completions.
    warm = [router.submit(n_tokens=4) for _ in range(8)]
    env.run()
    assert router._hedge_q.count >= 5
    # Straggle one replica hard; a request landing there hedges away.
    servers[0].slowdown = 500.0
    servers[1].slowdown = 500.0
    request = router.submit(n_tokens=4)
    straggler = servers[request.tried[0]]
    other = servers[1 - request.tried[0]]
    other.slowdown = 1.0
    env.run(until=request.done)
    assert request.outcome == "ok"
    assert request.hedged
    assert router.stats.hedges == 1
    assert router.stats.hedge_wins == 1
    # The straggler's attempt eventually lands as wasted work.
    env.run()
    assert all(r.outcome == "ok" for r in warm)


def test_hedge_rate_cap_is_enforced():
    env, servers, router = make_router(
        n_servers=2, hedge_quantile=0.5, hedge_min_samples=5,
        hedge_max_fraction=0.1)
    for _ in range(8):
        router.submit(n_tokens=4)
    env.run()
    for s in servers:
        s.slowdown = 500.0
    requests = [router.submit(n_tokens=4) for _ in range(10)]
    for s in servers:
        s.slowdown = 400.0  # keep straggling; hedges would fire freely
    env.run()
    assert all(r.outcome in ("ok", "failed") for r in requests)
    assert router.stats.hedges <= 0.1 * router.stats.offered + 1


# -------------------------------------------------------- circuit breaker

def test_circuit_breaker_state_machine():
    breaker = CircuitBreaker(threshold=2, cooldown=10.0)
    assert breaker.available(0.0)
    assert not breaker.record_failure(0.0)
    assert breaker.record_failure(1.0)  # second failure opens it
    assert breaker.opens == 1
    assert not breaker.available(5.0)
    assert breaker.available(11.0)  # half-open after cooldown
    # One failure in half-open re-opens immediately (counter saturated).
    assert breaker.record_failure(12.0)
    assert breaker.opens == 2
    assert not breaker.available(13.0)
    breaker.record_success()
    assert breaker.consecutive_failures == 0


def test_breaker_steers_traffic_away_from_sick_replica():
    env, servers, router = make_router(
        n_servers=2, breaker_failures=2, breaker_cooldown_seconds=30.0,
        backoff_base=0.001, backoff_jitter=0.0)
    sick = servers[0]
    sick.fail_next_launches = 10**6  # every launch on srv0 fails
    requests = [router.submit(n_tokens=4) for _ in range(12)]
    env.run()
    assert all(r.outcome == "ok" for r in requests)
    assert router.stats.breaker_opens >= 1
    # Once open, new requests go straight to the healthy replica.
    assert not router.replicas[0].breaker.available(env.now)
    request = router.submit(n_tokens=4)
    assert request.tried[0] == 1
    env.run()


# ----------------------------------------------- stalled-replica placement

def test_router_steers_away_from_stalled_replica():
    """Regression: a stalled replica admits no batches, so sending
    first attempts there just queues them behind the stall window."""
    env, servers, router = make_router(n_servers=2)
    servers[0].stall_until = env.now + 10.0
    assert router.replicas[0].stalled
    requests = [router.submit(n_tokens=4) for _ in range(3)]
    assert all(r.tried[0] == 1 for r in requests)
    env.run()
    assert all(r.outcome == "ok" for r in requests)
    env.run(until=servers[0].stall_until)
    assert not router.replicas[0].stalled  # window expired with time


def test_router_steers_away_from_draining_replica():
    env, servers, router = make_router(n_servers=2)
    servers[0].pause()
    assert router.replicas[0].stalled
    request = router.submit(n_tokens=4)
    assert request.tried[0] == 1
    servers[0].resume()
    assert not router.replicas[0].stalled
    env.run()
    assert request.outcome == "ok"


def test_stalled_replica_is_last_resort_not_a_failure():
    env, servers, router = make_router(n_servers=2)
    servers[0].stall_until = env.now + 0.5
    servers[1].crash()
    env.run(until=env.now + 0.001)  # let the crash interrupt propagate
    request = router.submit(n_tokens=4)
    # Queueing behind the stall beats failing the request outright.
    assert request.tried[0] == 0
    env.run()
    assert request.outcome == "ok"


def test_admission_control_ignores_stalled_queue_depths():
    """A stalled replica's empty queue must not fool the feasibility
    projection — its queue cannot move until the stall ends."""
    env, servers, router = make_router(n_servers=2, deadline_seconds=0.5)
    servers[0].stall_until = env.now + 100.0
    for _ in range(3):
        router.submit(n_tokens=4)  # no estimate yet: admitted freely
    assert servers[1].queue_depth == 3  # all steered to the live one
    router._est_prior = 0.4
    request = router.submit(n_tokens=4)
    assert request.outcome == "shed"
    assert router.stats.shed == 1


def test_reconfig_stall_fault_steers_first_attempts():
    """The satellite-2 regression, end to end: a ``reconfig_stall``
    fault deprioritises the victim for fresh placements."""
    env = Environment()
    fleet = small_fleet(env)
    fleet.apply_fault(FaultEvent(time=0.0, kind="reconfig_stall",
                                 target=0, duration=5.0))
    assert fleet.replicas[0].stalled
    requests = [fleet.submit(n_tokens=4) for _ in range(6)]
    assert all(r.tried[0] != 0 for r in requests)
    env.run()
    assert all(r.outcome == "ok" for r in requests)
    assert fleet.stats.lost == 0


# ------------------------------------------------------------ fleet faults

def small_fleet(env, mode="mig-mps", **kwargs):
    return ServingFleet(env, mode=mode, n_partitions=2,
                        servers_per_partition=2, **kwargs)


def test_fleet_validates_mode():
    with pytest.raises(ValueError):
        ServingFleet(Environment(), mode="bare-metal")


def test_fleet_replica_crash_and_respawn():
    env = Environment()
    fleet = small_fleet(env)
    dead = fleet.replicas[1]
    description = fleet.apply_fault(
        FaultEvent(time=0.0, kind="replica_crash", target=1, duration=2.0))
    assert "srv1" in description
    env.run(until=env.now + 0.001)  # let the crash interrupt propagate
    assert not dead.alive
    env.run(until=env.now + 3.0)
    assert dead.alive  # respawned
    assert dead.incarnations == 2
    request = fleet.submit(n_tokens=4)
    env.run()
    assert request.outcome == "ok"


def test_fleet_straggler_replica_restores():
    env = Environment()
    fleet = small_fleet(env)
    fleet.apply_fault(FaultEvent(time=0.0, kind="straggler_replica",
                                 target=0, duration=5.0, factor=4.0))
    assert fleet.replicas[0].server.slowdown == 4.0
    env.run(until=env.now + 6.0)
    assert fleet.replicas[0].server.slowdown == 1.0


def test_fleet_straggler_device_restores_overhead():
    env = Environment()
    fleet = small_fleet(env)
    groups = [g for g in fleet.device.groups if g.clients]
    before = [g.overhead_factor for g in groups]
    fleet.apply_fault(FaultEvent(time=0.0, kind="straggler_device",
                                 target=0, duration=5.0, factor=2.0))
    assert any(g.overhead_factor != b for g, b in zip(groups, before))
    env.run(until=env.now + 6.0)
    assert [g.overhead_factor for g in groups] == before


def test_fleet_stall_and_launch_failure_descriptions():
    env = Environment()
    fleet = small_fleet(env)
    d1 = fleet.apply_fault(FaultEvent(time=0.0, kind="reconfig_stall",
                                      target=2, duration=3.0))
    assert "stall srv2" in d1
    d2 = fleet.apply_fault(FaultEvent(time=0.0, kind="launch_failure",
                                      target=3))
    assert "srv3" in d2
    assert fleet.replicas[3].server.fail_next_launches == 1
    request = fleet.submit(n_tokens=4)
    env.run()
    assert request.outcome == "ok"
    assert fleet.stats.faults == {"reconfig_stall": 1, "launch_failure": 1}


def test_fleet_ecc_confined_to_mig_instance():
    env = Environment()
    fleet = small_fleet(env, mode="mig-mps")
    requests = [fleet.submit(n_tokens=100) for _ in range(4)]
    env.run(until=env.now + 0.1)  # let kernels become resident
    resident_before = len(fleet.device.pool.tasks)
    assert resident_before > 0
    fleet.apply_fault(FaultEvent(time=0.0, kind="ecc", target=0))
    _domain, killed, resident = fleet.ecc_log[0]
    assert resident == resident_before
    assert 0 < killed < resident  # confined: not the whole device
    env.run()
    assert all(r.outcome == "ok" for r in requests)  # retried to success
    assert fleet.stats.lost == 0


def test_fleet_ecc_kills_everything_under_flat_mps():
    env = Environment()
    fleet = small_fleet(env, mode="mps")
    requests = [fleet.submit(n_tokens=100) for _ in range(4)]
    env.run(until=env.now + 0.1)
    fleet.apply_fault(FaultEvent(time=0.0, kind="ecc", target=0))
    _domain, killed, resident = fleet.ecc_log[0]
    assert resident > 0 and killed == resident  # whole shared context
    env.run()
    assert all(r.outcome == "ok" for r in requests)
    assert fleet.stats.lost == 0
