"""Tests for the dynamic-batching inference server."""

import numpy as np
import pytest

from repro.gpu import A100_80GB, MpsControlDaemon, SimulatedGPU
from repro.sim import Environment
from repro.workloads import (
    LLAMA2_7B,
    InferenceRuntime,
    InferenceServer,
    LlamaInference,
    OpenLoopClient,
)

FP16 = InferenceRuntime(dtype_bytes=2)


def make_server(max_batch_size=4, batch_timeout=0.01):
    env = Environment()
    gpu = SimulatedGPU(env, A100_80GB)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    client = daemon.client("server")
    llm = LlamaInference(LLAMA2_7B, FP16)
    server = InferenceServer(env, client, llm,
                             max_batch_size=max_batch_size,
                             batch_timeout=batch_timeout)
    return env, server, llm


def test_single_request_completes():
    env, server, llm = make_server()
    req = server.submit(n_tokens=20)
    env.run(until=req.done)
    assert req.latency is not None
    # Close to the isolated 20-token completion latency.
    expected = llm.completion_seconds(A100_80GB, A100_80GB.sms)
    assert req.latency == pytest.approx(expected, rel=0.1)


def test_simultaneous_requests_are_batched():
    env, server, llm = make_server(max_batch_size=4)
    reqs = [server.submit(20) for _ in range(4)]
    env.run(until=env.all_of([r.done for r in reqs]))
    assert server.batch_sizes == [4]
    # All four share the same steps: identical finish times.
    finishes = {r.finish_time for r in reqs}
    assert len(finishes) == 1


def test_batching_amortizes_weight_traffic():
    """Batch-of-4 throughput far exceeds 4x1 sequential throughput."""
    env, server, llm = make_server(max_batch_size=4)
    reqs = [server.submit(20) for _ in range(4)]
    env.run(until=env.all_of([r.done for r in reqs]))
    batched_total = env.now

    env1, server1, _ = make_server(max_batch_size=1)
    reqs1 = [server1.submit(20) for _ in range(4)]
    env1.run(until=env1.all_of([r.done for r in reqs1]))
    sequential_total = env1.now

    assert batched_total < 0.6 * sequential_total


def test_batch_respects_max_size():
    env, server, _ = make_server(max_batch_size=2)
    reqs = [server.submit(5) for _ in range(5)]
    env.run(until=env.all_of([r.done for r in reqs]))
    assert max(server.batch_sizes) <= 2
    assert sum(server.batch_sizes) == 5


def test_shorter_requests_leave_batch_early():
    env, server, _ = make_server(max_batch_size=2)
    short = server.submit(n_tokens=5)
    long = server.submit(n_tokens=20)
    env.run(until=env.all_of([short.done, long.done]))
    assert short.finish_time < long.finish_time


def test_open_loop_client_deterministic():
    env, server, _ = make_server()
    client = OpenLoopClient(env, server, rate_rps=2.0, n_requests=6,
                            n_tokens=10)
    env.run(until=client.done)
    assert len(client.requests) == 6
    assert all(r.latency is not None for r in client.requests)
    arrivals = [r.arrival_time for r in client.requests]
    gaps = np.diff(arrivals)
    assert np.allclose(gaps, 0.5)


def test_open_loop_client_poisson():
    env, server, _ = make_server()
    rng = np.random.default_rng(7)
    client = OpenLoopClient(env, server, rate_rps=3.0, n_requests=20,
                            n_tokens=5, rng=rng)
    env.run(until=client.done)
    gaps = np.diff([r.arrival_time for r in client.requests])
    assert gaps.std() > 0  # genuinely random arrivals


def test_latency_metrics():
    env, server, _ = make_server()
    reqs = [server.submit(10) for _ in range(3)]
    env.run(until=env.all_of([r.done for r in reqs]))
    assert server.mean_latency > 0
    assert server.mean_batch_size >= 1.0


def test_validation():
    env, server, _ = make_server()
    with pytest.raises(ValueError):
        server.submit(n_tokens=0)
    with pytest.raises(RuntimeError):
        make_server()[1].mean_latency
    with pytest.raises(ValueError):
        OpenLoopClient(env, server, rate_rps=0.0, n_requests=1)


# ------------------------------------------------------- streaming mode

def _run_fleet(streaming, n_requests=60, rate=4.0, pooling=True):
    """One MPS-partitioned server pair under open-loop Poisson load."""
    from repro.telemetry.streaming import StreamingLatencyStats

    env = Environment(pooling=pooling)
    gpu = SimulatedGPU(env, A100_80GB, incremental=streaming)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    llm = LlamaInference(LLAMA2_7B, FP16)
    stats = StreamingLatencyStats() if streaming else None
    servers, clients = [], []
    for i in range(2):
        server = InferenceServer(env, daemon.client(f"s{i}",
                                                    active_thread_percentage=50),
                                 llm, max_batch_size=2,
                                 keep_completed=not streaming)
        servers.append(server)
        clients.append(OpenLoopClient(
            env, server, rate_rps=rate / 2, n_requests=n_requests // 2,
            n_tokens=6, rng=np.random.default_rng(100 + i),
            streaming=streaming, stats=stats))
    env.run(until=env.all_of([c.done for c in clients]))
    if streaming:
        lat = stats.stats()
        retained = sum(len(s.completed) for s in servers) \
            + sum(len(c.requests) for c in clients)
    else:
        lats = [r.latency for s in servers for r in s.completed]
        from repro.telemetry import summarize
        lat = summarize(lats)
        retained = sum(len(s.completed) for s in servers)
    return env, lat, retained, sum(s.n_completed for s in servers)


def test_streaming_mode_matches_legacy_exactly():
    """Same arrivals, same clock, same exact latency aggregates."""
    env_s, lat_s, retained_s, done_s = _run_fleet(streaming=True)
    env_l, lat_l, retained_l, done_l = _run_fleet(streaming=False,
                                                  pooling=False)
    assert env_s.now == env_l.now
    assert env_s.events_processed == env_l.events_processed
    assert done_s == done_l == 60
    assert lat_s.count == lat_l.count
    assert lat_s.mean == pytest.approx(lat_l.mean, rel=1e-12)
    assert lat_s.minimum == lat_l.minimum
    assert lat_s.maximum == lat_l.maximum


def test_streaming_mode_retains_nothing():
    _, _, retained, done = _run_fleet(streaming=True)
    assert done == 60
    assert retained == 0


def test_kernel_cache_is_invisible():
    def run(kernel_cache):
        env, server, llm = make_server(max_batch_size=4)
        server.kernel_cache = kernel_cache
        reqs = [server.submit(n_tokens=5) for _ in range(6)]
        env.run(until=env.all_of([r.done for r in reqs]))
        return env.now, [r.latency for r in reqs]

    assert run(True) == run(False)


def test_server_counters_without_retention():
    env, server, llm = make_server()
    server.keep_completed = False
    reqs = [server.submit(n_tokens=4) for _ in range(5)]
    env.run(until=env.all_of([r.done for r in reqs]))
    assert server.n_completed == 5
    assert server.completed == []
    assert server.batch_sizes == []
    assert server.mean_batch_size > 0


def test_on_complete_hook_sees_every_request():
    env, server, llm = make_server()
    seen = []
    server.on_complete = seen.append
    reqs = [server.submit(n_tokens=4) for _ in range(5)]
    env.run(until=env.all_of([r.done for r in reqs]))
    assert sorted(r.rid for r in seen) == sorted(r.rid for r in reqs)


def test_open_loop_client_trace_arrivals():
    from repro.workloads import iter_poisson_trace

    env, server, llm = make_server()
    client = OpenLoopClient(env, server,
                            arrivals=iter_poisson_trace(5.0, 4.0, seed=1),
                            n_tokens=4, streaming=True)
    env.run(until=client.done)
    assert client.n_submitted == client.n_completed > 0


# ------------------------------------------- reconfiguration drain protocol

def test_pause_holds_queued_requests_until_resume():
    env, server, llm = make_server(max_batch_size=1)
    server.pause()
    assert server.stalled
    req = server.submit(n_tokens=4)
    env.run(until=env.now + 5.0)
    assert req.finish_time is None  # held, not failed
    server.resume()
    assert not server.stalled
    env.run(until=req.done)
    assert req.latency is not None


def test_pause_and_resume_are_idempotent():
    env, server, llm = make_server()
    server.pause()
    event = server._pause_event
    server.pause()
    assert server._pause_event is event  # no new gate created
    server.resume()
    server.resume()  # no-op on an unpaused server
    assert not server.stalled


def test_drain_is_immediate_between_batches():
    env, server, llm = make_server()
    server.pause()
    drained = server.drain()
    assert drained.triggered  # nothing executing: safe to reconfigure


def test_drain_waits_for_the_inflight_batch():
    env, server, llm = make_server(max_batch_size=1)
    req = server.submit(n_tokens=8)
    env.run(until=env.now + 0.01)  # let the batch launch kernels
    assert server._executing
    server.pause()
    drained = server.drain()
    assert not drained.triggered
    env.run(until=drained)
    # The drain fired exactly when the in-flight batch completed...
    assert req.finish_time == pytest.approx(env.now)
    # ...and admission stays closed for whatever was queued after it.
    assert server.stalled


def test_drain_fires_even_when_the_batch_crashes():
    env, server, llm = make_server(max_batch_size=1)
    server.submit(n_tokens=200)
    env.run(until=env.now + 0.01)
    assert server._executing
    server.pause()
    drained = server.drain()
    server.crash()
    env.run(until=drained)  # would deadlock if crash skipped the flush
    assert not server.alive


def test_stall_window_defers_batch_launch():
    env, server, llm = make_server(max_batch_size=1)
    server.stall_until = 3.0
    req = server.submit(n_tokens=4)
    env.run(until=req.done)
    assert req.finish_time > 3.0  # nothing ran inside the stall window
