"""Tests for the dynamic-batching inference server."""

import numpy as np
import pytest

from repro.gpu import A100_80GB, MpsControlDaemon, SimulatedGPU
from repro.sim import Environment
from repro.workloads import (
    LLAMA2_7B,
    InferenceRuntime,
    InferenceServer,
    LlamaInference,
    OpenLoopClient,
)

FP16 = InferenceRuntime(dtype_bytes=2)


def make_server(max_batch_size=4, batch_timeout=0.01):
    env = Environment()
    gpu = SimulatedGPU(env, A100_80GB)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    client = daemon.client("server")
    llm = LlamaInference(LLAMA2_7B, FP16)
    server = InferenceServer(env, client, llm,
                             max_batch_size=max_batch_size,
                             batch_timeout=batch_timeout)
    return env, server, llm


def test_single_request_completes():
    env, server, llm = make_server()
    req = server.submit(n_tokens=20)
    env.run(until=req.done)
    assert req.latency is not None
    # Close to the isolated 20-token completion latency.
    expected = llm.completion_seconds(A100_80GB, A100_80GB.sms)
    assert req.latency == pytest.approx(expected, rel=0.1)


def test_simultaneous_requests_are_batched():
    env, server, llm = make_server(max_batch_size=4)
    reqs = [server.submit(20) for _ in range(4)]
    env.run(until=env.all_of([r.done for r in reqs]))
    assert server.batch_sizes == [4]
    # All four share the same steps: identical finish times.
    finishes = {r.finish_time for r in reqs}
    assert len(finishes) == 1


def test_batching_amortizes_weight_traffic():
    """Batch-of-4 throughput far exceeds 4x1 sequential throughput."""
    env, server, llm = make_server(max_batch_size=4)
    reqs = [server.submit(20) for _ in range(4)]
    env.run(until=env.all_of([r.done for r in reqs]))
    batched_total = env.now

    env1, server1, _ = make_server(max_batch_size=1)
    reqs1 = [server1.submit(20) for _ in range(4)]
    env1.run(until=env1.all_of([r.done for r in reqs1]))
    sequential_total = env1.now

    assert batched_total < 0.6 * sequential_total


def test_batch_respects_max_size():
    env, server, _ = make_server(max_batch_size=2)
    reqs = [server.submit(5) for _ in range(5)]
    env.run(until=env.all_of([r.done for r in reqs]))
    assert max(server.batch_sizes) <= 2
    assert sum(server.batch_sizes) == 5


def test_shorter_requests_leave_batch_early():
    env, server, _ = make_server(max_batch_size=2)
    short = server.submit(n_tokens=5)
    long = server.submit(n_tokens=20)
    env.run(until=env.all_of([short.done, long.done]))
    assert short.finish_time < long.finish_time


def test_open_loop_client_deterministic():
    env, server, _ = make_server()
    client = OpenLoopClient(env, server, rate_rps=2.0, n_requests=6,
                            n_tokens=10)
    env.run(until=client.done)
    assert len(client.requests) == 6
    assert all(r.latency is not None for r in client.requests)
    arrivals = [r.arrival_time for r in client.requests]
    gaps = np.diff(arrivals)
    assert np.allclose(gaps, 0.5)


def test_open_loop_client_poisson():
    env, server, _ = make_server()
    rng = np.random.default_rng(7)
    client = OpenLoopClient(env, server, rate_rps=3.0, n_requests=20,
                            n_tokens=5, rng=rng)
    env.run(until=client.done)
    gaps = np.diff([r.arrival_time for r in client.requests])
    assert gaps.std() > 0  # genuinely random arrivals


def test_latency_metrics():
    env, server, _ = make_server()
    reqs = [server.submit(10) for _ in range(3)]
    env.run(until=env.all_of([r.done for r in reqs]))
    assert server.mean_latency > 0
    assert server.mean_batch_size >= 1.0


def test_validation():
    env, server, _ = make_server()
    with pytest.raises(ValueError):
        server.submit(n_tokens=0)
    with pytest.raises(RuntimeError):
        make_server()[1].mean_latency
    with pytest.raises(ValueError):
        OpenLoopClient(env, server, rate_rps=0.0, n_requests=1)
