"""Tests for the synthetic arrival trace generators."""

import numpy as np
import pytest

from repro.workloads import traces

from repro.workloads import (
    bursty_trace,
    diurnal_trace,
    poisson_trace,
    to_rate_series,
    trace_stats,
)


def test_poisson_rate_matches():
    trace = poisson_trace(rate_rps=5.0, horizon=2000.0, seed=1)
    stats = trace_stats(trace, 2000.0)
    assert stats.mean_rate == pytest.approx(5.0, rel=0.1)
    # Poisson interarrivals: squared CV ~ 1.
    assert stats.burstiness == pytest.approx(1.0, abs=0.25)


def test_poisson_deterministic_and_sorted():
    a = poisson_trace(2.0, 500.0, seed=9)
    b = poisson_trace(2.0, 500.0, seed=9)
    assert a == b
    assert a == sorted(a)
    assert all(0 <= t < 500.0 for t in a)


def test_diurnal_trace_modulates_rate():
    period = 1000.0
    trace = diurnal_trace(mean_rate_rps=10.0, horizon=period, period=period,
                          depth=0.8, seed=3)
    rates = to_rate_series(trace, period, window=period / 10)
    # First half (sin > 0) is busier than second half (sin < 0).
    first = np.mean(rates[1:4])
    second = np.mean(rates[6:9])
    assert first > 1.5 * second


def test_diurnal_mean_rate_preserved():
    trace = diurnal_trace(mean_rate_rps=8.0, horizon=5000.0, period=1000.0,
                          seed=5)
    assert trace_stats(trace, 5000.0).mean_rate == pytest.approx(8.0,
                                                                 rel=0.1)


def test_bursty_trace_is_burstier_than_poisson():
    horizon = 5000.0
    bursty = bursty_trace(base_rate_rps=1.0, burst_rate_rps=20.0,
                          horizon=horizon, mean_quiet=200.0,
                          mean_burst=50.0, seed=2)
    poisson = poisson_trace(rate_rps=trace_stats(bursty, horizon).mean_rate,
                            horizon=horizon, seed=2)
    assert (trace_stats(bursty, horizon).burstiness
            > 2 * trace_stats(poisson, horizon).burstiness)
    assert (trace_stats(bursty, horizon).peak_rate
            > 2 * trace_stats(bursty, horizon).mean_rate)


def test_to_rate_series_counts_everything():
    trace = [0.5, 1.5, 1.6, 119.0]
    rates = to_rate_series(trace, horizon=120.0, window=60.0)
    assert len(rates) == 2
    assert rates[0] * 60 == pytest.approx(3)
    assert rates[1] * 60 == pytest.approx(1)


def test_validation():
    with pytest.raises(ValueError):
        poisson_trace(0.0, 10.0)
    with pytest.raises(ValueError):
        diurnal_trace(1.0, 10.0, depth=1.5)
    with pytest.raises(ValueError):
        bursty_trace(5.0, 1.0, 10.0)  # burst < base
    with pytest.raises(ValueError):
        trace_stats([], 10.0)
    with pytest.raises(ValueError):
        to_rate_series([1.0], horizon=0.0)


# ------------------------------------------------------- streaming twins

def test_iter_traces_match_list_builders_exactly():
    from repro.workloads import (
        iter_bursty_trace,
        iter_diurnal_trace,
        iter_poisson_trace,
    )

    assert list(iter_poisson_trace(8.0, 120.0, seed=2)) == \
        poisson_trace(8.0, 120.0, seed=2)
    assert list(iter_diurnal_trace(5.0, 300.0, period=120.0, seed=3)) == \
        diurnal_trace(5.0, 300.0, period=120.0, seed=3)
    assert list(iter_bursty_trace(1.0, 20.0, 600.0, mean_quiet=50.0,
                                  mean_burst=10.0, seed=4)) == \
        bursty_trace(1.0, 20.0, 600.0, mean_quiet=50.0, mean_burst=10.0,
                     seed=4)


def test_iter_poisson_chunk_size_is_invisible():
    from repro.workloads import iter_poisson_trace

    base = list(iter_poisson_trace(10.0, 60.0, seed=5))
    for chunk in (1, 7, 4096):
        assert list(iter_poisson_trace(10.0, 60.0, seed=5,
                                       chunk=chunk)) == base


def test_streaming_trace_stats_matches_batch():
    from repro.workloads import streaming_trace_stats

    trace = poisson_trace(6.0, 500.0, seed=9)
    batch = trace_stats(trace, 500.0)
    stream = streaming_trace_stats(iter(trace), 500.0)
    assert stream.count == batch.count
    assert stream.mean_rate == batch.mean_rate
    assert stream.peak_rate == batch.peak_rate
    assert stream.burstiness == pytest.approx(batch.burstiness, rel=1e-9)


def test_iter_poisson_trace_chunks_bit_identical():
    """Concatenated chunk arrays == the scalar stream, for any chunk
    size (including chunk=1 and chunks that straddle the horizon)."""
    scalar = list(traces.iter_poisson_trace(50.0, 30.0, seed=11))
    for chunk in (1, 7, 64, 4096):
        arrays = list(traces.iter_poisson_trace_chunks(
            50.0, 30.0, seed=11, chunk=chunk))
        assert all(isinstance(a, np.ndarray) for a in arrays)
        flat = np.concatenate(arrays).tolist() if arrays else []
        assert flat == scalar


def test_iter_poisson_trace_chunks_empty_when_first_gap_past_horizon():
    # A horizon shorter than any plausible first gap yields no chunks.
    arrays = list(traces.iter_poisson_trace_chunks(1e-6, 1e-9, seed=0))
    assert arrays == []


def test_iter_poisson_trace_chunks_validation():
    with pytest.raises(ValueError):
        list(traces.iter_poisson_trace_chunks(0.0, 10.0))
    with pytest.raises(ValueError):
        list(traces.iter_poisson_trace_chunks(1.0, -1.0))
    with pytest.raises(ValueError):
        list(traces.iter_poisson_trace_chunks(1.0, 10.0, chunk=0))
