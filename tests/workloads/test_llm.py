"""Tests for the LLaMa-2 cost model, including the paper's anchors."""

import pytest

from repro.gpu import A100_40GB, A100_80GB
from repro.workloads import (
    LLAMA2_13B,
    LLAMA2_70B,
    LLAMA2_7B,
    InferenceRuntime,
    LlamaInference,
)

FP32 = InferenceRuntime(dtype_bytes=4)
FP16 = InferenceRuntime(dtype_bytes=2)


def test_weight_footprints():
    assert LlamaInference(LLAMA2_7B, FP32).weight_bytes == pytest.approx(
        6.74e9 * 4)
    assert LlamaInference(LLAMA2_7B, FP16).weight_bytes == pytest.approx(
        6.74e9 * 2)


def test_four_fp16_instances_fit_in_80gb_but_not_five():
    """The §5.2 admission constraint."""
    llm = LlamaInference(LLAMA2_7B, FP16)
    per_instance = llm.memory_per_gpu
    assert 4 * per_instance < A100_80GB.memory_bytes
    assert 5 * per_instance > A100_80GB.memory_bytes


def test_13b_load_time_matches_section6():
    """§6: 'loading time of LLaMa 2 13B can take up to 10 seconds'."""
    llm = LlamaInference(LLAMA2_13B, FP16)
    assert 8.0 < llm.load_seconds < 12.0


def test_latency_plateau_exists():
    """Fig. 2: latency stops improving past a few dozen SMs."""
    llm = LlamaInference(LLAMA2_7B, FP32)
    spec = A100_40GB
    plateau = llm.plateau_sms(spec)
    assert 15 <= plateau <= 45
    # Beyond the plateau: no material improvement.
    assert (llm.token_seconds(spec, plateau)
            <= 1.02 * llm.token_seconds(spec, spec.sms) + 1e-12)
    # Well below it: clearly slower.
    assert llm.token_seconds(spec, 5) > 2 * llm.token_seconds(spec, spec.sms)


def test_latency_monotone_in_sms():
    llm = LlamaInference(LLAMA2_7B, FP32)
    prev = float("inf")
    for sms in range(1, A100_40GB.sms + 1):
        cur = llm.token_seconds(A100_40GB, sms)
        assert cur <= prev + 1e-12
        prev = cur


def test_cpu_slowdown_anchor():
    """Fig. 2 text: CPU inference ~40x slower than the full GPU."""
    llm = LlamaInference(LLAMA2_7B, FP32)
    gpu = llm.completion_seconds(A100_40GB, A100_40GB.sms)
    cpu = llm.cpu_completion_seconds(A100_40GB)
    assert cpu / gpu == pytest.approx(40.0)


def test_13b_slower_than_7b_despite_two_gpus():
    """Fig. 2: 13B on 2 GPUs is roughly 2x the 7B latency on one."""
    t7 = LlamaInference(LLAMA2_7B, FP32).completion_seconds(
        A100_40GB, A100_40GB.sms)
    t13 = LlamaInference(LLAMA2_13B, FP32, n_gpus=2).completion_seconds(
        A100_40GB, A100_40GB.sms)
    assert 1.4 * t7 < t13 < 3.0 * t7


def test_decode_kernel_shape():
    llm = LlamaInference(LLAMA2_7B, FP16)
    k = llm.decode_kernel()
    assert k.flops == pytest.approx(2 * 6.74e9)
    # Traffic is amplification x weights plus KV-cache traffic.
    assert k.bytes_moved > FP16.traffic_amplification * llm.weight_bytes
    assert k.max_sms == FP16.max_sms


def test_multi_gpu_shards_memory():
    llm = LlamaInference(LLAMA2_13B, FP32, n_gpus=2)
    single = LlamaInference(LLAMA2_13B, FP32, n_gpus=1)
    assert llm.memory_per_gpu == pytest.approx(single.memory_per_gpu / 2)
    # 13B fp32 (52 GB) does not fit one 40 GB A100, but half does.
    assert single.memory_per_gpu > A100_40GB.memory_bytes
    assert llm.memory_per_gpu < A100_40GB.memory_bytes


def test_70b_spec_exists():
    assert LLAMA2_70B.n_params == pytest.approx(69e9)


def test_invalid_n_gpus():
    with pytest.raises(ValueError):
        LlamaInference(LLAMA2_7B, n_gpus=0)


def test_cold_start_decomposition():
    llm = LlamaInference(LLAMA2_7B, FP16)
    assert llm.cold_start_seconds == pytest.approx(
        FP16.process_start_seconds + llm.load_seconds)


def test_with_dtype_helper():
    rt = FP16.with_dtype(4)
    assert rt.dtype_bytes == 4
    assert rt.efficiency == FP16.efficiency
