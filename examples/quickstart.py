#!/usr/bin/env python3
"""Quickstart: Parsl-style apps with fine-grained GPU partitioning.

Reproduces the paper's Listing 1 + Listing 2 workflow end to end:

1. build a Config with a CPU executor and a GPU executor whose workers
   share one simulated A100 through MPS GPU percentages;
2. register a CPU ``@python_app`` and a GPU ``@gpu_app``;
3. submit tasks, chain futures, and inspect the results.

Run:  python examples/quickstart.py
"""

from repro.faas import (
    Config,
    DataFlowKernel,
    HighThroughputExecutor,
    LocalProvider,
    gpu_app,
    python_app,
)
from repro.gpu import A100_40GB, Kernel


def main() -> None:
    # -- Listing 1/2: the configuration -----------------------------------
    # One CPU executor, and one GPU executor that multiplexes a single
    # A100 between two workers at 50% of the SMs each (CUDA MPS).
    config = Config(
        retries=1,
        executors=[
            HighThroughputExecutor(label="cpu", max_workers=16),
            HighThroughputExecutor(
                label="gpu",
                available_accelerators=["0", "0"],  # GPU 0, listed twice
                gpu_percentage=[50, 50],            # the paper's new knob
                provider=LocalProvider(cores=24, gpu_specs=[A100_40GB]),
            ),
        ],
    )
    dfk = DataFlowKernel(config)

    # -- apps ---------------------------------------------------------------
    @python_app(executors=["cpu"], walltime=2.0, dfk=dfk)
    def preprocess(n: int) -> list[float]:
        """A CPU task: takes 2 simulated seconds, runs real Python."""
        return [i * 0.5 for i in range(n)]

    @gpu_app(executors=["gpu"], dfk=dfk)
    def gpu_reduce(ctx, values: list[float]) -> float:
        """A GPU task: launches a kernel on this worker's 50% partition."""
        kernel = Kernel(
            flops=5e12,            # ~0.5 s on half an A100
            bytes_moved=1e9,
            max_sms=64,
            name="reduce",
        )
        yield ctx.launch(kernel)
        return sum(values)

    # -- submit & chain ---------------------------------------------------------
    # Futures compose: gpu_reduce consumes preprocess's future directly.
    stage1 = [preprocess(100) for _ in range(4)]
    stage2 = [gpu_reduce(fut) for fut in stage1]

    results = dfk.wait(stage2)

    print(f"results: {results}")
    print(f"simulated wall time: {dfk.env.now:.2f} s")
    print(f"tasks: {dfk.task_summary()}")
    gpu_device = config.executors[1].nodes[0].gpus[0]
    print(f"GPU mean SM utilization: {gpu_device.sm_utilization():.1%}")


if __name__ == "__main__":
    main()
