#!/usr/bin/env python3
"""Multiplexed LLaMa-2 chatbots — the paper's §5.2 scenario.

"We envision a scenario in which multiple LLaMa2 chatbots from different
clients run in a serverless setting using Parsl/Globus Compute."

Four 7B chatbot functions share one simulated A100-80GB.  The script runs
the same chat workload under the three §5.2 configurations (default
time-sharing, MPS equal split, MIG 1g instances) and prints completion
time, latency, and throughput — a miniature Fig. 4/Fig. 5.

Run:  python examples/llama_chatbots.py
"""

from repro.bench import run_llm_multiplexing
from repro.telemetry import summarize

N_CHATBOTS = 4
N_COMPLETIONS = 60  # chat turns across all clients
N_TOKENS = 20       # "text completion tasks for 20-word sentences"


def main() -> None:
    print(f"{N_CHATBOTS} LLaMa-2 7B chatbots, {N_COMPLETIONS} chat turns, "
          f"{N_TOKENS} tokens each, one A100-80GB\n")

    baseline = run_llm_multiplexing(
        "timeshare", 1, n_completions=N_COMPLETIONS, n_tokens=N_TOKENS)
    print("single chatbot (no multiplexing):"
          f" {baseline.total_seconds:.1f} s total,"
          f" {baseline.mean_latency * 1000:.0f} ms per reply")

    for mode in ("timeshare", "mps", "mig"):
        r = run_llm_multiplexing(
            mode, N_CHATBOTS, n_completions=N_COMPLETIONS, n_tokens=N_TOKENS)
        stats = summarize(r.latencies)
        saved = 100 * (1 - r.total_seconds / baseline.total_seconds)
        print(
            f"{mode:>9} x{N_CHATBOTS}: total {r.total_seconds:6.1f} s "
            f"({saved:4.1f}% lower), reply latency "
            f"mean {stats.mean * 1000:4.0f} ms / p95 {stats.p95 * 1000:4.0f} ms, "
            f"throughput {r.throughput / baseline.throughput:.2f}x"
        )

    print(
        "\nTakeaway (matches the paper): spatial sharing with MPS cuts the\n"
        "time to serve all clients by ~60% and multiplies throughput ~2.5x;\n"
        "MIG is as good at 2-way sharing but loses ground at 3- and 4-way\n"
        "because its slices are coarser (2/7 and 1/7 vs 1/3 and 1/4)."
    )


if __name__ == "__main__":
    main()
