#!/usr/bin/env python3
"""Right-sizing GPU partitions for functions (§7 future work).

Profiles each workload's latency-vs-SMs curve on the simulator, finds
the knee, and emits the deployable artefacts: an MPS GPU percentage and
the smallest adequate MIG profile.  Then fits the §7 runtime predictor
to a handful of profile points and shows its extrapolations.

Run:  python examples/rightsizing.py
"""

from repro.bench import format_table
from repro.gpu import A100_40GB
from repro.partition import RightSizer, RuntimePredictor, StaticAnalyzer
from repro.workloads import (
    LLAMA2_7B,
    RESNET50,
    VGG16,
    InferenceRuntime,
    LlamaInference,
)


def main() -> None:
    spec = A100_40GB
    sizer = RightSizer(spec, tolerance=0.05)
    analyzer = StaticAnalyzer(spec)

    workloads = {}
    llm = LlamaInference(LLAMA2_7B, InferenceRuntime(dtype_bytes=4))
    workloads["llama2-7b decode"] = (
        lambda sms: llm.completion_seconds(spec, sms))
    for model, batch in ((RESNET50, 1), (RESNET50, 32), (VGG16, 1)):
        kernels = model.inference_kernels(batch_size=batch)
        workloads[f"{model.name} b{batch}"] = (
            lambda sms, k=kernels: analyzer.predict_seconds(
                k, sms, host_seconds=0.002))

    rows = []
    for name, latency_fn in workloads.items():
        rec = sizer.recommend(latency_fn)
        rows.append([
            name, rec.knee_sms, f"{rec.mps_percentage}%",
            rec.mig_profile or rec.placement.value,
            f"{rec.predicted_latency * 1000:.0f} ms",
            f"{100 * rec.freed_fraction:.0f}%",
        ])
    print(format_table(
        ["workload", "knee SMs", "MPS %", "MIG profile", "latency",
         "GPU freed for co-tenants"],
        rows,
        title=f"Right-sized partitions on {spec.name} (5% latency SLO)",
    ))

    # -- the runtime predictor: few samples -> full scaling law --------------
    print("\nRuntime predictor (fit on 6 profiled points):")
    predictor = RuntimePredictor()
    fn = workloads["llama2-7b decode"]
    predictor.fit([(s, fn(s)) for s in (4, 8, 16, 32, 64, 108)])
    for sms in (10, 20, 54, 108):
        print(f"  T({sms:>3} SMs): predicted {predictor.predict(sms):.2f} s, "
              f"actual {fn(sms):.2f} s")
    print(f"  fitted saturation point: {predictor.saturation_sms:.0f} SMs "
          f"(Fig. 2's plateau)")

    # -- knees -> a concrete heterogeneous MIG layout ------------------------
    from repro.partition import WorkloadRequirement, plan_mig_layout

    requirements = []
    for name, latency_fn in workloads.items():
        rec = sizer.recommend(latency_fn)
        memory = 15e9 if "llama" in name else 2e9
        requirements.append(WorkloadRequirement(
            name, min_sms=rec.knee_sms, min_memory_bytes=memory))
    try:
        plan = plan_mig_layout(spec, requirements)
        print("\nHeterogeneous MIG layout for all four workloads:")
        for workload, profile in plan.assignments:
            print(f"  {workload:<18} -> {profile}")
        print(f"  slices used: {plan.used_compute_slices}/7 compute, "
              f"{plan.used_memory_slices}/8 memory; "
              f"room left for a {plan.leftover_profile or 'nothing'}")
    except ValueError as exc:
        print(f"\nNo single-GPU MIG layout fits all four workloads: {exc}")
        print("(batch-32 ResNet wants nearly the whole device — schedule "
              "it on its own GPU or fall back to MPS percentages)")


if __name__ == "__main__":
    main()
