#!/usr/bin/env python3
"""Molecular design as a Colmena Thinker (the paper's actual stack).

§3.1: "These calculations were performed using the Colmena framework in
an implementation backed by Globus Compute and Parsl."  This example
rebuilds the campaign in the Colmena idiom — a Thinker whose agents
*overlap* simulation submission with model (re)training — and compares
the resulting GPU idle time with the strictly sequential loop of
``examples/molecular_design.py``.

Run:  python examples/colmena_moldesign.py
"""

import numpy as np

from repro.colmena import ColmenaQueues, TaskServer, Thinker, agent
from repro.faas import (
    Config,
    DataFlowKernel,
    HighThroughputExecutor,
    LocalProvider,
    gpu_app,
    python_app,
)
from repro.gpu import A100_40GB
from repro.telemetry import timeline_from_tasks
from repro.workloads import MoleculeSpace, RidgeEmulator
from repro.workloads.chemistry import simulate_ionization_potential

N_INITIAL = 24
N_BATCHES = 4
BATCH_SIZE = 8
POOL_SIZE = 512
SIM_SECONDS = 12.0


class MolDesignThinker(Thinker):
    """Colmena-style steering: simulate / train / select concurrently."""

    def __init__(self, queues, space, emulator):
        super().__init__(queues)
        self.space = space
        self.emulator = emulator
        self.dataset_mols = []
        self.dataset_ips = []
        self.batches_selected = 0
        self.next_mol_id = 0
        self.best_ip = -np.inf

    def _draw(self, n):
        mols = self.space.sample(n, offset=self.next_mol_id)
        self.next_mol_id += n
        return mols

    @agent
    def bootstrap(self):
        """Seed the campaign with the initial random pool."""
        for mol in self._draw(N_INITIAL):
            self.queues.send_inputs(mol, method="simulate", topic="simulate")
        yield self.env.timeout(0)

    @agent
    def simulation_consumer(self):
        """Collect simulation results; retrain as data arrives."""
        expected = N_INITIAL + N_BATCHES * BATCH_SIZE
        while len(self.dataset_ips) < expected:
            result = yield self.queues.get_result("simulate")
            mol, ip = result.value
            self.dataset_mols.append(mol)
            self.dataset_ips.append(ip)
            self.best_ip = max(self.best_ip, ip)
            # Retrain opportunistically once per completed batch.
            if (len(self.dataset_ips) >= N_INITIAL
                    and len(self.dataset_ips) % BATCH_SIZE == 0
                    and self.batches_selected < N_BATCHES):
                features = self.space.features(self.dataset_mols)
                labels = np.asarray(self.dataset_ips)
                self.queues.send_inputs(features, labels, method="train",
                                        topic="ml")
        self.set_done()

    @agent
    def ml_consumer(self):
        """When a model finishes training, score and select candidates."""
        while not self.done and self.batches_selected < N_BATCHES:
            result = yield self.queues.get_result("ml")
            if result.method == "train":
                candidates = self._draw(POOL_SIZE)
                self.queues.send_inputs(
                    self.space.features(candidates), candidates,
                    method="infer", topic="ml")
            else:  # infer
                predictions, candidates = result.value
                order = np.argsort(predictions)[::-1][:BATCH_SIZE]
                for i in order:
                    self.queues.send_inputs(candidates[i],
                                            method="simulate",
                                            topic="simulate")
                self.batches_selected += 1


def main() -> None:
    dfk = DataFlowKernel(Config(executors=[
        HighThroughputExecutor(label="cpu", max_workers=16),
        HighThroughputExecutor(
            label="gpu", available_accelerators=["0"],
            provider=LocalProvider(cores=24, gpu_specs=[A100_40GB])),
    ]))
    queues = ColmenaQueues(dfk.env, ["simulate", "ml"])
    space = MoleculeSpace(seed=0)
    emulator = RidgeEmulator(seed=0)

    @python_app(executors=["cpu"], walltime=SIM_SECONDS, dfk=dfk)
    def simulate(mol):
        return mol, simulate_ionization_potential(mol)

    @gpu_app(executors=["gpu"], dfk=dfk)
    def train(ctx, features, labels):
        rmse = emulator.train(features, labels)
        yield ctx.compute(1.0)
        yield ctx.launch(emulator.training_kernel(len(features)))
        return rmse

    @gpu_app(executors=["gpu"], dfk=dfk)
    def infer(ctx, features, candidates):
        predictions = emulator.predict(features)
        yield ctx.compute(0.25)
        yield ctx.launch(emulator.inference_kernel(len(features)))
        return predictions, candidates

    TaskServer(queues, dfk, {"simulate": simulate, "train": train,
                             "infer": infer})
    thinker = MolDesignThinker(queues, space, emulator)
    thinker.run_to_completion()

    timeline = timeline_from_tasks(dfk.tasks)
    idle = timeline.idle_fraction(["train", "infer"])
    print(f"Colmena-style campaign finished at t={dfk.env.now:.0f}s")
    print(f"molecules simulated: {len(thinker.dataset_ips)}  "
          f"best IP: {thinker.best_ip:.2f} eV")
    print(f"GPU idle fraction: {idle:.0%}")
    print("\nCompared with examples/molecular_design.py's sequential loop,")
    print("the steering agents overlap candidate selection with running")
    print("simulations — Colmena's raison d'etre, and the §3.4 pipelining")
    print("observation in action.")


if __name__ == "__main__":
    main()
