#!/usr/bin/env python3
"""MIG lifecycle and repartitioning costs (§4.2 + §6 + §7).

Walks through the full MIG workflow on a simulated A100-80GB:

1. enable MIG mode (GPU reset);
2. create the paper's 2-way partition (3g.40gb x2) and serve from it;
3. repartition to 4-way (1g.20gb x4) — which requires shutting every
   application down (§6) — and measure the cost;
4. repeat an MPS repartition with and without the §7 GPU-resident
   weight cache to show the fast path.

Run:  python examples/mig_reconfiguration.py
"""

from repro.faas import ColdStartModel, ComputeNode
from repro.gpu import A100_80GB
from repro.partition import ReconfigurationPlanner, WeightCache
from repro.sim import Environment
from repro.workloads import LLAMA2_7B, InferenceRuntime, LlamaInference


def main() -> None:
    env = Environment()
    node = ComputeNode(env, cores=24, gpu_specs=[A100_80GB])
    llm = LlamaInference(LLAMA2_7B, InferenceRuntime(dtype_bytes=2))
    mig = node.mig_manager(0)

    def scenario(env):
        # 1. Enter MIG mode: a full GPU reset.
        t0 = env.now
        yield from mig.enable()
        print(f"[t={env.now:6.1f}s] MIG enabled "
              f"(reset cost {env.now - t0:.1f}s)")

        # 2. Two 3g.40gb instances, one chatbot each.
        i1 = mig.create_instance("3g.40gb")
        i2 = mig.create_instance("3g.40gb")
        c1, c2 = i1.client("bot-a"), i2.client("bot-b")
        for c in (c1, c2):
            c.alloc(llm.memory_per_gpu)
            yield env.timeout(llm.load_seconds)
        print(f"[t={env.now:6.1f}s] two chatbots serving from "
              f"{i1.profile.name} instances ({i1.sm_count} SMs each)")
        for _ in range(10):
            yield env.all_of([c1.launch(llm.decode_kernel()),
                              c2.launch(llm.decode_kernel())])
        print(f"[t={env.now:6.1f}s] served 10 tokens per bot")

        # 3. Demand doubles: repartition to 4x 1g.20gb.  Everything must
        #    shut down first (§6), then the GPU resets.
        t0 = env.now
        c1.close()
        c2.close()
        planner = ReconfigurationPlanner(A100_80GB, ColdStartModel())
        instances = yield from planner.execute_mig_repartition(
            node, 0, ["1g.20gb"] * 4)
        clients = [inst.client(f"bot-{i}") for i, inst in
                   enumerate(instances)]
        for c in clients:
            c.alloc(llm.memory_per_gpu)
            yield env.timeout(llm.load_seconds)  # reload weights (x4!)
        print(f"[t={env.now:6.1f}s] repartitioned to 4x 1g.20gb in "
              f"{env.now - t0:.1f}s — every bot was interrupted and "
              "reloaded its model")
        for c in clients:
            c.close()

        # 4. The same resize under MPS, with and without the weight cache.
        yield from teardown_and_compare(env, llm)

    def teardown_and_compare(env, llm):
        node2 = ComputeNode(env, cores=24, gpu_specs=[A100_80GB])
        node2.start_mps()
        planner = ReconfigurationPlanner(A100_80GB, ColdStartModel())

        # Without the cache.
        client = node2.mps_daemons[0].client("bot", 50)
        client.alloc(llm.memory_per_gpu)
        t0 = env.now
        client = yield from planner.execute_mps_repartition(
            node2, 0, client, 25, model_key=llm.spec.name,
            model_bytes=llm.memory_per_gpu,
            model_load_seconds=llm.load_seconds)
        cold = env.now - t0
        client.close()

        # With the §7 GPU-resident weight cache.
        node3 = ComputeNode(env, cores=24, gpu_specs=[A100_80GB])
        node3.start_mps()
        node3.weight_cache = WeightCache()
        client = node3.mps_daemons[0].client("bot", 50)
        node3.weight_cache.acquire(client, llm.spec.name, llm.memory_per_gpu)
        t0 = env.now
        yield from planner.execute_mps_repartition(
            node3, 0, client, 25, model_key=llm.spec.name,
            model_bytes=llm.memory_per_gpu,
            model_load_seconds=llm.load_seconds)
        warm = env.now - t0
        print(f"\nMPS repartition 50% -> 25%:")
        print(f"  without weight cache: {cold:.1f}s "
              "(process restart + model reload, §6's 10-20s band)")
        print(f"  with weight cache:    {warm:.1f}s "
              f"({cold / warm:.1f}x faster — §7's fast path)")

    env.run(until=env.process(scenario(env)))


if __name__ == "__main__":
    main()
