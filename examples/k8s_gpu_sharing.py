#!/usr/bin/env python3
"""Kubernetes GPU sharing vs. the paper's approach, side by side.

The paper's introduction motivates extending Parsl by noting that FaaS
platforms often sit on Kubernetes, "which only has limited GPU sharing
support".  This example schedules the same eight quarter-GPU inference
pods through each of Kubernetes' real GPU exposure mechanisms, then runs
the identical workload through the paper's partitioned Parsl executor.

Run:  python examples/k8s_gpu_sharing.py
"""

from repro.bench import format_table
from repro.faas import (
    ColdStartModel,
    ComputeNode,
    Config,
    DataFlowKernel,
    HighThroughputExecutor,
    StaticProvider,
    gpu_app,
)
from repro.gpu import A100_80GB
from repro.k8s import (
    Cluster,
    MigDevicePlugin,
    Pod,
    PodPhase,
    ResourceSpec,
    TimeSlicingPlugin,
    WholeGpuPlugin,
)
from repro.sim import Environment
from repro.workloads import LLAMA2_7B, InferenceRuntime, LlamaInference

LLM = LlamaInference(LLAMA2_7B, InferenceRuntime(dtype_bytes=2))
N_PODS = 8
TOKENS = 40


def pod_main(ctx):
    for _ in range(TOKENS):
        yield ctx.gpu.launch(LLM.decode_kernel())
        yield ctx.env.timeout(LLM.host_seconds_per_token)


def run_k8s(plugin, request, mig_profiles=None):
    env = Environment()
    node = ComputeNode(env, cores=32, gpu_specs=[A100_80GB])
    if mig_profiles:
        mig = node.mig_manager(0)
        env.run(until=env.process(mig.enable()))
        for profile in mig_profiles:
            mig.create_instance(profile)
    cluster = Cluster(env, [node], plugin=plugin)
    t0 = env.now
    pods = [cluster.submit(Pod(f"infer{i}",
                               ResourceSpec(cpu=1.0, extended=request),
                               main=pod_main)) for i in range(N_PODS)]
    cluster.run_until_done()
    assert all(p.phase is PodPhase.SUCCEEDED for p in pods)
    return env.now - t0


def run_parsl():
    env = Environment()
    node = ComputeNode(env, cores=32, gpu_specs=[A100_80GB])
    node.start_mps()
    executor = HighThroughputExecutor(
        label="gpu", available_accelerators=["0"] * 4,
        gpu_percentage=[25] * 4, provider=StaticProvider([node]),
        cold_start=ColdStartModel(function_init_seconds=0.0,
                                  gpu_context_seconds=0.0))
    dfk = DataFlowKernel(Config(executors=[executor]), env=env)

    @gpu_app(dfk=dfk)
    def infer(ctx):
        yield from pod_main(ctx)

    t0 = env.now
    dfk.wait([infer() for _ in range(N_PODS)])
    return env.now - t0


def main() -> None:
    results = {
        "k8s whole-GPU plugin (stock)": run_k8s(
            WholeGpuPlugin(), {"nvidia.com/gpu": 1}),
        "k8s time-slicing plugin (4 replicas)": run_k8s(
            TimeSlicingPlugin(replicas=4), {"nvidia.com/gpu": 1}),
        "k8s MIG plugin (4x 1g.20gb)": run_k8s(
            MigDevicePlugin(), {"nvidia.com/mig-1g.20gb": 1},
            mig_profiles=["1g.20gb"] * 4),
        "Parsl + MPS 25% x4 (this paper)": run_parsl(),
    }
    base = results["k8s whole-GPU plugin (stock)"]
    rows = [[name, f"{seconds:.1f}", f"{seconds / base:.2f}"]
            for name, seconds in results.items()]
    print(format_table(
        ["mechanism", "makespan s", "vs whole-GPU"],
        rows,
        title=f"{N_PODS} quarter-GPU LLaMa-2 pods on one A100-80GB"))
    print("\nThe stock device plugin gives each pod a whole GPU (and thus")
    print("serialises them); fine-grained spatial partitioning — the")
    print("paper's contribution — finishes the same work in about a third")
    print("of the time.")


if __name__ == "__main__":
    main()
