#!/usr/bin/env python3
"""The molecular-design active-learning campaign (§3.1, Fig. 3).

Runs the full Colmena-style loop over the FaaS framework: quantum
chemistry "simulations" on the CPU executor, emulator training and
candidate scoring on a GPU partition.  Prints the campaign's discoveries
plus the Fig. 3 timeline showing GPU idle gaps.

Run:  python examples/molecular_design.py
"""

import numpy as np

from repro.faas import (
    Config,
    DataFlowKernel,
    HighThroughputExecutor,
    LocalProvider,
)
from repro.gpu import A100_40GB
from repro.telemetry import render_ascii_gantt
from repro.workloads import CampaignConfig, MolecularDesignCampaign
from repro.workloads.chemistry import ground_truth_batch
from repro.workloads.datasets import MoleculeSpace


def main() -> None:
    # The paper's testbed: 24 CPU cores, GPUs handled by a GPU executor.
    config = Config(executors=[
        HighThroughputExecutor(label="cpu", max_workers=16),
        HighThroughputExecutor(
            label="gpu",
            available_accelerators=["0"],
            provider=LocalProvider(cores=24, gpu_specs=[A100_40GB]),
        ),
    ])
    dfk = DataFlowKernel(config)

    campaign_config = CampaignConfig(
        n_initial=24, n_rounds=5, simulations_per_round=8,
        candidate_pool_size=512)
    campaign = MolecularDesignCampaign(dfk, campaign_config)
    result = campaign.run_to_completion()

    # How good are the discoveries?  Compare against the molecule space.
    space = MoleculeSpace(seed=campaign_config.seed)
    population = ground_truth_batch(space.features(space.sample(4000)))

    print(f"campaign finished in {dfk.env.now:.0f} simulated seconds")
    print(f"molecules simulated: {result.n_simulated}")
    print(f"emulator train RMSE by round: "
          f"{[round(r, 3) for r in result.train_rmse]}")
    print(f"best IP found per round: "
          f"{[round(r, 2) for r in result.round_best]} eV")
    print(f"best IP overall: {result.best_ip:.2f} eV "
          f"(population: mean {population.mean():.2f}, "
          f"p99 {np.percentile(population, 99):.2f})")

    timeline = result.timeline
    gpu = ("training", "inference")
    print(f"\nGPU idle fraction: {timeline.idle_fraction(gpu):.0%} "
          f"({len(timeline.idle_gaps(gpu))} idle gaps — "
          "Fig. 3's 'white lines')\n")
    print(render_ascii_gantt(timeline, width=96))


if __name__ == "__main__":
    main()
