#!/usr/bin/env python3
"""Federated serving: Globus-Compute-style endpoints + model-aware routing.

Three sites each expose a GPU endpoint through the (simulated) cloud
service.  A router dispatches LLaMa-2 inference tasks; with model
affinity it sticks to endpoints whose GPU already holds the weights,
dodging the §6 cold-start penalty on every request after the first.
A mid-run worker crash shows the retry machinery recovering.

Run:  python examples/federated_serving.py
"""

from repro.faas import (
    ColdStartModel,
    Config,
    DataFlowKernel,
    Endpoint,
    FailureInjector,
    GlobusComputeService,
    GpuTaskRouter,
    HighThroughputExecutor,
    LocalProvider,
    ModelAffinityRouter,
    RoundRobinRouter,
    gpu_app,
)
from repro.gpu import A100_80GB
from repro.sim import Environment
from repro.workloads import LLAMA2_7B, InferenceRuntime, LlamaInference

LLM = LlamaInference(LLAMA2_7B, InferenceRuntime(dtype_bytes=2))
N_REQUESTS = 12


def build_federation(policy):
    env = Environment()
    service = GlobusComputeService(env, wan_latency_seconds=0.02)
    dfks = []
    endpoints = []
    for i in range(3):
        executor = HighThroughputExecutor(
            label="gpu", available_accelerators=["0"],
            cold_start=ColdStartModel(),
            provider=LocalProvider(cores=8, gpu_specs=[A100_80GB]))
        dfk = DataFlowKernel(Config(executors=[executor], retries=1),
                             env=env)
        dfks.append(dfk)
        endpoints.append(Endpoint(f"site-{i}", dfk, service))
    router = GpuTaskRouter(service, endpoints, policy=policy)

    @gpu_app(dfk=dfks[0])
    def completion(ctx, n_tokens=20):
        yield from ctx.load_model(LLM.spec.name, LLM.memory_per_gpu,
                                  LLM.load_seconds)
        t0 = ctx.now
        for _ in range(n_tokens):
            yield ctx.launch(LLM.decode_kernel())
            yield ctx.compute(LLM.host_seconds_per_token)
        return ctx.now - t0

    return env, router, router.register_function(completion), dfks


def run(policy, label, crash=False):
    env, router, fid, dfks = build_federation(policy)
    futures = []
    e2e = []

    def driver(env):
        for i in range(N_REQUESTS):
            fut = router.submit(fid, model_key=LLM.spec.name,
                                payload_bytes=2048)
            submitted = env.now
            fut.callbacks.append(
                lambda ev, t=submitted: e2e.append(env.now - t))
            futures.append(fut)
            yield env.timeout(8.0)

    env.process(driver(env))
    if crash:
        def saboteur(env):
            yield env.timeout(30.0)
            executor = next(iter(dfks[0].executors.values()))
            FailureInjector(env).crash_worker(executor.workers[0],
                                              respawn_after=2.0)
            print(f"  [t={env.now:.0f}s] injected worker crash on site-0 "
                  "(task retries on the respawned worker)")

        env.process(saboteur(env))
    env.run()
    for f in futures:
        f.result()  # surface any failure
    mean_e2e = sum(e2e) / len(e2e)
    print(f"{label}:")
    print(f"  routed: {router.routed}")
    print(f"  mean end-to-end latency {mean_e2e:.2f}s "
          "(includes WAN, cold starts, model loads)")
    if isinstance(policy, ModelAffinityRouter):
        print(f"  affinity hits/misses: {policy.affinity_hits}/"
              f"{policy.affinity_misses}")
    return mean_e2e


def main() -> None:
    lat_rr = run(RoundRobinRouter(), "round-robin routing")
    print()
    lat_aff = run(ModelAffinityRouter(), "model-affinity routing")
    print()
    run(ModelAffinityRouter(), "model-affinity + worker crash", crash=True)
    print(f"\nAffinity routing cut mean end-to-end latency by "
          f"{100 * (1 - lat_aff / lat_rr):.0f}%: one model load instead of "
          "three (§6's cold-start cost, dodged by scheduling).")


if __name__ == "__main__":
    main()
