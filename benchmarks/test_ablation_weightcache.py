"""§7 ablation: GPU-resident weight sharing across function instances.

The paper's future-work apparatus: "when a new instance of the DNN model
is needed, the model code can refer to cached weights in the GPU and
proceed with inference".  We repartition a LLaMa-2 7B serving function
repeatedly (the demand-driven resize loop §7 motivates) and compare the
total reconfiguration downtime with and without the cache.
"""

from repro.bench import format_table, save_results, weightcache_ablation


def test_weightcache_ablation(run_once):
    result = run_once(weightcache_ablation, 4)

    table = format_table(
        ["configuration", "total downtime s", "per repartition s"],
        [
            ["no weight cache", result.seconds_without_cache,
             result.seconds_without_cache / result.n_repartitions],
            ["GPU-resident weight cache", result.seconds_with_cache,
             result.seconds_with_cache / result.n_repartitions],
        ],
        title=(f"§7 ablation — {result.n_repartitions} consecutive MPS "
               "repartitions of a LLaMa-2 7B function"),
    )
    table += f"\nspeedup: {result.speedup:.1f}x"
    print("\n" + table)
    save_results("ablation_weightcache", table)

    # Without the cache every resize pays the model reload (~5 s for 7B
    # fp16), putting each repartition in the §6 10-20 s band scaled down
    # for fp16; with the cache only process restart remains.
    per_cold = result.seconds_without_cache / result.n_repartitions
    per_warm = result.seconds_with_cache / result.n_repartitions
    assert per_cold > 5.0
    assert per_warm < 3.0
    assert result.speedup > 2.0
