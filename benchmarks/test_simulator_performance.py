"""Performance of the simulation engine itself.

Unlike the reproduction benches (which run once — they are
deterministic), these measure the *wall-clock* cost of the simulator so
regressions in the hot paths (event heap, fluid reallocation, the GPU
allocator) are caught.  Run with ``pytest --benchmark-only`` and compare
against a stored baseline via pytest-benchmark's own tooling.
"""

from repro.gpu import A100_80GB, Kernel, MpsControlDaemon, SimulatedGPU
from repro.sim import Environment, FluidPool, FluidTask
from repro.workloads import LLAMA2_7B, InferenceRuntime, LlamaInference

FP16 = InferenceRuntime(dtype_bytes=2)


def _drain_timeouts(n: int) -> float:
    env = Environment()
    for i in range(n):
        env.timeout(float(i % 97))
    env.run()
    return env.now


def test_event_queue_throughput(benchmark):
    """Schedule-and-drain cost of 20k timeout events."""
    result = benchmark(_drain_timeouts, 20_000)
    assert result == 96.0


def _fluid_churn(n_tasks: int) -> float:
    env = Environment()

    def equal(tasks):
        share = 100.0 / len(tasks)
        for t in tasks:
            t.rate = share

    pool = FluidPool(env, equal)

    def submitter(env):
        for i in range(n_tasks):
            pool.add(FluidTask(env, work=float(1 + i % 13)))
            yield env.timeout(0.05)

    env.process(submitter(env))
    env.run()
    return pool.work_drained


def test_fluid_pool_reallocation_churn(benchmark):
    """2k staggered fluid tasks => ~4k reallocations of the pool."""
    drained = benchmark(_fluid_churn, 2_000)
    assert drained > 0


def _gpu_decode_storm(n_clients: int, tokens: int) -> int:
    env = Environment()
    gpu = SimulatedGPU(env, A100_80GB)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    llm = LlamaInference(LLAMA2_7B, FP16)

    def client_proc(env, client):
        for _ in range(tokens):
            yield client.launch(llm.decode_kernel())
            yield env.timeout(llm.host_seconds_per_token)

    procs = [
        env.process(client_proc(env, daemon.client(f"c{i}")))
        for i in range(n_clients)
    ]
    env.run(until=env.all_of(procs))
    return gpu.kernels_completed


def test_gpu_allocator_throughput(benchmark):
    """4 MPS clients x 250 decode kernels through the roofline
    allocator and water-filler."""
    completed = benchmark(_gpu_decode_storm, 4, 250)
    assert completed == 1000
