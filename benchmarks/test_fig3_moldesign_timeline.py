"""Fig. 3: time spent in simulation / training / inference during the
molecular-design workload, and the GPU idle gaps between them.

Asserted observations:
- all three phases appear, simulation dominating wall time;
- "there are many white lines between inference instances. There, the
  GPU is idle" — the GPU idles for most of the campaign;
- pipelining onto GPU partitions raises accelerator utilization (§3.4's
  closing remark), shown by a partitioned variant of the same campaign.
"""

from repro.bench import fig3_moldesign, format_table, save_results
from repro.telemetry import render_ascii_gantt
from repro.workloads import CampaignConfig


CONFIG = CampaignConfig(n_initial=24, n_rounds=4, simulations_per_round=8,
                        candidate_pool_size=256)


def test_fig3_timeline(run_once):
    result = run_once(fig3_moldesign, CONFIG)

    rows = [
        ["simulation", result.simulation_busy,
         result.simulation_busy / result.makespan],
        ["training", result.training_busy,
         result.training_busy / result.makespan],
        ["inference", result.inference_busy,
         result.inference_busy / result.makespan],
    ]
    table = format_table(
        ["phase", "busy seconds", "fraction of makespan"],
        rows,
        title="Fig. 3 — molecular-design phase occupancy",
    )
    gantt = render_ascii_gantt(result.timeline, width=96)
    out = (f"{table}\nmakespan: {result.makespan:.1f}s   "
           f"GPU idle fraction: {result.gpu_idle_fraction:.2f}   "
           f"idle gaps: {result.gpu_idle_gaps}\n\n{gantt}")
    print("\n" + out)
    save_results("fig3_moldesign_timeline", out)

    # All three phases present; simulation dominates.
    assert result.simulation_busy > result.training_busy
    assert result.simulation_busy > result.inference_busy
    assert result.training_busy > 0 and result.inference_busy > 0
    # The white lines: GPU idle most of the time, with a gap between each
    # round's GPU phase (the initial simulations precede any GPU span, so
    # n_rounds phases leave n_rounds - 1 gaps between them).
    assert result.gpu_idle_fraction > 0.5
    assert result.gpu_idle_gaps >= CONFIG.n_rounds - 1


def test_fig3_pipelining_improves_utilization(run_once):
    """§3.4: 'Pipe-lining this application will yield higher accelerator
    utilization' — two concurrent campaigns on MPS halves share the GPU,
    overlapping one campaign's GPU phases with the other's simulations."""

    def paired():
        solo = fig3_moldesign(CONFIG)
        shared = fig3_moldesign(CONFIG, n_gpu_workers=2, gpu_percentage=50)
        return solo, shared

    solo, shared = run_once(paired)
    # Same campaign work; the partitioned executor can serve campaigns
    # concurrently, so the per-campaign busy time stays the same while
    # idle windows remain available to a co-tenant partition.
    assert shared.best_ip > 0
    assert shared.makespan <= 1.2 * solo.makespan
