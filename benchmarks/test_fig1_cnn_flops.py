"""Fig. 1: per-convolution-layer FLOPs of popular CNNs.

Regenerates the series the paper plots to show that "the compute
requirement changes very rapidly" from layer to layer, and that the
variability persists across batch sizes.
"""

from repro.bench import fig1_layer_flops, format_table, save_results
from repro.workloads import CNN_ZOO


def test_fig1_layer_flops(run_once):
    data = run_once(fig1_layer_flops, ("alexnet", "vgg16", "resnet50",
                                       "resnet101"), (1, 8, 32))

    rows = []
    for (model, batch), series in sorted(data.items()):
        flops = [f for _, f in series]
        rows.append([
            model,
            batch,
            len(series),
            min(flops) / 1e6,
            max(flops) / 1e6,
            sum(flops) / 1e9,
            max(flops) / min(flops),
        ])
    table = format_table(
        ["model", "batch", "conv layers", "min MFLOP", "max MFLOP",
         "total GFLOP", "max/min"],
        rows,
        title="Fig. 1 — per-conv-layer FLOP variation",
    )

    # The figure itself: one line per layer for batch size 1.
    series_lines = ["", "per-layer series (batch=1, GFLOPs):"]
    for (model, batch), series in sorted(data.items()):
        if batch != 1:
            continue
        values = " ".join(f"{f / 1e9:.3f}" for _, f in series)
        series_lines.append(f"{model}: {values}")
    out = table + "\n" + "\n".join(series_lines)
    print("\n" + out)
    save_results("fig1_cnn_flops", out)

    # Paper claims encoded as assertions:
    for (model, batch), series in data.items():
        flops = [f for _, f in series]
        variation = max(flops) / min(flops)
        assert variation > 3.0, (model, batch)  # "changes very rapidly"
    # "Even with different batch sizes, this variability remains."
    for model in ("alexnet", "vgg16", "resnet50", "resnet101"):
        v1 = _variation(data[(model, 1)])
        v32 = _variation(data[(model, 32)])
        assert abs(v1 - v32) / v1 < 1e-9


def _variation(series):
    flops = [f for _, f in series]
    return max(flops) / min(flops)


def test_fig1_extended_zoo(run_once):
    """Extended check over the whole zoo (beyond the four plotted)."""
    names = tuple(CNN_ZOO)
    data = run_once(fig1_layer_flops, names, (1,))
    for (model, _), series in data.items():
        assert len(series) >= 5, model
        assert all(f > 0 for _, f in series), model
