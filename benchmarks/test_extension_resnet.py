"""Extension study: ResNet inference under GPU partitioning.

The paper names ResNet-50/101 among its evaluated applications (§3.3)
but prints no ResNet figure.  This bench fills that gap with the same
methodology as Figs. 4/5: image-classification services multiplexed on
one A100 under time-sharing vs MPS, across batch sizes.

Expected shape (from §3.4's Fig. 1 discussion): batch-1 inference leaves
most of the GPU idle, so partitioning multiplies throughput almost
linearly; batch-32 inference can nearly fill the device, so partitioning
buys much less — the right-sizing knee moves with batch size.
"""

import pytest

from repro.bench import format_table, save_results
from repro.gpu import A100_40GB, CudaStream, MpsControlDaemon, SimulatedGPU
from repro.sim import Environment
from repro.workloads import RESNET50

N_SERVICES = 4
INFERENCES_EACH = 25
HOST_GAP = 0.004  # per-inference host-side time (input decode, dispatch)


def _run(mode: str, batch: int) -> float:
    """Total time for 4 services to finish their inference quota."""
    env = Environment()
    gpu = SimulatedGPU(env, A100_40GB)
    if mode == "mps":
        daemon = MpsControlDaemon(gpu)
        daemon.start()
        clients = [daemon.client(f"svc{i}", active_thread_percentage=25)
                   for i in range(N_SERVICES)]
    elif mode == "timeshare":
        clients = [gpu.timeshare_client(f"svc{i}")
                   for i in range(N_SERVICES)]
    else:  # single: one service does all the work alone
        clients = [gpu.timeshare_client("solo")]

    group = RESNET50.inference_kernels(batch_size=batch)
    quota = (INFERENCES_EACH * N_SERVICES // len(clients))

    def service(env, client):
        stream = CudaStream(client)
        for _ in range(quota):
            yield stream.launch_group(group)
            yield env.timeout(HOST_GAP)

    procs = [env.process(service(env, c)) for c in clients]
    env.run(until=env.all_of(procs))
    return env.now


def test_resnet_partitioning(run_once):
    def study():
        out = {}
        for batch in (1, 8, 32):
            single = _run("single", batch)
            out[batch] = {
                "single": single,
                "timeshare": _run("timeshare", batch),
                "mps": _run("mps", batch),
            }
        return out

    results = run_once(study)
    rows = []
    for batch, modes in sorted(results.items()):
        rows.append([
            batch,
            modes["single"],
            modes["timeshare"] / modes["single"],
            modes["mps"] / modes["single"],
            modes["single"] / modes["mps"],
        ])
    table = format_table(
        ["batch", "single s", "timeshare vs single", "MPS vs single",
         "MPS speedup"],
        rows,
        title=(f"Extension — {N_SERVICES} ResNet-50 services x "
               f"{INFERENCES_EACH} inferences (A100-40GB)"),
    )
    print("\n" + table)
    save_results("extension_resnet", table)

    # Batch-1: small kernels -> MPS multiplexing wins big.
    assert results[1]["mps"] < 0.55 * results[1]["single"]
    # The benefit shrinks as the batch fills the GPU (§3.4).
    gain = {b: results[b]["single"] / results[b]["mps"]
            for b in (1, 8, 32)}
    assert gain[1] > gain[8] > gain[32]
    assert gain[32] < 1.5
    # MPS never loses to time-sharing.
    for batch, modes in results.items():
        assert modes["mps"] <= modes["timeshare"] * (1 + 1e-9), batch
