"""Extension study: serving a bursty arrival trace.

FaaS load is bursty; the provisioning question behind the paper's whole
agenda is how to keep latency flat through flash crowds without
dedicating a GPU per function.  We replay the same Markov-modulated
bursty trace against three deployments of LLaMa-2 7B on one A100-80GB:

- one replica on the whole GPU, batch 1 (the default);
- four MPS 25% partitions, batch 1 each (the paper's approach);
- one replica on the whole GPU with dynamic batching <= 8.
"""

import numpy as np

from repro.bench import format_table, save_results
from repro.gpu import A100_80GB, MpsControlDaemon, SimulatedGPU
from repro.sim import Environment
from repro.workloads import (
    LLAMA2_7B,
    InferenceRuntime,
    InferenceServer,
    LlamaInference,
    bursty_trace,
    trace_stats,
)

FP16 = InferenceRuntime(dtype_bytes=2)
HORIZON = 600.0
N_TOKENS = 20

#: Quiet baseline ~0.3 rps with 25 rps-scale bursts of ~15 s.
TRACE = bursty_trace(base_rate_rps=0.3, burst_rate_rps=6.0,
                     horizon=HORIZON, mean_quiet=120.0, mean_burst=15.0,
                     seed=11)


def _run(n_replicas: int, max_batch: int):
    env = Environment()
    gpu = SimulatedGPU(env, A100_80GB)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    llm = LlamaInference(LLAMA2_7B, FP16)
    pct = max(1, round(100 / n_replicas))
    servers = []
    for i in range(n_replicas):
        client = daemon.client(f"replica{i}", active_thread_percentage=pct)
        client.alloc(llm.memory_per_gpu)
        servers.append(InferenceServer(env, client, llm,
                                       max_batch_size=max_batch,
                                       batch_timeout=0.05))
    requests = []

    def feeder(env):
        last = 0.0
        for i, arrival in enumerate(TRACE):
            yield env.timeout(arrival - last)
            last = arrival
            # Shortest-queue replica gets the request.
            target = min(servers, key=lambda s: len(s._queue.items))
            requests.append(target.submit(N_TOKENS))

    env.process(feeder(env))
    env.run(until=HORIZON)
    env.run(until=env.all_of([r.done for r in requests]))
    latencies = np.array([r.latency for r in requests])
    return {
        "completed": len(requests),
        "p50": float(np.percentile(latencies, 50)),
        "p95": float(np.percentile(latencies, 95)),
        "max": float(latencies.max()),
        "drain": env.now - HORIZON,
        "mean_batch": float(np.mean([s.mean_batch_size for s in servers])),
    }


def test_bursty_trace_serving(run_once):
    def study():
        return {
            "1 replica, batch 1": _run(1, 1),
            "4 MPS partitions, batch 1": _run(4, 1),
            "1 replica, dynamic batch <=8": _run(1, 8),
        }

    results = run_once(study)
    stats = trace_stats(TRACE, HORIZON)
    rows = [[name, r["p50"], r["p95"], r["max"], r["mean_batch"]]
            for name, r in results.items()]
    table = format_table(
        ["deployment", "p50 s", "p95 s", "max s", "mean batch"],
        rows,
        title=(f"Extension — bursty trace ({stats.count} requests, mean "
               f"{stats.mean_rate:.2f} rps, peak {stats.peak_rate:.1f} rps)"),
    )
    print("\n" + table)
    save_results("extension_trace_serving", table)

    single = results["1 replica, batch 1"]
    part = results["4 MPS partitions, batch 1"]
    batched = results["1 replica, dynamic batch <=8"]

    # Every request completed in all deployments.
    assert single["completed"] == part["completed"] == batched["completed"]
    # Bursts crush the unbatched single replica's tail.
    assert single["p95"] > 2 * part["p95"]
    assert single["p95"] > 2 * batched["p95"]
    # Batching forms real batches during bursts.
    assert batched["mean_batch"] > 1.5
