"""Extension study: serving a bursty arrival trace.

FaaS load is bursty; the provisioning question behind the paper's whole
agenda is how to keep latency flat through flash crowds without
dedicating a GPU per function.  The study itself lives in
:mod:`repro.bench.extension_experiments` (so the CLI and sweep runner
can execute it); this module replays it and asserts the findings: the
same Markov-modulated bursty trace against three deployments of
LLaMa-2 7B on one A100-80GB:

- one replica on the whole GPU, batch 1 (the default);
- four MPS 25% partitions, batch 1 each (the paper's approach);
- one replica on the whole GPU with dynamic batching <= 8.
"""

from repro.bench import format_table, save_results, trace_serving_study
from repro.workloads import bursty_trace, trace_stats

HORIZON = 600.0
TRACE_SEED = 11


def test_bursty_trace_serving(run_once):
    results = run_once(trace_serving_study, horizon=HORIZON,
                       trace_seed=TRACE_SEED)

    trace = bursty_trace(base_rate_rps=0.3, burst_rate_rps=6.0,
                         horizon=HORIZON, mean_quiet=120.0, mean_burst=15.0,
                         seed=TRACE_SEED)
    stats = trace_stats(trace, HORIZON)
    rows = [[name, r["p50"], r["p95"], r["max"], r["mean_batch"]]
            for name, r in results.items()]
    table = format_table(
        ["deployment", "p50 s", "p95 s", "max s", "mean batch"],
        rows,
        title=(f"Extension — bursty trace ({stats.count} requests, mean "
               f"{stats.mean_rate:.2f} rps, peak {stats.peak_rate:.1f} rps)"),
    )
    print("\n" + table)
    save_results("extension_trace_serving", table)

    single = results["1 replica, batch 1"]
    part = results["4 MPS partitions, batch 1"]
    batched = results["1 replica, dynamic batch <=8"]

    # Every request completed in all deployments.
    assert single["completed"] == part["completed"] == batched["completed"]
    # Bursts crush the unbatched single replica's tail.
    assert single["p95"] > 2 * part["p95"]
    assert single["p95"] > 2 * batched["p95"]
    # Batching forms real batches during bursts.
    assert batched["mean_batch"] > 1.5
