"""Extension study: dynamic batching vs GPU partitioning.

Not a paper figure — an ablation the paper's design space implies.
Figs. 4/5 raise utilization by giving each client its own partition; the
serving literature raises it by batching requests into one model
instance.  This bench runs the same offered load both ways on the same
simulated A100-80GB:

- **partitioned**: 4 MPS partitions at 25%, one model replica each,
  batch size 1 (the paper's best Fig. 4 configuration);
- **batched**: 1 model replica on the whole GPU with dynamic batching
  (max batch 4).

Expected outcome (and why): batching amortizes the *weight traffic* of a
decode step across the batch, exactly the memory-bound component that
bandwidth contention makes expensive under 4-way MPS — so a single
batched replica sustains higher throughput, while partitioning keeps
per-request latency isolation.  Both beat one unbatched replica.
"""

import numpy as np

from repro.bench import format_table, save_results
from repro.gpu import A100_80GB, MpsControlDaemon, SimulatedGPU
from repro.sim import Environment
from repro.workloads import (
    LLAMA2_7B,
    InferenceRuntime,
    InferenceServer,
    LlamaInference,
    OpenLoopClient,
)

FP16 = InferenceRuntime(dtype_bytes=2)
N_REQUESTS = 80
RATE_RPS = 2.0  # heavy offered load, split across replicas


def _run_configuration(n_replicas: int, max_batch: int,
                       percentage: int | None):
    env = Environment()
    gpu = SimulatedGPU(env, A100_80GB)
    daemon = MpsControlDaemon(gpu)
    daemon.start()
    llm = LlamaInference(LLAMA2_7B, FP16)
    servers = []
    for i in range(n_replicas):
        pct = percentage if percentage is not None else 100
        client = daemon.client(f"replica{i}", active_thread_percentage=pct)
        client.alloc(llm.memory_per_gpu)
        servers.append(InferenceServer(env, client, llm,
                                       max_batch_size=max_batch,
                                       batch_timeout=0.05))
    rng = np.random.default_rng(42)
    per_replica = N_REQUESTS // n_replicas
    clients = [
        OpenLoopClient(env, server, rate_rps=RATE_RPS / n_replicas,
                       n_requests=per_replica, n_tokens=20, rng=rng)
        for server in servers
    ]
    env.run(until=env.all_of([c.done for c in clients]))
    latencies = [r.latency for c in clients for r in c.requests]
    total = env.now
    return {
        "total_seconds": total,
        "mean_latency": float(np.mean(latencies)),
        "p95_latency": float(np.percentile(latencies, 95)),
        "throughput": (per_replica * n_replicas) / total,
        "mean_batch": float(np.mean([s.mean_batch_size for s in servers])),
    }


def test_batching_vs_partitioning(run_once):
    def study():
        return {
            "1 replica, batch 1 (baseline)": _run_configuration(1, 1, None),
            "4 MPS partitions, batch 1 (Fig. 4 best)": _run_configuration(
                4, 1, 25),
            "1 replica, dynamic batch <=4": _run_configuration(1, 4, None),
        }

    results = run_once(study)
    rows = [
        [name, r["total_seconds"], r["mean_latency"], r["p95_latency"],
         r["throughput"], r["mean_batch"]]
        for name, r in results.items()
    ]
    table = format_table(
        ["configuration", "total s", "mean lat s", "p95 lat s", "req/s",
         "mean batch"],
        rows,
        title=(f"Extension — batching vs partitioning "
               f"({N_REQUESTS} requests at {RATE_RPS} req/s offered)"),
    )
    print("\n" + table)
    save_results("extension_batching", table)

    base = results["1 replica, batch 1 (baseline)"]
    part = results["4 MPS partitions, batch 1 (Fig. 4 best)"]
    batched = results["1 replica, dynamic batch <=4"]

    # Both techniques beat the unbatched single replica under load.
    assert part.get("total_seconds") < base["total_seconds"]
    assert batched["total_seconds"] < base["total_seconds"]
    # Batching actually forms batches under this load.
    assert batched["mean_batch"] > 1.3
    # Batching amortizes weight reads: it at least matches partitioning's
    # throughput with a quarter of the model replicas (memory!).
    assert batched["throughput"] >= 0.9 * part["throughput"]
