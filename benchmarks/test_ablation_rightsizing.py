"""§7 ablation: right-sizing GPU partitions per workload.

The paper's second future-work direction: "a tool that will give hints on
what the expected GPU compute resources would be based on static analysis
of applications".  We right-size every evaluation workload and check the
recommendations against Fig. 2's knee and the §3.4 observations.
"""

from repro.bench import format_table, rightsizing_study, save_results
from repro.gpu import A100_40GB
from repro.partition import RuntimePredictor
from repro.workloads import LLAMA2_7B, InferenceRuntime, LlamaInference


def test_rightsizing_study(run_once):
    rows_data = run_once(rightsizing_study)

    rows = [
        [r.workload, r.knee_sms, f"{r.mps_percentage}%",
         r.mig_profile or "-", f"{r.latency_penalty_pct:.1f}%",
         f"{100 * r.freed_fraction:.0f}%"]
        for r in rows_data
    ]
    table = format_table(
        ["workload", "knee SMs", "MPS %", "MIG profile", "latency penalty",
         "GPU freed"],
        rows,
        title="§7 ablation — right-sized partitions (A100-40GB, 5% SLO)",
    )
    print("\n" + table)
    save_results("ablation_rightsizing", table)

    by_name = {r.workload: r for r in rows_data}
    # Fig. 2's knee: the fp32 LLaMa-2 7B decode needs only ~20-35 SMs.
    llama = by_name["llama2-7b fp32 decode"]
    assert 15 <= llama.knee_sms <= 40
    assert llama.freed_fraction > 0.6
    # Every recommendation honours the 5% SLO.
    for r in rows_data:
        assert r.latency_penalty_pct <= 5.0 + 1e-6, r.workload
    # Batch-32 CNN inference needs more of the GPU than batch-1 (§3.4).
    assert (by_name["resnet50 b32"].knee_sms
            >= by_name["resnet50 b1"].knee_sms)


def test_runtime_predictor_against_simulator(run_once):
    """Fit the §7 scaling-law predictor on a few profiled points and
    validate its predictions against the cost model elsewhere."""
    llm = LlamaInference(LLAMA2_7B, InferenceRuntime(dtype_bytes=4))
    fn = lambda sms: llm.completion_seconds(A100_40GB, sms)

    def fit_and_validate():
        predictor = RuntimePredictor()
        samples = [(s, fn(s)) for s in (4, 8, 16, 32, 64, 108)]
        rmse = predictor.fit(samples)
        errors = [abs(predictor.predict(s) - fn(s)) / fn(s)
                  for s in (6, 12, 24, 48, 96)]
        return predictor, rmse, max(errors)

    predictor, rmse, worst = run_once(fit_and_validate)
    table = format_table(
        ["quantity", "value"],
        [
            ["fit RMSE (s)", rmse],
            ["worst relative error", f"{100 * worst:.1f}%"],
            ["fitted saturation SMs", f"{predictor.saturation_sms:.0f}"],
            ["fitted serial floor (s)", predictor.serial_seconds],
            ["SM requirement (5% SLO)", predictor.sm_requirement(0.05)],
        ],
        title="§7 — runtime predictor fitted to profiled samples",
    )
    print("\n" + table)
    save_results("ablation_runtime_predictor", table)
    assert worst < 0.15
    assert 10 <= predictor.sm_requirement(0.05) <= 45
