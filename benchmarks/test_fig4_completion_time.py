"""Fig. 4: time to complete 100 LLaMa-2 text completions with 1-4
processes under time-sharing, MPS (equal GPU%), and MIG (the 3g/2g/1g
ladder), on one A100-80GB.

Asserted observations from §5.2:
- "any form of multiplexing, even time sharing decreases total task
  completion time";
- spatial multiplexing reduces completion time "by up to 60%" vs the
  single-process default -> 4-way MPS <= 0.45x the baseline;
- 4-way MPS throughput ~2.5x the one-model-at-a-time baseline;
- MPS ~= MIG at 2 processes; MPS clearly better at 3 (1/3 vs 2/7 of the
  GPU) and better at 4 (1/4 vs 1/7).
"""

import pytest

from repro.bench import fig4_fig5_sweep, format_table, save_results

N_COMPLETIONS = 100


def test_fig4_completion_time(run_once):
    results = run_once(fig4_fig5_sweep, n_completions=N_COMPLETIONS)
    base = results[("timeshare", 1)]

    rows = []
    for (mode, k), r in sorted(results.items()):
        rows.append([
            mode, k, r.total_seconds,
            r.total_seconds / base.total_seconds,
            r.throughput / base.throughput,
        ])
    table = format_table(
        ["mode", "processes", "total seconds", "vs 1-process",
         "throughput x"],
        rows,
        title=(f"Fig. 4 — time to finish {N_COMPLETIONS} LLaMa-2 7B "
               "completions (A100-80GB)"),
    )
    print("\n" + table)
    save_results("fig4_completion_time", table)

    # Every multiplexed configuration beats the single-process default.
    for (mode, k), r in results.items():
        if k > 1:
            assert r.total_seconds < base.total_seconds, (mode, k)

    # Headline: 4-way MPS cuts completion time by ~60% (2.5x throughput).
    mps4 = results[("mps", 4)]
    assert mps4.total_seconds < 0.45 * base.total_seconds
    assert mps4.throughput / base.throughput == pytest.approx(2.5, rel=0.1)

    # MPS vs MIG crossover structure.
    assert results[("mps", 2)].total_seconds == pytest.approx(
        results[("mig", 2)].total_seconds, rel=0.02)  # "similar time"
    assert results[("mps", 3)].total_seconds < \
        0.9 * results[("mig", 3)].total_seconds  # "much better"
    assert results[("mps", 4)].total_seconds < \
        results[("mig", 4)].total_seconds  # "slightly faster"

    # Spatial sharing beats time-sharing at every k > 2.
    for k in (3, 4):
        assert results[("mps", k)].total_seconds < \
            results[("timeshare", k)].total_seconds
