"""Extension study: Kubernetes GPU-sharing mechanisms vs the paper's
Parsl/MPS approach.

Quantifies the introduction's motivating claim — Kubernetes "only has
limited GPU sharing support" — by running the same workload (8 LLaMa-2
style inference bursts, each needing ~1/4 of an A100) under:

- the stock whole-GPU device plugin (one pod per GPU);
- the plugin's time-slicing config (shared, temporal, no isolation);
- the MIG device plugin (2g instances as extended resources);
- the paper's approach: Parsl HighThroughputExecutor with 4 MPS
  partitions at 25%.
"""

import pytest

from repro.bench import format_table, save_results
from repro.faas import (
    ColdStartModel,
    ComputeNode,
    Config,
    DataFlowKernel,
    HighThroughputExecutor,
    StaticProvider,
    gpu_app,
)
from repro.gpu import A100_80GB
from repro.k8s import (
    Cluster,
    MigDevicePlugin,
    Pod,
    PodPhase,
    ResourceSpec,
    TimeSlicingPlugin,
    WholeGpuPlugin,
)
from repro.sim import Environment
from repro.workloads import LLAMA2_7B, InferenceRuntime, LlamaInference

FP16 = InferenceRuntime(dtype_bytes=2)
N_PODS = 8
TOKENS_PER_POD = 40


def _pod_work(llm):
    def main(ctx):
        for _ in range(TOKENS_PER_POD):
            yield ctx.gpu.launch(llm.decode_kernel())
            yield ctx.env.timeout(llm.host_seconds_per_token)

    return main


def _run_k8s(plugin, gpu_request, mig_profiles=None):
    env = Environment()
    node = ComputeNode(env, cores=32, gpu_specs=[A100_80GB])
    if mig_profiles:
        mig = node.mig_manager(0)
        env.run(until=env.process(mig.enable()))
        for profile in mig_profiles:
            mig.create_instance(profile)
    cluster = Cluster(env, [node], plugin=plugin)
    llm = LlamaInference(LLAMA2_7B, FP16)
    t0 = env.now
    pods = [cluster.submit(Pod(
        f"infer{i}", ResourceSpec(cpu=1.0, extended=gpu_request),
        main=_pod_work(llm))) for i in range(N_PODS)]
    cluster.run_until_done()
    assert all(p.phase is PodPhase.SUCCEEDED for p in pods)
    return env.now - t0


def _run_parsl_mps():
    env = Environment()
    node = ComputeNode(env, cores=32, gpu_specs=[A100_80GB])
    node.start_mps()
    executor = HighThroughputExecutor(
        label="gpu", available_accelerators=["0"] * 4,
        gpu_percentage=[25] * 4, provider=StaticProvider([node]),
        cold_start=ColdStartModel(function_init_seconds=0.0,
                                  gpu_context_seconds=0.0))
    dfk = DataFlowKernel(Config(executors=[executor]), env=env)
    llm = LlamaInference(LLAMA2_7B, FP16)

    @gpu_app(dfk=dfk)
    def infer(ctx):
        for _ in range(TOKENS_PER_POD):
            yield ctx.launch(llm.decode_kernel())
            yield ctx.compute(llm.host_seconds_per_token)

    t0 = env.now
    dfk.wait([infer() for _ in range(N_PODS)])
    return env.now - t0


def test_k8s_sharing_mechanisms(run_once):
    def study():
        return {
            "k8s whole-GPU plugin (stock)": _run_k8s(
                WholeGpuPlugin(), {"nvidia.com/gpu": 1}),
            "k8s time-slicing plugin": _run_k8s(
                TimeSlicingPlugin(replicas=4), {"nvidia.com/gpu": 1}),
            "k8s MIG plugin (4x 1g.20gb)": _run_k8s(
                MigDevicePlugin(), {"nvidia.com/mig-1g.20gb": 1},
                mig_profiles=["1g.20gb"] * 4),
            "Parsl + MPS 25% x4 (the paper)": _run_parsl_mps(),
        }

    results = run_once(study)
    base = results["k8s whole-GPU plugin (stock)"]
    rows = [[name, seconds, seconds / base]
            for name, seconds in results.items()]
    table = format_table(
        ["mechanism", "makespan s", "vs whole-GPU"],
        rows,
        title=(f"Extension — {N_PODS} quarter-GPU inference pods on one "
               "A100-80GB"),
    )
    print("\n" + table)
    save_results("extension_k8s", table)

    whole = results["k8s whole-GPU plugin (stock)"]
    slicing = results["k8s time-slicing plugin"]
    mig = results["k8s MIG plugin (4x 1g.20gb)"]
    parsl = results["Parsl + MPS 25% x4 (the paper)"]

    # The stock plugin serialises everything: worst of the four.
    assert whole >= max(slicing, mig, parsl) - 1e-6
    # Spatial sharing (MIG or the paper's MPS) beats temporal slicing.
    assert parsl < slicing
    # And the paper's MPS beats the MIG plugin (finer partitions, shared
    # bandwidth) — the same Fig. 4 ordering, now via the orchestrator.
    assert parsl < mig
