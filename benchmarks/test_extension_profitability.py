"""Extension study: the abstract's profitability claim, in dollars.

"These accelerators are expensive to acquire and operate; consequently,
multiplexing them can increase their financial profitability."  We price
the Fig. 4 grid at an A100's on-demand rate and report $/1000
completions per mode and process count.
"""

from repro.bench import fig4_fig5_sweep, format_table, save_results
from repro.telemetry import GpuCostModel, cost_report

N_COMPLETIONS = 100


def test_profitability(run_once):
    def study():
        results = fig4_fig5_sweep(n_completions=N_COMPLETIONS)
        model = GpuCostModel()
        reports = {}
        for (mode, k), r in results.items():
            reports[(mode, k)] = cost_report(
                label=f"{mode}-{k}",
                makespan_seconds=r.total_seconds,
                completions=r.n_completions,
                mean_sm_utilization=1.0,  # rental view: whole device bills
                model=model,
            )
        return reports

    reports = run_once(study)
    base = reports[("timeshare", 1)]
    rows = []
    for (mode, k), report in sorted(reports.items()):
        rows.append([
            mode, k, report.total_usd, report.usd_per_1000,
            base.usd_per_1000 / report.usd_per_1000,
        ])
    table = format_table(
        ["mode", "processes", "run cost $", "$ per 1000 completions",
         "profitability x"],
        rows,
        title=(f"Extension — renting one A100-80GB at "
               f"${GpuCostModel().hourly_usd}/h, {N_COMPLETIONS} "
               "completions"),
    )
    print("\n" + table)
    save_results("extension_profitability", table)

    # Multiplexing multiplies profitability: cost per completion under
    # 4-way MPS is ~2.5x lower than one-model-at-a-time (the throughput
    # headline, restated in dollars).
    mps4 = reports[("mps", 4)]
    assert base.usd_per_1000 / mps4.usd_per_1000 > 2.2
    # Every multiplexed mode is more profitable than the single-process
    # default.
    for (mode, k), report in reports.items():
        if k > 1:
            assert report.usd_per_1000 < base.usd_per_1000, (mode, k)
    # And MPS is the most profitable at every k.
    for k in (2, 3, 4):
        assert (reports[("mps", k)].usd_per_1000
                <= reports[("mig", k)].usd_per_1000 + 1e-9)
        assert (reports[("mps", k)].usd_per_1000
                <= reports[("timeshare", k)].usd_per_1000 + 1e-9)
