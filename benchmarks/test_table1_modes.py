"""Table 1: comparison of GPU multiplexing techniques.

The qualitative columns come from the capability registry; the GPU
utilization column is *measured* by running the same 4-client LLaMa-2
decode workload under every technique on the simulator.

Asserted ordering (Table 1's utilization column):
time-sharing < vGPU / MIG / MPS-with-percentage <= default MPS.
"""

from repro.bench import format_table, save_results, table1_comparison
from repro.gpu import MultiplexMode


def test_table1_modes(run_once):
    rows_data = run_once(table1_comparison, 4)

    rows = []
    for row in rows_data:
        rows.append([
            row.mode.value,
            f"{row.measured_utilization:.2f}",
            f"{row.measured_throughput:.1f}",
            row.utilization_class,
            row.amd_equivalent,
            row.reconfiguration,
            row.software_required,
        ])
    table = format_table(
        ["technique", "measured SM util", "tokens/s", "paper class",
         "AMD equivalent", "reconfiguration", "software"],
        rows,
        title="Table 1 — GPU multiplexing techniques (4 LLaMa-2 clients)",
    )
    print("\n" + table)
    save_results("table1_modes", table)

    by_mode = {r.mode: r for r in rows_data}
    ts = by_mode[MultiplexMode.TIME_SHARING]
    mps = by_mode[MultiplexMode.MPS_DEFAULT]
    mps_pct = by_mode[MultiplexMode.MPS_PERCENTAGE]
    mig = by_mode[MultiplexMode.MIG]
    vgpu = by_mode[MultiplexMode.VGPU]

    # "Low" for time-sharing; "Highest" for default MPS.
    assert ts.measured_utilization < mps.measured_utilization
    assert ts.measured_throughput < mps.measured_throughput
    # Every spatial technique utilises the device better than
    # time-sharing (the Table 1 utilization column); MPS variants also
    # win on throughput, while 4-way MIG's fixed 1/7 compute slices can
    # cost throughput — the very granularity limitation §5.2 discusses.
    for spatial in (mps, mps_pct, mig):
        assert spatial.measured_utilization > ts.measured_utilization
    for mps_variant in (mps, mps_pct):
        assert mps_variant.measured_throughput > ts.measured_throughput
    # MIG utilization "High (lower than CUDA MPS)".
    assert mig.measured_throughput <= mps.measured_throughput * (1 + 1e-9)
    # vGPU multiplexes at VM level: no better than MPS.
    assert vgpu.measured_throughput <= mps.measured_throughput * (1 + 1e-9)
    # Static columns present for every row.
    for row in rows_data:
        assert row.description and row.drawbacks
