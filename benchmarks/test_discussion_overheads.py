"""§6 Discussion: execution overheads.

Regenerates the cold-start decomposition (function init, GPU context
init, model load) and the repartitioning cost comparison.

Asserted observations:
- "the loading time of LLaMa 2 13B can take up to 10 seconds";
- MPS repartitioning = process restart = "10-20 seconds of setup time"
  for LLaMa-class models;
- MIG reconfiguration "adds even more (1-2 seconds) overhead than MPS"
  and "interferes with other applications running on the GPU".
"""

from repro.bench import discussion_overheads, format_table, save_results


def test_discussion_overheads(run_once):
    report = run_once(discussion_overheads)

    rows = [
        [b.model, b.dtype, b.function_init_seconds, b.gpu_context_seconds,
         b.model_load_seconds, b.total_seconds]
        for b in report.cold_starts
    ]
    cold_table = format_table(
        ["model", "dtype", "function init s", "GPU context s",
         "model load s", "total s"],
        rows,
        title="§6 — cold start decomposition",
    )
    reconf_table = format_table(
        ["operation", "seconds", "disturbs co-tenants"],
        [
            ["MPS repartition (restart + reload)",
             report.mps_repartition_seconds, "no"],
            ["MPS repartition with weight cache",
             report.mps_repartition_cached_seconds, "no"],
            ["MIG repartition (3 co-tenants)",
             report.mig_repartition_seconds,
             "yes" if report.mig_disturbs_cotenants else "no"],
        ],
        title="§6 — repartitioning cost",
    )
    out = cold_table + "\n\n" + reconf_table + (
        f"\nMIG extra overhead vs MPS (no co-tenants): "
        f"{report.mig_extra_over_mps_seconds:.2f}s (paper: 1-2 s)")
    print("\n" + out)
    save_results("discussion_overheads", out)

    loads = {(b.model, b.dtype): b.model_load_seconds
             for b in report.cold_starts}
    # 13B fp16 load ~10 s (the §6 measurement).
    assert 8.0 < loads[("llama2-13b", "fp16")] < 12.0
    # MPS repartition lands in the 10-20 s band.
    assert 5.0 < report.mps_repartition_seconds < 25.0
    # MIG adds 1-2 s beyond MPS even with nobody else on the GPU.
    assert 0.5 < report.mig_extra_over_mps_seconds < 3.0
    # And with co-tenants it disturbs them and costs much more.
    assert report.mig_disturbs_cotenants
    assert report.mig_repartition_seconds > 2 * report.mps_repartition_seconds
    # The weight cache collapses the MPS restart to a few seconds (§7).
    assert report.mps_repartition_cached_seconds < \
        0.4 * report.mps_repartition_seconds
