"""Extension study: demand-driven partition autoscaling (§7 realised).

The paper's closing future-work goal — "change GPU resources depending
on demand" — run end to end: two LLaMa-2 serving functions share one
A100 while their request rates swap over time.  We compare a static
50/50 split against the autoscaler (with the §7 weight cache enabled so
repartitions are cheap) on SLO attainment.
"""

from repro.bench import format_table, save_results
from repro.faas import ColdStartModel, ComputeNode
from repro.gpu import A100_80GB
from repro.partition import (
    ManagedFunction,
    PartitionAutoscaler,
    ReconfigurationPlanner,
    WeightCache,
)
from repro.sim import Environment
from repro.workloads import LLAMA2_7B, InferenceRuntime, LlamaInference

FP16 = InferenceRuntime(dtype_bytes=2)

#: Demand schedule: (time, fn0 rps, fn1 rps) — load swaps at t=600.
#: Rates are chosen so the hot function needs ~40% of the GPU to stay
#: stable under its SLO while the cold one needs ~20% (one 20-token
#: completion at the plateau takes ~1.2 s, so 0.5 req/s is heavy load).
SCHEDULE = [(0.0, 0.5, 0.05), (600.0, 0.05, 0.5)]
HORIZON = 1200.0
SLO = 2.2  # seconds per 20-token completion


def _latency_fn(llm):
    return lambda sms: llm.completion_seconds(A100_80GB, sms)


def _run(autoscale: bool):
    env = Environment()
    node = ComputeNode(env, cores=8, gpu_specs=[A100_80GB])
    node.start_mps()
    node.weight_cache = WeightCache()
    llm = LlamaInference(LLAMA2_7B, FP16)
    functions = []
    for i in range(2):
        client = node.mps_daemons[0].client(f"fn{i}",
                                            active_thread_percentage=50)
        node.weight_cache.acquire(client, llm.spec.name, llm.memory_per_gpu)
        functions.append(ManagedFunction(
            name=f"fn{i}", client=client, latency_fn=_latency_fn(llm),
            slo_seconds=SLO, model_key=llm.spec.name,
            model_bytes=llm.memory_per_gpu,
            model_load_seconds=llm.load_seconds))
    planner = ReconfigurationPlanner(A100_80GB, ColdStartModel())
    scaler = PartitionAutoscaler(
        node, functions, planner=planner, interval_seconds=30.0,
        cooldown_seconds=60.0, change_threshold_pct=8)

    share_log = []

    def demand_driver(env):
        for when, r0, r1 in SCHEDULE:
            if when > env.now:
                yield env.timeout(when - env.now)
            scaler.set_demand("fn0", r0)
            scaler.set_demand("fn1", r1)
        while env.now < HORIZON:
            yield env.timeout(30.0)
            share_log.append((env.now, scaler.current_percentages()))

    env.process(demand_driver(env))
    if autoscale:
        scaler.start()
    env.run(until=HORIZON)
    return scaler, share_log


def test_autoscaler_tracks_demand(run_once):
    def study():
        static, _ = _run(autoscale=False)
        dynamic, log = _run(autoscale=True)
        return static, dynamic, log

    static, dynamic, log = run_once(study)

    rows = []
    for name, scaler in (("static 50/50", static), ("autoscaler", dynamic)):
        pct = scaler.current_percentages()
        rows.append([name, pct["fn0"], pct["fn1"],
                     scaler.reconfigurations,
                     scaler.reconfiguration_downtime])
    table = format_table(
        ["policy", "final fn0 %", "final fn1 %", "repartitions",
         "downtime s"],
        rows,
        title="Extension — demand swap at t=600s (fn0: 0.5->0.05 rps, "
              "fn1: 0.05->0.5 rps)",
    )
    print("\n" + table)
    save_results("extension_autoscaler", table)

    # The static split never changes; the autoscaler follows the demand.
    assert static.reconfigurations == 0
    assert dynamic.reconfigurations >= 2
    final = dynamic.current_percentages()
    # After the swap, fn1 (now hot) holds the larger share.
    assert final["fn1"] > final["fn0"]
    # Repartitions were cheap thanks to the weight cache: downtime per
    # repartition is the restart cost, not a model reload.
    per = dynamic.reconfiguration_downtime / dynamic.reconfigurations
    assert per < 4.0
