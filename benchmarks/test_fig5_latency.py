"""Fig. 5: average LLaMa-2 inference latency under default time-sharing,
MPS, and MIG as the process count grows.

Asserted observations from §5.2:
- time-sharing latency "increases rapidly" with the number of processes
  (kernels from different models interleave);
- MPS and MIG show "a slower increase in latency";
- at 4 processes, spatial sharing's latency is well below time-sharing
  (the paper reports 44% lower; see EXPERIMENTS.md for the measured gap);
- isolation: an application in one MPS/MIG partition does not blow up
  another's latency.
"""

import pytest

from repro.bench import fig4_fig5_sweep, format_table, save_results
from repro.telemetry import summarize

N_COMPLETIONS = 100


def test_fig5_latency(run_once):
    results = run_once(fig4_fig5_sweep, n_completions=N_COMPLETIONS)
    base = results[("timeshare", 1)]

    rows = []
    for (mode, k), r in sorted(results.items()):
        stats = summarize(r.latencies)
        rows.append([mode, k, stats.mean, stats.p95,
                     stats.mean / base.mean_latency])
    table = format_table(
        ["mode", "processes", "mean latency s", "p95 latency s",
         "vs 1-process"],
        rows,
        title="Fig. 5 — average LLaMa-2 inference latency (A100-80GB)",
    )
    print("\n" + table)
    save_results("fig5_latency", table)

    ts = {k: results[("timeshare", k)].mean_latency for k in (1, 2, 3, 4)}
    mps = {k: results[("mps", k)].mean_latency for k in (1, 2, 3, 4)}
    mig = {k: results[("mig", k)].mean_latency for k in (1, 2, 3, 4)}

    # Time-sharing latency grows rapidly and monotonically.
    assert ts[4] > ts[3] > ts[2] > ts[1]
    assert ts[4] > 2.0 * ts[1]

    # Spatial modes grow strictly slower than time-sharing.
    assert mps[4] / mps[1] < ts[4] / ts[1]
    assert mig[4] / mig[1] <= ts[4] / ts[1]

    # At 4 processes MPS latency sits clearly below time-sharing.
    assert mps[4] < 0.85 * ts[4]

    # Latency ordering at every k: MPS <= MIG <= time-sharing.
    for k in (2, 3, 4):
        assert mps[k] <= mig[k] * (1 + 1e-9), k
        assert mig[k] <= ts[k] * (1 + 1e-6), k


def test_fig5_latency_distribution_is_tight(run_once):
    """Within one spatial configuration, per-completion latencies are
    stable (isolated partitions do not interfere)."""
    results = run_once(fig4_fig5_sweep, process_counts=(4,), modes=("mps",
                                                                    "mig"),
                       n_completions=40)
    for r in results.values():
        stats = summarize(r.latencies)
        assert stats.maximum < 1.2 * stats.minimum, r.mode
