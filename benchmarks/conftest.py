"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures.  The
simulations are deterministic, so each experiment runs once
(``benchmark.pedantic(rounds=1)``) — pytest-benchmark records the wall
time of the experiment itself, while the paper-style output table is
printed and saved under ``results/``.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
