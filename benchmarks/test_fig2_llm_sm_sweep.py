"""Fig. 2: LLaMa-2 7B/13B inference time vs number of SMs (MPS GPU%).

The paper's observations, asserted below:
- GPU inference is ~40x faster than CPU (180 s / 360 s CPU anchors);
- latency falls steeply at small SM counts;
- latency stops improving beyond roughly 20-30 SMs (the plateau that
  motivates fine-grained partitioning);
- 13B on two A100s is roughly twice the 7B latency.
"""

import pytest

from repro.bench import fig2_sm_sweep, format_table, save_results
from repro.gpu import A100_40GB
from repro.workloads import LLAMA2_7B, LLAMA2_13B, InferenceRuntime, LlamaInference

FP32 = InferenceRuntime(dtype_bytes=4)


def test_fig2_sm_sweep(run_once):
    sweep = run_once(fig2_sm_sweep, tuple(range(5, 101, 5)))

    llm7 = LlamaInference(LLAMA2_7B, FP32)
    llm13 = LlamaInference(LLAMA2_13B, FP32, n_gpus=2)
    cpu7 = llm7.cpu_completion_seconds(A100_40GB)
    cpu13 = 2 * cpu7  # the paper reports 180 s and 360 s

    rows = []
    for p7, p13 in zip(sweep["llama2-7b"], sweep["llama2-13b"]):
        rows.append([p7.mps_percentage, p7.sms, p7.completion_seconds,
                     p13.completion_seconds])
    table = format_table(
        ["MPS %", "SMs", "7b seconds (1xA100)", "13b seconds (2xA100)"],
        rows,
        title="Fig. 2 — inference time of one 20-token completion vs SMs",
    )
    table += (f"\nCPU baseline: 7b={cpu7:.1f}s 13b={cpu13:.1f}s "
              f"(paper: 180 s / 360 s, ~40x slower than full GPU)")
    print("\n" + table)
    save_results("fig2_llm_sm_sweep", table)

    seven = {p.sms: p.completion_seconds for p in sweep["llama2-7b"]}
    full = seven[max(seven)]
    smallest = seven[min(seven)]

    # Steep improvement from few SMs to the plateau.
    assert smallest > 2.5 * full
    # Plateau: past ~30 SMs adding SMs does not help materially.
    for sms, seconds in seven.items():
        if sms >= 33:
            assert seconds <= 1.05 * full
    # 40x CPU/GPU gap.
    assert cpu7 / full == pytest.approx(40.0, rel=0.05)
    # 13B ~2x slower than 7B at every allocation.
    thirteen = {p.sms: p.completion_seconds for p in sweep["llama2-13b"]}
    ratio = thirteen[max(thirteen)] / full
    assert 1.3 < ratio < 3.0


def test_fig2_monotonicity(run_once):
    """Latency never increases when SMs are added (sanity of the curve)."""
    sweep = run_once(fig2_sm_sweep, tuple(range(10, 101, 10)))
    for series in sweep.values():
        ordered = sorted(series, key=lambda p: p.sms)
        for a, b in zip(ordered, ordered[1:]):
            assert b.completion_seconds <= a.completion_seconds + 1e-9
