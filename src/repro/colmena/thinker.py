"""The Colmena Thinker: concurrent decision-making agents.

A Thinker subclass declares *agents* — generator methods decorated with
:func:`agent` — that run as concurrent simulation processes.  Agents
typically pair up: one submits tasks when capacity is available, another
consumes results and updates shared state.  That overlap (submit more
simulations while training runs) is exactly the pipelining §3.4 says
"will yield higher accelerator utilization".
"""

from __future__ import annotations

from typing import Callable

from repro.sim.core import Environment, Event
from repro.colmena.queues import ColmenaQueues

__all__ = ["Thinker", "agent"]

_AGENT_FLAG = "_colmena_agent"


def agent(fn: Callable) -> Callable:
    """Mark a Thinker generator method as an agent process."""
    import inspect

    if not inspect.isgeneratorfunction(fn):
        raise TypeError(
            f"@agent method {fn.__name__!r} must be a generator function"
        )
    setattr(fn, _AGENT_FLAG, True)
    return fn


class Thinker:
    """Base class: collects ``@agent`` methods and runs them as processes.

    The thinker is *done* when every agent returns (or when
    :meth:`set_done` is called — agents should check :attr:`done` in
    their loops, mirroring Colmena's ``done`` event).
    """

    def __init__(self, queues: ColmenaQueues):
        self.queues = queues
        self.env: Environment = queues.env
        self.done = False
        self._agents = [
            getattr(self, name)
            for name in dir(type(self))
            if getattr(getattr(type(self), name, None), _AGENT_FLAG, False)
        ]
        if not self._agents:
            raise TypeError(
                f"{type(self).__name__} declares no @agent methods"
            )
        self._processes: list = []

    def start(self) -> Event:
        """Launch every agent; returns an event firing when all finish."""
        if self._processes:
            raise RuntimeError("thinker already started")
        self._processes = [self.env.process(fn()) for fn in self._agents]
        return self.env.all_of(self._processes)

    def run_to_completion(self) -> None:
        """Start (if needed) and run the simulation until agents finish."""
        condition = self.start() if not self._processes \
            else self.env.all_of(self._processes)
        self.env.run(until=condition)

    def set_done(self) -> None:
        """Signal agents (which must poll :attr:`done`) to wind down."""
        self.done = True

    @property
    def agent_count(self) -> int:
        return len(self._agents)
