"""Colmena data model: the Result record that travels the queues."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["ColmenaResult"]

_result_ids = itertools.count()


@dataclass
class ColmenaResult:
    """One method invocation's record, timestamped at every hop.

    Mirrors Colmena's ``Result`` object: the thinker reads ``value`` on
    success (or ``failure`` otherwise) and the timestamps expose the
    queueing/compute breakdown the framework is instrumented for.
    """

    method: str
    topic: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    rid: int = field(default_factory=lambda: next(_result_ids))
    #: Set by the queues/server as the task moves through the system.
    time_created: Optional[float] = None
    time_started: Optional[float] = None
    time_completed: Optional[float] = None
    time_returned: Optional[float] = None
    value: Any = None
    failure: Optional[BaseException] = None

    @property
    def success(self) -> bool:
        return self.time_completed is not None and self.failure is None

    @property
    def queue_seconds(self) -> Optional[float]:
        if self.time_created is None or self.time_started is None:
            return None
        return self.time_started - self.time_created

    @property
    def compute_seconds(self) -> Optional[float]:
        if self.time_started is None or self.time_completed is None:
            return None
        return self.time_completed - self.time_started
