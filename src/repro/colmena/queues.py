"""Topic-routed request/result queues between Thinker and Task Server."""

from __future__ import annotations

from typing import Any, Iterable

from repro.sim.core import Environment, Event
from repro.sim.resources import Store
from repro.colmena.models import ColmenaResult

__all__ = ["ColmenaQueues"]


class ColmenaQueues:
    """One request queue plus per-topic result queues.

    The thinker calls :meth:`send_inputs` (non-blocking) and yields
    :meth:`get_result` for a topic; the task server drains
    :meth:`get_task` and pushes through :meth:`send_result`.
    """

    def __init__(self, env: Environment, topics: Iterable[str]):
        self.env = env
        self.topics = tuple(topics)
        if not self.topics:
            raise ValueError("need at least one topic")
        if len(set(self.topics)) != len(self.topics):
            raise ValueError("duplicate topics")
        self._requests = Store(env, name="colmena-requests")
        self._results = {t: Store(env, name=f"colmena-results-{t}")
                         for t in self.topics}
        self.sent = 0
        self.returned = 0

    # -- thinker side ---------------------------------------------------------
    def send_inputs(self, *args: Any, method: str, topic: str,
                    **kwargs: Any) -> ColmenaResult:
        """Enqueue one method invocation; returns its (pending) record."""
        self._check_topic(topic)
        result = ColmenaResult(method=method, topic=topic, args=args,
                               kwargs=kwargs, time_created=self.env.now)
        self._requests.put(result)
        self.sent += 1
        return result

    def get_result(self, topic: str) -> Event:
        """Event yielding the next completed result on ``topic``."""
        self._check_topic(topic)
        return self._results[topic].get()

    def outstanding(self, topic: str | None = None) -> int:
        """Results sent but not yet returned (optionally per topic)."""
        if topic is None:
            return self.sent - self.returned
        raise NotImplementedError(
            "per-topic outstanding tracking is not recorded; track it in "
            "the thinker if needed"
        )

    # -- server side --------------------------------------------------------------
    def get_task(self) -> Event:
        """Event yielding the next request (server side)."""
        return self._requests.get()

    def send_result(self, result: ColmenaResult) -> None:
        result.time_returned = self.env.now
        self._results[result.topic].put(result)
        self.returned += 1

    def _check_topic(self, topic: str) -> None:
        if topic not in self._results:
            raise KeyError(
                f"unknown topic {topic!r}; configured: {list(self.topics)}"
            )
