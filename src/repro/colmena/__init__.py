"""A Colmena-style steering framework over the FaaS layer.

The paper's molecular-design workload (§3.1) runs on Colmena
[Ward et al., MLHPC'21]: an application is a *Thinker* (decision-making
agents) exchanging tasks and results with a *Task Server* through
topic-labelled queues; the task server executes methods on
Parsl/Globus Compute.  This package reproduces that architecture on the
simulated timeline:

- :class:`~repro.colmena.queues.ColmenaQueues` — topic-routed request /
  result queues;
- :class:`~repro.colmena.server.TaskServer` — pulls requests, runs the
  named method as a FaaS app, pushes timestamped
  :class:`~repro.colmena.models.ColmenaResult` objects back;
- :class:`~repro.colmena.thinker.Thinker` — base class whose
  ``@agent``-decorated generator methods run as concurrent simulation
  processes.

``examples/colmena_moldesign.py`` rebuilds the §3.1 campaign in this
idiom, with the steering overlap Colmena exists to provide.
"""

from repro.colmena.models import ColmenaResult
from repro.colmena.queues import ColmenaQueues
from repro.colmena.server import TaskServer
from repro.colmena.thinker import Thinker, agent

__all__ = ["ColmenaQueues", "ColmenaResult", "TaskServer", "Thinker",
           "agent"]
