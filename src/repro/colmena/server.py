"""The Colmena Task Server: method registry + dispatch loop."""

from __future__ import annotations

from typing import Mapping

from repro.sim.core import Event
from repro.faas.apps import AppBase
from repro.faas.dataflow import DataFlowKernel
from repro.colmena.models import ColmenaResult
from repro.colmena.queues import ColmenaQueues

__all__ = ["TaskServer"]


class TaskServer:
    """Executes queued method invocations as FaaS apps.

    ``methods`` maps method names to registered apps (``@python_app`` /
    ``@gpu_app``); the server pulls requests from the queues, submits
    them through the DataFlowKernel (so executor selection, retries and
    GPU partition binding all apply), and returns timestamped results.
    """

    def __init__(self, queues: ColmenaQueues, dfk: DataFlowKernel,
                 methods: Mapping[str, AppBase], submit=None):
        """``submit(app, args, kwargs) -> future`` overrides local
        dispatch — pass a Globus-backed submitter to run methods on a
        remote endpoint, which is exactly the paper's deployment
        ("Colmena ... backed by Globus Compute and Parsl")."""
        if not methods:
            raise ValueError("TaskServer needs at least one method")
        for name, app in methods.items():
            if not isinstance(app, AppBase):
                raise TypeError(
                    f"method {name!r} must be a decorated app, got "
                    f"{type(app).__name__}"
                )
        self.queues = queues
        self.dfk = dfk
        self.methods = dict(methods)
        self._submit = submit if submit is not None else (
            lambda app, args, kwargs: dfk.submit(app, args, kwargs))
        self.tasks_dispatched = 0
        self._proc = dfk.env.process(self._serve())

    def _serve(self):
        env = self.dfk.env
        while True:
            request: ColmenaResult = yield self.queues.get_task()
            try:
                app = self.methods[request.method]
            except KeyError:
                request.failure = KeyError(
                    f"task server has no method {request.method!r}; "
                    f"registered: {sorted(self.methods)}"
                )
                self.queues.send_result(request)
                continue
            request.time_started = env.now
            self.tasks_dispatched += 1
            future = self._submit(app, request.args, request.kwargs)
            future.callbacks.append(
                lambda ev, req=request: self._finish(req, ev))

    def _finish(self, request: ColmenaResult, future_event: Event) -> None:
        request.time_completed = self.dfk.env.now
        # Replace the dispatch timestamp with the true worker start time
        # (the queue delay between them is Colmena's backlog metric).
        task = getattr(future_event, "task", None)
        start_time = getattr(task, "start_time", None)
        if start_time is not None:
            request.time_started = start_time
        if future_event.ok:
            request.value = future_event.value
        else:
            request.failure = future_event.value
        self.queues.send_result(request)

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("task server stopped")
            self._proc.defuse()
