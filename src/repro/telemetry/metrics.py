"""Latency/throughput aggregation used by every benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["LatencyStats", "ThroughputMeter", "summarize"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency sample."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - formatting
        return (
            f"n={self.count} mean={self.mean:.3f}s p50={self.p50:.3f}s "
            f"p95={self.p95:.3f}s p99={self.p99:.3f}s "
            f"min={self.minimum:.3f}s max={self.maximum:.3f}s"
        )


def summarize(samples: Sequence[float] | Iterable[float]) -> LatencyStats:
    """Compute :class:`LatencyStats` over a non-empty latency sample."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    if np.any(arr < 0):
        raise ValueError("latencies must be non-negative")
    return LatencyStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


class ThroughputMeter:
    """Counts completions on the simulated clock."""

    def __init__(self, env):
        self.env = env
        self.t0 = env.now
        self.completions = 0

    def record(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.completions += n

    @property
    def elapsed(self) -> float:
        return self.env.now - self.t0

    @property
    def per_second(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.completions / self.elapsed
