"""Telemetry: task timelines (Fig. 3) and metric aggregation."""

from repro.telemetry.timeline import (
    Span,
    Timeline,
    render_ascii_gantt,
    timeline_from_tasks,
)
from repro.telemetry.metrics import LatencyStats, ThroughputMeter, summarize
from repro.telemetry.export import (
    series_to_csv,
    stats_to_dict,
    timeline_to_csv,
    timeline_to_jsonl,
)
from repro.telemetry.cost import CostReport, GpuCostModel, cost_report
from repro.telemetry.graph import critical_path, parallelism_profile, task_graph
from repro.telemetry.resilience import ResilienceStats
from repro.telemetry.streaming import (
    P2Quantile,
    ReservoirSample,
    StreamingLatencyStats,
    WindowedRates,
    merge_event_streams,
    replay_latency_stats,
)

__all__ = [
    "CostReport",
    "GpuCostModel",
    "LatencyStats",
    "P2Quantile",
    "ReservoirSample",
    "ResilienceStats",
    "StreamingLatencyStats",
    "WindowedRates",
    "cost_report",
    "critical_path",
    "merge_event_streams",
    "parallelism_profile",
    "replay_latency_stats",
    "task_graph",
    "series_to_csv",
    "stats_to_dict",
    "timeline_to_csv",
    "timeline_to_jsonl",
    "Span",
    "ThroughputMeter",
    "Timeline",
    "render_ascii_gantt",
    "summarize",
    "timeline_from_tasks",
]
