"""Workflow-graph analysis: task DAGs and critical paths.

Every DataFlowKernel records the dependency edges between tasks; these
helpers turn a finished run into a :mod:`networkx` DAG and answer the
question campaign tuning always starts with: *what is the critical
path?*  For the molecular-design workload the answer is the
simulate→train→infer→simulate spine, which is why the GPU idles (Fig. 3)
— speeding up training off the critical path buys nothing.
"""

from __future__ import annotations

import networkx as nx

__all__ = ["task_graph", "critical_path", "parallelism_profile"]


def task_graph(dfk) -> "nx.DiGraph":
    """The run's task DAG: nodes are task tids, edges are dependencies.

    Node attributes: ``app`` (app name), ``state``, ``run_seconds``
    (0.0 while unfinished), ``start``/``end`` timestamps.
    """
    graph = nx.DiGraph()
    for record in dfk.tasks:
        graph.add_node(
            record.tid,
            app=record.app_name,
            state=record.state.value,
            run_seconds=record.run_seconds or 0.0,
            start=record.start_time,
            end=record.end_time,
        )
    for record in dfk.tasks:
        for dep in record.dependencies:
            if graph.has_node(dep):
                graph.add_edge(dep, record.tid)
    return graph


def critical_path(dfk) -> tuple[list[int], float]:
    """The dependency chain with the largest total runtime.

    Returns ``(tids, seconds)``.  Uses each task's measured
    ``run_seconds`` as the node weight; queueing time is excluded on
    purpose — the critical path answers "what would still bound the
    makespan with infinite workers".
    """
    graph = task_graph(dfk)
    if graph.number_of_nodes() == 0:
        return [], 0.0
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("task graph has a cycle (corrupted records)")
    best_len: dict[int, float] = {}
    best_pred: dict[int, int | None] = {}
    for node in nx.topological_sort(graph):
        weight = graph.nodes[node]["run_seconds"]
        preds = list(graph.predecessors(node))
        if preds:
            pred = max(preds, key=lambda p: best_len[p])
            best_len[node] = best_len[pred] + weight
            best_pred[node] = pred
        else:
            best_len[node] = weight
            best_pred[node] = None
    tail = max(best_len, key=best_len.get)
    path: list[int] = []
    cursor: int | None = tail
    while cursor is not None:
        path.append(cursor)
        cursor = best_pred[cursor]
    path.reverse()
    return path, best_len[tail]


def parallelism_profile(dfk, resolution: float = 1.0) -> list[tuple[float, int]]:
    """How many tasks ran concurrently over time: ``[(t, count), ...]``.

    The area under this curve over the makespan is the run's mean
    parallelism — the quantity extra workers (or GPU partitions) raise.
    """
    if resolution <= 0:
        raise ValueError("resolution must be positive")
    events: list[tuple[float, int]] = []
    for record in dfk.tasks:
        if record.start_time is None or record.end_time is None:
            continue
        events.append((record.start_time, +1))
        events.append((record.end_time, -1))
    if not events:
        return []
    events.sort()
    t0 = events[0][0]
    t1 = max(t for t, _ in events)
    profile: list[tuple[float, int]] = []
    index = 0
    active = 0
    t = t0
    while t <= t1 + 1e-12:
        while index < len(events) and events[index][0] <= t + 1e-12:
            active += events[index][1]
            index += 1
        profile.append((t, active))
        t += resolution
    return profile
