"""Constant-memory latency/rate accumulators for million-request runs.

The classic harness keeps every latency in a list and calls
:func:`repro.telemetry.metrics.summarize` at the end — O(n) memory and a
large GC population of floats.  At the million-request scale targeted by
``repro bench --scale`` that retention dominates RSS, so this module
provides one-pass accumulators with O(1) state:

- :class:`P2Quantile` — the P² (piecewise-parabolic) single-quantile
  estimator of Jain & Chlamtac (1985): five markers, no samples stored.
- :class:`ReservoirSample` — Algorithm R uniform reservoir, for when an
  actual (bounded) sample is wanted for debugging or plotting.
- :class:`StreamingLatencyStats` — drop-in producer of the same
  :class:`~repro.telemetry.metrics.LatencyStats` record the batch
  ``summarize`` returns, with p50/p95/p99 estimated by P².
- :class:`WindowedRates` — per-window arrival counts over a bounded ring
  of recent windows plus an all-time peak, replacing the full
  ``to_rate_series`` list.

P² estimates are approximate (typically within a percent or two of the
exact sample quantile for unimodal data); ``count``/``mean``/``min``/
``max`` are exact (the mean is compensated — see
:mod:`repro.sim.numerics`).

Every accumulator also has an ``add_many`` batch path that is
bit-identical to the equivalent sequence of ``add`` calls (RNG draws
included, for the reservoir): order-free reductions are vectorised,
while the sequential recurrences (Kahan compensation, P2 markers,
Algorithm R draws) run as tight loops over locals.  The property suite
pins each batch path against its scalar twin.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Optional, Sequence

import numpy as np

from repro.sim.numerics import KahanSum
from repro.telemetry.metrics import LatencyStats

__all__ = [
    "P2Quantile",
    "ReservoirSample",
    "StreamingLatencyStats",
    "WindowedRates",
    "merge_event_streams",
    "replay_latency_stats",
]


class P2Quantile:
    """Streaming estimate of the ``p``-quantile via the P² algorithm.

    Keeps five markers whose heights track the min, the p/2-, p- and
    (1+p)/2-quantiles, and the max; marker heights move by parabolic
    (falling back to linear) interpolation as observations arrive.  The
    first five observations are stored exactly, so small samples return
    the same linearly-interpolated quantile ``numpy.percentile`` does.
    """

    __slots__ = ("p", "count", "_q", "_n")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p!r}")
        self.p = p
        self.count = 0
        self._q: list[float] = []       # marker heights (first 5: raw obs)
        self._n = [0, 1, 2, 3, 4]       # marker positions (0-based)

    def add(self, x: float) -> None:
        q = self._q
        self.count += 1
        if self.count <= 5:
            q.append(x)
            if self.count == 5:
                q.sort()
            return
        # Locate the cell k with q[k] <= x < q[k+1], extending extremes.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        elif x < q[1]:
            k = 0
        elif x < q[2]:
            k = 1
        elif x < q[3]:
            k = 2
        else:
            k = 3
        n = self._n
        for i in range(k + 1, 5):
            n[i] += 1
        # Desired positions for the three interior markers.
        last = self.count - 1
        p = self.p
        desired = (last * p / 2.0, last * p, last * (1.0 + p) / 2.0)
        for i in (1, 2, 3):
            d = desired[i - 1] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1) or \
               (d <= -1.0 and n[i - 1] - n[i] < -1):
                step = 1 if d >= 0 else -1
                qp = self._parabolic(i, step)
                if q[i - 1] < qp < q[i + 1]:
                    q[i] = qp
                else:
                    q[i] = q[i] + step * (q[i + step] - q[i]) / (n[i + step] - n[i])
                n[i] += step
        return

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    @property
    def value(self) -> float:
        """Current quantile estimate (exact for fewer than 6 samples)."""
        if self.count == 0:
            raise ValueError("no observations yet")
        if self.count <= 5:
            s = sorted(self._q)
            h = (len(s) - 1) * self.p    # numpy's 'linear' interpolation
            lo = math.floor(h)
            hi = min(lo + 1, len(s) - 1)
            return s[lo] + (h - lo) * (s[hi] - s[lo])
        return self._q[2]


class ReservoirSample:
    """Uniform k-sample of a stream (Vitter's Algorithm R), seeded.

    ``sample`` is a uniform random subset of everything seen so far;
    useful when a benchmark wants an actual latency sample (histogram,
    debugging) without retaining the full stream.
    """

    __slots__ = ("k", "count", "sample", "_rng")

    def __init__(self, k: int, seed: int = 0):
        if k <= 0:
            raise ValueError("reservoir size must be positive")
        self.k = k
        self.count = 0
        self.sample: list[float] = []
        self._rng = random.Random(seed)

    def add(self, x: float) -> None:
        self.count += 1
        if len(self.sample) < self.k:
            self.sample.append(x)
        else:
            j = self._rng.randrange(self.count)
            if j < self.k:
                self.sample[j] = x

    def add_many(self, xs) -> None:
        """Batch ingest, bit-identical to repeated :meth:`add` — RNG
        draw sequence included.

        Algorithm R's replacement draw is ``randrange(count)`` with
        ``count`` incrementing per element — a sequential RNG recurrence
        that cannot be batched without changing which elements survive.
        The batch path vectorises what it can: values are staged through
        one float64 array (as :meth:`StreamingLatencyStats.add_many`
        does), the draw-free pre-fill prefix is spliced in wholesale,
        and the replacement phase runs as a tight loop over locals.
        """
        arr = np.asarray(xs, dtype=np.float64)
        if arr.ndim != 1:
            arr = arr.reshape(-1)
        if arr.size == 0:
            return
        vals = arr.tolist()
        sample = self.sample
        k = self.k
        start = 0
        if len(sample) < k:
            start = min(k - len(sample), len(vals))
            sample.extend(vals[:start])
            self.count += start
        count = self.count
        randrange = self._rng.randrange
        for x in vals[start:]:
            count += 1
            j = randrange(count)
            if j < k:
                sample[j] = x
        self.count = count


class StreamingLatencyStats:
    """One-pass replacement for ``summarize(list_of_latencies)``.

    ``count``/``mean``/``minimum``/``maximum`` are exact;
    p50/p95/p99 are P² estimates.  Call :meth:`stats` at the end of a
    run for the same :class:`LatencyStats` record the batch path yields.
    """

    __slots__ = ("count", "_sum", "minimum", "maximum", "_p50", "_p95", "_p99")

    def __init__(self) -> None:
        self.count = 0
        self._sum = KahanSum()
        self.minimum = math.inf
        self.maximum = -math.inf
        self._p50 = P2Quantile(0.50)
        self._p95 = P2Quantile(0.95)
        self._p99 = P2Quantile(0.99)

    def add(self, latency: float) -> None:
        if latency < 0:
            raise ValueError("latencies must be non-negative")
        self.count += 1
        self._sum.add(latency)
        if latency < self.minimum:
            self.minimum = latency
        if latency > self.maximum:
            self.maximum = latency
        self._p50.add(latency)
        self._p95.add(latency)
        self._p99.add(latency)

    def add_many(self, latencies) -> None:
        """Ingest a batch of latencies, bit-identical to repeated :meth:`add`.

        The batch is staged through one numpy array: the negativity
        check, ``count``, and ``min``/``max`` are vectorised (order-free
        reductions, so exactly equal to the sequential comparisons),
        while the Kahan sum and the three P² estimators — inherently
        sequential recurrences — consume the array in a tight local
        loop.  This is the merge path's ingestion primitive: replaying a
        canonically-ordered shard stream through ``add_many`` yields the
        same accumulator state as the single-process run's per-event
        ``add`` calls.
        """
        arr = np.asarray(latencies, dtype=np.float64)
        if arr.ndim != 1:
            arr = arr.reshape(-1)
        if arr.size == 0:
            return
        if arr.min() < 0:
            raise ValueError("latencies must be non-negative")
        self.count += arr.size
        lo = float(arr.min())
        hi = float(arr.max())
        if lo < self.minimum:
            self.minimum = lo
        if hi > self.maximum:
            self.maximum = hi
        sum_add = self._sum.add
        p50_add = self._p50.add
        p95_add = self._p95.add
        p99_add = self._p99.add
        for x in arr.tolist():
            sum_add(x)
            p50_add(x)
            p95_add(x)
            p99_add(x)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no observations yet")
        return self._sum.value / self.count

    def stats(self) -> LatencyStats:
        if self.count == 0:
            raise ValueError("cannot summarize an empty sample")
        return LatencyStats(
            count=self.count,
            mean=self.mean,
            p50=self._p50.value,
            p95=self._p95.value,
            p99=self._p99.value,
            minimum=self.minimum,
            maximum=self.maximum,
        )


class WindowedRates:
    """Per-window event counts over a bounded ring of recent windows.

    Events must arrive in non-decreasing time order (true for simulated
    completions and trace arrivals).  Keeps at most ``keep`` recent
    windows plus the all-time peak, so memory stays O(keep) regardless
    of horizon — unlike ``to_rate_series``, which materialises every
    window.
    """

    __slots__ = ("window", "keep", "count", "_recent", "_cur_idx",
                 "_cur_count", "_peak_count", "_last_t")

    def __init__(self, window: float = 60.0, keep: int = 64):
        if window <= 0:
            raise ValueError("window must be positive")
        if keep <= 0:
            raise ValueError("keep must be positive")
        self.window = window
        self.keep = keep
        self.count = 0
        self._recent: deque[tuple[int, int]] = deque(maxlen=keep)
        self._cur_idx: Optional[int] = None
        self._cur_count = 0
        self._peak_count = 0
        self._last_t = -math.inf

    def add(self, t: float) -> None:
        if t < self._last_t:
            raise ValueError(
                f"out-of-order observation {t!r} after {self._last_t!r}"
            )
        self._last_t = t
        idx = int(t // self.window)
        if idx != self._cur_idx:
            self._flush()
            self._cur_idx = idx
        self._cur_count += 1
        self.count += 1

    def add_many(self, times) -> None:
        """Batch ingest of a non-decreasing run, bit-identical to
        repeated :meth:`add`.

        Window indices for the whole batch come from one vectorised
        floor-divide (``numpy.float64.__floordiv__`` matches Python's
        ``//`` semantics), and consecutive equal indices collapse into a
        single counter update — one Python-level step per *window
        boundary* instead of per event, while the flush order (hence
        the ring contents and peak) is exactly the scalar loop's.

        The one divergence from the scalar loop is error timing: the
        batch is validated up front, so an out-of-order element raises
        before *any* element is ingested, where sequential :meth:`add`
        calls would have consumed the prefix first.
        """
        arr = np.asarray(times, dtype=np.float64)
        if arr.ndim != 1:
            arr = arr.reshape(-1)
        if arr.size == 0:
            return
        if arr[0] < self._last_t:
            raise ValueError(
                f"out-of-order observation {float(arr[0])!r} "
                f"after {self._last_t!r}"
            )
        bad = np.flatnonzero(arr[1:] < arr[:-1])
        if bad.size:
            i = int(bad[0])
            raise ValueError(
                f"out-of-order observation {float(arr[i + 1])!r} "
                f"after {float(arr[i])!r}"
            )
        idx = (arr // self.window).astype(np.int64)
        cut = np.flatnonzero(idx[1:] != idx[:-1]) + 1
        starts = np.concatenate(([0], cut)).tolist()
        ends = np.concatenate((cut, [idx.size])).tolist()
        for s, e in zip(starts, ends):
            win = int(idx[s])
            if win != self._cur_idx:
                self._flush()
                self._cur_idx = win
            self._cur_count += e - s
        self.count += arr.size
        self._last_t = float(arr[-1])

    def _flush(self) -> None:
        if self._cur_idx is not None and self._cur_count:
            self._recent.append((self._cur_idx, self._cur_count))
            if self._cur_count > self._peak_count:
                self._peak_count = self._cur_count
        self._cur_count = 0

    @property
    def peak_rate(self) -> float:
        """Highest per-window rate seen so far (events/second)."""
        return max(self._peak_count, self._cur_count) / self.window

    def recent_rates(self) -> list[tuple[float, float]]:
        """(window start time, rate) for the retained recent windows."""
        out = [(idx * self.window, c / self.window)
               for idx, c in self._recent]
        if self._cur_count:
            out.append((self._cur_idx * self.window,
                        self._cur_count / self.window))
        return out


# ------------------------------------------------------- deterministic merge

def merge_event_streams(
        streams: Sequence[tuple[int, Sequence[tuple]]]) -> list[tuple]:
    """Merge per-cell event streams into the canonical global order.

    ``streams`` is a sequence of ``(cell_id, events)`` pairs, where each
    event is a tuple whose first element is its timestamp and each
    per-cell list is already time-ordered (true for anything recorded
    from a single simulation environment).  The result is every event,
    ordered by the **canonical key** ``(time, cell_id, within-cell
    sequence)`` via one numpy lexsort.

    Because the key is global — it mentions nothing about shards,
    workers, or arrival order of the ``streams`` argument — the merge is
    invariant in:

    - the order the per-cell streams are presented (any shard may
      report first);
    - how cells were grouped onto shards (1 worker or 7);
    - where epoch barriers fell (splitting one cell's stream into
      epoch fragments and concatenating them is the identity).

    Cross-cell timestamp ties are broken by ``cell_id`` — deterministic,
    though not necessarily the interleaving a single shared event loop
    would have produced; the sharded engine's differential tests pin
    this down on the real scenarios.
    """
    per_cell = sorted(streams, key=lambda s: s[0])
    events: list[tuple] = []
    times: list[float] = []
    cells: list[int] = []
    for cell_id, cell_events in per_cell:
        for ev in cell_events:
            events.append(ev)
            times.append(ev[0])
            cells.append(cell_id)
    if not events:
        return []
    order = np.lexsort((np.arange(len(events)),
                        np.asarray(cells, dtype=np.int64),
                        np.asarray(times, dtype=np.float64)))
    return [events[i] for i in order]


def replay_latency_stats(merged_events: Sequence[tuple],
                         value_index: int = 1) -> StreamingLatencyStats:
    """Feed a merged event stream into a fresh accumulator.

    Order-sensitive accumulators (P² markers, Kahan compensation,
    reservoir coin flips) admit no bit-exact O(1) state merge, so the
    sharded engine merges by **replay**: sort the buffered per-cell
    events canonically (:func:`merge_event_streams`), then push the
    ``value_index``-th field of each through one accumulator.  For a
    single cell the canonical order *is* the original completion order,
    which makes the one-cell sharded run's statistics bit-identical to
    the unsharded engine's.
    """
    stats = StreamingLatencyStats()
    if merged_events:
        stats.add_many([ev[value_index] for ev in merged_events])
    return stats
