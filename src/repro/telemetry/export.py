"""Export telemetry artefacts as CSV / JSON lines.

Keeps the bench outputs consumable by external plotting tools without
adding plotting dependencies to the library itself.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Sequence

from repro.telemetry.metrics import LatencyStats
from repro.telemetry.timeline import Timeline

__all__ = ["timeline_to_csv", "timeline_to_jsonl", "series_to_csv",
           "stats_to_dict"]


def timeline_to_csv(timeline: Timeline) -> str:
    """Spans as ``category,start,end,duration,label`` CSV."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["category", "start", "end", "duration", "label"])
    for span in sorted(timeline.spans, key=lambda s: (s.start, s.end)):
        writer.writerow([span.category, f"{span.start:.6f}",
                         f"{span.end:.6f}", f"{span.duration:.6f}",
                         span.label])
    return buf.getvalue()


def timeline_to_jsonl(timeline: Timeline) -> str:
    """Spans as JSON lines."""
    lines = []
    for span in sorted(timeline.spans, key=lambda s: (s.start, s.end)):
        lines.append(json.dumps({
            "category": span.category,
            "start": span.start,
            "end": span.end,
            "duration": span.duration,
            "label": span.label,
        }))
    return "\n".join(lines)


def series_to_csv(headers: Sequence[str],
                  rows: Sequence[Sequence]) -> str:
    """A generic (headers, rows) table as CSV — used for figure series."""
    if not headers:
        raise ValueError("headers must be non-empty")
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(list(headers))
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        writer.writerow(list(row))
    return buf.getvalue()


def stats_to_dict(stats: LatencyStats) -> dict[str, float]:
    """A LatencyStats as a plain JSON-ready dict."""
    return {
        "count": stats.count,
        "mean": stats.mean,
        "p50": stats.p50,
        "p95": stats.p95,
        "p99": stats.p99,
        "min": stats.minimum,
        "max": stats.maximum,
    }
