"""Task-span timelines — the data behind Fig. 3.

Fig. 3 plots when each *simulation*, *training* and *inference* task of
the molecular-design campaign was running, revealing the white gaps where
the GPU sits idle waiting for CPU simulations.  :class:`Timeline` stores
the spans; :func:`render_ascii_gantt` draws the figure as text, and the
idle-gap analysis quantifies the paper's "many white lines" observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Span", "Timeline", "timeline_from_tasks", "render_ascii_gantt"]


@dataclass(frozen=True)
class Span:
    """One task execution interval."""

    category: str
    start: float
    end: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span ends ({self.end}) before it starts "
                             f"({self.start})")

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """A collection of spans with per-category analysis."""

    def __init__(self, spans: Iterable[Span] = ()):
        self.spans: list[Span] = list(spans)

    def add(self, category: str, start: float, end: float,
            label: str = "") -> Span:
        span = Span(category, start, end, label)
        self.spans.append(span)
        return span

    def categories(self) -> list[str]:
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.category, None)
        return list(seen)

    def by_category(self, category: str) -> list[Span]:
        return sorted(
            (s for s in self.spans if s.category == category),
            key=lambda s: (s.start, s.end),
        )

    @property
    def makespan(self) -> float:
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    def busy_time(self, category: str) -> float:
        """Total *union* time at least one span of ``category`` is active."""
        intervals = [(s.start, s.end) for s in self.by_category(category)]
        return _union_length(intervals)

    def total_task_time(self, category: str) -> float:
        """Sum of span durations (counts overlap multiply)."""
        return sum(s.duration for s in self.by_category(category))

    def idle_gaps(self, categories: Sequence[str],
                  min_gap: float = 0.0) -> list[tuple[float, float]]:
        """Gaps where *none* of the given categories is active.

        For Fig. 3, ``categories=("training", "inference")`` yields the
        white lines: intervals in which the GPU does nothing.
        """
        intervals = sorted(
            (s.start, s.end)
            for s in self.spans if s.category in categories
        )
        if not intervals:
            return []
        gaps: list[tuple[float, float]] = []
        _, cur_end = intervals[0]
        for start, end in intervals[1:]:
            if start > cur_end + min_gap:
                gaps.append((cur_end, start))
            cur_end = max(cur_end, end)
        return gaps

    def idle_fraction(self, categories: Sequence[str]) -> float:
        """Fraction of the makespan with none of ``categories`` active."""
        if self.makespan == 0:
            return 1.0
        busy = _union_length(
            [(s.start, s.end) for s in self.spans if s.category in categories]
        )
        return 1.0 - busy / self.makespan


def _union_length(intervals: list[tuple[float, float]]) -> float:
    if not intervals:
        return 0.0
    intervals = sorted(intervals)
    total = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    return total + (cur_end - cur_start)


def timeline_from_tasks(tasks, category_of=None) -> Timeline:
    """Build a timeline from finished DFK task records.

    ``category_of`` maps a task record to a category name (default: the
    app name).  Unfinished tasks are skipped.
    """
    timeline = Timeline()
    for task in tasks:
        if task.start_time is None or task.end_time is None:
            continue
        category = category_of(task) if category_of else task.app_name
        timeline.add(category, task.start_time, task.end_time,
                     label=task.label)
    return timeline


def render_ascii_gantt(timeline: Timeline, width: int = 100) -> str:
    """Draw the timeline as rows of '#' marks — a text Fig. 3."""
    if not timeline.spans:
        return "(empty timeline)"
    t0 = min(s.start for s in timeline.spans)
    t1 = max(s.end for s in timeline.spans)
    horizon = max(t1 - t0, 1e-12)
    lines = []
    name_width = max(len(c) for c in timeline.categories())
    for category in timeline.categories():
        cells = [" "] * width
        for span in timeline.by_category(category):
            lo = int((span.start - t0) / horizon * (width - 1))
            hi = int((span.end - t0) / horizon * (width - 1))
            for i in range(lo, hi + 1):
                cells[i] = "#"
        lines.append(f"{category.rjust(name_width)} |{''.join(cells)}|")
    lines.append(f"{' ' * name_width} 0{'s'.rjust(width - 1)}"
                 f" (span {horizon:.1f}s)")
    return "\n".join(lines)
