"""O(1) resilience accounting: goodput, SLO attainment, amplification.

Throughput counts finished work; *goodput* counts work finished within
its SLO — the number a serving fleet is actually paid for.  Under fault
load the two diverge (retries and hedges complete requests late, shed
requests never run), so the resilience bench reports both plus the
amplification the fault tolerance itself generates.

Everything here is a constant-memory accumulator in the spirit of
:mod:`repro.telemetry.streaming`: per-outcome counters, per-fault-class
counters, and one :class:`StreamingLatencyStats` for goodput latencies.
Counter updates are integer adds, so twin runs with identical schedules
produce bit-identical reports (the determinism tests compare
:meth:`report` dicts verbatim).
"""

from __future__ import annotations

from repro.telemetry.streaming import StreamingLatencyStats

__all__ = ["ResilienceStats"]


class ResilienceStats:
    """One fleet run's resilience counters.

    Conservation invariant: every offered request terminates exactly
    once — ``offered == completed + shed + failed`` at the end of a
    run, and :attr:`lost` (the difference) must be zero.  A non-zero
    ``lost`` means the serving plane dropped a request on the floor,
    which is precisely the bug class the chaos gate exists to catch.
    """

    __slots__ = ("offered", "completed", "shed", "failed", "slo_ok",
                 "attempts", "attempt_failures", "retries", "hedges",
                 "hedge_wins", "wasted_attempts", "breaker_opens",
                 "resize_attempts", "resize_aborts", "resize_rollbacks",
                 "cache_load_failures", "faults", "latency",
                 "on_completion")

    def __init__(self) -> None:
        #: Requests submitted to the router.
        self.offered = 0
        #: Requests that finished with a result.
        self.completed = 0
        #: Requests rejected by admission control (deadline-infeasible).
        self.shed = 0
        #: Requests that exhausted every attempt (or their deadline).
        self.failed = 0
        #: Completions that landed within their deadline.
        self.slo_ok = 0
        #: Dispatches to a replica (first tries + retries + hedges).
        self.attempts = 0
        #: Attempts that ended in a replica/kernel failure.
        self.attempt_failures = 0
        #: Re-dispatches after a failed attempt.
        self.retries = 0
        #: Speculative duplicate dispatches.
        self.hedges = 0
        #: Completions delivered by the hedge rather than the original.
        self.hedge_wins = 0
        #: Attempts whose result arrived after the request was resolved.
        self.wasted_attempts = 0
        #: Circuit-breaker open transitions.
        self.breaker_opens = 0
        #: Per-replica resize transactions started against this function.
        self.resize_attempts = 0
        #: Resize transactions aborted by the drain watchdog.
        self.resize_aborts = 0
        #: Aborted transactions whose rollback verified bit-identical
        #: pre-resize state (must equal :attr:`resize_aborts`).
        self.resize_rollbacks = 0
        #: Resize restarts that found the weight cache corrupt and paid
        #: a full reload to repair it.
        self.cache_load_failures = 0
        #: Injected faults by fault class.
        self.faults: dict[str, int] = {}
        #: Latency distribution of completed requests.
        self.latency = StreamingLatencyStats()
        #: Optional tap called as ``on_completion(latency, in_slo)``
        #: after the counters update — the hook a demand controller
        #: (e.g. the fleet autoscaler) uses to watch per-function SLO
        #: health without retaining per-request state.
        self.on_completion = None

    # -- recording ----------------------------------------------------------
    def record_fault(self, kind: str) -> None:
        self.faults[kind] = self.faults.get(kind, 0) + 1

    def record_completion(self, latency: float, in_slo: bool) -> None:
        self.completed += 1
        self.latency.add(latency)
        if in_slo:
            self.slo_ok += 1
        if self.on_completion is not None:
            self.on_completion(latency, in_slo)

    # -- derived ------------------------------------------------------------
    @property
    def lost(self) -> int:
        """Offered requests that never terminated (must be zero)."""
        return self.offered - self.completed - self.shed - self.failed

    def goodput(self, horizon: float) -> float:
        """In-SLO completions per second over ``horizon``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return self.slo_ok / horizon

    def throughput(self, horizon: float) -> float:
        """All completions per second over ``horizon``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return self.completed / horizon

    @property
    def slo_attainment(self) -> float:
        """In-SLO fraction of non-shed offered load, in [0, 1]."""
        served = self.offered - self.shed
        return self.slo_ok / served if served > 0 else 0.0

    @property
    def amplification(self) -> float:
        """Attempts per completed request (1.0 = no retries or hedges)."""
        return self.attempts / self.completed if self.completed > 0 else 0.0

    def report(self, horizon: float) -> dict:
        """The JSON-ready summary the bench and CLI emit."""
        lat = (self.latency.stats() if self.latency.count > 0 else None)
        return {
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "lost": self.lost,
            "slo_ok": self.slo_ok,
            "slo_attainment": self.slo_attainment,
            "goodput_rps": self.goodput(horizon),
            "throughput_rps": self.throughput(horizon),
            "attempts": self.attempts,
            "attempt_failures": self.attempt_failures,
            "retries": self.retries,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "wasted_attempts": self.wasted_attempts,
            "breaker_opens": self.breaker_opens,
            "resize_attempts": self.resize_attempts,
            "resize_aborts": self.resize_aborts,
            "resize_rollbacks": self.resize_rollbacks,
            "cache_load_failures": self.cache_load_failures,
            "amplification": self.amplification,
            "faults": dict(sorted(self.faults.items())),
            "latency": None if lat is None else {
                "count": lat.count,
                "mean": lat.mean,
                "p50": lat.p50,
                "p95": lat.p95,
                "p99": lat.p99,
                "min": lat.minimum,
                "max": lat.maximum,
            },
        }
