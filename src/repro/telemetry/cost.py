"""GPU cost accounting: the paper's profitability argument, quantified.

The abstract's economic motivation: accelerators "are expensive to
acquire and operate; consequently, multiplexing them can increase their
financial profitability."  This module turns simulated runs into money:
a :class:`GpuCostModel` prices GPU-hours; :func:`cost_report` converts a
workload's makespan and device occupancy into cost per unit of work, so
the Fig. 4 modes can be compared in $/1000 completions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpuCostModel", "CostReport", "cost_report"]

#: Representative on-demand cloud price for one A100-80GB, $/hour.
DEFAULT_A100_HOURLY_USD = 3.67


@dataclass(frozen=True)
class GpuCostModel:
    """Prices device time.

    ``hourly_usd`` is the whole-device rental price.  With
    ``bill_by_occupancy`` the operator charges tenants only for the SM
    share they held (an internal-chargeback view); otherwise the whole
    device bills for the entire makespan (the cloud-rental view the
    paper's profitability claim is about).
    """

    hourly_usd: float = DEFAULT_A100_HOURLY_USD
    bill_by_occupancy: bool = False

    def __post_init__(self) -> None:
        if self.hourly_usd <= 0:
            raise ValueError("hourly_usd must be positive")

    def device_seconds_usd(self, seconds: float,
                           mean_utilization: float = 1.0) -> float:
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        if not 0 <= mean_utilization <= 1 + 1e-9:
            raise ValueError("utilization must be in [0, 1]")
        billed = seconds * (mean_utilization if self.bill_by_occupancy
                            else 1.0)
        return billed * self.hourly_usd / 3600.0


@dataclass(frozen=True)
class CostReport:
    """Economics of one run."""

    label: str
    makespan_seconds: float
    completions: int
    mean_sm_utilization: float
    total_usd: float

    @property
    def usd_per_1000(self) -> float:
        if self.completions == 0:
            raise ValueError("no completions to amortise over")
        return 1000.0 * self.total_usd / self.completions

    @property
    def effective_throughput_per_usd(self) -> float:
        if self.total_usd == 0:
            return float("inf")
        return self.completions / self.total_usd


def cost_report(label: str, makespan_seconds: float, completions: int,
                mean_sm_utilization: float,
                model: GpuCostModel | None = None) -> CostReport:
    """Build a :class:`CostReport` for one measured configuration."""
    if makespan_seconds <= 0:
        raise ValueError("makespan must be positive")
    if completions < 0:
        raise ValueError("completions must be non-negative")
    if model is None:
        model = GpuCostModel()
    total = model.device_seconds_usd(makespan_seconds, mean_sm_utilization)
    return CostReport(
        label=label,
        makespan_seconds=makespan_seconds,
        completions=completions,
        mean_sm_utilization=mean_sm_utilization,
        total_usd=total,
    )
