"""repro — reproduction of "Fine-grained accelerator partitioning for
Machine Learning and Scientific Computing in Function as a Service
Platform" (SC-W 2023).

Subpackages
-----------
- :mod:`repro.sim` — deterministic discrete-event simulation kernel.
- :mod:`repro.gpu` — calibrated GPU simulator: devices, kernels, memory,
  and the multiplexing techniques of Table 1 (time-sharing, MPS, MPS with
  GPU percentage, MIG, vGPU).
- :mod:`repro.faas` — Parsl-workalike FaaS framework whose
  ``HighThroughputExecutor`` carries the paper's GPU-partitioning
  extensions.
- :mod:`repro.partition` — partitioning toolkit: policies, a
  reconfiguration planner with MPS/MIG cost semantics, the GPU-resident
  weight cache and the right-sizing estimator from §7.
- :mod:`repro.workloads` — the evaluation applications: CNN conv
  arithmetic (Fig. 1), the LLaMa-2 inference cost model (Figs. 2/4/5),
  and the molecular-design campaign (Fig. 3).
- :mod:`repro.telemetry` — timelines, latency statistics, throughput.
- :mod:`repro.bench` — harness that regenerates every table and figure.

Quickstart
----------
>>> from repro.faas import Config, HighThroughputExecutor, DataFlowKernel
>>> from repro.faas import python_app
>>> config = Config(executors=[HighThroughputExecutor(label="cpu")])
>>> dfk = DataFlowKernel(config)
>>> @python_app(dfk=dfk, walltime=1.0)
... def double(x):
...     return x * 2
>>> future = double(21)
>>> dfk.wait([future])
[42]
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
