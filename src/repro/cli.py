"""Command-line interface: regenerate any paper artefact from the shell.

::

    python -m repro fig1 --models resnet50 vgg16
    python -m repro fig2
    python -m repro fig3
    python -m repro fig4 --completions 100
    python -m repro --jobs 8 fig4 fig5
    python -m repro table1
    python -m repro --jobs 1 --stats fig4
    python -m repro overheads
    python -m repro rightsizing
    python -m repro weightcache
    python -m repro bench --quick
    python -m repro serve --requests 800 --faults plan.json --out run.json

Every subcommand prints the paper-style table on stdout.  Several
commands may be given in one invocation (``repro fig4 fig5``); they
share one sweep runner, so overlapping sweeps are computed once and
simulations fan out over ``--jobs`` worker processes with on-disk
result caching (disable the disk layer with ``--no-cache``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench import (
    discussion_overheads,
    fig1_layer_flops,
    fig2_sm_sweep,
    fig3_moldesign,
    fig4_fig5_sweep,
    format_table,
    rightsizing_study,
    table1_comparison,
    weightcache_ablation,
    write_bench_json,
)
from repro.runner import ResultCache, SweepRunner, default_cache_dir
from repro.telemetry import render_ascii_gantt, summarize
from repro.workloads import CNN_ZOO

__all__ = ["main"]


class RunContext:
    """Per-invocation execution state shared by every command group.

    One runner for the whole invocation means its in-memory cache layer
    deduplicates overlapping sweeps across commands — ``repro fig4 fig5``
    runs the multiplexing sweep once — independently of ``--no-cache``,
    which only disables the cross-invocation disk layer.
    """

    def __init__(self, jobs: Optional[int] = None, no_cache: bool = False):
        self.jobs = jobs
        cache = ResultCache(default_cache_dir(), disk=not no_cache)
        self.runner = SweepRunner(jobs=jobs, cache=cache)


def _cmd_fig1(args, ctx) -> str:
    data = fig1_layer_flops(tuple(args.models), (args.batch,))
    rows = []
    for (model, batch), series in sorted(data.items()):
        flops = [f for _, f in series]
        rows.append([model, batch, len(series), sum(flops) / 1e9,
                     max(flops) / min(flops)])
    return format_table(
        ["model", "batch", "conv layers", "total GFLOP", "max/min"],
        rows, title="Fig. 1 — per-layer FLOP variation")


def _cmd_fig2(args, ctx) -> str:
    sweep = fig2_sm_sweep(tuple(range(args.step, 101, args.step)),
                          runner=ctx.runner)
    rows = [
        [p7.mps_percentage, p7.sms, p7.completion_seconds,
         p13.completion_seconds]
        for p7, p13 in zip(sweep["llama2-7b"], sweep["llama2-13b"])
    ]
    return format_table(
        ["MPS %", "SMs", "7b seconds", "13b seconds"], rows,
        title="Fig. 2 — completion latency vs SMs")


def _cmd_fig3(args, ctx) -> str:
    result = fig3_moldesign()
    table = format_table(
        ["phase", "busy seconds"],
        [["simulation", result.simulation_busy],
         ["training", result.training_busy],
         ["inference", result.inference_busy]],
        title="Fig. 3 — molecular-design phases")
    return (f"{table}\nGPU idle fraction: {result.gpu_idle_fraction:.2f}\n\n"
            + render_ascii_gantt(result.timeline, width=args.width))


def _cmd_fig4(args, ctx) -> str:
    results = fig4_fig5_sweep(n_completions=args.completions,
                              runner=ctx.runner)
    base = results[("timeshare", 1)]
    rows = [
        [mode, k, r.total_seconds, r.total_seconds / base.total_seconds,
         r.throughput / base.throughput]
        for (mode, k), r in sorted(results.items())
    ]
    return format_table(
        ["mode", "processes", "total s", "vs 1-process", "throughput x"],
        rows, title=f"Fig. 4 — {args.completions} completions")


def _cmd_fig5(args, ctx) -> str:
    results = fig4_fig5_sweep(n_completions=args.completions,
                              runner=ctx.runner)
    rows = []
    for (mode, k), r in sorted(results.items()):
        stats = summarize(r.latencies)
        rows.append([mode, k, stats.mean, stats.p95])
    return format_table(
        ["mode", "processes", "mean latency s", "p95 s"], rows,
        title="Fig. 5 — average inference latency")


def _cmd_table1(args, ctx) -> str:
    rows = [
        [r.mode.value, f"{r.measured_utilization:.2f}",
         f"{r.measured_throughput:.1f}", r.utilization_class,
         r.reconfiguration]
        for r in table1_comparison(args.clients, runner=ctx.runner)
    ]
    return format_table(
        ["technique", "SM util", "tokens/s", "paper class",
         "reconfiguration"],
        rows, title="Table 1 — multiplexing techniques")


def _cmd_overheads(args, ctx) -> str:
    report = discussion_overheads()
    rows = [[b.model, b.dtype, b.total_seconds, b.model_load_seconds]
            for b in report.cold_starts]
    table = format_table(
        ["model", "dtype", "cold start s", "of which model load s"],
        rows, title="§6 — cold starts")
    return table + (
        f"\nMPS repartition: {report.mps_repartition_seconds:.1f}s"
        f" (cached: {report.mps_repartition_cached_seconds:.1f}s);"
        f" MIG repartition: {report.mig_repartition_seconds:.1f}s"
    )


def _cmd_rightsizing(args, ctx) -> str:
    rows = [
        [r.workload, r.knee_sms, f"{r.mps_percentage}%",
         r.mig_profile or "-", r.placement,
         f"{100 * r.freed_fraction:.0f}%"]
        for r in rightsizing_study(runner=ctx.runner)
    ]
    return format_table(
        ["workload", "knee SMs", "MPS %", "MIG profile", "placement",
         "GPU freed"],
        rows, title="§7 — right-sizing study")


def _cmd_weightcache(args, ctx) -> str:
    result = weightcache_ablation(args.repartitions)
    return format_table(
        ["configuration", "downtime s"],
        [["no cache", result.seconds_without_cache],
         ["weight cache", result.seconds_with_cache]],
        title=f"§7 — weight cache over {result.n_repartitions} repartitions",
    ) + f"\nspeedup: {result.speedup:.1f}x"


def _cmd_bench(args, ctx) -> str:
    path, report = write_bench_json(path=args.out, quick=args.quick,
                                    jobs=ctx.jobs,
                                    profile=getattr(args, "profile", False))
    rows = [[name, f"{m.get('events_per_sec', m.get('per_sec', 0)):,.0f}"]
            for name, m in sorted(report["micro"].items())]
    micro = format_table(["microbenchmark", "events|items / s"], rows,
                         title="Simulation kernel hot paths")
    rows = [
        [name, s["configs"], f"{s['serial_seconds']:.2f}",
         f"{s['parallel_seconds']:.2f}", f"{s['warm_seconds']:.3f}",
         f"{s['warm_speedup']:.1f}x", f"{s['cache_hit_rate']:.0%}"]
        for name, s in sorted(report["sweeps"].items())
    ]
    sweeps = format_table(
        ["sweep", "configs", "serial s", "parallel s", "warm s",
         "warm speedup", "hit rate"],
        rows, title=f"Sweep wall-clock (jobs={report['jobs']})")
    scale = report["scale"]
    engines = [scale["streaming"], scale["legacy"]]
    if "streaming_1m" in scale:
        engines.append(scale["streaming_1m"])
    rows = [
        [e["engine"] + ("" if e["n_requests"] != 1_000_000 else " (1M)"),
         f"{e['n_requests']:,}", f"{e['wall_seconds']:.2f}",
         f"{e['events_per_sec']:,.0f}", f"{e['rss_growth_kb']:,}",
         f"{e['latency']['mean']:.3f}"]
        for e in engines
    ]
    scale_table = format_table(
        ["engine", "requests", "wall s", "events/s", "rss growth kB",
         "mean lat s"],
        rows, title=f"Trace-serving scale ({scale['scenario']['topology']})")
    sh = scale["sharded"]
    sh_gate = sh["gate"]
    rows = [
        [f"{run['shards']} shard{'s' if run['shards'] != 1 else ''}"
         + ("" if run["processes"] else " (in-process)"),
         f"{run['events']:,}", f"{run['wall_seconds']:.2f}",
         f"{run['events_per_sec']:,.0f}"]
        for run in (sh["single"], sh["sharded"])
    ]
    rows.append(["payloads bit-identical", sh_gate["identical"],
                 f"digest {sh['events_digest'][:16]}", ""])
    sharded_table = format_table(
        ["sharded engine", "events", "wall s", "events/s"], rows,
        title=f"Sharded scale ({sh['n_cells']} cells, {sh['cores']} cores, "
              f"gate {'PASS' if sh_gate['pass'] else 'FAIL'})")
    sharded_note = (f"sharded vs single speedup: {sh['speedup']:.2f}x "
                    f"(floor {sh_gate['speedup_floor']:.0f}x "
                    f"{'enforced' if sh_gate['speedup_enforced'] else 'advisory on this runner'})")
    res = report["resilience"]
    fleet, gate, blast = res["fleet"], res["gate"], res["blast_radius"]
    rows = [
        ["goodput rps", f"{fleet['goodput_rps']:.3f}",
         f"floor {gate['goodput_floor_rps']:.3f}"],
        ["SLO attainment", f"{fleet['slo_attainment']:.3f}", ""],
        ["lost requests", fleet["lost"], "must be 0"],
        ["retry/hedge amplification", f"{fleet['amplification']:.3f}", ""],
        ["MIG kill fraction", f"{blast['mig']['mean_kill_fraction']:.3f}",
         f"{blast['mig']['faults']} ECC faults"],
        ["MPS kill fraction", f"{blast['mps']['mean_kill_fraction']:.3f}",
         f"isolation {blast['isolation_ratio']:.1f}x"],
    ]
    res_table = format_table(
        ["resilience metric", "value", "note"], rows,
        title=f"Chaos serving ({res['plan_events']} faults, "
              f"gate {'PASS' if gate['pass'] else 'FAIL'})")
    asc = report["autoscale"]
    asc_gate = asc["gate"]
    ctrl = asc["closed_loop"]["autoscaler"]
    off_downtime = \
        asc["closed_loop_cache_off"]["autoscaler"]["mean_restart_downtime"]
    rows = [
        ["closed loop",
         f"{asc['closed_loop']['slo_good_fraction']:.3f}",
         f"{ctrl['reconfigurations']} reconfigs"],
        ["static small",
         f"{asc['static_small']['slo_good_fraction']:.3f}",
         "equal split"],
        ["static large",
         f"{asc['static_large']['slo_good_fraction']:.3f}",
         "hot-peak-sized"],
        ["mean restart downtime s",
         f"{ctrl['mean_restart_downtime']:.2f}",
         f"cache off: {off_downtime:.2f}"],
        ["GPU-seconds vs statics",
         f"{asc['gpu_seconds_ratio']['vs_small']:.3f}",
         f"vs large {asc['gpu_seconds_ratio']['vs_large']:.3f}"],
        ["twin runs identical", asc_gate["twin_identical"], "determinism"],
    ]
    asc_table = format_table(
        ["autoscale (in-SLO fraction of offered)", "value", "note"], rows,
        title=f"Online repartitioning "
              f"(gate {'PASS' if asc_gate['pass'] else 'FAIL'})")
    clu = report["cluster"]
    clu_gate = clu["gate"]
    contest = clu["contest"]
    rows = [
        ["greedy FFD", contest["greedy"]["gpus_used"],
         f"{contest['greedy']['in_slo_fraction']:.3f}",
         f"{contest['greedy']['wall_seconds']:.2f}s"],
        ["repacking optimiser", contest["optimized"]["gpus_used"],
         f"{contest['optimized']['in_slo_fraction']:.3f}",
         f"{contest['optimized']['wall_seconds']:.2f}s"],
        ["rejected functions", len(contest["optimized"]["rejected"]),
         "typed infeasible", ""],
        ["max weighted MPS cap sum", contest["max_weighted_cap_sum"],
         "must be <= 100", ""],
        ["twin runs identical", clu_gate["twin_identical"],
         "determinism", ""],
    ]
    clu_table = format_table(
        ["cluster packer", "GPUs used", "in-SLO", "note"], rows,
        title=f"Cluster placement ({contest['n_gpus']} GPUs, "
              f"{contest['n_functions']} functions, "
              f"gate {'PASS' if clu_gate['pass'] else 'FAIL'})")
    out = (f"{micro}\n\n{sweeps}\n\n{scale_table}\n"
           f"streaming vs legacy speedup: {scale['speedup']:.2f}x"
           f"\n\n{sharded_table}\n{sharded_note}"
           f"\n\n{res_table}"
           f"\n\n{asc_table}"
           f"\n\n{clu_table}")
    if report.get("profile"):
        prof = report["profile"]
        rows = [[s["site"].split("/src/")[-1], f"{s['events']:,}",
                 f"{s['wall_pct']:.1f}%"]
                for s in prof["top_sites"]]
        prof_table = format_table(
            ["callback site", "events", "wall %"], rows,
            title=f"Event-loop profile ({prof['events']:,} events, "
                  f"{prof['distinct_sites']} sites, "
                  f"{prof['wall_seconds_in_callbacks']:.2f}s in callbacks)")
        out += f"\n\n{prof_table}"
    return out + f"\n\nwrote {path}"


def _cmd_cluster(args, ctx) -> str:
    """``repro cluster``: pack the placement contest, print the score.

    The written JSON strips the ``wall_seconds`` timings — everything
    else in the contest payload is deterministic arithmetic, so twin
    invocations at the same ``--functions``/``--seed`` must produce
    byte-identical files (the CI cluster smoke diffs exactly that).
    """
    import json

    from repro.bench.cluster_experiments import run_contest

    contest = run_contest(n_functions=args.functions, seed=args.seed)
    if args.out:
        payload = json.loads(json.dumps(contest))  # deep copy
        for packer in ("greedy", "optimized"):
            payload[packer].pop("wall_seconds", None)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    rows = []
    for label, key in (("greedy FFD", "greedy"),
                       ("repacking optimiser", "optimized")):
        score = contest[key]
        rows.append([label, score["gpus_used"],
                     f"{score['in_slo_fraction']:.3f}",
                     f"{score['served_in_slo_rps']:.1f}",
                     len(score["rejected"]),
                     f"{score['wall_seconds']:.2f}s"])
    table = format_table(
        ["packer", "GPUs used", "in-SLO", "served rps", "rejected", "wall"],
        rows,
        title=f"Cluster placement — {contest['n_gpus']} GPUs, "
              f"{contest['n_functions']} functions, seed {contest['seed']}")
    saved = contest["greedy"]["gpus_used"] - contest["optimized"]["gpus_used"]
    table += (f"\nrepacking freed {saved} GPUs; max weighted MPS cap sum "
              f"{contest['max_weighted_cap_sum']} (bound 100)")
    if contest["optimized"]["rejected"]:
        table += ("\nrejected: "
                  + ", ".join(contest["optimized"]["rejected"]))
    if args.out:
        table += f"\nwrote {args.out}"
    return table


def _cmd_serve(args, ctx) -> str:
    import json

    from repro.bench.resilience_experiments import (
        DEFAULT_DEADLINE_SECONDS,
        DEFAULT_RATE_RPS,
        run_resilient_fleet,
    )
    from repro.faas.chaos import FaultPlan

    if args.autoscale:
        return _serve_autoscale(args)
    rate = args.rate if args.rate is not None else DEFAULT_RATE_RPS
    slo = args.slo if args.slo is not None else DEFAULT_DEADLINE_SECONDS
    if args.shards is not None or args.cells is not None:
        return _serve_sharded(args, rate, slo)
    plan = FaultPlan.load(args.faults) if args.faults else None
    if plan is None and args.chaos:
        from repro.bench.resilience_experiments import canonical_fault_plan

        plan = canonical_fault_plan(args.requests / rate, seed=args.seed)
    prof = None
    if getattr(args, "profile", False):
        from repro.profile import profiling

        with profiling() as prof:
            report = run_resilient_fleet(
                args.mode, args.requests, rate_rps=rate,
                deadline_seconds=slo, seed=args.seed, plan=plan)
        report["profile"] = prof.report(top=15)
    else:
        report = run_resilient_fleet(
            args.mode, args.requests, rate_rps=rate, deadline_seconds=slo,
            seed=args.seed, plan=plan)
    report.pop("ecc_log")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    lat = report["latency"] or {}
    rows = [
        ["offered", report["offered"]],
        ["completed", report["completed"]],
        ["shed", report["shed"]],
        ["failed", report["failed"]],
        ["lost", report["lost"]],
        ["SLO attainment", f"{report['slo_attainment']:.3f}"],
        ["goodput rps", f"{report['goodput_rps']:.3f}"],
        ["throughput rps", f"{report['throughput_rps']:.3f}"],
        ["retries", report["retries"]],
        ["hedges", report["hedges"]],
        ["amplification", f"{report['amplification']:.3f}"],
        ["breaker opens", report["breaker_opens"]],
        ["faults applied", report["faults_applied"]],
        ["mean latency s", f"{lat.get('mean', 0.0):.3f}"],
        ["p95 latency s", f"{lat.get('p95', 0.0):.3f}"],
    ]
    table = format_table(
        ["metric", "value"], rows,
        title=f"Chaos serving — {args.mode}, {args.requests} requests "
              f"at {rate:g} rps, SLO {slo:g}s")
    if prof is not None:
        import json as _json

        table += "\n" + _json.dumps(report["profile"], indent=2)
    if args.out:
        table += f"\nwrote {args.out}"
    return table


def _serve_sharded(args, rate: float, slo: float) -> str:
    """``repro serve --shards N``: the fleet scenario, cell-sharded.

    The written JSON carries only the deterministic payload — raw
    events are summarised by the canonical digest and the
    ``execution`` section (pids, RSS, respawns) is dropped — so twin
    runs at any two shard counts must produce byte-identical files,
    which is exactly what the CI determinism gate diffs.
    """
    import json

    from repro.workloads.shardcells import sharded_fleet_report

    if args.faults:
        raise SystemExit(
            "serve: --faults replays one explicit plan and cannot be "
            "split across cells; use --chaos for per-cell canonical "
            "plans with --shards/--cells")
    n_shards = args.shards if args.shards is not None else 1
    n_cells = args.cells if args.cells is not None else max(1, n_shards)
    report = sharded_fleet_report(
        args.mode, args.requests, n_cells=n_cells, n_shards=n_shards,
        rate_rps=rate, deadline_seconds=slo, seed=args.seed,
        chaos=args.chaos, epoch_seconds=args.epoch)
    merged = report["merged"]
    if args.out:
        payload = {k: v for k, v in report.items()
                   if k not in ("events", "execution")}
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    rows = [
        ["cells", n_cells],
        ["shards", report["execution"]["n_shards"]],
        ["epochs", report["execution"]["epochs"]],
        ["offered", merged["offered"]],
        ["completed", merged["completed"]],
        ["lost", merged["lost"]],
        ["SLO attainment", f"{merged['slo_attainment']:.3f}"],
        ["faults applied", merged["faults_applied"]],
        ["engine events", merged["events_processed"]],
        ["merged completions", merged["n_events"]],
        ["events digest", merged["events_digest"][:16]],
        ["mean latency s", f"{merged['latency']['mean']:.3f}"],
        ["p95 latency s", f"{merged['latency']['p95']:.3f}"],
    ]
    table = format_table(
        ["metric", "value"], rows,
        title=f"Sharded chaos serving — {args.mode}, {n_cells} cells x "
              f"{args.requests} requests at {rate:g} rps"
              + (", canonical chaos" if args.chaos else ""))
    if args.out:
        table += f"\nwrote {args.out}"
    return table


def _autoscale_plan(args):
    """Resolve ``--faults``/``--chaos`` for the autoscale serve paths."""
    from repro.faas.chaos import FaultPlan

    if args.faults:
        return FaultPlan.load(args.faults)
    if args.chaos:
        from repro.bench.autoscale_experiments import (
            canonical_control_plane_plan,
        )

        return canonical_control_plane_plan(args.horizon, seed=args.seed)
    return None


def _serve_autoscale(args) -> str:
    """``repro serve --autoscale``: the closed loop on the diurnal trace."""
    import json

    from repro.bench.autoscale_experiments import (
        STATIC_SMALL,
        run_autoscale_fleet,
    )

    if args.shards is not None or args.cells is not None:
        return _serve_autoscale_sharded(args)
    plan = _autoscale_plan(args)
    report = run_autoscale_fleet(args.horizon, True, STATIC_SMALL,
                                 seed=args.seed, plan=plan)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    ctrl = report["autoscaler"]
    rows = [
        ["offered", report["offered"]],
        ["in-SLO", report["slo_ok"]],
        ["lost", report["lost"]],
        ["in-SLO fraction of offered",
         f"{report['slo_good_fraction']:.3f}"],
        ["provisioned GPU-seconds", f"{report['gpu_seconds']:.1f}"],
        ["controller ticks", ctrl["ticks"]],
        ["reconfigurations", ctrl["reconfigurations"]],
        ["replica restarts", ctrl["replica_restarts"]],
        ["weight-cache hits", ctrl["weight_cache_hits"]],
        ["reconfig downtime s", f"{ctrl['reconfiguration_downtime']:.1f}"],
        ["mean restart downtime s",
         f"{ctrl['mean_restart_downtime']:.2f}"],
    ]
    if plan is not None:
        rows += [
            ["faults applied", report["faults_applied"]],
            ["resize aborts", ctrl["resize_aborts"]],
            ["rollbacks verified", ctrl["resize_rollbacks"]],
            ["resize retries", ctrl["resize_retries"]],
            ["breaker opens", ctrl["resize_breaker_opens"]],
            ["degraded ticks", ctrl["degraded_ticks"]],
        ]
    for name, pct in report["final_pcts"].items():
        rows.append([f"final pct {name}",
                     f"{pct}% (from {report['initial_pcts'][name]}%)"])
    table = format_table(
        ["metric", "value"], rows,
        title=f"Online repartitioning — diurnal two-function trace, "
              f"{args.horizon:g}s horizon")
    if args.out:
        table += f"\nwrote {args.out}"
    return table


def _serve_autoscale_sharded(args) -> str:
    """``repro serve --autoscale --shards N``: sharded diurnal contest."""
    import json

    from repro.bench.autoscale_experiments import STATIC_SMALL
    from repro.workloads.shardcells import sharded_autoscale_report

    n_shards = args.shards if args.shards is not None else 1
    n_cells = args.cells if args.cells is not None else max(1, n_shards)
    plan = _autoscale_plan(args)
    report = sharded_autoscale_report(
        args.horizon, True, STATIC_SMALL, n_cells=n_cells,
        n_shards=n_shards, seed=args.seed, epoch_seconds=args.epoch,
        fault_plan_json=None if plan is None else plan.to_json())
    merged = report["merged"]
    if args.out:
        payload = {k: v for k, v in report.items()
                   if k not in ("events", "execution")}
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    rows = [
        ["cells", n_cells],
        ["shards", report["execution"]["n_shards"]],
        ["epochs", report["execution"]["epochs"]],
        ["offered", merged["offered"]],
        ["in-SLO", merged["slo_ok"]],
        ["lost", merged["lost"]],
        ["in-SLO fraction of offered",
         f"{merged['slo_good_fraction']:.3f}"],
        ["provisioned GPU-seconds", f"{merged['gpu_seconds']:.1f}"],
        ["merged completions", merged["n_events"]],
        ["events digest", merged["events_digest"][:16]],
    ]
    if plan is not None:
        rows += [
            ["faults applied", merged["faults_applied"]],
            ["resize aborts", merged["resize_aborts"]],
            ["rollbacks verified", merged["resize_rollbacks"]],
        ]
    table = format_table(
        ["metric", "value"], rows,
        title=f"Sharded online repartitioning — {n_cells} cells, "
              f"{args.horizon:g}s horizon"
              + (", faulted" if plan is not None else ""))
    if args.out:
        table += f"\nwrote {args.out}"
    return table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for sweeps (default: all CPUs, or $REPRO_JOBS)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the on-disk sweep result cache for this invocation")
    parser.add_argument(
        "--stats", action="store_true",
        help="print a one-line engine summary (events/sec, allocator "
             "counters) after the command output; in-process sims only, "
             "so combine with --jobs 1 for complete counts")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="per-layer CNN FLOPs")
    p.add_argument("--models", nargs="+", default=["alexnet", "vgg16",
                                                   "resnet50", "resnet101"],
                   choices=sorted(CNN_ZOO))
    p.add_argument("--batch", type=int, default=1)
    p.set_defaults(fn=_cmd_fig1)

    p = sub.add_parser("fig2", help="LLaMa-2 latency vs SMs")
    p.add_argument("--step", type=int, default=10)
    p.set_defaults(fn=_cmd_fig2)

    p = sub.add_parser("fig3", help="molecular-design timeline")
    p.add_argument("--width", type=int, default=96)
    p.set_defaults(fn=_cmd_fig3)

    p = sub.add_parser("fig4", help="multiplexed completion time")
    p.add_argument("--completions", type=int, default=100)
    p.set_defaults(fn=_cmd_fig4)

    p = sub.add_parser("fig5", help="multiplexed inference latency")
    p.add_argument("--completions", type=int, default=100)
    p.set_defaults(fn=_cmd_fig5)

    p = sub.add_parser("table1", help="multiplexing technique comparison")
    p.add_argument("--clients", type=int, default=4)
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("overheads", help="§6 cold start & repartitioning")
    p.set_defaults(fn=_cmd_overheads)

    p = sub.add_parser("rightsizing", help="§7 right-sizing study")
    p.set_defaults(fn=_cmd_rightsizing)

    p = sub.add_parser("weightcache", help="§7 weight-cache ablation")
    p.add_argument("--repartitions", type=int, default=4)
    p.set_defaults(fn=_cmd_weightcache)

    p = sub.add_parser("bench", help="time hot paths & sweeps, write JSON")
    p.add_argument("--profile", action="store_true",
                   help="also run the micro suite under the event-loop "
                        "profiler; per-site attribution lands in the "
                        "report's 'profile' section")
    p.add_argument("--quick", action="store_true",
                   help="reduced sizes (CI smoke run)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="output path (default: BENCH_<date>.json)")
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser("cluster",
                       help="pack the fleet-scale placement contest")
    p.add_argument("--functions", type=int, default=50, metavar="N",
                   help="contest size in functions (default: 50)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the deterministic contest JSON "
                        "(timings stripped; twin runs diff identical)")
    p.set_defaults(fn=_cmd_cluster)

    p = sub.add_parser("serve",
                       help="fault-tolerant serving fleet, optional chaos")
    p.add_argument("--mode", default="mig-mps",
                   choices=("mig-mps", "mps", "timeshare"),
                   help="fleet sharing mode (default: mig-mps)")
    p.add_argument("--requests", type=int, default=800,
                   help="open-loop requests to offer (default: 800)")
    p.add_argument("--rate", type=float, default=None, metavar="RPS",
                   help="offered load (default: bench scenario rate)")
    p.add_argument("--slo", type=float, default=None, metavar="SECONDS",
                   help="per-request deadline (default: bench scenario SLO)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="fault plan to replay (see repro.faas.chaos); "
                        "with --autoscale, control-plane kinds hit the "
                        "resize/telemetry machinery")
    p.add_argument("--chaos", action="store_true",
                   help="replay the canonical bench fault plan (per "
                        "cell when sharded; with --autoscale, the "
                        "canonical control-plane plan)")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="run the scenario sharded over N worker "
                        "processes (default: legacy single process)")
    p.add_argument("--cells", type=int, default=None, metavar="K",
                   help="device cells in the sharded fleet "
                        "(default: one per shard)")
    p.add_argument("--epoch", type=float, default=60.0, metavar="SECONDS",
                   help="sharded epoch-barrier spacing in sim seconds "
                        "(results are invariant to it; default: 60)")
    p.add_argument("--autoscale", action="store_true",
                   help="run the online-repartitioning closed loop on "
                        "the diurnal two-function trace instead")
    p.add_argument("--horizon", type=float, default=600.0,
                   metavar="SECONDS",
                   help="autoscale trace horizon (default: 600)")
    p.add_argument("--profile", action="store_true",
                   help="run under the event-loop profiler and append "
                        "per-site attribution JSON (single-process "
                        "serve only; sharded workers are not captured)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write the resilience report as JSON")
    p.set_defaults(fn=_cmd_serve)

    return parser


#: Subcommand names, used to split a multi-command argv into groups.
COMMANDS = ("fig1", "fig2", "fig3", "fig4", "fig5", "table1", "overheads",
            "rightsizing", "weightcache", "bench", "cluster", "serve")


def _split_commands(argv: Sequence[str]) -> tuple[list[str], list[list[str]]]:
    """Split argv into (global flags, one token group per subcommand)."""
    prefix: list[str] = []
    groups: list[list[str]] = []
    current: Optional[list[str]] = None
    for token in argv:
        if token in COMMANDS:
            current = [token]
            groups.append(current)
        elif current is None:
            prefix.append(token)
        else:
            current.append(token)
    return prefix, groups


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = build_parser()
    prefix, groups = _split_commands(argv)
    if not groups:
        parser.parse_args(argv)  # no subcommand: let argparse report it
        return 2  # pragma: no cover - parse_args exits above
    parsed = [parser.parse_args(prefix + group) for group in groups]
    ctx = RunContext(jobs=parsed[0].jobs, no_cache=parsed[0].no_cache)
    if not parsed[0].stats:
        for args in parsed:
            print(args.fn(args, ctx))
        return 0
    from repro.sim.stats import collecting

    with collecting() as stats:
        for args in parsed:
            print(args.fn(args, ctx))
    print(stats.summary_line())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
