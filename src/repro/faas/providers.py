"""Execution providers: where worker nodes come from (§2.2.1).

Parsl separates *how* tasks run (executors) from *where* resources come
from (providers).  The paper's testbed uses the ``LocalProvider`` on a
24-core, 2-GPU VM; we also supply a simulated ``SlurmProvider`` whose
nodes arrive after a queue wait, since Globus Compute endpoints commonly
sit behind SLURM.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.sim.core import Environment, Event
from repro.sim.resources import Resource
from repro.gpu.device import GpuClient, SimulatedGPU
from repro.gpu.mig import MigManager
from repro.gpu.mps import MpsControlDaemon
from repro.gpu.specs import GPUSpec
from repro.gpu.transfer import TransferEngine
from repro.faas.environment import FunctionEnvironment

__all__ = ["ComputeNode", "LocalProvider", "SlurmProvider", "StaticProvider"]

_node_ids = itertools.count()


class ComputeNode:
    """A simulated compute node: CPU cores plus zero or more GPUs."""

    def __init__(self, env: Environment, cores: int,
                 gpu_specs: Sequence[GPUSpec] = (), name: str | None = None):
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.env = env
        self.name = name or f"node{next(_node_ids)}"
        self.cpu = Resource(env, cores, name=f"{self.name}-cpu")
        self.gpus = [
            SimulatedGPU(env, spec, name=f"{self.name}-gpu{i}")
            for i, spec in enumerate(gpu_specs)
        ]
        self.mps_daemons = [MpsControlDaemon(gpu) for gpu in self.gpus]
        self._mig_managers: dict[int, MigManager] = {}
        #: Optional GPU-resident weight cache (repro.partition.weightcache).
        self.weight_cache = None
        #: Shared host->device transfer path: concurrent model loads on
        #: this node contend here (§6's cold-start component 3).
        self.transfer_engine = TransferEngine(env, name=f"{self.name}-h2d")
        #: Container image cache (§6's cold-start component 1).
        from repro.faas.images import NodeImageCache

        self.image_cache = NodeImageCache(env)

    @property
    def cores(self) -> int:
        return self.cpu.capacity

    def start_mps(self, gpu_index: int | None = None) -> None:
        """Launch the MPS daemon(s) — the paper's pre-task bash step."""
        indices = range(len(self.gpus)) if gpu_index is None else [gpu_index]
        for i in indices:
            if not self.mps_daemons[i].running:
                self.mps_daemons[i].start()

    def mig_manager(self, gpu_index: int) -> MigManager:
        """The MIG controller for one GPU (created on first use)."""
        if gpu_index not in self._mig_managers:
            self._mig_managers[gpu_index] = MigManager(self.gpus[gpu_index])
        return self._mig_managers[gpu_index]

    def make_gpu_client(self, fenv: FunctionEnvironment,
                        client_name: str) -> Optional[GpuClient]:
        """Materialise a function environment into a GPU client.

        This is the simulated equivalent of what the CUDA runtime does
        when a function process starts: honour ``CUDA_VISIBLE_DEVICES``
        (index or MIG UUID) and, if the MPS daemon is up,
        ``CUDA_MPS_ACTIVE_THREAD_PERCENTAGE``.
        """
        device = fenv.visible_device
        if device is None:
            return None
        if fenv.is_mig_uuid():
            for manager in self._mig_managers.values():
                try:
                    return manager.lookup(device).client(client_name)
                except KeyError:
                    continue
            raise KeyError(
                f"{self.name}: CUDA_VISIBLE_DEVICES={device!r} does not "
                "match any MIG instance"
            )
        index = int(device)
        if not 0 <= index < len(self.gpus):
            raise IndexError(
                f"{self.name}: CUDA_VISIBLE_DEVICES={device!r} but the node "
                f"has {len(self.gpus)} GPUs"
            )
        daemon = self.mps_daemons[index]
        pct = fenv.mps_percentage
        if pct is not None:
            if not daemon.running:
                raise RuntimeError(
                    f"{self.name}: CUDA_MPS_ACTIVE_THREAD_PERCENTAGE set "
                    "but nvidia-cuda-mps-control is not running on "
                    f"gpu{index}; start it first (§4.1)"
                )
            return daemon.client(client_name, active_thread_percentage=pct)
        if daemon.running:
            return daemon.client(client_name)
        return self.gpus[index].timeshare_client(client_name)


class LocalProvider:
    """Resources from the local system (workstation, laptop) — §2.2.1."""

    def __init__(self, cores: int = 24, gpu_specs: Sequence[GPUSpec] = ()):
        self.cores = cores
        self.gpu_specs = tuple(gpu_specs)

    def provision(self, env: Environment) -> tuple[Event, list[ComputeNode]]:
        """Returns (ready-event, nodes); local nodes are ready immediately."""
        node = ComputeNode(env, self.cores, self.gpu_specs)
        ready = env.event(name="local-ready")
        ready.succeed()
        return ready, [node]


class StaticProvider:
    """Hands out pre-built nodes.

    Used when the node must be prepared *before* the executor starts —
    e.g. MIG instances have to exist so their UUIDs can be listed in
    ``available_accelerators`` (Listing 3's workflow).
    """

    def __init__(self, nodes: Sequence[ComputeNode]):
        if not nodes:
            raise ValueError("StaticProvider needs at least one node")
        self._nodes = list(nodes)

    def provision(self, env: Environment) -> tuple[Event, list[ComputeNode]]:
        for node in self._nodes:
            if node.env is not env:
                raise ValueError(
                    "StaticProvider nodes belong to a different Environment"
                )
        ready = env.event(name="static-ready")
        ready.succeed()
        return ready, list(self._nodes)


class SlurmProvider:
    """Nodes obtained through a batch scheduler, after a queue wait."""

    def __init__(self, nodes: int = 1, cores_per_node: int = 24,
                 gpu_specs: Sequence[GPUSpec] = (),
                 queue_wait_seconds: float = 60.0, partition: str = "gpu"):
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        if queue_wait_seconds < 0:
            raise ValueError("queue_wait_seconds must be non-negative")
        self.nodes = nodes
        self.cores_per_node = cores_per_node
        self.gpu_specs = tuple(gpu_specs)
        self.queue_wait_seconds = queue_wait_seconds
        self.partition = partition

    def provision(self, env: Environment) -> tuple[Event, list[ComputeNode]]:
        """Returns (ready-event, nodes); ready fires after the queue wait."""
        nodes = [
            ComputeNode(env, self.cores_per_node, self.gpu_specs)
            for _ in range(self.nodes)
        ]
        ready = env.timeout(self.queue_wait_seconds, value=nodes)
        return ready, nodes
