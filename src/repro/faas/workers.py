"""Worker processes and the TaskContext handed to GPU apps.

A worker is the unit the paper's contribution configures: each worker is
pinned to an accelerator partition via its function environment
(``CUDA_VISIBLE_DEVICES`` + ``CUDA_MPS_ACTIVE_THREAD_PERCENTAGE``), pays
its cold start once, then pulls tasks from the executor queue forever.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.core import Environment, Event, Timeout
from repro.sim.process import Interrupt, Process
from repro.sim.resources import Store
from repro.gpu.device import GpuClient
from repro.gpu.kernel import Kernel
from repro.faas.coldstart import ColdStartModel
from repro.faas.environment import FunctionEnvironment
from repro.faas.futures import TaskRecord, TaskState
from repro.faas.providers import ComputeNode

__all__ = ["TaskContext", "Worker"]


class TaskContext:
    """The handle a ``@gpu_app`` generator receives as its first argument."""

    def __init__(self, env: Environment, worker: "Worker",
                 gpu: Optional[GpuClient], node: ComputeNode):
        self.env = env
        self.worker = worker
        self.gpu = gpu
        self.node = node

    @property
    def now(self) -> float:
        return self.env.now

    def sleep(self, seconds: float) -> Timeout:
        """Idle wait (I/O, polling, think time)."""
        return self.env.timeout(seconds)

    def compute(self, seconds: float) -> Timeout:
        """Host-side CPU work of the function body."""
        return self.env.timeout(seconds)

    def launch(self, kernel: Kernel) -> Event:
        """Launch a kernel on this worker's GPU partition."""
        if self.gpu is None:
            raise RuntimeError(
                f"worker {self.worker.name!r} has no accelerator assigned; "
                "configure available_accelerators on its executor"
            )
        return self.gpu.launch(kernel)

    def load_model(self, key: str, nbytes: float, load_seconds: float):
        """Load model weights into the partition's memory (generator).

        Allocates ``nbytes`` in device memory and waits ``load_seconds``.
        Idempotent per worker: a warm worker that already holds ``key``
        pays nothing (the model stays resident between invocations, which
        is why §6 singles out cold starts).  If the node carries a
        GPU-resident weight cache (:mod:`repro.partition.weightcache`)
        holding ``key`` on this GPU, the load is skipped and the weights
        are shared across workers — §7's future-work optimisation.
        Returns True when the load was skipped (warm worker or cache hit).
        """
        if self.gpu is None:
            raise RuntimeError("load_model requires an accelerator")
        if key in self.worker.loaded_models:
            return True
        cache = self.node.weight_cache
        if cache is not None:
            hit = cache.acquire(self.gpu, key, nbytes)
            self.worker.loaded_models.add(key)
            if hit:
                return True
            # Miss: the cache now accounts for the weights; stream them in
            # through the node's shared host->device path.
            yield self.node.transfer_engine.copy(load_seconds)
            return False
        self.gpu.alloc(nbytes)
        self.worker.loaded_models.add(key)
        yield self.node.transfer_engine.copy(load_seconds)
        return False


class Worker:
    """One pilot-job worker: cold start, then a pull loop."""

    def __init__(self, env: Environment, name: str, node: ComputeNode,
                 queue: Store, fenv: FunctionEnvironment,
                 cold_start: ColdStartModel, executor: "ExecutorBase",  # noqa: F821
                 ready: Event | None = None, image=None, registry=None):
        self.env = env
        self.name = name
        self.node = node
        self.queue = queue
        self.fenv = fenv
        self.cold_start = cold_start
        self.executor = executor
        #: Optional container image + registry (dynamic §6 component 1).
        self.image = image
        self.registry = registry
        self.gpu: Optional[GpuClient] = None
        #: Model keys resident in this worker's partition (warm starts).
        self.loaded_models: set[str] = set()
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.started = False
        #: False once the worker has crashed or been shut down.
        self.alive = True
        #: When True, the worker exits after its current task (scale-in).
        self.draining = False
        self._ready = ready
        self._current_record: Optional[TaskRecord] = None
        self._inner: Optional[Process] = None
        self._pending_get: Optional[Event] = None
        self.process = env.process(self._run())

    def crash(self, cause: Exception | None = None) -> None:
        """Kill the worker now (failure injection / shutdown).

        The in-flight task, if any, fails with ``cause`` and goes through
        the executor's retry path; the worker's GPU context dies with it
        (memory freed, loaded models lost) — exactly what §6's process
        restart semantics imply.
        """
        if not self.alive:
            return
        self.alive = False
        if cause is None:
            cause = RuntimeError(f"{self.name}: worker crashed")
        if self._inner is not None and self._inner.is_alive:
            self._inner.interrupt(cause)
            self._inner.defuse()
        if self.process.is_alive:
            self.process.interrupt(cause)

    def _run(self):
        try:
            if self._ready is not None and not self._ready.processed:
                yield self._ready
            # Cold start component 1, dynamic part: pull + extract the
            # container image unless the node already caches it.
            if self.image is not None:
                if self.registry is None:
                    raise RuntimeError(
                        f"{self.name}: worker has an image but no registry"
                    )
                yield from self.node.image_cache.ensure(self.image,
                                                        self.registry)
            # Cold start (§6 components 1 and 2): function init + context.
            uses_gpu = self.fenv.visible_device is not None
            startup = self.cold_start.worker_start_seconds(uses_gpu)
            if startup > 0:
                yield self.env.timeout(startup)
            if uses_gpu:
                self.gpu = self.node.make_gpu_client(self.fenv, self.name)
            self.started = True
            while True:
                if self.draining:
                    self.alive = False
                    return
                self._pending_get = self.queue.get()
                record: TaskRecord = yield self._pending_get
                self._pending_get = None
                self._current_record = record
                yield from self._execute(record)
                self._current_record = None
        except Interrupt as interrupt:
            self.alive = False
            # An idle worker dies while a queue get is outstanding: the
            # get must not swallow a future task.  If it already fired,
            # the popped task goes back to the queue for a live worker.
            pending = self._pending_get
            self._pending_get = None
            if pending is not None:
                if not pending.triggered:
                    self.queue.cancel(pending)
                else:
                    self.queue.put(pending.value)
            record = self._current_record
            self._current_record = None
            if record is not None:
                record.end_time = self.env.now
                self.tasks_failed += 1
                cause = interrupt.cause
                if not isinstance(cause, Exception):
                    cause = RuntimeError(f"{self.name}: worker crashed")
                self.executor._task_failed(record, cause)
        finally:
            if self.gpu is not None and self.gpu.alive:
                self.gpu.close()
                self.gpu = None

    def _execute(self, record: TaskRecord):
        env = self.env
        record.state = TaskState.RUNNING
        record.start_time = env.now
        record.worker_name = self.name
        if self.executor.hub is not None:
            self.executor.hub.record(env.now, record, "running")
        app = record.fn
        cores = getattr(app, "cpu_cores", 1)
        grant = yield self.node.cpu.request(min(cores, self.node.cpu.capacity))
        try:
            if app.kind == "gpu":
                ctx = TaskContext(env, self, self.gpu, self.node)
                inner = env.process(app.fn(ctx, *record.args, **record.kwargs))
                inner.defuse()
                self._inner = inner
                yield inner
                self._inner = None
                if not inner.ok:
                    raise inner.value
                result = inner.value
                if app.walltime > 0:
                    yield env.timeout(app.walltime)
            else:
                result = app.fn(*record.args, **record.kwargs)
                if app.kind == "bash" and not isinstance(result, str):
                    raise TypeError(
                        f"bash app {app.name!r} must return the command "
                        f"line as a string, got {type(result).__name__}"
                    )
                if app.walltime > 0:
                    yield env.timeout(app.walltime)
        except Interrupt:
            # Worker crash: handled (and the task failed) by _run's
            # interrupt handler, not the per-task failure path.
            raise
        except Exception as exc:  # noqa: BLE001 - app failure path
            record.end_time = env.now
            self.tasks_failed += 1
            self.executor._task_failed(record, exc)
            return
        finally:
            self._inner = None
            self.node.cpu.release(grant.amount)
        record.end_time = env.now
        record.state = TaskState.DONE
        self.tasks_completed += 1
        self.executor._task_done(record, result)
