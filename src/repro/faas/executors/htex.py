"""The HighThroughputExecutor with fine-grained GPU partitioning.

This module is the paper's contribution (§4).  The stock Parsl
``HighThroughputExecutor`` can pin each worker to a whole accelerator via
``available_accelerators``; the paper's enhancements, reproduced here:

1. ``available_accelerators`` entries may *repeat* a GPU id to multiplex
   it across several workers (Listing 2), and may be *MIG instance UUIDs*
   instead of device indices (Listing 3);
2. a new ``gpu_percentage`` option carries a per-worker SM percentage,
   enforced by exporting ``CUDA_MPS_ACTIVE_THREAD_PERCENTAGE`` into the
   worker's environment before its process starts (§4.1);
3. the executor can launch ``nvidia-cuda-mps-control`` on its nodes
   before any GPU function runs (``start_mps=True``; the paper does this
   "with bash operations").

Example (Listing 2's configuration)::

    HighThroughputExecutor(
        label="gpu",
        available_accelerators=["1", "2", "4"],
        gpu_percentage=[50, 25, 30],
        provider=LocalProvider(cores=24, gpu_specs=[A100_40GB] * 5),
    )
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.faas.coldstart import ColdStartModel
from repro.faas.environment import FunctionEnvironment
from repro.faas.executors.base import ExecutorBase
from repro.faas.providers import ComputeNode, LocalProvider
from repro.faas.workers import Worker

__all__ = ["HighThroughputExecutor"]


class HighThroughputExecutor(ExecutorBase):
    """Pilot-job executor with per-worker accelerator partition binding.

    Parameters
    ----------
    label:
        Executor name referenced by app ``executors=[...]`` lists.
    max_workers:
        Worker count.  Defaults to one worker per ``available_accelerators``
        entry, or to the node's core count for CPU-only executors.
    available_accelerators:
        ``int`` *n* (shorthand for GPUs ``"0" .. "n-1"``) or an explicit
        list of GPU indices / MIG UUIDs.  Repeat an entry to share that
        accelerator between several workers.
    gpu_percentage:
        Optional list parallel to ``available_accelerators``: the MPS SM
        percentage for each worker slot (the paper's new option).
        Requires MPS; ``start_mps`` therefore defaults to True when set.
    start_mps:
        Launch the MPS control daemon on every node GPU at startup.
    provider:
        Where nodes come from (default: a CPU-only LocalProvider).
    address:
        Kept for Parsl config compatibility; unused by the simulation.
    """

    def __init__(
        self,
        label: str = "htex",
        max_workers: Optional[int] = None,
        available_accelerators: int | Sequence[str] = (),
        gpu_percentage: Optional[Sequence[int]] = None,
        start_mps: Optional[bool] = None,
        provider: Optional[LocalProvider] = None,
        cold_start: Optional[ColdStartModel] = None,
        address: str = "localhost",
        image=None,
        registry=None,
    ):
        super().__init__(label)
        if isinstance(available_accelerators, int):
            if available_accelerators < 0:
                raise ValueError("available_accelerators must be >= 0")
            accelerators = [str(i) for i in range(available_accelerators)]
        else:
            accelerators = [str(a) for a in available_accelerators]
        if gpu_percentage is not None:
            if not accelerators:
                raise ValueError(
                    "gpu_percentage requires available_accelerators"
                )
            if len(gpu_percentage) != len(accelerators):
                raise ValueError(
                    f"gpu_percentage has {len(gpu_percentage)} entries for "
                    f"{len(accelerators)} accelerator slots; they must match"
                )
            for pct in gpu_percentage:
                if not 0 < pct <= 100:
                    raise ValueError(
                        f"gpu_percentage entries must be in (0, 100], "
                        f"got {pct}"
                    )
        self.accelerators = accelerators
        self.gpu_percentage = (
            list(gpu_percentage) if gpu_percentage is not None else None
        )
        if start_mps is None:
            # The percentage mechanism only exists under MPS (§4.1).
            start_mps = gpu_percentage is not None
        if self.gpu_percentage is not None and not start_mps:
            raise ValueError(
                "gpu_percentage requires the MPS daemon (start_mps=True)"
            )
        self.start_mps_flag = start_mps
        self.provider = provider if provider is not None else LocalProvider()
        self.cold_start = cold_start if cold_start is not None else ColdStartModel()
        self.address = address
        if image is not None and registry is None:
            raise ValueError("an image requires a registry to pull from")
        self.image = image
        self.registry = registry
        if max_workers is None:
            max_workers = len(accelerators) if accelerators else None
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self._max_workers = max_workers
        self.nodes: list[ComputeNode] = []
        self.workers: list[Worker] = []

    @property
    def max_workers(self) -> int:
        if self._max_workers is not None:
            return self._max_workers
        # CPU-only default: one worker per core of the first node.
        return self.nodes[0].cores if self.nodes else 1

    def _start_workers(self) -> None:
        ready, self.nodes = self.provider.provision(self.env)
        if self.start_mps_flag:
            def _start_all_mps(_ev) -> None:
                for node in self.nodes:
                    node.start_mps()

            if ready.processed:
                _start_all_mps(ready)
            else:
                ready.callbacks.append(_start_all_mps)

        for i in range(self.max_workers):
            node = self.nodes[i % len(self.nodes)]
            fenv = self.worker_environment(i)
            self.workers.append(
                Worker(
                    env=self.env,
                    name=f"{self.label}-worker{i}",
                    node=node,
                    queue=self.queue,
                    fenv=fenv,
                    cold_start=self.cold_start,
                    executor=self,
                    ready=ready,
                    image=self.image,
                    registry=self.registry,
                )
            )

    # -- elasticity (FaaS function-instance scaling) -----------------------
    def scale_out(self, n: int = 1) -> list[Worker]:
        """Add ``n`` workers; each pays its cold start before serving.

        New workers bind to accelerator slots round-robin, exactly like
        the initial pool — scaling a partitioned executor out therefore
        multiplexes the same partitions harder, not wider.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if not self._started:
            raise RuntimeError(f"executor {self.label!r} not started")
        added = []
        base = len(self.workers)
        for i in range(base, base + n):
            node = self.nodes[i % len(self.nodes)]
            worker = Worker(
                env=self.env,
                name=f"{self.label}-worker{i}",
                node=node,
                queue=self.queue,
                fenv=self.worker_environment(i),
                cold_start=self.cold_start,
                executor=self,
                image=self.image,
                registry=self.registry,
            )
            self.workers.append(worker)
            added.append(worker)
        return added

    def scale_in(self, n: int = 1) -> int:
        """Retire up to ``n`` workers without losing tasks.

        Idle workers stop immediately; busy ones drain (finish the task
        in hand, then exit).  Returns the number of workers retired or
        marked draining.  At least one worker always remains.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        live = [w for w in self.workers if w.alive and not w.draining]
        retire = live[max(1, len(live) - n):]
        for worker in retire:
            if worker._current_record is None:
                worker.crash(RuntimeError(f"{worker.name}: scaled in"))
            else:
                worker.draining = True
        self.workers = [w for w in self.workers if w not in retire
                        or w.draining]
        return len(retire)

    @property
    def live_workers(self) -> int:
        return sum(1 for w in self.workers if w.alive)

    def worker_environment(self, index: int) -> FunctionEnvironment:
        """The env vars exported to worker ``index`` (§4's mechanism)."""
        fenv = FunctionEnvironment()
        if self.accelerators:
            slot = index % len(self.accelerators)
            fenv.visible_device = self.accelerators[slot]
            if self.gpu_percentage is not None:
                fenv.mps_percentage = self.gpu_percentage[slot]
        return fenv
