"""Thread-pool executor: Parsl's wrapper over concurrent.futures (§2.2.1).

CPU-only, no cold start, no accelerator binding — the baseline executor
the paper contrasts the HighThroughputExecutor against.
"""

from __future__ import annotations

from repro.faas.coldstart import ColdStartModel
from repro.faas.environment import FunctionEnvironment
from repro.faas.executors.base import ExecutorBase
from repro.faas.providers import ComputeNode
from repro.faas.workers import Worker

__all__ = ["ThreadPoolExecutor"]


class ThreadPoolExecutor(ExecutorBase):
    """A pool of ``max_threads`` CPU workers on one local node."""

    def __init__(self, label: str = "threads", max_threads: int = 2,
                 cores: int | None = None):
        super().__init__(label)
        if max_threads <= 0:
            raise ValueError("max_threads must be positive")
        self.max_threads = max_threads
        self.cores = cores if cores is not None else max_threads
        self.node: ComputeNode | None = None
        self.workers: list[Worker] = []

    def _start_workers(self) -> None:
        self.node = ComputeNode(self.env, self.cores, (),
                                name=f"{self.label}-node")
        # Threads share the parent's warm environment: zero cold start.
        cold = ColdStartModel(function_init_seconds=0.0,
                              gpu_context_seconds=0.0)
        for i in range(self.max_threads):
            self.workers.append(
                Worker(
                    env=self.env,
                    name=f"{self.label}-{i}",
                    node=self.node,
                    queue=self.queue,
                    fenv=FunctionEnvironment(),
                    cold_start=cold,
                    executor=self,
                )
            )
