"""Executor implementations (§2.2.1)."""

from repro.faas.executors.base import ExecutorBase
from repro.faas.executors.thread_pool import ThreadPoolExecutor
from repro.faas.executors.htex import HighThroughputExecutor

__all__ = ["ExecutorBase", "HighThroughputExecutor", "ThreadPoolExecutor"]
