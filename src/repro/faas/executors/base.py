"""Common executor machinery: task queue, completion, retry plumbing."""

from __future__ import annotations

import abc
from typing import Any, Optional

from repro.sim.core import Environment
from repro.sim.resources import Store
from repro.faas.futures import TaskRecord, TaskState

__all__ = ["ExecutorBase"]


class ExecutorBase(abc.ABC):
    """Base class: owns the queue, completion accounting, and retries."""

    def __init__(self, label: str):
        self.label = label
        self.env: Optional[Environment] = None
        self.queue: Optional[Store] = None
        #: Optional MonitoringHub, attached by the DataFlowKernel.
        self.hub = None
        self.tasks_submitted = 0
        self.tasks_completed = 0
        self.tasks_failed = 0
        self._started = False

    # -- lifecycle -----------------------------------------------------------
    def start(self, env: Environment) -> None:
        """Attach to the simulation and stand up workers."""
        if self._started:
            raise RuntimeError(f"executor {self.label!r} already started")
        self.env = env
        self.queue = Store(env, name=f"{self.label}-queue")
        self._start_workers()
        self._started = True

    @abc.abstractmethod
    def _start_workers(self) -> None:
        """Provision resources and launch worker processes."""

    # -- task flow --------------------------------------------------------------
    def submit(self, record: TaskRecord) -> None:
        """Enqueue a launched task for a worker to pick up."""
        if not self._started:
            raise RuntimeError(f"executor {self.label!r} not started")
        record.state = TaskState.LAUNCHED
        self.tasks_submitted += 1
        self.queue.put(record)

    def _task_done(self, record: TaskRecord, result: Any) -> None:
        self.tasks_completed += 1
        if self.hub is not None:
            self.hub.record(self.env.now, record, "done")
        record.future.succeed(result)

    def _task_failed(self, record: TaskRecord, exc: Exception) -> None:
        record.tries += 1
        if record.tries <= record.retries_allowed:
            # Parsl-style retry: the task goes back to the queue.
            record.state = TaskState.LAUNCHED
            if self.hub is not None:
                self.hub.record(self.env.now, record, "retry")
            self.queue.put(record)
            return
        self.tasks_failed += 1
        record.state = TaskState.FAILED
        if self.hub is not None:
            self.hub.record(self.env.now, record, "failed")
        record.future.fail(exc)

    @property
    def outstanding(self) -> int:
        """Tasks submitted but not yet finished."""
        return self.tasks_submitted - self.tasks_completed - self.tasks_failed
