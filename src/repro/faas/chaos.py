"""Composable, reproducible chaos schedules (fault plans).

A :class:`FaultPlan` is a time-ordered list of :class:`FaultEvent`\\ s —
a *schedule*, not a process: given the same plan, every run injects the
identical faults at the identical simulated times, which is what makes
twin-run determinism tests (and CI chaos gates) possible.  Plans are

- **seeded**: :meth:`FaultPlan.exponential` materialises a Poisson fault
  process (exponential inter-arrival times) from a seed once, up front;
- **composable**: :meth:`FaultPlan.merge` interleaves plans by time, so
  independent fault classes (ECC errors, crashes, stragglers) are built
  separately and combined;
- **JSON-serialisable**: :meth:`save`/:meth:`load` round-trip through a
  ``repro-faultplan/2`` document (``/1`` documents still load), so a CI
  job can generate a plan file and hand it to
  ``repro serve --faults plan.json``.  Loading *validates*: an unknown
  ``kind`` or a negative duration is rejected with an error naming the
  offending event, not a mid-run ``ValueError`` deep in
  ``apply_fault``.

Fault targets are stored as raw non-negative integers and resolved
*modulo the victim pool size* at application time, so one plan applies
to fleets of any topology (7 MIG domains or 1 MPS domain) — the basis
of the blast-radius experiment, which replays the identical ECC plan
against both.

:class:`ChaosController` walks a plan inside a simulation and applies
each event to a fleet (anything with an ``apply_fault(event) -> str``
method, e.g. :class:`repro.workloads.fleet.ServingFleet`), logging what
each fault actually hit.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, Optional

import numpy as np

from repro.sim.core import Environment

__all__ = ["FAULT_KINDS", "ChaosController", "FaultEvent", "FaultPlan"]

_SCHEMA = "repro-faultplan/2"
#: Schemas :meth:`FaultPlan.from_json` accepts.  ``/2`` added the four
#: control-plane kinds; ``/1`` documents are a strict subset and load
#: unchanged.
_ACCEPTED_SCHEMAS = ("repro-faultplan/1", _SCHEMA)

#: The fault classes a plan may schedule.
FAULT_KINDS = (
    "ecc",                 # uncorrectable memory error in one fault domain
    "replica_crash",       # one serving replica dies (optional respawn)
    "straggler_replica",   # one replica slows down for `duration` seconds
    "straggler_device",    # a whole device slows down for `duration`
    "launch_failure",      # one replica's next kernel launch is rejected
    "reconfig_stall",      # one replica stops admitting batches briefly
    # -- control-plane kinds (repro-faultplan/2) ----------------------------
    "resize_stuck",        # one replica's resize drain never completes
                           # (`duration` seconds; 0 = until further notice)
    "cache_load_failure",  # one function's cached weights are corrupt: the
                           # next resize-restart misses and reloads
    "sensor_dropout",      # one function's telemetry freezes for `duration`
    "telemetry_corruption",  # one function's offered counter is inflated
                             # by `factor` for `duration` seconds
)


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` is an abstract victim index, reduced modulo the victim
    pool size when applied; ``duration`` and ``factor`` parameterise
    stragglers (slowdown factor > 1) and stalls/respawns.
    """

    time: float
    kind: str
    target: int = 0
    duration: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if self.time < 0:
            raise ValueError(f"fault time must be non-negative, "
                             f"got {self.time!r}")
        if self.target < 0:
            raise ValueError("fault target must be non-negative")
        if self.duration < 0:
            raise ValueError("fault duration must be non-negative")
        if self.factor <= 0:
            raise ValueError("fault factor must be positive")


class FaultPlan:
    """An immutable, time-sorted schedule of :class:`FaultEvent`\\ s."""

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self.events: tuple[FaultEvent, ...] = tuple(sorted(events))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultPlan) and self.events == other.events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds: dict[str, int] = {}
        for ev in self.events:
            kinds[ev.kind] = kinds.get(ev.kind, 0) + 1
        return f"<FaultPlan {len(self.events)} events {kinds}>"

    # -- composition --------------------------------------------------------
    def merge(self, *others: "FaultPlan") -> "FaultPlan":
        """Interleave this plan with ``others`` by time (stable order)."""
        events = list(self.events)
        for other in others:
            events.extend(other.events)
        return FaultPlan(events)

    def until(self, horizon: float) -> "FaultPlan":
        """The sub-plan of events strictly before ``horizon``."""
        return FaultPlan(ev for ev in self.events if ev.time < horizon)

    # -- construction -------------------------------------------------------
    @classmethod
    def exponential(cls, kind: str, mtbf_seconds: float, horizon: float,
                    seed: int = 0, duration: float = 0.0,
                    factor: float = 1.0) -> "FaultPlan":
        """A Poisson fault process materialised as a plan.

        Inter-fault gaps are exponential with mean ``mtbf_seconds``;
        each event gets an independent uniform raw ``target``.  Using
        one generator per (kind, seed) keeps fault classes independent:
        merging another class never perturbs this one's times.
        """
        if mtbf_seconds <= 0:
            raise ValueError("mtbf_seconds must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        rng = np.random.default_rng(seed)
        events = []
        t = 0.0
        while True:
            t += float(rng.exponential(mtbf_seconds))
            if t >= horizon:
                break
            events.append(FaultEvent(
                time=t, kind=kind,
                target=int(rng.integers(0, 2**31 - 1)),
                duration=duration, factor=factor,
            ))
        return cls(events)

    # -- serialisation ------------------------------------------------------
    def to_json(self) -> str:
        doc = {"schema": _SCHEMA,
               "events": [asdict(ev) for ev in self.events]}
        return json.dumps(doc, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        doc = json.loads(text)
        schema = doc.get("schema")
        if schema not in _ACCEPTED_SCHEMAS:
            raise ValueError(f"expected schema {_SCHEMA!r}, got {schema!r}")
        raw = doc.get("events")
        if not isinstance(raw, list):
            raise ValueError("fault plan document has no 'events' list")
        events = []
        for i, ev in enumerate(raw):
            try:
                events.append(FaultEvent(**ev))
            except (TypeError, ValueError) as exc:
                # Name the offending event: a plan is authored/generated
                # once and replayed many times, so a load-time rejection
                # with an index beats a mid-run ValueError in apply_fault.
                raise ValueError(f"fault plan event {i}: {exc}") from None
        return cls(events)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


class ChaosController:
    """Applies a :class:`FaultPlan` to a fleet inside a simulation.

    ``fleet`` must expose ``apply_fault(event) -> str`` returning a
    short description of what the fault resolved to (victim names,
    kernels killed).  Every application is appended to :attr:`applied`
    as ``(time, kind, description)`` — the determinism tests compare
    this log verbatim across twin runs.
    """

    def __init__(self, env: Environment, fleet, plan: FaultPlan,
                 horizon: Optional[float] = None):
        self.env = env
        self.fleet = fleet
        self.plan = plan if horizon is None else plan.until(horizon)
        self.applied: list[tuple[float, str, str]] = []
        self.process = env.process(self._run())
        self.process.defuse()

    def _run(self):
        env = self.env
        for event in self.plan.events:
            if event.time > env.now:
                yield env.timeout(event.time - env.now)
            description = self.fleet.apply_fault(event)
            self.applied.append((env.now, event.kind, description))
