"""App decorators: the user-facing function registration API.

Parsl calls decorated functions "apps"; invoking one submits a task and
returns an :class:`~repro.faas.futures.AppFuture` immediately.  Two kinds:

``@python_app``
    A plain Python function.  It executes for real (its Python body runs —
    e.g. training the numpy emulator) and occupies a worker for
    ``walltime`` simulated seconds (default 0: instantaneous logic).

``@gpu_app``
    A *generator* function whose first parameter is a
    :class:`~repro.faas.workers.TaskContext`.  Its yields drive simulated
    time: ``ctx.gpu.launch(kernel)``, ``ctx.compute(seconds)``,
    ``ctx.sleep(seconds)``.  The worker supplies a GPU client bound to the
    worker's accelerator partition (whole GPU, MPS percentage slice, or
    MIG instance) — the paper's contribution is precisely the plumbing
    that makes this binding configurable.

``@join_app``
    A function returning a future (or list of futures); its own future
    resolves to the inner result — Parsl's mechanism for dynamic
    workflows, used by the molecular-design campaign.
"""

from __future__ import annotations

import functools
import inspect
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.faas.futures import AppFuture

__all__ = ["AppBase", "python_app", "gpu_app", "join_app"]


class AppBase:
    """A registered app: callable returning an :class:`AppFuture`."""

    kind = "python"

    def __init__(self, fn: Callable, executors: str | Sequence[str] = "all",
                 walltime: float = 0.0, cpu_cores: int = 1,
                 dfk: Optional["DataFlowKernel"] = None):  # noqa: F821
        if walltime < 0:
            raise ValueError("walltime must be non-negative")
        if cpu_cores <= 0:
            raise ValueError("cpu_cores must be positive")
        functools.update_wrapper(self, fn)
        self.fn = fn
        self.executors = executors
        self.walltime = walltime
        self.cpu_cores = cpu_cores
        self._dfk = dfk

    @property
    def name(self) -> str:
        return getattr(self.fn, "__name__", "app")

    def _resolve_dfk(self):
        if self._dfk is not None:
            return self._dfk
        from repro.faas.dataflow import current_dfk

        dfk = current_dfk()
        if dfk is None:
            raise RuntimeError(
                f"app {self.name!r} invoked with no DataFlowKernel loaded; "
                "call repro.faas.load(config) first"
            )
        return dfk

    def __call__(self, *args: Any, **kwargs: Any) -> AppFuture:
        return self._resolve_dfk().submit(self, args, kwargs)


class GpuApp(AppBase):
    """An app that drives the simulated GPU through a TaskContext."""

    kind = "gpu"

    def __init__(self, fn: Callable, **kw: Any):
        if not inspect.isgeneratorfunction(fn):
            raise TypeError(
                f"@gpu_app function {getattr(fn, '__name__', fn)!r} must be "
                "a generator function taking a TaskContext first argument "
                "(its yields advance simulated time)"
            )
        super().__init__(fn, **kw)


class JoinApp(AppBase):
    """An app whose return value is one or more futures to flatten."""

    kind = "join"


class BashApp(AppBase):
    """An app whose function *renders a shell command line*.

    Mirrors Parsl's ``@bash_app``: the Python body returns the command
    string (so tests can assert what would run); the simulated execution
    charges ``walltime`` and returns the rendered command.  The paper
    leans on this mechanism to launch ``nvidia-cuda-mps-control`` before
    GPU functions run (§4.1).
    """

    kind = "bash"


def _decorate(cls, fn=None, **kw):
    if fn is None:
        return lambda f: cls(f, **kw)
    return cls(fn, **kw)


def python_app(fn: Callable | None = None, *,
               executors: str | Sequence[str] = "all",
               walltime: float = 0.0, cpu_cores: int = 1,
               dfk=None) -> Callable:
    """Register a plain Python function as an app.

    Parameters mirror Parsl's where they exist; ``walltime`` additionally
    declares the simulated duration the function's real computation stands
    for (a 12 s quantum-chemistry task runs its numpy body instantly but
    holds its worker for 12 simulated seconds).
    """
    return _decorate(AppBase, fn, executors=executors, walltime=walltime,
                     cpu_cores=cpu_cores, dfk=dfk)


def gpu_app(fn: Callable | None = None, *,
            executors: str | Sequence[str] = "all",
            walltime: float = 0.0, cpu_cores: int = 1,
            dfk=None) -> Callable:
    """Register a GPU generator function as an app (see module docs)."""
    return _decorate(GpuApp, fn, executors=executors, walltime=walltime,
                     cpu_cores=cpu_cores, dfk=dfk)


def join_app(fn: Callable | None = None, *,
             executors: str | Sequence[str] = "all", dfk=None) -> Callable:
    """Register an app that returns futures to be joined."""
    return _decorate(JoinApp, fn, executors=executors, dfk=dfk)


def bash_app(fn: Callable | None = None, *,
             executors: str | Sequence[str] = "all",
             walltime: float = 0.0, cpu_cores: int = 1,
             dfk=None) -> Callable:
    """Register a shell-command app (see :class:`BashApp`)."""
    return _decorate(BashApp, fn, executors=executors, walltime=walltime,
                     cpu_cores=cpu_cores, dfk=dfk)
