"""Container images: the download/decompress half of cold starts.

§6 decomposes GPU serverless cold start into (1) *function
initialization (including download, decompression)*, (2) GPU context
init, (3) application loading.  The static
:class:`~repro.faas.coldstart.ColdStartModel` charges a flat cost for
(1); this module makes it dynamic: functions reference a
:class:`ContainerImage`, nodes keep an image cache, the first worker on
a node pulls (network) and extracts (CPU) the image, and later workers —
or concurrent ones, which wait on the in-flight pull — start warm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.core import Environment, Event

__all__ = ["ContainerImage", "ImageRegistry", "NodeImageCache"]


@dataclass(frozen=True)
class ContainerImage:
    """An OCI-style image: a name, a compressed size, an extract cost."""

    name: str
    size_bytes: float
    extract_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.size_bytes < 0 or self.extract_seconds < 0:
            raise ValueError("image costs must be non-negative")


class ImageRegistry:
    """The remote registry images are pulled from."""

    def __init__(self, pull_bandwidth_bytes_per_s: float = 125e6):
        if pull_bandwidth_bytes_per_s <= 0:
            raise ValueError("pull bandwidth must be positive")
        self.pull_bandwidth = pull_bandwidth_bytes_per_s
        self._images: dict[str, ContainerImage] = {}
        self.pulls_served = 0

    def push(self, image: ContainerImage) -> ContainerImage:
        self._images[image.name] = image
        return image

    def lookup(self, name: str) -> ContainerImage:
        try:
            return self._images[name]
        except KeyError:
            raise KeyError(f"image {name!r} not in registry; "
                           f"pushed: {sorted(self._images)}") from None

    def pull_seconds(self, image: ContainerImage) -> float:
        return image.size_bytes / self.pull_bandwidth


class NodeImageCache:
    """Per-node image store with in-flight pull deduplication."""

    def __init__(self, env: Environment):
        self.env = env
        self._cached: set[str] = set()
        self._in_flight: dict[str, Event] = {}
        self.hits = 0
        self.pulls = 0

    def is_cached(self, image: ContainerImage) -> bool:
        return image.name in self._cached

    def ensure(self, image: ContainerImage, registry: ImageRegistry):
        """Generator: make ``image`` available locally.

        Cache hit: free.  Miss: pull + extract.  A concurrent request for
        the same image waits on the in-flight pull instead of pulling
        again (containerd's behaviour).
        """
        if image.name in self._cached:
            self.hits += 1
            return
        pending = self._in_flight.get(image.name)
        if pending is not None:
            self.hits += 1
            yield pending
            return
        done = self.env.event(name=f"pull-{image.name}")
        self._in_flight[image.name] = done
        self.pulls += 1
        registry.pulls_served += 1
        yield self.env.timeout(registry.pull_seconds(image))
        yield self.env.timeout(image.extract_seconds)
        self._cached.add(image.name)
        del self._in_flight[image.name]
        done.succeed()

    def evict(self, image: ContainerImage) -> None:
        self._cached.discard(image.name)
