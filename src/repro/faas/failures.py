"""Failure injection: worker crashes and GPU errors.

Serverless platforms must absorb infrastructure failures; the retry
machinery (§2.2's ``retries=`` config) only earns its keep under fault
load.  This module injects two fault classes into a running simulation:

- **worker crashes** — the worker process dies mid-task; its in-flight
  task fails with :class:`WorkerCrash` (and retries on another worker);
  an optional respawn brings a replacement up after the restart delay
  (paying the full cold start again);
- **GPU errors** (ECC/Xid-style) — every kernel resident on the device
  is killed; the owning functions observe :class:`GpuEccError` from
  their ``ctx.launch`` and may retry.

:class:`FailureInjector` drives both from seeded exponential processes,
so failure schedules are reproducible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.core import Environment
from repro.gpu.device import SimulatedGPU
from repro.faas.executors.base import ExecutorBase
from repro.faas.workers import Worker

__all__ = ["FailureInjector", "GpuEccError", "WorkerCrash",
           "inject_gpu_error"]


class WorkerCrash(RuntimeError):
    """A worker process died while (possibly) executing a task."""


class GpuEccError(RuntimeError):
    """An uncorrectable GPU memory error killed the resident kernels."""


def inject_gpu_error(device: SimulatedGPU) -> int:
    """Kill every kernel currently resident on ``device``.

    Returns the number of kernels killed.  Queued (time-shared) kernels
    are unaffected — they had not begun executing.
    """
    killed = 0
    for task in list(device.pool.tasks):
        device.pool.cancel(task)
        kernel = task.meta["kernel"]
        task.done.fail(GpuEccError(
            f"{device.name}: uncorrectable memory error killed kernel "
            f"{kernel.name!r}"
        ))
        killed += 1
    return killed


class FailureInjector:
    """Schedules reproducible crash/error processes."""

    def __init__(self, env: Environment, seed: int = 0):
        self.env = env
        self.rng = np.random.default_rng(seed)
        self.worker_crashes = 0
        self.gpu_errors = 0
        self.kernels_killed = 0

    # -- one-shot operations --------------------------------------------------
    def crash_worker(self, worker: Worker,
                     respawn_after: Optional[float] = None) -> Optional[Worker]:
        """Crash ``worker`` now; optionally respawn a replacement.

        Returns the replacement worker (or None).  The replacement pays
        the full cold start and loads no models (its
        ``loaded_models`` starts empty — crashed state is gone).
        """
        worker.crash(WorkerCrash(f"{worker.name}: injected crash"))
        self.worker_crashes += 1
        if respawn_after is None:
            return None
        executor = worker.executor
        ready = self.env.timeout(respawn_after)
        replacement = Worker(
            env=self.env,
            name=f"{worker.name}-r{self.worker_crashes}",
            node=worker.node,
            queue=worker.queue,
            fenv=worker.fenv,
            cold_start=worker.cold_start,
            executor=executor,
            ready=ready,
        )
        try:
            index = executor.workers.index(worker)
            executor.workers[index] = replacement
        except (ValueError, AttributeError):
            pass
        return replacement

    def gpu_error(self, device: SimulatedGPU) -> int:
        killed = inject_gpu_error(device)
        self.gpu_errors += 1
        self.kernels_killed += killed
        return killed

    # -- background fault processes --------------------------------------------
    def start_worker_crashes(self, executor: ExecutorBase,
                             mtbf_seconds: float,
                             respawn_after: float = 5.0,
                             horizon: Optional[float] = None):
        """Crash a random live worker of ``executor`` at exponential times."""
        if mtbf_seconds <= 0:
            raise ValueError("mtbf_seconds must be positive")

        def run(env):
            while horizon is None or env.now < horizon:
                yield env.timeout(float(self.rng.exponential(mtbf_seconds)))
                if horizon is not None and env.now >= horizon:
                    return
                live = [w for w in executor.workers if w.alive]
                if not live:
                    return
                victim = live[int(self.rng.integers(len(live)))]
                self.crash_worker(victim, respawn_after=respawn_after)

        return self.env.process(run(self.env))

    def start_gpu_errors(self, device: SimulatedGPU, mtbf_seconds: float,
                         horizon: Optional[float] = None):
        """Inject device-wide kernel kills at exponential times."""
        if mtbf_seconds <= 0:
            raise ValueError("mtbf_seconds must be positive")

        def run(env):
            while horizon is None or env.now < horizon:
                yield env.timeout(float(self.rng.exponential(mtbf_seconds)))
                if horizon is not None and env.now >= horizon:
                    return
                self.gpu_error(device)

        return self.env.process(run(self.env))
