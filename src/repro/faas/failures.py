"""Failure injection: worker crashes and GPU errors.

Serverless platforms must absorb infrastructure failures; the retry
machinery (§2.2's ``retries=`` config) only earns its keep under fault
load.  This module injects two fault classes into a running simulation:

- **worker crashes** — the worker process dies mid-task; its in-flight
  task fails with :class:`WorkerCrash` (and retries on another worker);
  an optional respawn brings a replacement up after the restart delay
  (paying the full cold start again);
- **GPU errors** (ECC/Xid-style) — kernels resident in the affected
  *fault domain* are killed (see :mod:`repro.gpu.faults`): on a MIG- or
  vGPU-partitioned device the blast radius is one instance, while the
  shared context (time-sharing, device-wide MPS) loses every resident
  client.  The owning functions observe :class:`GpuEccError` from their
  ``ctx.launch`` and may retry.

:class:`FailureInjector` drives both from seeded exponential processes,
so failure schedules are reproducible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.core import Environment
from repro.gpu.device import ShareGroup, SimulatedGPU
from repro.gpu.faults import (
    FaultDomain,
    GpuEccError,
    GpuLaunchError,
    domain_of,
    fault_domains,
    kill_domain,
)
from repro.faas.executors.base import ExecutorBase
from repro.faas.workers import Worker

__all__ = ["FailureInjector", "GpuEccError", "GpuLaunchError", "WorkerCrash",
           "inject_gpu_error"]


class WorkerCrash(RuntimeError):
    """A worker process died while (possibly) executing a task."""


def _resolve_scope(device: SimulatedGPU, scope) -> FaultDomain:
    """Map a scope argument onto the owning fault domain."""
    if scope is None:
        return fault_domains(device)[0]  # the shared context
    if isinstance(scope, FaultDomain):
        return scope
    if isinstance(scope, ShareGroup):
        return domain_of(device, scope)
    group = getattr(scope, "group", None)  # MigInstance, VGpuVM, ...
    if isinstance(group, ShareGroup):
        return domain_of(device, group)
    raise TypeError(
        f"scope must be None, a FaultDomain, a ShareGroup, or an object "
        f"with a .group (got {type(scope).__name__})"
    )


def inject_gpu_error(device: SimulatedGPU, scope=None) -> int:
    """Kill the kernels resident in one fault domain of ``device``.

    ``scope`` selects the domain: ``None`` targets the shared device
    context (everything on an unpartitioned GPU — the historical
    behaviour — and *nothing inside hardware-isolated partitions*); a
    :class:`~repro.gpu.device.ShareGroup`, a
    :class:`~repro.gpu.faults.FaultDomain`, or any object carrying a
    ``.group`` (e.g. a :class:`~repro.gpu.mig.MigInstance`) targets the
    domain owning that group.  Returns the number of kernels killed.
    Queued (time-shared) kernels are unaffected — they had not begun
    executing.
    """
    return kill_domain(device, _resolve_scope(device, scope))


class FailureInjector:
    """Schedules reproducible crash/error processes."""

    def __init__(self, env: Environment, seed: int = 0):
        self.env = env
        self.rng = np.random.default_rng(seed)
        self.worker_crashes = 0
        self.gpu_errors = 0
        self.kernels_killed = 0

    # -- one-shot operations --------------------------------------------------
    def crash_worker(self, worker: Worker,
                     respawn_after: Optional[float] = None) -> Optional[Worker]:
        """Crash ``worker`` now; optionally respawn a replacement.

        Returns the replacement worker (or None).  The replacement pays
        the full cold start and loads no models (its
        ``loaded_models`` starts empty — crashed state is gone).
        """
        if respawn_after is not None and respawn_after < 0:
            raise ValueError(
                f"respawn_after must be non-negative, got {respawn_after!r}"
            )
        worker.crash(WorkerCrash(f"{worker.name}: injected crash"))
        self.worker_crashes += 1
        if respawn_after is None:
            return None
        executor = worker.executor
        ready = self.env.timeout(respawn_after)
        replacement = Worker(
            env=self.env,
            name=f"{worker.name}-r{self.worker_crashes}",
            node=worker.node,
            queue=worker.queue,
            fenv=worker.fenv,
            cold_start=worker.cold_start,
            executor=executor,
            ready=ready,
        )
        workers = getattr(executor, "workers", None)
        if workers is not None:
            try:
                workers[workers.index(worker)] = replacement
            except ValueError:
                # The victim was already dropped from the roster (e.g.
                # scaled in): register the replacement anyway, so it is
                # eligible for future work — and future crashes.
                workers.append(replacement)
        return replacement

    def gpu_error(self, device: SimulatedGPU, scope=None) -> int:
        killed = inject_gpu_error(device, scope)
        self.gpu_errors += 1
        self.kernels_killed += killed
        return killed

    # -- background fault processes --------------------------------------------
    def start_worker_crashes(self, executor: ExecutorBase,
                             mtbf_seconds: float,
                             respawn_after: float = 5.0,
                             horizon: Optional[float] = None):
        """Crash a random live worker of ``executor`` at exponential times.

        Respawned replacements join the victim pool: a replacement that
        has come up (or is still cold-starting) is as mortal as the
        worker it replaced.
        """
        if mtbf_seconds <= 0:
            raise ValueError("mtbf_seconds must be positive")

        def run(env):
            while horizon is None or env.now < horizon:
                yield env.timeout(float(self.rng.exponential(mtbf_seconds)))
                if horizon is not None and env.now >= horizon:
                    return
                live = [w for w in executor.workers if w.alive]
                if not live:
                    return
                victim = live[int(self.rng.integers(len(live)))]
                self.crash_worker(victim, respawn_after=respawn_after)

        return self.env.process(run(self.env))

    def start_gpu_errors(self, device: SimulatedGPU, mtbf_seconds: float,
                         horizon: Optional[float] = None):
        """Inject domain-scoped kernel kills at exponential times.

        On an unpartitioned device every fault hits the shared context
        (all resident kernels — the historical behaviour, with no extra
        RNG draw so old seeds reproduce).  On a partitioned device each
        fault lands on a uniformly-drawn fault domain, modelling an ECC
        error striking one instance's memory slices.
        """
        if mtbf_seconds <= 0:
            raise ValueError("mtbf_seconds must be positive")

        def run(env):
            while horizon is None or env.now < horizon:
                yield env.timeout(float(self.rng.exponential(mtbf_seconds)))
                if horizon is not None and env.now >= horizon:
                    return
                domains = fault_domains(device)
                scope = domains[0] if len(domains) == 1 else \
                    domains[int(self.rng.integers(len(domains)))]
                self.gpu_error(device, scope)

        return self.env.process(run(self.env))
