"""Task monitoring — the simulated analogue of Parsl's monitoring DB.

Listing 1's configuration stores a "monitoring DB and parsl logs"; this
module records the same information in memory: every task state
transition with its timestamp and worker, queryable per app / worker /
executor, exportable as JSON lines.

Attach through the config::

    hub = MonitoringHub()
    Config(executors=[...], monitoring=hub)

and query after (or during) the run::

    hub.app_stats("simulation")["mean_run_seconds"]
    hub.worker_busy_fraction("gpu-worker0", makespan)
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Optional

__all__ = ["MonitoringHub", "TaskTransition"]


@dataclass(frozen=True)
class TaskTransition:
    """One task state transition."""

    time: float
    tid: int
    app_name: str
    state: str
    executor_label: str
    worker_name: Optional[str] = None
    tries: int = 0


class MonitoringHub:
    """In-memory store of task transitions with aggregate queries."""

    def __init__(self):
        self.transitions: list[TaskTransition] = []

    # -- recording hooks (called by DFK / executors / workers) --------------
    def record(self, time: float, record, state: str) -> None:
        self.transitions.append(TaskTransition(
            time=time,
            tid=record.tid,
            app_name=record.app_name,
            state=state,
            executor_label=record.executor_label,
            worker_name=record.worker_name,
            tries=record.tries,
        ))

    # -- queries ------------------------------------------------------------
    def by_state(self, state: str) -> list[TaskTransition]:
        return [t for t in self.transitions if t.state == state]

    def task_history(self, tid: int) -> list[TaskTransition]:
        return [t for t in self.transitions if t.tid == tid]

    def app_stats(self, app_name: str) -> dict[str, float]:
        """Aggregate queue/run statistics for one app."""
        starts: dict[int, float] = {}
        submits: dict[int, float] = {}
        runs: list[float] = []
        queues: list[float] = []
        done = 0
        failed = 0
        retries = 0
        max_tries = 0
        for t in self.transitions:
            if t.app_name != app_name:
                continue
            if t.tries > max_tries:
                max_tries = t.tries
            if t.state == "submitted":
                submits[t.tid] = t.time
            elif t.state == "running":
                starts[t.tid] = t.time
                if t.tid in submits:
                    queues.append(t.time - submits[t.tid])
            elif t.state == "done":
                done += 1
                if t.tid in starts:
                    runs.append(t.time - starts[t.tid])
            elif t.state == "failed":
                failed += 1
            elif t.state == "retry":
                retries += 1
        return {
            "completed": done,
            "failed": failed,
            "retries": retries,
            "max_tries": max_tries,
            "mean_run_seconds": sum(runs) / len(runs) if runs else 0.0,
            "mean_queue_seconds": (sum(queues) / len(queues)
                                   if queues else 0.0),
        }

    def worker_busy_fraction(self, worker_name: str,
                             horizon: float) -> float:
        """Fraction of ``horizon`` the worker spent running tasks."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        running_since: dict[int, float] = {}
        busy = 0.0
        for t in self.transitions:
            if t.worker_name != worker_name:
                continue
            if t.state == "running":
                running_since[t.tid] = t.time
            elif t.state in ("done", "failed", "retry"):
                if t.tid in running_since:
                    busy += t.time - running_since.pop(t.tid)
        return min(1.0, busy / horizon)

    def executors(self) -> list[str]:
        seen: dict[str, None] = {}
        for t in self.transitions:
            seen.setdefault(t.executor_label, None)
        return list(seen)

    # -- export -----------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The monitoring log as JSON lines (Parsl's DB-dump analogue)."""
        return "\n".join(json.dumps(asdict(t)) for t in self.transitions)

    def __len__(self) -> int:
        return len(self.transitions)
