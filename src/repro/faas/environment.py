"""Environment-variable plumbing between executor and worker.

The paper's entire mechanism is environment variables (§4):

- ``CUDA_VISIBLE_DEVICES`` selects a GPU index *or a MIG instance UUID*
  (Listing 3);
- ``CUDA_MPS_ACTIVE_THREAD_PERCENTAGE`` caps the SM share of an MPS
  client and is read once at process start (§4.1).

:class:`FunctionEnvironment` is the simulated process environment a
worker runs its functions under; the executor fills it from its
``available_accelerators`` / ``gpu_percentage`` configuration and the
worker materialises it into a :class:`~repro.gpu.device.GpuClient`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["FunctionEnvironment"]

CUDA_VISIBLE_DEVICES = "CUDA_VISIBLE_DEVICES"
CUDA_MPS_ACTIVE_THREAD_PERCENTAGE = "CUDA_MPS_ACTIVE_THREAD_PERCENTAGE"


@dataclass
class FunctionEnvironment:
    """The env-var view a worker process sees."""

    variables: dict[str, str] = field(default_factory=dict)

    def set(self, key: str, value: str) -> None:
        self.variables[key] = str(value)

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return self.variables.get(key, default)

    # -- typed accessors for the two variables the paper manipulates --------
    @property
    def visible_device(self) -> Optional[str]:
        """The GPU index or MIG UUID this process may use (None = any)."""
        return self.get(CUDA_VISIBLE_DEVICES)

    @visible_device.setter
    def visible_device(self, value: str) -> None:
        self.set(CUDA_VISIBLE_DEVICES, value)

    @property
    def mps_percentage(self) -> Optional[int]:
        """``CUDA_MPS_ACTIVE_THREAD_PERCENTAGE`` as an int, if set."""
        raw = self.get(CUDA_MPS_ACTIVE_THREAD_PERCENTAGE)
        if raw is None:
            return None
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{CUDA_MPS_ACTIVE_THREAD_PERCENTAGE}={raw!r} is not an "
                "integer"
            ) from None
        if not 0 < value <= 100:
            raise ValueError(
                f"{CUDA_MPS_ACTIVE_THREAD_PERCENTAGE} must be in (0, 100], "
                f"got {value}"
            )
        return value

    @mps_percentage.setter
    def mps_percentage(self, value: int) -> None:
        self.set(CUDA_MPS_ACTIVE_THREAD_PERCENTAGE, str(int(value)))

    def is_mig_uuid(self) -> bool:
        """Whether CUDA_VISIBLE_DEVICES names a MIG instance (Listing 3)."""
        dev = self.visible_device
        return dev is not None and dev.startswith("MIG-")

    def copy(self) -> "FunctionEnvironment":
        return FunctionEnvironment(dict(self.variables))
