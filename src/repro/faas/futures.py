"""Futures and task records.

:class:`AppFuture` follows Parsl's semantics — returned immediately on app
invocation, resolved when the task finishes — but lives on the simulated
timeline: simulation processes wait on it by ``yield``-ing it, and test
code reads ``.result()`` after ``env.run()``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sim.core import Environment, Event

__all__ = ["AppFuture", "TaskRecord", "TaskState"]

_task_ids = itertools.count()


class TaskState(enum.Enum):
    """Lifecycle of a task inside the DataFlowKernel."""

    PENDING = "pending"          # waiting on future-valued dependencies
    LAUNCHED = "launched"        # handed to an executor
    RUNNING = "running"          # picked up by a worker
    DONE = "done"
    FAILED = "failed"


class AppFuture(Event):
    """The future returned by invoking an app.

    It *is* a simulation event, so a process may ``yield future`` to wait
    for it; outside of processes, call :meth:`result` after running the
    simulation.
    """

    __slots__ = ("task",)

    def __init__(self, env: Environment, task: "TaskRecord"):
        super().__init__(env, name=f"future({task.label})")
        self.task = task
        # App failures are reported through .result()/.exception();
        # they must not crash the simulation loop.
        self._defused = True

    def done(self) -> bool:
        """Whether the task has finished (successfully or not)."""
        return self.triggered

    def result(self) -> Any:
        """The task's return value.

        Raises the task's exception if it failed, or ``RuntimeError`` if
        the simulation has not been run far enough for it to finish.
        """
        if not self.triggered:
            raise RuntimeError(
                f"task {self.task.label!r} has not completed; run the "
                "simulation (dfk.run()) before calling result()"
            )
        if not self._ok:
            raise self._value
        return self._value

    def exception(self) -> Optional[BaseException]:
        """The task's exception, or None if it succeeded."""
        if not self.triggered:
            raise RuntimeError(f"task {self.task.label!r} has not completed")
        return None if self._ok else self._value


@dataclass
class TaskRecord:
    """Bookkeeping for one app invocation."""

    app_name: str
    fn: Callable
    args: tuple
    kwargs: dict
    executor_label: str
    retries_allowed: int
    tid: int = field(default_factory=lambda: next(_task_ids))
    state: TaskState = TaskState.PENDING
    tries: int = 0
    #: tids of the tasks whose futures this task's arguments depended on.
    dependencies: tuple[int, ...] = ()
    submit_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    worker_name: Optional[str] = None
    future: Optional[AppFuture] = None

    @property
    def label(self) -> str:
        return f"{self.app_name}#{self.tid}"

    @property
    def queue_seconds(self) -> Optional[float]:
        """Time from submission until a worker picked the task up."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def run_seconds(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time
