"""A Globus Compute (FuncX) style federated layer over the DFK.

The paper runs its workloads through Globus Compute, whose model (§2.2)
is: users *register* functions with a cloud service, then *submit* tasks
by function id to a named *endpoint* — a user-deployed Parsl deployment
on some remote machine.  The cloud service relays tasks and results over
the WAN.

This module reproduces that federation on the simulated timeline:

- :class:`GlobusComputeService` — the cloud broker: function registry,
  endpoint registry, WAN relay latency;
- :class:`Endpoint` — wraps a DataFlowKernel (with its executors) and
  drains tasks relayed to it;
- :class:`GlobusComputeClient` — the user-facing SDK:
  ``register_function`` / ``submit`` / result futures.

Payload sizes matter across a WAN, so submissions carry a serialized-size
estimate and the relay delay is ``latency + size / bandwidth``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sim.core import Environment, Event
from repro.faas.apps import AppBase
from repro.faas.dataflow import DataFlowKernel
from repro.faas.futures import AppFuture

__all__ = ["Endpoint", "GlobusComputeClient", "GlobusComputeService"]

_function_ids = itertools.count(1)


@dataclass
class _RegisteredFunction:
    function_id: str
    app: AppBase
    name: str


class GlobusComputeService:
    """The cloud broker relaying tasks between clients and endpoints."""

    def __init__(self, env: Environment, wan_latency_seconds: float = 0.05,
                 wan_bandwidth_bytes_per_s: float = 50e6):
        if wan_latency_seconds < 0 or wan_bandwidth_bytes_per_s <= 0:
            raise ValueError("invalid WAN parameters")
        self.env = env
        self.wan_latency = wan_latency_seconds
        self.wan_bandwidth = wan_bandwidth_bytes_per_s
        self._functions: dict[str, _RegisteredFunction] = {}
        self._endpoints: dict[str, "Endpoint"] = {}
        self.tasks_relayed = 0

    # -- registries -----------------------------------------------------------
    def register_function(self, app: AppBase) -> str:
        function_id = f"fn-{next(_function_ids):06d}"
        self._functions[function_id] = _RegisteredFunction(
            function_id=function_id, app=app, name=app.name)
        return function_id

    def register_endpoint(self, endpoint: "Endpoint") -> None:
        if endpoint.name in self._endpoints:
            raise ValueError(f"endpoint {endpoint.name!r} already registered")
        self._endpoints[endpoint.name] = endpoint

    def lookup_function(self, function_id: str) -> _RegisteredFunction:
        try:
            return self._functions[function_id]
        except KeyError:
            raise KeyError(f"unknown function id {function_id!r}") from None

    def endpoint(self, name: str) -> "Endpoint":
        try:
            return self._endpoints[name]
        except KeyError:
            raise KeyError(f"unknown endpoint {name!r}") from None

    # -- relay ------------------------------------------------------------------
    def relay_delay(self, payload_bytes: float) -> float:
        return self.wan_latency + payload_bytes / self.wan_bandwidth

    def submit(self, function_id: str, endpoint_name: str, args: tuple,
               kwargs: dict, payload_bytes: float) -> AppFuture:
        """Relay one task to an endpoint; returns the client-side future.

        The returned future resolves only after the result has travelled
        back over the WAN — both directions pay the relay delay.
        """
        registered = self.lookup_function(function_id)
        endpoint = self.endpoint(endpoint_name)
        self.tasks_relayed += 1
        return endpoint._accept(registered.app, args, kwargs,
                                self.relay_delay(payload_bytes),
                                self.relay_delay(1024.0))


class Endpoint:
    """A user-deployed compute endpoint: a DFK behind the cloud service."""

    def __init__(self, name: str, dfk: DataFlowKernel,
                 service: GlobusComputeService):
        if dfk.env is not service.env:
            raise ValueError("endpoint DFK and service must share an "
                             "Environment")
        self.name = name
        self.dfk = dfk
        self.service = service
        self.tasks_received = 0
        service.register_endpoint(self)

    def _accept(self, app: AppBase, args: tuple, kwargs: dict,
                inbound_delay: float, outbound_delay: float) -> AppFuture:
        env = self.dfk.env
        self.tasks_received += 1
        # The client-side future the SDK hands back.
        proxy_record = _ProxyRecord(app.name)
        client_future = AppFuture(env, proxy_record)

        def deliver(_ev: Event) -> None:
            inner = self.dfk.submit(app, args, kwargs)

            def send_back(inner_ev: Event) -> None:
                back = env.timeout(outbound_delay)

                def finish(_b: Event) -> None:
                    if inner_ev.ok:
                        client_future.succeed(inner_ev.value)
                    else:
                        client_future.fail(inner_ev.value)

                back.callbacks.append(finish)

            inner.callbacks.append(send_back)

        env.timeout(inbound_delay).callbacks.append(deliver)
        return client_future


@dataclass
class _ProxyRecord:
    """Minimal record behind a client-side (WAN) future."""

    app_name: str
    tid: int = field(default_factory=lambda: -1)

    @property
    def label(self) -> str:
        return f"globus:{self.app_name}"


class GlobusComputeClient:
    """The user-facing SDK: register once, submit many."""

    def __init__(self, service: GlobusComputeService,
                 default_endpoint: Optional[str] = None):
        self.service = service
        self.default_endpoint = default_endpoint

    def register_function(self, app: AppBase) -> str:
        """Register an app with the cloud service; returns its id."""
        if not isinstance(app, AppBase):
            raise TypeError(
                "register_function expects a decorated app "
                "(@python_app / @gpu_app)"
            )
        return self.service.register_function(app)

    def submit(self, function_id: str, *args: Any,
               endpoint: Optional[str] = None,
               payload_bytes: float = 4096.0, **kwargs: Any) -> AppFuture:
        """Submit a task by function id to an endpoint."""
        target = endpoint or self.default_endpoint
        if target is None:
            raise ValueError("no endpoint given and no default configured")
        return self.service.submit(function_id, target, args, kwargs,
                                   payload_bytes)
