"""Model-aware task routing across endpoints.

§6 identifies model loading as the dominant cold-start cost.  In a
federated deployment (several Globus-Compute endpoints, each with
partitioned GPUs) the scheduler can dodge that cost by routing a task to
an endpoint that already holds the model warm — in a worker's partition
or in the node's GPU-resident weight cache (§7).

Three policies, all deterministic:

- :class:`RoundRobinRouter` — ignore state, rotate;
- :class:`LeastLoadedRouter` — fewest outstanding tasks;
- :class:`ModelAffinityRouter` — endpoints with the model warm first,
  least-loaded among them (and least-loaded as the cold fallback).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.faas.apps import AppBase
from repro.faas.futures import AppFuture
from repro.faas.globus import Endpoint, GlobusComputeService

__all__ = [
    "GpuTaskRouter",
    "LeastLoadedRouter",
    "ModelAffinityRouter",
    "RoundRobinRouter",
    "endpoint_outstanding",
    "endpoint_warm_models",
]


def endpoint_outstanding(endpoint: Endpoint) -> int:
    """Tasks submitted to the endpoint's executors but not finished."""
    return sum(ex.outstanding for ex in endpoint.dfk.executors.values())


def endpoint_warm_models(endpoint: Endpoint) -> set[str]:
    """Model keys resident somewhere on the endpoint.

    Warm means: loaded in a live worker's partition, or held by a node's
    GPU-resident weight cache.
    """
    warm: set[str] = set()
    for executor in endpoint.dfk.executors.values():
        for worker in getattr(executor, "workers", []):
            if worker.alive:
                warm.update(worker.loaded_models)
        for node in getattr(executor, "nodes", []):
            cache = node.weight_cache
            if cache is None:
                continue
            for gpu in node.gpus:
                for client in list(gpu.default_group.clients):
                    warm.update(cache.resident_keys(client))
                # Cached entries are keyed by memory pool; probe via a
                # pool-level view as well (covers cache-only residency).
            warm.update(
                entry_key for (_pool, entry_key) in cache._entries
            )
    return warm


def _load(endpoint: Endpoint, inflight: Optional[dict[str, int]]) -> int:
    """An endpoint's load as the router sees it.

    The router's own in-flight count is authoritative during bursts (the
    WAN relay defers actual DFK submission, so ``endpoint_outstanding``
    lags); external load still shows through the executor counters.
    """
    own = inflight.get(endpoint.name, 0) if inflight else 0
    return max(own, endpoint_outstanding(endpoint))


class RoundRobinRouter:
    """Rotate through the endpoints regardless of state."""

    def __init__(self):
        self._next = 0

    def choose(self, endpoints: Sequence[Endpoint],
               model_key: Optional[str],
               inflight: Optional[dict[str, int]] = None) -> Endpoint:
        if not endpoints:
            raise ValueError("no endpoints to route to")
        choice = endpoints[self._next % len(endpoints)]
        self._next += 1
        return choice


class LeastLoadedRouter:
    """Pick the endpoint with the fewest in-flight tasks."""

    def choose(self, endpoints: Sequence[Endpoint],
               model_key: Optional[str],
               inflight: Optional[dict[str, int]] = None) -> Endpoint:
        if not endpoints:
            raise ValueError("no endpoints to route to")
        return min(endpoints, key=lambda e: (_load(e, inflight), e.name))


class ModelAffinityRouter:
    """Prefer endpoints where ``model_key`` is already resident."""

    def __init__(self):
        self.affinity_hits = 0
        self.affinity_misses = 0

    def choose(self, endpoints: Sequence[Endpoint],
               model_key: Optional[str],
               inflight: Optional[dict[str, int]] = None) -> Endpoint:
        if not endpoints:
            raise ValueError("no endpoints to route to")
        if model_key is not None:
            warm = [e for e in endpoints
                    if model_key in endpoint_warm_models(e)]
            if warm:
                self.affinity_hits += 1
                return min(warm, key=lambda e: (_load(e, inflight), e.name))
        self.affinity_misses += 1
        return min(endpoints, key=lambda e: (_load(e, inflight), e.name))


class GpuTaskRouter:
    """Routes function submissions across a service's endpoints."""

    def __init__(self, service: GlobusComputeService,
                 endpoints: Sequence[Endpoint], policy=None):
        if not endpoints:
            raise ValueError("need at least one endpoint")
        for endpoint in endpoints:
            if service.endpoint(endpoint.name) is not endpoint:
                raise ValueError(
                    f"endpoint {endpoint.name!r} is not registered with "
                    "the service"
                )
        self.service = service
        self.endpoints = list(endpoints)
        self.policy = policy if policy is not None else LeastLoadedRouter()
        self.routed: dict[str, int] = {e.name: 0 for e in endpoints}
        #: Router-local in-flight counts (submit until future resolution).
        self.inflight: dict[str, int] = {e.name: 0 for e in endpoints}

    def submit(self, function_id: str, *args: Any,
               model_key: Optional[str] = None,
               payload_bytes: float = 4096.0, **kwargs: Any) -> AppFuture:
        """Route one task; returns the client-side future."""
        endpoint = self.policy.choose(self.endpoints, model_key,
                                      self.inflight)
        self.routed[endpoint.name] += 1
        self.inflight[endpoint.name] += 1
        future = self.service.submit(function_id, endpoint.name, args,
                                     kwargs, payload_bytes)

        def _settle(_ev) -> None:
            self.inflight[endpoint.name] -= 1

        future.callbacks.append(_settle)
        return future

    def register_function(self, app: AppBase) -> str:
        return self.service.register_function(app)
