"""Parsl-workalike FaaS framework over the simulated substrate.

Mirrors the Parsl surface the paper works with (§2.2, Listings 1-3):

- :func:`~repro.faas.apps.python_app` / :func:`~repro.faas.apps.gpu_app`
  decorators turn functions into *apps* whose invocation returns an
  :class:`~repro.faas.futures.AppFuture`;
- the :class:`~repro.faas.dataflow.DataFlowKernel` resolves future-valued
  arguments, retries failures, and dispatches to executors;
- :class:`~repro.faas.executors.HighThroughputExecutor` implements the
  pilot-job worker pool — extended, as the paper's contribution, with
  ``available_accelerators`` entries that may repeat GPUs or name MIG
  UUIDs, and a ``gpu_percentage`` list enforced through the simulated
  ``CUDA_MPS_ACTIVE_THREAD_PERCENTAGE``;
- providers (:class:`~repro.faas.providers.LocalProvider`,
  :class:`~repro.faas.providers.SlurmProvider`) stand up simulated compute
  nodes;
- :mod:`repro.faas.coldstart` decomposes §6's startup overhead (function
  init, GPU context init, application/model loading).
"""

from repro.faas.futures import AppFuture, TaskRecord, TaskState
from repro.faas.apps import AppBase, bash_app, gpu_app, join_app, python_app
from repro.faas.config import Config
from repro.faas.coldstart import ColdStartModel
from repro.faas.dataflow import DataFlowKernel, clear, current_dfk, load
from repro.faas.environment import FunctionEnvironment
from repro.faas.providers import (
    ComputeNode,
    LocalProvider,
    SlurmProvider,
    StaticProvider,
)
from repro.faas.executors import (
    ExecutorBase,
    HighThroughputExecutor,
    ThreadPoolExecutor,
)
from repro.faas.monitoring import MonitoringHub, TaskTransition
from repro.faas.failures import (
    FailureInjector,
    GpuEccError,
    GpuLaunchError,
    WorkerCrash,
    inject_gpu_error,
)
from repro.faas.chaos import ChaosController, FaultEvent, FaultPlan
from repro.faas.globus import (
    Endpoint,
    GlobusComputeClient,
    GlobusComputeService,
)
from repro.faas.routing import (
    GpuTaskRouter,
    LeastLoadedRouter,
    ModelAffinityRouter,
    RoundRobinRouter,
)

__all__ = [
    "AppBase",
    "AppFuture",
    "ChaosController",
    "ColdStartModel",
    "ComputeNode",
    "Config",
    "DataFlowKernel",
    "Endpoint",
    "ExecutorBase",
    "FailureInjector",
    "FaultEvent",
    "FaultPlan",
    "FunctionEnvironment",
    "GpuEccError",
    "GpuLaunchError",
    "GlobusComputeClient",
    "GlobusComputeService",
    "GpuTaskRouter",
    "HighThroughputExecutor",
    "LeastLoadedRouter",
    "LocalProvider",
    "ModelAffinityRouter",
    "RoundRobinRouter",
    "MonitoringHub",
    "TaskTransition",
    "SlurmProvider",
    "StaticProvider",
    "TaskRecord",
    "TaskState",
    "ThreadPoolExecutor",
    "WorkerCrash",
    "bash_app",
    "clear",
    "inject_gpu_error",
    "current_dfk",
    "gpu_app",
    "join_app",
    "load",
    "python_app",
]
