"""The DataFlowKernel: dependency resolution, retries, dispatch.

The simulated counterpart of Parsl's DFK.  Invoking an app creates a
:class:`~repro.faas.futures.TaskRecord`; future-valued arguments are
awaited, then the task is dispatched to the executor selected by the
app's ``executors=`` list.  ``repro.faas.load(config)`` installs a global
kernel so module-level apps work exactly like Parsl scripts.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.sim.core import Environment, Event
from repro.faas.apps import AppBase
from repro.faas.config import Config
from repro.faas.futures import AppFuture, TaskRecord, TaskState

__all__ = ["DataFlowKernel", "DependencyError", "load", "clear", "current_dfk"]

_active_dfk: Optional["DataFlowKernel"] = None


class DependencyError(RuntimeError):
    """A task's dependency failed, so the task never ran."""

    def __init__(self, task_label: str, dep_label: str,
                 cause: BaseException):
        self.cause = cause
        super().__init__(
            f"dependency {dep_label} of task {task_label} failed: {cause!r}"
        )


def load(config: Config, env: Optional[Environment] = None) -> "DataFlowKernel":
    """Create a DataFlowKernel from ``config`` and make it current."""
    global _active_dfk
    if _active_dfk is not None:
        raise RuntimeError(
            "a DataFlowKernel is already loaded; call repro.faas.clear() first"
        )
    _active_dfk = DataFlowKernel(config, env=env)
    return _active_dfk


def clear() -> None:
    """Forget the current DataFlowKernel."""
    global _active_dfk
    _active_dfk = None


def current_dfk() -> Optional["DataFlowKernel"]:
    return _active_dfk


class DataFlowKernel:
    """Tracks tasks, resolves dependencies, and dispatches to executors."""

    def __init__(self, config: Config, env: Optional[Environment] = None):
        self.config = config
        self.env = env if env is not None else Environment()
        self.hub = config.monitoring
        self.executors = {e.label: e for e in config.executors}
        for executor in config.executors:
            executor.start(self.env)
            executor.hub = self.hub
        self.tasks: list[TaskRecord] = []

    # -- submission ---------------------------------------------------------
    def submit(self, app: AppBase, args: tuple, kwargs: dict) -> AppFuture:
        label = self._select_executor(app)
        record = TaskRecord(
            app_name=app.name,
            fn=app,
            args=args,
            kwargs=kwargs,
            executor_label=label,
            retries_allowed=self.config.retries,
            submit_time=self.env.now,
        )
        future = AppFuture(self.env, record)
        record.future = future
        self.tasks.append(record)
        if self.hub is not None:
            self.hub.record(self.env.now, record, "submitted")

        deps = _collect_futures(args) + _collect_futures(tuple(kwargs.values()))
        record.dependencies = tuple(d.task.tid for d in deps)
        if deps:
            cond = self.env.all_of(deps)
            cond._defused = True
            cond.callbacks.append(
                lambda ev: self._deps_resolved(record, deps, ev)
            )
        else:
            self._launch(record)
        return future

    def _deps_resolved(self, record: TaskRecord, deps: list[AppFuture],
                       cond: Event) -> None:
        if not cond.ok:
            failed = next(d for d in deps if d.processed and not d.ok)
            record.state = TaskState.FAILED
            record.future.fail(
                DependencyError(record.label, failed.task.label, cond.value)
            )
            return
        record.args = _substitute(record.args)
        record.kwargs = {k: _substitute_one(v)
                         for k, v in record.kwargs.items()}
        self._launch(record)

    def _launch(self, record: TaskRecord) -> None:
        app: AppBase = record.fn
        if app.kind == "join":
            self._run_join(record)
            return
        self.executors[record.executor_label].submit(record)

    def _run_join(self, record: TaskRecord) -> None:
        """Join apps run in the DFK itself and flatten returned futures."""
        record.state = TaskState.RUNNING
        record.start_time = self.env.now
        try:
            inner = record.fn.fn(*record.args, **record.kwargs)
        except Exception as exc:  # noqa: BLE001
            record.state = TaskState.FAILED
            record.end_time = self.env.now
            record.future.fail(exc)
            return
        inner_futures = (
            list(inner) if isinstance(inner, (list, tuple)) else [inner]
        )
        for f in inner_futures:
            if not isinstance(f, AppFuture):
                record.state = TaskState.FAILED
                record.end_time = self.env.now
                record.future.fail(
                    TypeError(
                        f"join app {record.app_name!r} must return futures, "
                        f"got {type(f).__name__}"
                    )
                )
                return
        cond = self.env.all_of(inner_futures)
        cond._defused = True

        def _finish(ev: Event) -> None:
            record.end_time = self.env.now
            if not ev.ok:
                record.state = TaskState.FAILED
                record.future.fail(ev.value)
                return
            record.state = TaskState.DONE
            values = [f.value for f in inner_futures]
            record.future.succeed(
                values if isinstance(inner, (list, tuple)) else values[0]
            )

        cond.callbacks.append(_finish)

    def _select_executor(self, app: AppBase) -> str:
        if app.executors == "all":
            return next(iter(self.executors))
        wanted: Sequence[str] = (
            [app.executors] if isinstance(app.executors, str)
            else list(app.executors)
        )
        for label in wanted:
            if label in self.executors:
                return label
        raise KeyError(
            f"app {app.name!r} wants executors {list(wanted)}, but only "
            f"{sorted(self.executors)} are configured"
        )

    # -- driving the simulation ------------------------------------------------
    def run(self, until: float | Event | None = None) -> Any:
        """Advance the simulation (thin wrapper over the Environment)."""
        return self.env.run(until=until)

    def wait(self, futures: Sequence[AppFuture]) -> list[Any]:
        """Run until every future resolves; returns their results."""
        pending = [f for f in futures if not f.triggered]
        if pending:
            cond = self.env.all_of(pending)
            cond._defused = True
            self.env.run(until=cond)
        return [f.result() for f in futures]

    # -- introspection ------------------------------------------------------------
    def task_summary(self) -> dict[str, int]:
        """Count of tasks by state name."""
        summary: dict[str, int] = {}
        for record in self.tasks:
            summary[record.state.value] = summary.get(record.state.value, 0) + 1
        return summary


def _collect_futures(values: tuple) -> list[AppFuture]:
    deps: list[AppFuture] = []
    for value in values:
        if isinstance(value, AppFuture):
            deps.append(value)
        elif isinstance(value, (list, tuple)):
            deps.extend(v for v in value if isinstance(v, AppFuture))
    return deps


def _substitute_one(value: Any) -> Any:
    if isinstance(value, AppFuture):
        return value.value
    if isinstance(value, list):
        return [_substitute_one(v) for v in value]
    if isinstance(value, tuple):
        return tuple(_substitute_one(v) for v in value)
    return value


def _substitute(args: tuple) -> tuple:
    return tuple(_substitute_one(a) for a in args)
