"""Cold-start cost decomposition (§6 of the paper).

The paper identifies three components of GPU serverless startup overhead:

1. *function initialization* — package download, decompression, imports;
2. *GPU context initialization* — creating the CUDA context;
3. *application loading* — e.g. copying model weights into HBM (measured
   at up to 10 s for LLaMa-2 13B).

Components 1 and 2 are worker-level and modelled here; component 3 is
workload-level (the weights' size divided by the load bandwidth, see
:class:`repro.workloads.llm.LlamaInference.load_seconds`) and can be
bypassed by the GPU-resident weight cache of
:mod:`repro.partition.weightcache` (§7 future work).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ColdStartModel"]


@dataclass(frozen=True)
class ColdStartModel:
    """Worker-level cold start costs, in seconds."""

    #: Function environment setup: download, decompress, import.
    function_init_seconds: float = 1.5
    #: CUDA context creation on first GPU use by a process.
    gpu_context_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.function_init_seconds < 0 or self.gpu_context_seconds < 0:
            raise ValueError("cold start components must be non-negative")

    def worker_start_seconds(self, uses_gpu: bool) -> float:
        """Total worker cold start before the first task can run."""
        total = self.function_init_seconds
        if uses_gpu:
            total += self.gpu_context_seconds
        return total
