"""The Parsl-style ``Config`` object (Listing 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = ["Config"]


@dataclass
class Config:
    """Top-level configuration handed to :func:`repro.faas.load`.

    Mirrors the fields the paper's Listing 1 exercises: a list of
    executors (e.g. one CPU and one GPU ``HighThroughputExecutor``), a
    retry budget, and a run directory label (we keep logs in memory, but
    preserve the field for config compatibility).  ``monitoring``
    optionally attaches a :class:`~repro.faas.monitoring.MonitoringHub`
    (Listing 1's "monitoring DB").
    """

    executors: Sequence = field(default_factory=tuple)
    retries: int = 0
    run_dir: str = "runinfo"
    monitoring: Optional["MonitoringHub"] = None  # noqa: F821

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        labels = [e.label for e in self.executors]
        if len(labels) != len(set(labels)):
            raise ValueError(f"duplicate executor labels in {labels}")
        if not self.executors:
            raise ValueError("Config needs at least one executor")
