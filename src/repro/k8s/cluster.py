"""The cluster: nodes, the scheduler loop, and pod execution.

A deliberately small but honest kube-scheduler: FIFO pending queue with
head-of-line retry, feasibility filtering against per-node allocatable
resources, and a least-allocated score for spreading.  Extended GPU
resources come from a device plugin (see
:mod:`repro.k8s.deviceplugin`), which also performs the container-level
GPU binding at pod start.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.core import Environment
from repro.faas.providers import ComputeNode
from repro.k8s.pod import Pod, PodContext, PodPhase
from repro.k8s.resources import ResourceSpec

__all__ = ["Cluster", "K8sNode"]


class K8sNode:
    """A schedulable node: a ComputeNode plus allocatable accounting."""

    def __init__(self, node: ComputeNode, plugin=None):
        self.node = node
        self.plugin = plugin
        extended = plugin.advertise(node) if plugin is not None else {}
        self.allocatable = ResourceSpec(
            cpu=float(node.cores),
            memory_bytes=float("inf"),
            extended=extended,
        )
        self.free = self.allocatable
        self.pods: list[Pod] = []

    @property
    def name(self) -> str:
        return self.node.name

    def can_fit(self, pod: Pod) -> bool:
        return pod.requests.fits_within(self.free)

    def bind(self, pod: Pod) -> None:
        self.free = self.free.minus(pod.requests)
        self.pods.append(pod)
        pod.node_name = self.name

    def unbind(self, pod: Pod) -> None:
        self.free = self.free.plus(pod.requests)
        self.pods.remove(pod)

    def score(self) -> float:
        """Least-allocated spreading score (higher = preferred)."""
        if self.allocatable.cpu == 0:
            return 0.0
        return self.free.cpu / self.allocatable.cpu


class Cluster:
    """Nodes + scheduler; submit pods, run the simulation, read phases.

    ``strategy`` selects the scoring plugin: ``"least-allocated"``
    (spread — the kube-scheduler default) or ``"most-allocated"``
    (bin-pack, the usual choice for expensive GPU nodes so idle ones can
    be scaled away).
    """

    STRATEGIES = ("least-allocated", "most-allocated")

    def __init__(self, env: Environment, nodes: Sequence[ComputeNode],
                 plugin=None, scheduler_interval: float = 0.25,
                 strategy: str = "least-allocated"):
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        if scheduler_interval <= 0:
            raise ValueError("scheduler_interval must be positive")
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; choose from "
                f"{self.STRATEGIES}"
            )
        self.env = env
        self.plugin = plugin
        self.strategy = strategy
        self.nodes = [K8sNode(n, plugin) for n in nodes]
        self.pending: list[Pod] = []
        self.all_pods: list[Pod] = []
        self.scheduler_interval = scheduler_interval
        self.preempted_schedule_attempts = 0
        self._proc = env.process(self._scheduler_loop())

    # -- API ------------------------------------------------------------------
    def submit(self, pod: Pod) -> Pod:
        if pod.phase is not PodPhase.PENDING:
            raise ValueError(f"pod {pod.name!r} already {pod.phase.value}")
        self.pending.append(pod)
        self.all_pods.append(pod)
        return pod

    def pods_in_phase(self, phase: PodPhase) -> list[Pod]:
        return [p for p in self.all_pods if p.phase is phase]

    @property
    def done(self) -> bool:
        return all(p.phase in (PodPhase.SUCCEEDED, PodPhase.FAILED)
                   for p in self.all_pods)

    def run_until_done(self, max_seconds: float = 1e7) -> None:
        """Advance the simulation until every submitted pod finishes."""
        deadline = self.env.now + max_seconds
        while not self.done:
            if self.env.peek() > deadline:
                raise TimeoutError(
                    f"pods still pending after {max_seconds} s: "
                    f"{[p.name for p in self.pending]}"
                )
            self.env.step()

    # -- scheduler ----------------------------------------------------------------
    def _scheduler_loop(self):
        while True:
            yield self.env.timeout(self.scheduler_interval)
            self._schedule_round()

    def _schedule_round(self) -> None:
        # FIFO with retry: unschedulable pods stay pending (no eviction).
        still_pending: list[Pod] = []
        for pod in self.pending:
            feasible = [n for n in self.nodes if n.can_fit(pod)]
            if not feasible:
                self.preempted_schedule_attempts += 1
                still_pending.append(pod)
                continue
            if self.strategy == "least-allocated":
                target = max(feasible, key=lambda n: (n.score(), n.name))
            else:  # most-allocated: pack onto the fullest feasible node
                target = min(feasible, key=lambda n: (n.score(), n.name))
            target.bind(pod)
            self.env.process(self._run_pod(target, pod))
        self.pending = still_pending

    def _run_pod(self, k8s_node: K8sNode, pod: Pod):
        pod.phase = PodPhase.RUNNING
        pod.start_time = self.env.now
        gpu_client = None
        try:
            if self.plugin is not None and pod.wants_gpu:
                gpu_client = self.plugin.allocate(k8s_node.node, pod)
            if pod.duration is not None:
                yield self.env.timeout(pod.duration)
                pod.result = None
            else:
                ctx = PodContext(env=self.env, pod=pod, node=k8s_node.node,
                                 gpu=gpu_client)
                inner = self.env.process(pod.main(ctx))
                inner.defuse()
                yield inner
                if not inner.ok:
                    raise inner.value
                pod.result = inner.value
            pod.phase = PodPhase.SUCCEEDED
        except Exception as exc:  # noqa: BLE001 - pod failure path
            pod.phase = PodPhase.FAILED
            pod.failure = exc
        finally:
            pod.end_time = self.env.now
            if gpu_client is not None and gpu_client.alive:
                self.plugin.release(gpu_client)
            k8s_node.unbind(pod)
