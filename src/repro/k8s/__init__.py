"""A miniature Kubernetes-style orchestrator over the simulated nodes.

Why it exists: the paper's introduction motivates the Parsl extension by
observing that "many FaaS platforms (e.g., KNative, Parsl) can run on the
container orchestration service Kubernetes which only has *limited GPU
sharing support*".  This package makes that claim measurable: a pod
scheduler plus the three real GPU exposure mechanisms Kubernetes offers —

- :class:`~repro.k8s.deviceplugin.WholeGpuPlugin` — the stock NVIDIA
  device plugin: one pod per GPU, exclusive (the limitation);
- :class:`~repro.k8s.deviceplugin.TimeSlicingPlugin` — the device
  plugin's time-slicing config: N pods share a GPU temporally, no
  isolation and no partitioning;
- :class:`~repro.k8s.deviceplugin.MigDevicePlugin` — MIG instances
  exposed as extended resources (``nvidia.com/mig-1g.5gb`` etc.).

``benchmarks/test_extension_k8s.py`` runs the same inference pods under
each plugin and against the paper's MPS-partitioned FaaS executor.
"""

from repro.k8s.resources import ResourceSpec
from repro.k8s.pod import Pod, PodPhase
from repro.k8s.deviceplugin import (
    MigDevicePlugin,
    TimeSlicingPlugin,
    WholeGpuPlugin,
)
from repro.k8s.cluster import Cluster, K8sNode

__all__ = [
    "Cluster",
    "K8sNode",
    "MigDevicePlugin",
    "Pod",
    "PodPhase",
    "ResourceSpec",
    "TimeSlicingPlugin",
    "WholeGpuPlugin",
]
