"""GPU device plugins: how Kubernetes exposes GPUs to pods.

Each plugin does two jobs, mirroring the real device-plugin API:

1. **advertise** — report extended resources for a node's GPUs;
2. **allocate** — given a pod that was granted such a resource, produce
   the :class:`~repro.gpu.device.GpuClient` its container will use (and
   release it afterwards).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.faas.providers import ComputeNode
from repro.gpu.device import GpuClient
from repro.k8s.pod import Pod
from repro.k8s.resources import ResourceSpec

__all__ = ["MigDevicePlugin", "TimeSlicingPlugin", "WholeGpuPlugin"]

GPU_RESOURCE = "nvidia.com/gpu"
_alloc_ids = itertools.count()


class WholeGpuPlugin:
    """The stock NVIDIA device plugin: whole GPUs, exclusive.

    This is the "limited GPU sharing support" the paper's introduction
    refers to — a pod either owns an entire GPU or none.
    """

    def advertise(self, node: ComputeNode) -> dict[str, int]:
        return {GPU_RESOURCE: len(node.gpus)} if node.gpus else {}

    def allocate(self, node: ComputeNode, pod: Pod) -> Optional[GpuClient]:
        count = pod.requests.extended.get(GPU_RESOURCE, 0)
        if count == 0:
            return None
        if count != 1:
            raise ValueError(
                f"pod {pod.name!r}: this reproduction models 1 GPU per pod"
            )
        # Find a GPU with no clients (exclusive ownership).
        for gpu in node.gpus:
            if not gpu.default_group.clients:
                return gpu.timeshare_client(
                    f"{pod.name}-{next(_alloc_ids)}")
        raise RuntimeError(
            f"{node.name}: scheduler granted {GPU_RESOURCE} but every GPU "
            "is occupied (accounting bug)"
        )

    def release(self, client: GpuClient) -> None:
        client.close()


class TimeSlicingPlugin:
    """The device plugin's time-slicing configuration.

    Advertises ``replicas`` copies of each GPU; pods granted a replica
    share the device under the driver's default time-slicing — no memory
    or fault isolation, no partitioning (the plugin's own documentation
    warns exactly this).
    """

    def __init__(self, replicas: int = 4):
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self.replicas = replicas

    def advertise(self, node: ComputeNode) -> dict[str, int]:
        if not node.gpus:
            return {}
        return {GPU_RESOURCE: len(node.gpus) * self.replicas}

    def allocate(self, node: ComputeNode, pod: Pod) -> Optional[GpuClient]:
        count = pod.requests.extended.get(GPU_RESOURCE, 0)
        if count == 0:
            return None
        # Pick the GPU with the fewest time-shared tenants.
        gpu = min(node.gpus, key=lambda g: len(g.default_group.clients))
        return gpu.timeshare_client(f"{pod.name}-{next(_alloc_ids)}")

    def release(self, client: GpuClient) -> None:
        client.close()


class MigDevicePlugin:
    """MIG instances as extended resources (``nvidia.com/mig-<profile>``).

    The node's GPUs must already be partitioned (MIG mode enabled,
    instances created); the plugin advertises one resource unit per
    instance and binds pods to free instances of the requested profile.
    """

    @staticmethod
    def resource_name(profile_name: str) -> str:
        return f"nvidia.com/mig-{profile_name}"

    def advertise(self, node: ComputeNode) -> dict[str, int]:
        resources: dict[str, int] = {}
        for index in range(len(node.gpus)):
            manager = node._mig_managers.get(index)
            if manager is None or not manager.enabled:
                continue
            for instance in manager.instances:
                name = self.resource_name(instance.profile.name)
                resources[name] = resources.get(name, 0) + 1
        return resources

    def allocate(self, node: ComputeNode, pod: Pod) -> Optional[GpuClient]:
        wanted = [
            (name, count) for name, count in pod.requests.extended.items()
            if name.startswith("nvidia.com/mig-") and count > 0
        ]
        if not wanted:
            return None
        if len(wanted) > 1 or wanted[0][1] != 1:
            raise ValueError(
                f"pod {pod.name!r}: this reproduction models one MIG "
                "instance per pod"
            )
        profile_name = wanted[0][0].removeprefix("nvidia.com/mig-")
        for index in range(len(node.gpus)):
            manager = node._mig_managers.get(index)
            if manager is None or not manager.enabled:
                continue
            for instance in manager.instances:
                if (instance.profile.name == profile_name
                        and not instance.clients):
                    return instance.client(
                        f"{pod.name}-{next(_alloc_ids)}")
        raise RuntimeError(
            f"{node.name}: scheduler granted mig-{profile_name} but no "
            "free instance exists (accounting bug)"
        )

    def release(self, client: GpuClient) -> None:
        client.close()
