"""Pod resource requests and node allocatable accounting."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ResourceSpec"]


@dataclass(frozen=True)
class ResourceSpec:
    """A bundle of resource quantities (requests or allocatable).

    ``cpu`` is in whole cores (k8s millicores / 1000); ``extended`` holds
    integer-countable extended resources, e.g. ``{"nvidia.com/gpu": 1}``
    or ``{"nvidia.com/mig-2g.10gb": 1}``.
    """

    cpu: float = 0.0
    memory_bytes: float = 0.0
    extended: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cpu < 0 or self.memory_bytes < 0:
            raise ValueError("resource quantities must be non-negative")
        for name, count in self.extended.items():
            if count < 0:
                raise ValueError(f"extended resource {name!r} negative")

    def fits_within(self, other: "ResourceSpec") -> bool:
        """Whether this request fits inside ``other`` (free capacity)."""
        if self.cpu > other.cpu + 1e-9:
            return False
        if self.memory_bytes > other.memory_bytes + 1e-6:
            return False
        for name, count in self.extended.items():
            if count > other.extended.get(name, 0):
                return False
        return True

    def plus(self, other: "ResourceSpec") -> "ResourceSpec":
        extended = dict(self.extended)
        for name, count in other.extended.items():
            extended[name] = extended.get(name, 0) + count
        return ResourceSpec(cpu=self.cpu + other.cpu,
                            memory_bytes=self.memory_bytes + other.memory_bytes,
                            extended=extended)

    def minus(self, other: "ResourceSpec") -> "ResourceSpec":
        extended = dict(self.extended)
        for name, count in other.extended.items():
            remaining = extended.get(name, 0) - count
            if remaining < 0:
                raise ValueError(f"extended resource {name!r} underflow")
            extended[name] = remaining
        if self.cpu - other.cpu < -1e-9:
            raise ValueError("cpu underflow")
        if self.memory_bytes - other.memory_bytes < -1e-6:
            raise ValueError("memory underflow")
        return ResourceSpec(cpu=max(0.0, self.cpu - other.cpu),
                            memory_bytes=max(0.0, self.memory_bytes
                                             - other.memory_bytes),
                            extended=extended)
