"""Pods: the unit the orchestrator schedules."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.k8s.resources import ResourceSpec

__all__ = ["Pod", "PodPhase"]

_pod_ids = itertools.count()


class PodPhase(enum.Enum):
    PENDING = "Pending"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"


@dataclass
class Pod:
    """One pod: resource requests plus a workload.

    The workload is either a fixed ``duration`` (a container that runs
    that long) or a generator ``main(pod_context)`` driving simulated
    time — pods that received a GPU find their
    :class:`~repro.gpu.device.GpuClient` at ``pod_context.gpu``.
    """

    name: str
    requests: ResourceSpec
    duration: Optional[float] = None
    main: Optional[Callable] = None
    uid: int = field(default_factory=lambda: next(_pod_ids))
    phase: PodPhase = PodPhase.PENDING
    node_name: Optional[str] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    result: object = None
    failure: Optional[BaseException] = None

    def __post_init__(self) -> None:
        if (self.duration is None) == (self.main is None):
            raise ValueError(
                f"pod {self.name!r}: provide exactly one of duration= or "
                "main="
            )
        if self.duration is not None and self.duration < 0:
            raise ValueError("duration must be non-negative")

    @property
    def wants_gpu(self) -> bool:
        return any(name.startswith("nvidia.com/")
                   for name in self.requests.extended)

    @property
    def wall_seconds(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time


@dataclass
class PodContext:
    """What a running pod's ``main`` generator receives."""

    env: object
    pod: Pod
    node: object
    gpu: object = None  # GpuClient when a GPU resource was allocated
