"""The ML emulator trained inside the molecular-design loop.

The paper's campaign trains a neural network to emulate quantum chemistry
(step 3 of §3.1).  We use ridge regression over random Fourier features —
a real, trainable nonlinear model implemented with numpy — so the
active-learning loop genuinely learns the synthetic ground truth and its
top-K selections genuinely improve over rounds (verified by tests).

GPU cost model: training and batch inference also expose roofline kernels
so the FaaS layer can place them on (partitions of) the simulated GPU.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import Kernel

__all__ = ["RidgeEmulator"]


class RidgeEmulator:
    """Ridge regression on random Fourier features.

    Approximates an RBF-kernel regressor: ``phi(x) = sqrt(2/D) cos(Wx+b)``
    with ``W ~ N(0, 1/lengthscale^2)``; closed-form ridge solve in feature
    space.  Deterministic given the seed.
    """

    def __init__(self, n_features: int = 256, lengthscale: float = 12.0,
                 regularization: float = 1e-3, seed: int = 0):
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        if lengthscale <= 0:
            raise ValueError("lengthscale must be positive")
        if regularization <= 0:
            raise ValueError("regularization must be positive")
        self.n_features = n_features
        self.lengthscale = lengthscale
        self.regularization = regularization
        self.seed = seed
        self._proj: np.ndarray | None = None
        self._bias: np.ndarray | None = None
        self._weights: np.ndarray | None = None
        self._y_mean = 0.0
        self.n_trained_on = 0

    @property
    def is_trained(self) -> bool:
        return self._weights is not None

    def _featurize(self, x: np.ndarray) -> np.ndarray:
        if self._proj is None:
            rng = np.random.default_rng(self.seed)
            self._proj = rng.normal(scale=1.0 / self.lengthscale,
                                    size=(x.shape[1], self.n_features))
            self._bias = rng.uniform(0, 2 * np.pi, size=self.n_features)
        return np.sqrt(2.0 / self.n_features) * np.cos(
            x @ self._proj + self._bias)

    def train(self, x: np.ndarray, y: np.ndarray) -> float:
        """Fit on ``(n, d)`` features / ``(n,)`` targets; returns train RMSE."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or y.ndim != 1 or len(x) != len(y):
            raise ValueError("expected x of shape (n, d) and y of shape (n,)")
        if len(x) == 0:
            raise ValueError("cannot train on an empty dataset")
        phi = self._featurize(x)
        self._y_mean = float(y.mean())
        yc = y - self._y_mean
        gram = phi.T @ phi + self.regularization * np.eye(self.n_features)
        self._weights = np.linalg.solve(gram, phi.T @ yc)
        self.n_trained_on = len(x)
        pred = phi @ self._weights + self._y_mean
        return float(np.sqrt(np.mean((pred - y) ** 2)))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict targets for ``(n, d)`` features."""
        if not self.is_trained:
            raise RuntimeError("emulator has not been trained yet")
        x = np.asarray(x, dtype=float)
        phi = self._featurize(x)
        return phi @ self._weights + self._y_mean

    # -- GPU cost model ------------------------------------------------------
    def training_kernel(self, n_samples: int, epochs_equivalent: int = 50
                        ) -> Kernel:
        """Roofline cost of (re)training on ``n_samples`` molecules.

        Modelled after the paper's TensorFlow training phase: a few dozen
        epoch-equivalents of dense work proportional to the dataset size.
        """
        d = self.n_features
        flops = 2.0 * n_samples * d * d * epochs_equivalent
        return Kernel(
            flops=max(flops, 1e9),
            bytes_moved=8.0 * n_samples * d * epochs_equivalent,
            max_sms=48,
            efficiency=0.3,
            name="emulator-train",
        )

    def inference_kernel(self, n_samples: int) -> Kernel:
        """Roofline cost of scoring ``n_samples`` candidate molecules."""
        d = self.n_features
        return Kernel(
            flops=max(2.0 * n_samples * d * d, 1e8),
            bytes_moved=8.0 * n_samples * d,
            max_sms=24,
            efficiency=0.3,
            name="emulator-infer",
        )
