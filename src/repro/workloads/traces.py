"""Synthetic arrival traces for serving experiments.

FaaS load is famously bursty and diurnal; the serving and autoscaling
studies need reproducible open-loop arrival processes richer than a
constant rate.  Three generators, all deterministic given a seed:

- :func:`poisson_trace` — memoryless arrivals at a constant rate;
- :func:`diurnal_trace` — a sinusoidal day/night rate profile (thinned
  Poisson), the classic serverless load shape;
- :func:`bursty_trace` — a two-state Markov-modulated Poisson process
  (quiet/burst), producing the flash-crowd pattern that punishes cold
  starts.

Traces are plain sorted lists of arrival timestamps, so they can feed
any component (InferenceServer, autoscaler demand, router studies).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "TraceStats",
    "bursty_trace",
    "diurnal_trace",
    "poisson_trace",
    "trace_stats",
    "to_rate_series",
]


def poisson_trace(rate_rps: float, horizon: float,
                  seed: int = 0) -> list[float]:
    """Poisson arrivals at ``rate_rps`` over ``[0, horizon)``."""
    if rate_rps <= 0 or horizon <= 0:
        raise ValueError("rate and horizon must be positive")
    rng = np.random.default_rng(seed)
    arrivals = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate_rps))
        if t >= horizon:
            return arrivals
        arrivals.append(t)


def diurnal_trace(mean_rate_rps: float, horizon: float,
                  period: float = 86_400.0, depth: float = 0.8,
                  seed: int = 0) -> list[float]:
    """Sinusoidally-modulated Poisson arrivals (day/night pattern).

    Instantaneous rate: ``mean x (1 + depth x sin(2 pi t / period))``,
    realised by thinning a Poisson process at the peak rate.
    """
    if not 0 <= depth <= 1:
        raise ValueError("depth must be in [0, 1]")
    if mean_rate_rps <= 0 or horizon <= 0 or period <= 0:
        raise ValueError("rates and durations must be positive")
    peak = mean_rate_rps * (1 + depth)
    rng = np.random.default_rng(seed)
    arrivals = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / peak))
        if t >= horizon:
            return arrivals
        rate = mean_rate_rps * (1 + depth * math.sin(2 * math.pi * t / period))
        if rng.uniform() < rate / peak:
            arrivals.append(t)


def bursty_trace(base_rate_rps: float, burst_rate_rps: float,
                 horizon: float, mean_quiet: float = 300.0,
                 mean_burst: float = 60.0, seed: int = 0) -> list[float]:
    """Two-state Markov-modulated Poisson process (quiet <-> burst)."""
    if burst_rate_rps < base_rate_rps:
        raise ValueError("burst_rate_rps must be >= base_rate_rps")
    if min(base_rate_rps, horizon, mean_quiet, mean_burst) <= 0:
        raise ValueError("all rates and durations must be positive")
    rng = np.random.default_rng(seed)
    arrivals = []
    t = 0.0
    bursting = False
    phase_end = float(rng.exponential(mean_quiet))
    while t < horizon:
        rate = burst_rate_rps if bursting else base_rate_rps
        t += float(rng.exponential(1.0 / rate))
        while t >= phase_end:
            bursting = not bursting
            phase_end += float(rng.exponential(
                mean_burst if bursting else mean_quiet))
        if t < horizon:
            arrivals.append(t)
    return arrivals


@dataclass(frozen=True)
class TraceStats:
    """Aggregate shape of a trace."""

    count: int
    horizon: float
    mean_rate: float
    peak_rate: float
    burstiness: float  # squared coeff. of variation of interarrivals


def trace_stats(arrivals: list[float], horizon: float,
                window: float = 60.0) -> TraceStats:
    """Summary statistics used by tests and reports."""
    if not arrivals:
        raise ValueError("empty trace")
    if horizon <= 0 or window <= 0:
        raise ValueError("horizon and window must be positive")
    arr = np.asarray(arrivals)
    rates = to_rate_series(arrivals, horizon, window)
    gaps = np.diff(arr)
    if len(gaps) > 0 and gaps.mean() > 0:
        cv2 = float(gaps.var() / gaps.mean() ** 2)
    else:
        cv2 = 0.0
    return TraceStats(
        count=len(arrivals),
        horizon=horizon,
        mean_rate=len(arrivals) / horizon,
        peak_rate=float(max(rates)) if rates else 0.0,
        burstiness=cv2,
    )


def to_rate_series(arrivals: list[float], horizon: float,
                   window: float = 60.0) -> list[float]:
    """Per-window arrival rates — the demand signal for the autoscaler."""
    if horizon <= 0 or window <= 0:
        raise ValueError("horizon and window must be positive")
    n_windows = max(1, int(math.ceil(horizon / window)))
    counts = [0] * n_windows
    for t in arrivals:
        if 0 <= t < horizon:
            counts[min(int(t // window), n_windows - 1)] += 1
    return [c / window for c in counts]
