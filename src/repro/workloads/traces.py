"""Synthetic arrival traces for serving experiments.

FaaS load is famously bursty and diurnal; the serving and autoscaling
studies need reproducible open-loop arrival processes richer than a
constant rate.  Three generators, all deterministic given a seed:

- :func:`poisson_trace` — memoryless arrivals at a constant rate;
- :func:`diurnal_trace` — a sinusoidal day/night rate profile (thinned
  Poisson), the classic serverless load shape;
- :func:`bursty_trace` — a two-state Markov-modulated Poisson process
  (quiet/burst), producing the flash-crowd pattern that punishes cold
  starts.

Traces are plain sorted lists of arrival timestamps, so they can feed
any component (InferenceServer, autoscaler demand, router studies).

For million-request runs the list form is the memory bottleneck, so
each generator has a streaming twin (``iter_*``) yielding timestamps
one at a time.  ``iter_poisson_trace`` draws inter-arrival gaps in
numpy chunks — a ``Generator.exponential(scale, size=n)`` draw is
bit-identical to ``n`` sequential scalar draws, so the iterator yields
exactly the timestamps ``poisson_trace`` returns
(``iter_poisson_trace_chunks`` exposes the same stream as whole numpy
arrays, the form the batched heap-injection path consumes).  The
diurnal and bursty processes interleave draw kinds (gap, then thinning
coin or phase length), which cannot be batched without reordering the
RNG stream; their iterators run the same scalar loop and are therefore
also bit-identical to the list builders, just O(1) in memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

__all__ = [
    "TraceStats",
    "bursty_trace",
    "diurnal_trace",
    "iter_bursty_trace",
    "iter_diurnal_trace",
    "iter_poisson_trace",
    "iter_poisson_trace_chunks",
    "poisson_trace",
    "streaming_trace_stats",
    "trace_stats",
    "to_rate_series",
]


def poisson_trace(rate_rps: float, horizon: float,
                  seed: int = 0) -> list[float]:
    """Poisson arrivals at ``rate_rps`` over ``[0, horizon)``."""
    return list(iter_poisson_trace(rate_rps, horizon, seed))


def iter_poisson_trace(rate_rps: float, horizon: float, seed: int = 0,
                       chunk: int = 4096) -> Iterator[float]:
    """Streaming :func:`poisson_trace`: same timestamps, O(chunk) memory.

    Gaps are drawn ``chunk`` at a time (bit-identical to sequential
    scalar draws from the same generator) and accumulated with the same
    scalar additions the list builder performs, so consumers see the
    identical float sequence.
    """
    if rate_rps <= 0 or horizon <= 0:
        raise ValueError("rate and horizon must be positive")
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    rng = np.random.default_rng(seed)
    scale = 1.0 / rate_rps
    t = 0.0
    while True:
        for gap in rng.exponential(scale, size=chunk):
            t += float(gap)
            if t >= horizon:
                return
            yield t


def iter_poisson_trace_chunks(rate_rps: float, horizon: float,
                              seed: int = 0,
                              chunk: int = 4096) -> Iterator[np.ndarray]:
    """Chunked :func:`iter_poisson_trace`: numpy arrays of arrival times.

    Concatenating the yielded arrays reproduces the scalar stream
    bit-for-bit: gaps come from the same chunked generator draws, and
    the running timestamp is accumulated with ``np.add.accumulate`` — a
    sequential left-to-right float64 sum, identical to the scalar
    ``t += gap`` chain.  The array form feeds
    :class:`~repro.workloads.serving.OpenLoopClient` (whose ``arrivals``
    source accepts ndarray chunks for batched heap injection) without
    ever materialising the per-timestamp Python floats.
    """
    if rate_rps <= 0 or horizon <= 0:
        raise ValueError("rate and horizon must be positive")
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    rng = np.random.default_rng(seed)
    scale = 1.0 / rate_rps
    t = 0.0
    while True:
        gaps = rng.exponential(scale, size=chunk)
        times = np.add.accumulate(np.concatenate(((t,), gaps)))[1:]
        cut = int(np.searchsorted(times, horizon, side="left"))
        if cut < times.size:
            if cut:
                yield times[:cut]
            return
        t = float(times[-1])
        yield times


def diurnal_trace(mean_rate_rps: float, horizon: float,
                  period: float = 86_400.0, depth: float = 0.8,
                  seed: int = 0, phase: float = 0.0) -> list[float]:
    """Sinusoidally-modulated Poisson arrivals (day/night pattern).

    Instantaneous rate:
    ``mean x (1 + depth x sin(2 pi t / period + phase))``, realised by
    thinning a Poisson process at the peak rate.  ``phase`` (radians)
    shifts the cycle — two traces ``pi`` apart model anti-correlated
    tenants whose peaks interleave, the load shape that makes demand-
    driven repartitioning pay.
    """
    return list(iter_diurnal_trace(mean_rate_rps, horizon, period=period,
                                   depth=depth, seed=seed, phase=phase))


def iter_diurnal_trace(mean_rate_rps: float, horizon: float,
                       period: float = 86_400.0, depth: float = 0.8,
                       seed: int = 0, phase: float = 0.0) -> Iterator[float]:
    """Streaming :func:`diurnal_trace`: same timestamps, O(1) memory.

    The thinning coin follows every gap draw, so the RNG stream cannot
    be chunked without reordering it; this runs the identical scalar
    loop and simply yields instead of appending.
    """
    if not 0 <= depth <= 1:
        raise ValueError("depth must be in [0, 1]")
    if mean_rate_rps <= 0 or horizon <= 0 or period <= 0:
        raise ValueError("rates and durations must be positive")
    peak = mean_rate_rps * (1 + depth)
    rng = np.random.default_rng(seed)
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / peak))
        if t >= horizon:
            return
        rate = mean_rate_rps * (
            1 + depth * math.sin(2 * math.pi * t / period + phase))
        if rng.uniform() < rate / peak:
            yield t


def bursty_trace(base_rate_rps: float, burst_rate_rps: float,
                 horizon: float, mean_quiet: float = 300.0,
                 mean_burst: float = 60.0, seed: int = 0) -> list[float]:
    """Two-state Markov-modulated Poisson process (quiet <-> burst)."""
    return list(iter_bursty_trace(base_rate_rps, burst_rate_rps, horizon,
                                  mean_quiet=mean_quiet,
                                  mean_burst=mean_burst, seed=seed))


def iter_bursty_trace(base_rate_rps: float, burst_rate_rps: float,
                      horizon: float, mean_quiet: float = 300.0,
                      mean_burst: float = 60.0,
                      seed: int = 0) -> Iterator[float]:
    """Streaming :func:`bursty_trace`: same timestamps, O(1) memory.

    Gap draws interleave with phase-length draws, so the loop stays
    scalar (see module docstring); only the list retention is removed.
    """
    if burst_rate_rps < base_rate_rps:
        raise ValueError("burst_rate_rps must be >= base_rate_rps")
    if min(base_rate_rps, horizon, mean_quiet, mean_burst) <= 0:
        raise ValueError("all rates and durations must be positive")
    rng = np.random.default_rng(seed)
    t = 0.0
    bursting = False
    phase_end = float(rng.exponential(mean_quiet))
    while t < horizon:
        rate = burst_rate_rps if bursting else base_rate_rps
        t += float(rng.exponential(1.0 / rate))
        while t >= phase_end:
            bursting = not bursting
            phase_end += float(rng.exponential(
                mean_burst if bursting else mean_quiet))
        if t < horizon:
            yield t


@dataclass(frozen=True)
class TraceStats:
    """Aggregate shape of a trace."""

    count: int
    horizon: float
    mean_rate: float
    peak_rate: float
    burstiness: float  # squared coeff. of variation of interarrivals


def trace_stats(arrivals: list[float], horizon: float,
                window: float = 60.0) -> TraceStats:
    """Summary statistics used by tests and reports."""
    if not arrivals:
        raise ValueError("empty trace")
    if horizon <= 0 or window <= 0:
        raise ValueError("horizon and window must be positive")
    arr = np.asarray(arrivals)
    rates = to_rate_series(arrivals, horizon, window)
    gaps = np.diff(arr)
    if len(gaps) > 0 and gaps.mean() > 0:
        cv2 = float(gaps.var() / gaps.mean() ** 2)
    else:
        cv2 = 0.0
    return TraceStats(
        count=len(arrivals),
        horizon=horizon,
        mean_rate=len(arrivals) / horizon,
        peak_rate=float(max(rates)) if rates else 0.0,
        burstiness=cv2,
    )


def to_rate_series(arrivals: list[float], horizon: float,
                   window: float = 60.0) -> list[float]:
    """Per-window arrival rates — the demand signal for the autoscaler."""
    if horizon <= 0 or window <= 0:
        raise ValueError("horizon and window must be positive")
    n_windows = max(1, int(math.ceil(horizon / window)))
    counts = [0] * n_windows
    for t in arrivals:
        if 0 <= t < horizon:
            counts[min(int(t // window), n_windows - 1)] += 1
    return [c / window for c in counts]


def streaming_trace_stats(arrivals: Iterable[float], horizon: float,
                          window: float = 60.0) -> TraceStats:
    """One-pass :func:`trace_stats` over an arrival *iterator*.

    Consumes a (sorted) stream once in O(1) memory: peak rate from a
    running window counter (arrivals are non-decreasing, so windows
    only ever advance), burstiness from Welford's online variance of
    the gaps.  Values match the batch path to float rounding — the
    batch variance is computed by numpy in a different summation order.
    """
    if horizon <= 0 or window <= 0:
        raise ValueError("horizon and window must be positive")
    n_windows = max(1, int(math.ceil(horizon / window)))
    count = 0
    cur_win = -1
    cur_count = 0
    peak_count = 0
    prev_t = None
    # Welford accumulators over inter-arrival gaps.
    n_gaps = 0
    gap_mean = 0.0
    gap_m2 = 0.0
    for t in arrivals:
        count += 1
        if 0 <= t < horizon:
            win = min(int(t // window), n_windows - 1)
            if win != cur_win:
                if cur_count > peak_count:
                    peak_count = cur_count
                cur_win = win
                cur_count = 0
            cur_count += 1
        if prev_t is not None:
            gap = t - prev_t
            n_gaps += 1
            delta = gap - gap_mean
            gap_mean += delta / n_gaps
            gap_m2 += delta * (gap - gap_mean)
        prev_t = t
    if count == 0:
        raise ValueError("empty trace")
    peak_count = max(peak_count, cur_count)
    if n_gaps > 0 and gap_mean > 0:
        cv2 = (gap_m2 / n_gaps) / gap_mean ** 2
    else:
        cv2 = 0.0
    return TraceStats(
        count=count,
        horizon=horizon,
        mean_rate=count / horizon,
        peak_rate=peak_count / window,
        burstiness=cv2,
    )
