"""Convolutional-network arithmetic: the model zoo behind Fig. 1.

Fig. 1 plots the floating-point work of *each convolution layer* of
popular torchvision classifiers to show that compute demand varies wildly
within a single network.  We reproduce it with exact closed-form conv
arithmetic rather than torchvision:

``FLOPs = 2 x K_h x K_w x C_in/groups x C_out x H_out x W_out``

(the factor 2 counts a multiply and an accumulate, as the paper's
"floating point multiplication and addition" phrasing does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.gpu.kernel import Kernel, KernelGroup

__all__ = [
    "ConvLayer",
    "CnnModel",
    "conv_output_size",
    "ALEXNET",
    "VGG16",
    "RESNET18",
    "RESNET34",
    "RESNET50",
    "RESNET101",
    "RESNET152",
    "CNN_ZOO",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a conv/pool along one dimension."""
    if size <= 0:
        raise ValueError("input size must be positive")
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"layer reduces size {size} to {out} (kernel={kernel}, "
            f"stride={stride}, padding={padding})"
        )
    return out


@dataclass(frozen=True)
class ConvLayer:
    """One convolution layer (pooling is modelled only for its resizing)."""

    name: str
    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int = 1
    padding: int = 0
    groups: int = 1

    def __post_init__(self) -> None:
        if self.in_channels % self.groups:
            raise ValueError("in_channels must be divisible by groups")

    def output_size(self, size: int) -> int:
        return conv_output_size(size, self.kernel_size, self.stride, self.padding)

    def flops_per_image(self, input_size: int) -> float:
        """Multiply-add FLOPs to process one image of ``input_size``^2."""
        out = self.output_size(input_size)
        return (
            2.0
            * self.kernel_size ** 2
            * (self.in_channels / self.groups)
            * self.out_channels
            * out ** 2
        )

    def weight_count(self) -> int:
        return (self.kernel_size ** 2 * self.in_channels // self.groups
                * self.out_channels)

    def bytes_per_image(self, input_size: int, dtype_bytes: int = 4) -> float:
        """DRAM traffic: input + output activations + one weight read."""
        out = self.output_size(input_size)
        acts = (self.in_channels * input_size ** 2
                + self.out_channels * out ** 2)
        return dtype_bytes * (acts + self.weight_count())


@dataclass(frozen=True)
class _Resize:
    """A pooling/stride-only stage: contributes no FLOPs to Fig. 1."""

    factor: int


@dataclass(frozen=True)
class CnnModel:
    """An ordered stack of conv layers with interleaved resizing stages."""

    name: str
    stages: tuple
    input_size: int = 224

    def conv_layers(self) -> Iterator[tuple[ConvLayer, int]]:
        """Yield ``(layer, input_size_at_that_layer)`` in execution order."""
        size = self.input_size
        for stage in self.stages:
            if isinstance(stage, _Resize):
                size = max(1, size // stage.factor)
            else:
                yield stage, size
                size = stage.output_size(size)

    def layer_flops(self, batch_size: int = 1) -> list[tuple[str, float]]:
        """Per-conv-layer FLOPs in execution order — the Fig. 1 series."""
        return [
            (layer.name, batch_size * layer.flops_per_image(size))
            for layer, size in self.conv_layers()
        ]

    def total_flops(self, batch_size: int = 1) -> float:
        return sum(f for _, f in self.layer_flops(batch_size))

    def flop_variation(self, batch_size: int = 1) -> float:
        """max/min ratio of per-layer FLOPs (Fig. 1's headline statistic)."""
        flops = [f for _, f in self.layer_flops(batch_size)]
        return max(flops) / min(flops)

    def weight_bytes(self, dtype_bytes: int = 4) -> float:
        return dtype_bytes * sum(
            layer.weight_count() for layer, _ in self.conv_layers()
        )

    def training_kernels(self, batch_size: int = 32, dtype_bytes: int = 4,
                         efficiency: float = 0.5) -> KernelGroup:
        """Kernels for one training step (forward + backward).

        The backward pass computes both input gradients and weight
        gradients, so a training step costs roughly 3x the forward FLOPs
        (the standard rule of thumb); activation traffic roughly doubles
        (saved activations are re-read).  Training batches are large, so
        parallelism rarely limits SM usage (§3.4: training *can* fill a
        GPU — it is inference that cannot).
        """
        forward = self.inference_kernels(batch_size, dtype_bytes, efficiency)
        kernels = []
        for k in forward:
            kernels.append(Kernel(
                flops=3.0 * k.flops,
                bytes_moved=2.0 * k.bytes_moved,
                max_sms=min(1024, 3 * k.max_sms),
                efficiency=efficiency,
                name=k.name.replace("inference", "train") + ".fwd+bwd",
            ))
        return KernelGroup(kernels, name=f"{self.name}-trainstep")

    def inference_kernels(self, batch_size: int = 1, dtype_bytes: int = 4,
                          efficiency: float = 0.6) -> KernelGroup:
        """One kernel per conv layer for GPU-simulator inference runs.

        ``max_sms`` grows with the layer's output parallelism (thread
        blocks of ~256 threads, a few blocks per SM) and with batch size —
        which is why small-batch inference cannot fill an A100 (§3.4).
        """
        kernels = []
        for layer, size in self.conv_layers():
            out = layer.output_size(size)
            parallelism = out * out * layer.out_channels * batch_size
            max_sms = max(1, min(1024, parallelism // 2048))
            kernels.append(
                Kernel(
                    flops=batch_size * layer.flops_per_image(size),
                    bytes_moved=batch_size * layer.bytes_per_image(
                        size, dtype_bytes),
                    max_sms=max_sms,
                    efficiency=efficiency,
                    name=f"{self.name}.{layer.name}",
                )
            )
        return KernelGroup(kernels, name=f"{self.name}-inference")


def _vgg_stages() -> tuple:
    cfg = [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
           512, 512, 512, "M", 512, 512, 512, "M"]
    stages: list = []
    in_ch = 3
    idx = 0
    for item in cfg:
        if item == "M":
            stages.append(_Resize(2))
            continue
        idx += 1
        stages.append(ConvLayer(f"conv{idx}", in_ch, item, 3, padding=1))
        in_ch = item
    return tuple(stages)


def _resnet_stages(block_counts: list[int], bottleneck: bool) -> tuple:
    """Build ResNet stages (conv layers only, in execution order)."""
    stages: list = [
        ConvLayer("conv1", 3, 64, 7, stride=2, padding=3),
        _Resize(2),  # 3x3 max-pool stride 2
    ]
    expansion = 4 if bottleneck else 1
    in_ch = 64
    for stage_idx, (blocks, width) in enumerate(
            zip(block_counts, (64, 128, 256, 512))):
        for block in range(blocks):
            stride = 2 if (stage_idx > 0 and block == 0) else 1
            prefix = f"layer{stage_idx + 1}.{block}"
            if bottleneck:
                stages.append(ConvLayer(f"{prefix}.conv1", in_ch, width, 1))
                stages.append(ConvLayer(f"{prefix}.conv2", width, width, 3,
                                        stride=stride, padding=1))
                stages.append(ConvLayer(f"{prefix}.conv3", width,
                                        width * expansion, 1))
            else:
                stages.append(ConvLayer(f"{prefix}.conv1", in_ch, width, 3,
                                        stride=stride, padding=1))
                stages.append(ConvLayer(f"{prefix}.conv2", width, width, 3,
                                        padding=1))
            if block == 0:
                # The shortcut 1x1 conv runs on the block *input*, but its
                # FLOPs are set by the block-output resolution, which is
                # what the sequential chain carries at this point — so it
                # is threaded with stride 1 to keep the chain's spatial
                # size correct (it is a parallel branch, not a stage).
                stages.append(ConvLayer(f"{prefix}.downsample", in_ch,
                                        width * expansion, 1, stride=1))
            in_ch = width * expansion
    return tuple(stages)


ALEXNET = CnnModel(
    name="alexnet",
    stages=(
        ConvLayer("conv1", 3, 64, 11, stride=4, padding=2),
        _Resize(2),
        ConvLayer("conv2", 64, 192, 5, padding=2),
        _Resize(2),
        ConvLayer("conv3", 192, 384, 3, padding=1),
        ConvLayer("conv4", 384, 256, 3, padding=1),
        ConvLayer("conv5", 256, 256, 3, padding=1),
        _Resize(2),
    ),
)

VGG16 = CnnModel(name="vgg16", stages=_vgg_stages())

RESNET18 = CnnModel(name="resnet18",
                    stages=_resnet_stages([2, 2, 2, 2], bottleneck=False))
RESNET34 = CnnModel(name="resnet34",
                    stages=_resnet_stages([3, 4, 6, 3], bottleneck=False))
RESNET50 = CnnModel(name="resnet50",
                    stages=_resnet_stages([3, 4, 6, 3], bottleneck=True))
RESNET101 = CnnModel(name="resnet101",
                     stages=_resnet_stages([3, 4, 23, 3], bottleneck=True))
RESNET152 = CnnModel(name="resnet152",
                     stages=_resnet_stages([3, 8, 36, 3], bottleneck=True))

#: Fig. 1's candidates plus extras for the extended zoo.
CNN_ZOO: dict[str, CnnModel] = {
    m.name: m
    for m in (ALEXNET, VGG16, RESNET18, RESNET34, RESNET50, RESNET101,
              RESNET152)
}
