"""The molecular-design active-learning campaign (§3.1, Fig. 3).

Reproduces the Colmena-backed workflow's seven steps with real code over
the synthetic substrate:

1. draw an initial pool from the (synthetic) MOSES space;
2. "quantum chemistry" CPU tasks compute their ionization potentials;
3. train the ML emulator on the labelled data (GPU task);
4. score a large pool of new candidates with the emulator (GPU task);
5. simulate the candidates with the highest predicted IP;
6. enrich the training set with the new results;
7. loop.

Everything runs as FaaS apps through the Parsl-workalike: simulations on
the CPU executor, training/inference on the GPU executor — so the
campaign exhibits exactly the Fig. 3 pattern of GPU idle gaps while
simulations run, and pipelining across partitions closes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faas.dataflow import DataFlowKernel
from repro.faas.apps import gpu_app, python_app
from repro.telemetry.timeline import Timeline, timeline_from_tasks
from repro.workloads.chemistry import (
    SIMULATION_CPU_SECONDS,
    simulate_ionization_potential,
)
from repro.workloads.datasets import Molecule, MoleculeSpace
from repro.workloads.mlmodel import RidgeEmulator

__all__ = ["CampaignConfig", "CampaignResult", "MolecularDesignCampaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one active-learning campaign."""

    n_initial: int = 24
    n_rounds: int = 4
    simulations_per_round: int = 8
    candidate_pool_size: int = 512
    simulation_seconds: float = SIMULATION_CPU_SECONDS
    training_host_seconds: float = 1.0
    inference_host_seconds: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_initial <= 0 or self.n_rounds <= 0:
            raise ValueError("n_initial and n_rounds must be positive")
        if self.simulations_per_round <= 0 or self.candidate_pool_size <= 0:
            raise ValueError("per-round sizes must be positive")


@dataclass
class CampaignResult:
    """What a finished campaign reports."""

    best_ip: float
    best_molecule: Molecule
    round_best: list[float]
    n_simulated: int
    train_rmse: list[float]
    timeline: Timeline = field(repr=False)


class MolecularDesignCampaign:
    """Drives the active-learning loop over a DataFlowKernel."""

    #: Task categories used for the Fig. 3 timeline.
    SIMULATION = "simulation"
    TRAINING = "training"
    INFERENCE = "inference"

    def __init__(self, dfk: DataFlowKernel, config: CampaignConfig = CampaignConfig(),
                 cpu_executor: str = "cpu", gpu_executor: str = "gpu"):
        self.dfk = dfk
        self.config = config
        self.space = MoleculeSpace(seed=config.seed)
        self.emulator = RidgeEmulator(seed=config.seed)
        self._next_mol_id = 0
        self.result: CampaignResult | None = None

        cfg = config
        emulator = self.emulator

        @python_app(executors=[cpu_executor],
                    walltime=cfg.simulation_seconds, dfk=dfk)
        def simulation(molecule: Molecule) -> tuple[Molecule, float]:
            return molecule, simulate_ionization_potential(molecule)

        @gpu_app(executors=[gpu_executor], dfk=dfk)
        def training(ctx, features: np.ndarray, labels: np.ndarray) -> float:
            rmse = emulator.train(features, labels)
            yield ctx.compute(cfg.training_host_seconds)
            yield ctx.launch(emulator.training_kernel(len(features)))
            return rmse

        @gpu_app(executors=[gpu_executor], dfk=dfk)
        def inference(ctx, features: np.ndarray) -> np.ndarray:
            predictions = emulator.predict(features)
            yield ctx.compute(cfg.inference_host_seconds)
            yield ctx.launch(emulator.inference_kernel(len(features)))
            return predictions

        self._simulation_app = simulation
        self._training_app = training
        self._inference_app = inference

    # -- molecule supply -----------------------------------------------------
    def _draw(self, n: int) -> list[Molecule]:
        mols = self.space.sample(n, offset=self._next_mol_id)
        self._next_mol_id += n
        return mols

    # -- the campaign process -------------------------------------------------
    def start(self):
        """Launch the campaign; returns the driver process (yieldable)."""
        proc = self.dfk.env.process(self._run())
        return proc

    def run_to_completion(self) -> CampaignResult:
        """Start the campaign and run the simulation until it finishes."""
        proc = self.start()
        self.dfk.env.run(until=proc)
        assert self.result is not None
        return self.result

    def _run(self):
        cfg = self.config
        dataset_mols: list[Molecule] = []
        dataset_ips: list[float] = []
        round_best: list[float] = []
        train_rmse: list[float] = []

        # Step 1-2: initial pool, simulated in parallel on the CPU executor.
        futures = [self._simulation_app(m) for m in self._draw(cfg.n_initial)]
        results = yield self.dfk.env.all_of(futures)
        for fut in futures:
            mol, ip = fut.value
            dataset_mols.append(mol)
            dataset_ips.append(ip)

        for _round in range(cfg.n_rounds):
            # Step 3: (re)train the emulator on all data so far.
            features = self.space.features(dataset_mols)
            labels = np.asarray(dataset_ips)
            rmse = yield self._training_app(features, labels)
            train_rmse.append(rmse)

            # Step 4: score a fresh candidate pool.
            candidates = self._draw(cfg.candidate_pool_size)
            cand_features = self.space.features(candidates)
            predictions = yield self._inference_app(cand_features)

            # Step 5: simulate the top-K predicted molecules.
            order = np.argsort(predictions)[::-1][:cfg.simulations_per_round]
            top = [candidates[i] for i in order]
            futures = [self._simulation_app(m) for m in top]
            yield self.dfk.env.all_of(futures)

            # Step 6: enrich the training set.
            batch_best = -np.inf
            for fut in futures:
                mol, ip = fut.value
                dataset_mols.append(mol)
                dataset_ips.append(ip)
                batch_best = max(batch_best, ip)
            round_best.append(float(batch_best))

        best_idx = int(np.argmax(dataset_ips))
        timeline = timeline_from_tasks(
            self.dfk.tasks, category_of=self._categorize
        )
        self.result = CampaignResult(
            best_ip=float(dataset_ips[best_idx]),
            best_molecule=dataset_mols[best_idx],
            round_best=round_best,
            n_simulated=len(dataset_mols),
            train_rmse=train_rmse,
            timeline=timeline,
        )
        return self.result

    def _categorize(self, task) -> str:
        return {
            "simulation": self.SIMULATION,
            "training": self.TRAINING,
            "inference": self.INFERENCE,
        }.get(task.app_name, task.app_name)
