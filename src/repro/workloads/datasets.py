"""Synthetic MOSES-like molecule space.

The paper's molecular-design application draws candidate molecules from
the MOSES dataset [Polykovskiy et al. 2020].  We have no licence-free
offline copy, so we substitute a deterministic synthetic space: each
molecule is a descriptor vector (think RDKit physico-chemical
descriptors) drawn from a seeded generator.  The active-learning loop
only needs (a) an inexhaustible candidate pool and (b) a learnable
structure-property relationship — both preserved by this substitution
(see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Molecule", "MoleculeSpace"]

#: Dimensionality of the synthetic descriptor vectors.
N_DESCRIPTORS = 32


@dataclass(frozen=True)
class Molecule:
    """A candidate molecule: an id plus its descriptor vector."""

    mol_id: int
    descriptors: np.ndarray = field(repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.descriptors.ndim != 1:
            raise ValueError("descriptors must be a 1-D vector")

    def __hash__(self) -> int:
        return hash(self.mol_id)

    def __eq__(self, other) -> bool:
        return isinstance(other, Molecule) and other.mol_id == self.mol_id


class MoleculeSpace:
    """A deterministic, lazily-generated pool of candidate molecules."""

    def __init__(self, seed: int = 0, n_descriptors: int = N_DESCRIPTORS):
        if n_descriptors <= 0:
            raise ValueError("n_descriptors must be positive")
        self.seed = seed
        self.n_descriptors = n_descriptors
        self._cache: dict[int, Molecule] = {}

    def molecule(self, mol_id: int) -> Molecule:
        """The molecule with the given id (same id -> same descriptors)."""
        if mol_id < 0:
            raise ValueError("mol_id must be non-negative")
        mol = self._cache.get(mol_id)
        if mol is None:
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, mol_id]))
            descriptors = rng.normal(size=self.n_descriptors)
            mol = Molecule(mol_id=mol_id, descriptors=descriptors)
            self._cache[mol_id] = mol
        return mol

    def sample(self, n: int, offset: int = 0) -> list[Molecule]:
        """The ``n`` molecules with ids ``offset .. offset+n-1``."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return [self.molecule(offset + i) for i in range(n)]

    def features(self, molecules: list[Molecule]) -> np.ndarray:
        """Stack descriptor vectors into an ``(n, d)`` design matrix."""
        if not molecules:
            return np.empty((0, self.n_descriptors))
        return np.stack([m.descriptors for m in molecules])
