"""Synthetic quantum-chemistry surrogate.

Stands in for the paper's ionization-potential (IP) calculations — real
quantum chemistry codes are neither available offline nor needed: the
active-learning loop only requires an expensive, deterministic,
*learnable-but-nonlinear* ground-truth function.  This surrogate is a
random-weight two-layer tanh network over the molecule descriptors,
fixed by a global seed so every simulation task agrees on the truth.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.datasets import Molecule

__all__ = [
    "simulate_ionization_potential",
    "SIMULATION_CPU_SECONDS",
    "ground_truth_batch",
]

#: Simulated wall-clock cost of one quantum-chemistry task (CPU-only).
#: The paper's Fig. 3 shows simulation phases of tens of seconds.
SIMULATION_CPU_SECONDS = 12.0

_GROUND_TRUTH_SEED = 1234
_HIDDEN = 64


def _truth_weights(n_descriptors: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(
        np.random.SeedSequence([_GROUND_TRUTH_SEED, n_descriptors]))
    w1 = rng.normal(scale=1.0 / np.sqrt(n_descriptors),
                    size=(n_descriptors, _HIDDEN))
    w2 = rng.normal(scale=1.0 / np.sqrt(_HIDDEN), size=_HIDDEN)
    return w1, w2


def ground_truth_batch(features: np.ndarray) -> np.ndarray:
    """Vectorised ground-truth IP for an ``(n, d)`` feature matrix (eV)."""
    if features.ndim != 2:
        raise ValueError("features must be 2-D")
    w1, w2 = _truth_weights(features.shape[1])
    hidden = np.tanh(features @ w1)
    # Shift into a plausible IP range (~4-14 eV).
    return 9.0 + 2.5 * (hidden @ w2)


def simulate_ionization_potential(molecule: Molecule) -> float:
    """Compute the "quantum chemistry" IP of one molecule.

    Deterministic: repeated simulation of the same molecule returns the
    same value, as a converged QC calculation would.
    """
    value = ground_truth_batch(molecule.descriptors[None, :])
    return float(value[0])
