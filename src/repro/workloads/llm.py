"""Analytic LLaMa-2 inference cost model.

The paper's Figs. 2, 4 and 5 measure LLaMa-2 text completion under GPU
partitioning.  We replace PyTorch-on-A100 with an analytic decode model:
one fused roofline kernel per generated token plus a host-side gap
(sampling, tokenisation, Python dispatch).

Calibration
-----------
All constants live in :class:`InferenceRuntime` and were fit to the
paper's own measured anchor points:

- Fig. 2: a 20-word completion on a full A100 takes ~4.5 s for 7B
  (the paper reports the CPU run at 180 s ~= 40x slower) and latency
  stops improving beyond ~20-30 SMs;
- Fig. 4: four 7B instances (fp16) fit in one 80 GB A100 but five do not;
  four-way MPS gives ~2.5x the single-instance throughput;
- §6: loading LLaMa-2 13B takes ~10 s.

The decode token's DRAM traffic is ``traffic_amplification x weight
bytes``: eager-mode fp32/fp16 PyTorch re-reads weights and spills
activations, so effective traffic is a small multiple of the weight
footprint.  ``efficiency`` captures batch-1 GEMV inefficiency.  Those two
knobs place the Fig. 2 plateau and the Fig. 4/5 contention crossovers; see
EXPERIMENTS.md for the paper-vs-model comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.gpu.kernel import Kernel
from repro.gpu.specs import GPUSpec

__all__ = [
    "LlamaSpec",
    "InferenceRuntime",
    "LlamaInference",
    "LLAMA2_7B",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "LLAMA_MODELS",
    "DEFAULT_RUNTIME",
]


@dataclass(frozen=True)
class LlamaSpec:
    """Architecture of one LLaMa-2 variant."""

    name: str
    n_params: float
    n_layers: int
    d_model: int
    n_heads: int

    def weight_bytes(self, dtype_bytes: int) -> float:
        return self.n_params * dtype_bytes

    def flops_per_token(self) -> float:
        """Dense decode FLOPs per generated token (2 x parameters)."""
        return 2.0 * self.n_params

    def kv_bytes_per_token(self, context_len: int, dtype_bytes: int) -> float:
        """KV-cache traffic for one decode step at ``context_len``."""
        return 2.0 * self.n_layers * self.d_model * context_len * dtype_bytes


LLAMA2_7B = LlamaSpec("llama2-7b", n_params=6.74e9, n_layers=32,
                      d_model=4096, n_heads=32)
LLAMA2_13B = LlamaSpec("llama2-13b", n_params=13.0e9, n_layers=40,
                       d_model=5120, n_heads=40)
LLAMA2_70B = LlamaSpec("llama2-70b", n_params=69.0e9, n_layers=80,
                       d_model=8192, n_heads=64)

#: Name -> spec lookup (sweep configs carry model names, not objects).
LLAMA_MODELS = {m.name: m for m in (LLAMA2_7B, LLAMA2_13B, LLAMA2_70B)}


@dataclass(frozen=True)
class InferenceRuntime:
    """Calibration constants of the inference software stack (see module
    docstring for the anchors each knob was fit against)."""

    #: Bytes per parameter (4 = fp32 as in Fig. 2; 2 = fp16 as in Fig. 4).
    dtype_bytes: int = 2
    #: Sustained fraction of per-SM peak FLOP/s at batch size 1.
    efficiency: float = 0.05
    #: Effective DRAM traffic per token, as a multiple of the weight bytes.
    traffic_amplification: float = 3.0
    #: Largest SM count the batch-1 decode kernels can occupy.
    max_sms: int = 42
    #: Host-side time per generated token (sampling, Python dispatch).
    host_seconds_per_token: float = 0.040
    #: CPU-only inference slowdown vs a full GPU (the paper reports ~40x).
    cpu_slowdown: float = 40.0
    #: Working-set overhead beyond weights (activations, KV cache), bytes.
    activation_bytes: float = 4e9
    #: Host-to-device weight streaming rate for model loading, bytes/s
    #: (calibrated so LLaMa-2 13B fp16 loads in ~10 s, §6).
    load_bandwidth: float = 2.6e9
    #: Fixed per-process start cost before weights stream (imports, CUDA
    #: context) — part of the §6 cold-start decomposition.
    process_start_seconds: float = 2.0
    #: Tensor-parallel scaling efficiency when a model spans >1 GPU.
    parallel_efficiency: float = 0.45
    #: Prefill (prompt ingestion) sustains far better utilisation than
    #: batch-1 decode: all prompt tokens process in parallel, so the
    #: GEMMs are large.  These govern the optional prefill kernel.
    prefill_efficiency: float = 0.25
    prefill_max_sms: int = 108

    def with_dtype(self, dtype_bytes: int) -> "InferenceRuntime":
        return replace(self, dtype_bytes=dtype_bytes)


DEFAULT_RUNTIME = InferenceRuntime()


class LlamaInference:
    """Cost model of one LLaMa-2 instance served from a FaaS function."""

    def __init__(self, spec: LlamaSpec, runtime: InferenceRuntime = DEFAULT_RUNTIME,
                 n_gpus: int = 1):
        if n_gpus <= 0:
            raise ValueError("n_gpus must be positive")
        self.spec = spec
        self.runtime = runtime
        self.n_gpus = n_gpus
        # Kernel cache: serving loops request the same decode/prefill
        # kernel thousands of times (one per token); Kernel objects are
        # immutable in practice, so one instance per shape is shared.
        self._kernel_cache: dict[tuple, Kernel] = {}

    # -- memory -------------------------------------------------------------
    @property
    def weight_bytes(self) -> float:
        """Total weight footprint (all GPUs combined)."""
        return self.spec.weight_bytes(self.runtime.dtype_bytes)

    @property
    def memory_per_gpu(self) -> float:
        """Resident bytes per GPU: weight shard plus working set."""
        return (self.weight_bytes / self.n_gpus
                + self.runtime.activation_bytes / self.n_gpus)

    # -- cold start -----------------------------------------------------------
    @property
    def load_seconds(self) -> float:
        """Time to stream the weights into device memory (§6's 10 s)."""
        return (self.weight_bytes / self.n_gpus) / self.runtime.load_bandwidth

    @property
    def cold_start_seconds(self) -> float:
        return self.runtime.process_start_seconds + self.load_seconds

    # -- decode kernels -----------------------------------------------------------
    def decode_kernel(self, context_len: int = 128) -> Kernel:
        """The fused per-token decode kernel (per GPU shard).

        Work is divided across ``n_gpus`` tensor-parallel shards; the
        parallel-efficiency factor folds in the per-layer all-reduce and
        synchronisation cost of spanning GPUs.
        """
        cached = self._kernel_cache.get(("decode", context_len))
        if cached is not None:
            return cached
        rt = self.runtime
        shard = self.n_gpus
        flops = self.spec.flops_per_token() / shard
        traffic = (
            rt.traffic_amplification * self.weight_bytes / shard
            + self.spec.kv_bytes_per_token(context_len, rt.dtype_bytes) / shard
        )
        scale = 1.0 if shard == 1 else 1.0 / rt.parallel_efficiency
        kernel = Kernel(
            flops=flops * scale,
            bytes_moved=traffic * scale,
            max_sms=rt.max_sms,
            efficiency=rt.efficiency,
            name=f"{self.spec.name}-decode",
        )
        self._kernel_cache[("decode", context_len)] = kernel
        return kernel

    def prefill_kernel(self, prompt_tokens: int) -> Kernel:
        """The prompt-ingestion kernel (one pass over all prompt tokens).

        Prefill is compute-bound and parallel (every prompt token's GEMMs
        run together), unlike the bandwidth-bound batch-1 decode — which
        is why serving systems separate the two phases.  Not part of the
        Fig. 2/4/5 calibration (the paper's "text completion tasks for
        20-word sentences" are decode-dominated); used by the serving
        extensions.
        """
        if prompt_tokens <= 0:
            raise ValueError("prompt_tokens must be positive")
        cached = self._kernel_cache.get(("prefill", prompt_tokens))
        if cached is not None:
            return cached
        rt = self.runtime
        shard = self.n_gpus
        flops = self.spec.flops_per_token() * prompt_tokens / shard
        # Weights stream once for the whole prompt; KV cache is written.
        traffic = (
            self.weight_bytes / shard
            + self.spec.kv_bytes_per_token(prompt_tokens, rt.dtype_bytes)
        )
        scale = 1.0 if shard == 1 else 1.0 / rt.parallel_efficiency
        kernel = Kernel(
            flops=flops * scale,
            bytes_moved=traffic * scale,
            max_sms=rt.prefill_max_sms,
            efficiency=rt.prefill_efficiency,
            name=f"{self.spec.name}-prefill",
        )
        self._kernel_cache[("prefill", prompt_tokens)] = kernel
        return kernel

    @property
    def host_seconds_per_token(self) -> float:
        return self.runtime.host_seconds_per_token

    # -- closed-form predictions (used by tests and right-sizing) ----------------
    def token_seconds(self, spec: GPUSpec, sms: int,
                      bandwidth: float | None = None,
                      context_len: int = 128) -> float:
        """Predicted per-token latency on ``sms`` SMs of ``spec`` in
        isolation (GPU kernel + host gap)."""
        bw = spec.bandwidth if bandwidth is None else bandwidth
        kernel = self.decode_kernel(context_len)
        return (kernel.duration(sms, spec.flops_per_sm, bw)
                + self.runtime.host_seconds_per_token)

    def completion_seconds(self, spec: GPUSpec, sms: int, n_tokens: int = 20,
                           bandwidth: float | None = None) -> float:
        """Predicted latency of one ``n_tokens`` completion in isolation."""
        return n_tokens * self.token_seconds(spec, sms, bandwidth)

    def cpu_completion_seconds(self, spec: GPUSpec, n_tokens: int = 20) -> float:
        """CPU-only inference estimate: ``cpu_slowdown`` x the full-GPU run."""
        return self.runtime.cpu_slowdown * self.completion_seconds(
            spec, spec.sms, n_tokens)

    def plateau_sms(self, spec: GPUSpec) -> int:
        """Smallest SM count within 2% of full-device token latency.

        This is the Fig. 2 knee: allocating more SMs than this wastes GPU
        (the basis of the right-sizing tool, :mod:`repro.partition`).
        """
        best = self.token_seconds(spec, spec.sms)
        for sms in range(1, spec.sms + 1):
            if self.token_seconds(spec, sms) <= best * 1.02:
                return sms
        return spec.sms
