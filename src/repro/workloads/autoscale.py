"""The online repartitioning control plane (§7 closed, end to end).

:class:`FleetAutoscaler` runs *inside* the event loop against an
:class:`~repro.workloads.fleet.AutoscaledServingFleet` and closes the
loop the paper's future work sketches — "change GPU resources depending
on demand" — against live streaming traffic:

1. **sense** — per function, a windowed arrival rate (offered-count
   deltas from :class:`~repro.telemetry.resilience.ResilienceStats`)
   and a since-last-resize P² latency quantile fed by the stats
   ``on_completion`` tap;
2. **decide** — the shared sizing helpers of
   :mod:`repro.partition.autoscaler` turn demand into per-replica SM
   requirements and normalise them onto the GPU (work-conserving:
   surplus SMs are handed out, so total provisioned capacity stays at
   ~100% and layouts compete at equal GPU-seconds);
3. **gate** — a drift threshold plus the cooldown of
   :func:`~repro.partition.autoscaler.cooldown_elapsed`: the first
   decision is eligible immediately and a hard SLO violation (window
   P95 above the SLO) shrinks the cooldown by ``slo_bypass_factor``;
4. **act** — rolling-wave drains through
   :meth:`~repro.workloads.fleet.AutoscaledServingFleet.resize_replica`,
   paying the :class:`~repro.partition.reconfig.ReconfigCost` constants
   (teardown + worker restart, plus the model reload unless the weight
   cache hits).  Replica identity survives, so breakers, hedging
   history, and router registration carry across every resize.

``technique="mig"`` models the §6 alternative: *every* function drains,
clients tear down serially, the GPU pays its reset, and — because a MIG
repartition destroys the instances' memory pools — every function
reloads its weights regardless of the cache.

Control-plane chaos hardened this loop in three places:

- **sensor health** — the controller reads each function's *published*
  telemetry through
  :meth:`~repro.workloads.fleet.AutoscaledServingFleet.sensor_snapshot`
  and cross-checks it against ground-truth termination counters.  A
  stale snapshot (``sensor_dropout``) or an implausible offered delta
  (``telemetry_corruption``) puts the tick in **degraded mode**: hold
  the last safe shares, log the reason, touch nothing.  The first
  healthy tick after a fault is also held (re-baseline), so a recovery
  step never masquerades as a demand spike.
- **transactional actuation** — every resize runs as a
  :class:`~repro.workloads.fleet.ResizeTransaction` with a drain
  watchdog; aborted replicas are retried under capped exponential
  backoff, charged against a per-function token-bucket *resize budget*.
- **resize circuit breaker** — repeated aborted cycles trip a
  per-function breaker that takes the function out of actuation for a
  cooldown; degraded-but-stable beats a loop that spends the fleet's
  capacity fighting a stuck drain.
"""

from __future__ import annotations

import math
from dataclasses import asdict
from typing import Optional

from repro.partition.autoscaler import (
    ScalingDecision,
    cooldown_elapsed,
    required_sms_for,
    scaled_percentages,
)
from repro.partition.reconfig import ReconfigurationPlanner
from repro.telemetry.streaming import P2Quantile
from repro.workloads.fleet import AutoscaledServingFleet, FunctionGroup
from repro.workloads.resilience import CircuitBreaker

__all__ = ["FleetAutoscaler"]

TECHNIQUES = ("mps", "mig")


def _chain_taps(prior, tap):
    """Compose completion taps instead of clobbering an installed one.

    The sharded engine installs an event-recording tap on each group's
    stats before the autoscaler exists; both must keep firing.
    """
    if prior is None:
        return tap

    def chained(latency: float, in_slo: bool) -> None:
        prior(latency, in_slo)
        tap(latency, in_slo)

    return chained


class _Monitor:
    """Per-function demand/health window (O(1) state)."""

    __slots__ = ("offered_mark", "terminated_mark", "suspect",
                 "quantile", "samples", "violation_q")

    def __init__(self, violation_q: float):
        self.offered_mark = 0
        #: Ground-truth terminations (completed + shed + failed) at the
        #: last tick — the plausibility anchor for published telemetry.
        self.terminated_mark = 0
        #: The last tick flagged this sensor: hold one more tick after
        #: it clears so the recovery step re-baselines the marks.
        self.suspect = False
        self.violation_q = violation_q
        self.reset()

    def reset(self) -> None:
        """Start a fresh latency window (after a resize)."""
        self.quantile = P2Quantile(self.violation_q)
        self.samples = 0

    def observe(self, latency: float, in_slo: bool) -> None:
        self.quantile.add(latency)
        self.samples += 1


class _ResizeControl:
    """Per-function resize actuation guard.

    A token-bucket *retry budget* bounds how much extra drain/restart
    churn aborted resizes may charge to one function (spend one token
    per retry cycle, earn ``budget_earn`` per committed resize, capped),
    and a :class:`CircuitBreaker` takes the function out of actuation
    entirely when aborted cycles repeat.
    """

    __slots__ = ("budget", "budget_earn", "budget_cap", "breaker")

    def __init__(self, initial: float, earn: float, cap: float,
                 breaker_threshold: int, breaker_cooldown: float):
        self.budget = float(initial)
        self.budget_earn = earn
        self.budget_cap = cap
        self.breaker = CircuitBreaker(breaker_threshold, breaker_cooldown)

    def spend_retry(self) -> bool:
        if self.budget < 1.0:
            return False
        self.budget -= 1.0
        return True

    def record_commit(self) -> None:
        self.breaker.record_success()
        self.budget = min(self.budget_cap, self.budget + self.budget_earn)


class FleetAutoscaler:
    """Demand-driven MPS-share controller for a live serving fleet."""

    def __init__(self, fleet: AutoscaledServingFleet,
                 planner: Optional[ReconfigurationPlanner] = None,
                 interval_seconds: float = 30.0,
                 cooldown_seconds: float = 120.0,
                 change_threshold_pct: int = 5,
                 utilization_ceiling: float = 0.8,
                 min_percentage: int = 5,
                 slo_bypass_factor: float = 0.5,
                 waves: int = 2,
                 technique: str = "mps",
                 violation_quantile: float = 0.95,
                 min_window_samples: int = 8,
                 resize_watchdog_seconds: float = 30.0,
                 resize_max_retries: int = 2,
                 resize_backoff_base_seconds: float = 5.0,
                 resize_backoff_cap_seconds: float = 60.0,
                 resize_budget_initial: float = 4.0,
                 resize_budget_earn: float = 0.5,
                 resize_budget_cap: float = 8.0,
                 resize_breaker_threshold: int = 3,
                 resize_breaker_cooldown_seconds: float = 600.0,
                 sensor_stale_after_seconds: Optional[float] = None,
                 plausibility_factor: float = 4.0,
                 plausibility_floor: int = 16):
        if interval_seconds <= 0 or cooldown_seconds < 0:
            raise ValueError("invalid control intervals")
        if not 0 < utilization_ceiling <= 1:
            raise ValueError("utilization_ceiling must be in (0, 1]")
        if not 0 <= slo_bypass_factor <= 1:
            raise ValueError("slo_bypass_factor must be in [0, 1]")
        if waves < 1:
            raise ValueError("waves must be positive")
        if technique not in TECHNIQUES:
            raise ValueError(f"unknown technique {technique!r}; "
                             f"expected one of {TECHNIQUES}")
        if resize_watchdog_seconds <= 0:
            raise ValueError("resize_watchdog_seconds must be positive")
        if resize_max_retries < 0:
            raise ValueError("resize_max_retries must be non-negative")
        if resize_backoff_base_seconds <= 0 or resize_backoff_cap_seconds <= 0:
            raise ValueError("resize backoff times must be positive")
        if resize_breaker_threshold < 1:
            raise ValueError("resize_breaker_threshold must be positive")
        if plausibility_factor <= 1:
            raise ValueError("plausibility_factor must exceed 1")
        if plausibility_floor < 1:
            raise ValueError("plausibility_floor must be positive")
        if sensor_stale_after_seconds is not None \
                and sensor_stale_after_seconds <= 0:
            raise ValueError("sensor_stale_after_seconds must be positive")
        self.fleet = fleet
        self.spec = fleet.device.spec
        self.planner = planner if planner is not None else \
            ReconfigurationPlanner(self.spec)
        self.interval = interval_seconds
        self.cooldown = cooldown_seconds
        self.change_threshold = change_threshold_pct
        self.utilization_ceiling = utilization_ceiling
        self.min_percentage = min_percentage
        self.slo_bypass_factor = slo_bypass_factor
        self.waves = waves
        self.technique = technique
        self.min_window_samples = min_window_samples
        self.resize_watchdog_seconds = resize_watchdog_seconds
        self.resize_max_retries = resize_max_retries
        self.resize_backoff_base = resize_backoff_base_seconds
        self.resize_backoff_cap = resize_backoff_cap_seconds
        self.sensor_stale_after = (interval_seconds
                                   if sensor_stale_after_seconds is None
                                   else sensor_stale_after_seconds)
        self.plausibility_factor = plausibility_factor
        self.plausibility_floor = plausibility_floor
        self.decisions: list[ScalingDecision] = []
        #: Function-resize operations executed (one per function whose
        #: share actually changed, not one per replica restart).
        self.reconfigurations = 0
        #: Summed per-replica pause durations across every resize.
        self.reconfiguration_downtime = 0.0
        #: Replica restarts whose weight reload the cache absorbed.
        self.weight_cache_hits = 0
        #: Replica restarts total.
        self.replica_restarts = 0
        #: One entry per executed resize: analytic cost + measured
        #: per-replica timeline.
        self.reconfig_log: list[dict] = []
        #: Retry cycles launched for aborted resize transactions.
        self.resize_retries = 0
        #: Per-function resize circuit-breaker open transitions.
        self.resize_breaker_opens = 0
        #: Ticks held in degraded mode (unhealthy sensors).
        self.degraded_ticks = 0
        #: Simulated seconds spent in degraded mode.
        self.degraded_seconds = 0.0
        self._monitors: dict[str, _Monitor] = {}
        self._controls: dict[str, _ResizeControl] = {}
        for name, group in fleet.groups.items():
            monitor = _Monitor(violation_quantile)
            self._monitors[name] = monitor
            self._controls[name] = _ResizeControl(
                resize_budget_initial, resize_budget_earn,
                resize_budget_cap, resize_breaker_threshold,
                resize_breaker_cooldown_seconds)
            group.stats.on_completion = _chain_taps(
                group.stats.on_completion, monitor.observe)
        self._last_applied = -math.inf
        self._proc = None

    # -- control loop -------------------------------------------------------
    def start(self):
        """Launch the control loop; returns the process handle."""
        if self._proc is not None:
            raise RuntimeError("autoscaler already started")
        self._proc = self.fleet.env.process(self._run())
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("autoscaler stopped")
            self._proc.defuse()

    def _run(self):
        env = self.fleet.env
        while True:
            yield env.timeout(self.interval)
            yield from self._tick()

    # -- sense --------------------------------------------------------------
    def _sense(self) -> tuple[dict[str, float], dict[str, str]]:
        """Read every function's published sensor once; advance marks.

        Returns ``(rates, health)`` where ``health`` maps unhealthy
        function names to a reason.  Three checks, all O(1):

        - **stale**: the snapshot's as-of timestamp is at least
          ``sensor_stale_after`` old (a dropout froze the pipeline);
        - **implausible**: the published offered delta is negative
          (offered counters are monotonic) or exceeds
          ``plausibility_factor`` × the ground-truth termination delta
          (a corruption is inflating it);
        - **re-baseline**: the previous tick flagged this sensor; hold
          one more tick so the recovery step — which folds the whole
          outage into a single window delta — never reads as a demand
          spike or crash.

        Marks always advance (to the *published* values), so a bounded
        fault costs a bounded number of degraded ticks.
        """
        env = self.fleet.env
        rates: dict[str, float] = {}
        health: dict[str, str] = {}
        for name, group in self.fleet.groups.items():
            monitor = self._monitors[name]
            offered, as_of = self.fleet.sensor_snapshot(name)
            stats = group.stats
            terminated = stats.completed + stats.shed + stats.failed
            delta_pub = offered - monitor.offered_mark
            delta_term = terminated - monitor.terminated_mark
            monitor.offered_mark = offered
            monitor.terminated_mark = terminated
            rates[name] = max(0, delta_pub) / self.interval
            if env.now - as_of >= self.sensor_stale_after:
                reason = "stale sensor"
            elif delta_pub < 0 or delta_pub > self.plausibility_factor * \
                    max(delta_term, self.plausibility_floor):
                reason = "implausible telemetry"
            elif monitor.suspect:
                reason = "sensor re-baseline"
            else:
                reason = None
            if reason is not None:
                health[name] = reason
                monitor.suspect = reason != "sensor re-baseline"
            else:
                monitor.suspect = False
        return rates, health

    def windowed_rates(self) -> dict[str, float]:
        """Offered requests/second per function since the last tick.

        Reads the *published* sensors and advances the window marks —
        one call per control interval (the loop calls :meth:`_sense`,
        which this wraps, discarding the health verdicts).
        """
        return self._sense()[0]

    def slo_violated(self, name: str) -> bool:
        """Window P95 above the function's SLO (with enough samples)."""
        monitor = self._monitors[name]
        if monitor.samples < self.min_window_samples:
            return False
        group = self.fleet.groups[name]
        return monitor.quantile.value > group.slo_seconds

    # -- decide -------------------------------------------------------------
    def desired_percentages(self, rates: dict[str, float]) -> dict[str, int]:
        """Per-replica MPS percentages for the windowed demand."""
        needed = {}
        counts = {}
        for name, group in self.fleet.groups.items():
            n = len(group.replicas)
            if n == 0:
                # A function with no replica pool needs nothing and must
                # not divide by it; the actuator skips it anyway.
                counts[name] = 1
                needed[name] = 0
                continue
            counts[name] = n
            per_replica = rates.get(name, 0.0) / n
            needed[name] = required_sms_for(
                self.spec, group.latency_fn, group.slo_seconds,
                per_replica, self.utilization_ceiling)
        return scaled_percentages(self.spec, needed, counts,
                                  min_percentage=self.min_percentage,
                                  expand=True)

    # -- one decision -------------------------------------------------------
    def _tick(self):
        env = self.fleet.env
        rates, health = self._sense()
        if health:
            # Degraded mode: hold the last safe shares.  A controller
            # acting on stale or lying sensors is worse than one doing
            # nothing — the fault-free shares were chosen on evidence.
            self.degraded_ticks += 1
            self.degraded_seconds += self.interval
            held = {name: group.current_pct
                    for name, group in self.fleet.groups.items()}
            detail = ", ".join(f"{name}: {reason}"
                               for name, reason in sorted(health.items()))
            self.decisions.append(ScalingDecision(
                env.now, held, False, f"degraded ({detail})"))
            return
        desired = self.desired_percentages(rates)
        current = {name: group.current_pct
                   for name, group in self.fleet.groups.items()}
        drift = {name: abs(desired[name] - current[name])
                 for name in desired}
        if max(drift.values()) < self.change_threshold:
            self.decisions.append(ScalingDecision(
                env.now, desired, False, "within threshold"))
            return
        violated = any(self.slo_violated(name) for name in desired
                       if drift[name] >= self.change_threshold)
        if not cooldown_elapsed(env.now, self._last_applied, self.cooldown,
                                slo_violated=violated,
                                slo_bypass_factor=self.slo_bypass_factor):
            self.decisions.append(ScalingDecision(
                env.now, desired, False, "cooldown"))
            return
        actionable = [name for name in sorted(desired)
                      if drift[name] >= self.change_threshold]
        blocked = [name for name in actionable
                   if not self._controls[name].breaker.available(env.now)]
        if len(blocked) == len(actionable):
            self.decisions.append(ScalingDecision(
                env.now, desired, False,
                "resize-breaker open: " + ", ".join(blocked)))
            return
        if self.technique == "mig":
            outcome = yield from self._apply_mig(desired)
        else:
            outcome = yield from self._apply_mps(desired, drift,
                                                 frozenset(blocked))
        self._last_applied = env.now
        applied = outcome["committed"] > 0
        if applied:
            reason = ("slo-bypass repartition" if violated
                      else "repartitioned")
            notes = []
            if outcome["aborted"]:
                notes.append(f"{outcome['aborted']} aborted")
            if blocked:
                notes.append("breaker open: " + ", ".join(blocked))
            if outcome["skipped"]:
                notes.append("skipped: " + ", ".join(outcome["skipped"]))
            if notes:
                reason += " (" + "; ".join(notes) + ")"
        elif outcome["aborted"]:
            reason = "resize aborted: drain watchdog"
        else:
            reason = "skipped: no live replicas"
        self.decisions.append(ScalingDecision(
            env.now, desired, applied, reason))

    # -- act: MPS rolling waves ---------------------------------------------
    def _apply_mps(self, desired: dict[str, int], drift: dict[str, int],
                   blocked: frozenset = frozenset()):
        env = self.fleet.env
        outcome = {"committed": 0, "aborted": 0, "skipped": []}
        for name, group in self.fleet.groups.items():
            if drift[name] < self.change_threshold or name in blocked:
                continue
            new_pct = desired[name]
            control = self._controls[name]
            pending = [r for r in group.replicas if r.alive]
            if not pending:
                outcome["skipped"].append(name)
                continue
            committed: list[dict] = []
            aborted: list[dict] = []
            attempt = 0
            while True:
                done, failed = yield from self._resize_cycle(
                    name, pending, new_pct)
                committed.extend(done)
                if not failed:
                    control.record_commit()
                    break
                aborted.extend(entry for _r, entry in failed)
                if control.breaker.record_failure(env.now):
                    self.resize_breaker_opens += 1
                    break
                if attempt >= self.resize_max_retries \
                        or not control.spend_retry():
                    break
                attempt += 1
                self.resize_retries += 1
                backoff = min(self.resize_backoff_cap,
                              self.resize_backoff_base
                              * 2.0 ** (attempt - 1))
                yield env.timeout(backoff)
                pending = [r for r, _e in failed if r.alive]
                if not pending:
                    break
            if all(group.pct_by_replica[r.index] == new_pct
                   for r in group.replicas if r.alive):
                group.current_pct = new_pct
            outcome["committed"] += len(committed)
            outcome["aborted"] += len(aborted)
            if committed or aborted:
                self._finish_resize(name, group, committed,
                                    technique="mps", aborted=aborted)
        return outcome

    def _resize_cycle(self, name: str, replicas, new_pct: int):
        """One rolling-wave pass over ``replicas``; returns
        ``(committed entries, [(replica, aborted entry), …])``."""
        env = self.fleet.env
        committed: list[dict] = []
        aborted: list[tuple] = []
        wave_size = max(1, math.ceil(len(replicas) / self.waves))
        for lo in range(0, len(replicas), wave_size):
            wave = replicas[lo:lo + wave_size]
            procs = [env.process(self.fleet.resize_replica(
                name, replica, new_pct, self.planner,
                watchdog_seconds=self.resize_watchdog_seconds))
                for replica in wave]
            yield env.all_of(procs)
            for proc, replica in zip(procs, wave):
                entry = proc.value
                if entry is None:
                    continue
                if entry.get("aborted"):
                    aborted.append((replica, entry))
                else:
                    committed.append(entry)
        return committed, aborted

    # -- act: MIG global teardown --------------------------------------------
    def _apply_mig(self, desired: dict[str, int]):
        """Repartition as MIG would: everyone stops, the GPU resets.

        Clients tear down serially, the device pays ``reset_seconds``,
        then every replica restarts in parallel and reloads its model
        — the repartition destroyed the instances' memory pools, so the
        weight cache cannot help (§6's co-tenant disturbance, executed).
        """
        env = self.fleet.env
        planner = self.planner
        fleet = self.fleet
        outcome = {"committed": 0, "aborted": 0, "skipped": []}
        t0 = env.now
        victims = [(group, replica)
                   for group in fleet.groups.values()
                   for replica in group.replicas if replica.alive]
        if not victims:
            outcome["skipped"] = sorted(fleet.groups)
            return outcome
        for group, _replica in victims:
            group.stats.resize_attempts += 1
        snapshot = fleet.control_state()
        for _group, replica in victims:
            replica.server.pause()
        # Global drain watchdog: a MIG repartition is all-or-nothing, so
        # one stuck drain aborts the whole thing — resume everyone at
        # the old shares and verify nothing else moved.
        decided = env.event()
        settled: list[str] = []

        def settle(what: str) -> None:
            if not settled:
                settled.append(what)
                decided.succeed()

        remaining = [len(victims)]

        def one_drained() -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                settle("drained")

        for group, replica in victims:
            fleet._drain_handshake(group.name, replica, one_drained)
        env.schedule_callback(self.resize_watchdog_seconds,
                              lambda: settle("timeout"))
        yield decided
        if settled[0] == "timeout":
            for _group, replica in victims:
                if replica.alive:
                    replica.server.resume()
            verified = fleet.control_state() == snapshot
            entries = []
            for group, replica in victims:
                group.stats.resize_aborts += 1
                if verified:
                    group.stats.resize_rollbacks += 1
                entries.append({"replica": replica.index, "aborted": True,
                                "function": group.name,
                                "rollback_verified": verified,
                                "downtime_seconds": env.now - t0,
                                "from_pct":
                                    group.pct_by_replica[replica.index],
                                "to_pct": desired[group.name]})
            for control in self._controls.values():
                if control.breaker.record_failure(env.now):
                    self.resize_breaker_opens += 1
            outcome["aborted"] = len(victims)
            self.reconfig_log.append({
                "time": env.now, "function": "*", "technique": "mig",
                "to_pct": None, "replicas": [], "aborted": entries,
                "downtime_seconds": env.now - t0,
            })
            return outcome
        victims = [(g, r) for g, r in victims if r.alive]
        for group, replica in victims:
            replica.server.client.close()
            fleet._set_provisioned(group.name, replica.index, 0)
        yield env.timeout(planner.TEARDOWN_SECONDS * max(1, len(victims)))
        yield env.timeout(self.spec.reset_seconds)
        yield env.timeout(planner.cold_start.worker_start_seconds(True))
        reload_seconds = 0.0
        per_group: dict[str, list] = {}
        for group, replica in victims:
            group.generation += 1
            new_pct = desired[group.name]
            client = fleet.daemon.client(
                f"{group.name}-r{replica.index}g{group.generation}",
                active_thread_percentage=new_pct)
            old_pct = group.pct_by_replica[replica.index]
            group.pct_by_replica[replica.index] = new_pct
            fleet._set_provisioned(group.name, replica.index, new_pct)
            replica.server.client = client
            reload_seconds = max(reload_seconds, group.model_load_seconds)
            per_group.setdefault(group.name, []).append(
                {"replica": replica.index, "weight_cache_hit": False,
                 "from_pct": old_pct, "to_pct": new_pct})
        if reload_seconds > 0:
            yield env.timeout(reload_seconds)
        downtime = env.now - t0
        for group, replica in victims:
            replica.server.resume()
        for control in self._controls.values():
            control.record_commit()
        for name, results in per_group.items():
            group = fleet.groups[name]
            group.current_pct = desired[name]
            for entry in results:
                entry["downtime_seconds"] = downtime
            outcome["committed"] += len(results)
            self._finish_resize(name, group, results, technique="mig",
                                n_cotenants=len(victims) - len(results))
        return outcome

    # -- bookkeeping ---------------------------------------------------------
    def _finish_resize(self, name: str, group: FunctionGroup,
                       results: list[dict], technique: str,
                       n_cotenants: int = 0,
                       aborted: Optional[list] = None) -> None:
        env = self.fleet.env
        hits = sum(1 for entry in results if entry["weight_cache_hit"])
        downtime = sum(entry["downtime_seconds"] for entry in results)
        if technique == "mig":
            cost = self.planner.mig_repartition_cost(
                group.model_load_seconds, n_cotenants=n_cotenants)
        else:
            cost = self.planner.mps_repartition_cost(
                group.model_load_seconds,
                weight_cache_hit=hits == len(results) and bool(results))
        if results:
            self.reconfigurations += 1
            # Latencies observed under the old share say nothing about
            # the new one; start a fresh violation window.  An
            # all-aborted attempt left the share alone, so the window
            # stays valid and is kept.
            self._monitors[name].reset()
        self.replica_restarts += len(results)
        self.weight_cache_hits += hits
        self.reconfiguration_downtime += downtime
        entry = {
            "time": env.now,
            "function": name,
            "technique": technique,
            "to_pct": group.current_pct,
            "cost": asdict(cost),
            "replicas": results,
            "downtime_seconds": downtime,
        }
        if aborted:
            entry["aborted"] = aborted
        self.reconfig_log.append(entry)

    # -- reporting -----------------------------------------------------------
    def summary(self) -> dict:
        """JSON-ready controller counters (bench/CLI payload)."""
        applied = sum(1 for d in self.decisions if d.applied)
        groups = self.fleet.groups.values()
        ticks = len(self.decisions)
        return {
            "ticks": ticks,
            "applied": applied,
            "reconfigurations": self.reconfigurations,
            "replica_restarts": self.replica_restarts,
            "weight_cache_hits": self.weight_cache_hits,
            "reconfiguration_downtime": self.reconfiguration_downtime,
            "mean_restart_downtime": (
                self.reconfiguration_downtime / self.replica_restarts
                if self.replica_restarts else 0.0),
            "resize_attempts": sum(g.stats.resize_attempts for g in groups),
            "resize_aborts": sum(g.stats.resize_aborts for g in groups),
            "resize_rollbacks": sum(g.stats.resize_rollbacks
                                    for g in groups),
            "resize_retries": self.resize_retries,
            "resize_breaker_opens": self.resize_breaker_opens,
            "cache_load_failures": sum(g.stats.cache_load_failures
                                       for g in groups),
            "degraded_ticks": self.degraded_ticks,
            "degraded_seconds": self.degraded_seconds,
            "degraded_fraction": (self.degraded_ticks / ticks
                                  if ticks else 0.0),
        }
