"""The online repartitioning control plane (§7 closed, end to end).

:class:`FleetAutoscaler` runs *inside* the event loop against an
:class:`~repro.workloads.fleet.AutoscaledServingFleet` and closes the
loop the paper's future work sketches — "change GPU resources depending
on demand" — against live streaming traffic:

1. **sense** — per function, a windowed arrival rate (offered-count
   deltas from :class:`~repro.telemetry.resilience.ResilienceStats`)
   and a since-last-resize P² latency quantile fed by the stats
   ``on_completion`` tap;
2. **decide** — the shared sizing helpers of
   :mod:`repro.partition.autoscaler` turn demand into per-replica SM
   requirements and normalise them onto the GPU (work-conserving:
   surplus SMs are handed out, so total provisioned capacity stays at
   ~100% and layouts compete at equal GPU-seconds);
3. **gate** — a drift threshold plus the cooldown of
   :func:`~repro.partition.autoscaler.cooldown_elapsed`: the first
   decision is eligible immediately and a hard SLO violation (window
   P95 above the SLO) shrinks the cooldown by ``slo_bypass_factor``;
4. **act** — rolling-wave drains through
   :meth:`~repro.workloads.fleet.AutoscaledServingFleet.resize_replica`,
   paying the :class:`~repro.partition.reconfig.ReconfigCost` constants
   (teardown + worker restart, plus the model reload unless the weight
   cache hits).  Replica identity survives, so breakers, hedging
   history, and router registration carry across every resize.

``technique="mig"`` models the §6 alternative: *every* function drains,
clients tear down serially, the GPU pays its reset, and — because a MIG
repartition destroys the instances' memory pools — every function
reloads its weights regardless of the cache.
"""

from __future__ import annotations

import math
from dataclasses import asdict
from typing import Optional

from repro.partition.autoscaler import (
    ScalingDecision,
    cooldown_elapsed,
    required_sms_for,
    scaled_percentages,
)
from repro.partition.reconfig import ReconfigurationPlanner
from repro.telemetry.streaming import P2Quantile
from repro.workloads.fleet import AutoscaledServingFleet, FunctionGroup

__all__ = ["FleetAutoscaler"]

TECHNIQUES = ("mps", "mig")


def _chain_taps(prior, tap):
    """Compose completion taps instead of clobbering an installed one.

    The sharded engine installs an event-recording tap on each group's
    stats before the autoscaler exists; both must keep firing.
    """
    if prior is None:
        return tap

    def chained(latency: float, in_slo: bool) -> None:
        prior(latency, in_slo)
        tap(latency, in_slo)

    return chained


class _Monitor:
    """Per-function demand/health window (O(1) state)."""

    __slots__ = ("offered_mark", "quantile", "samples", "violation_q")

    def __init__(self, violation_q: float):
        self.offered_mark = 0
        self.violation_q = violation_q
        self.reset()

    def reset(self) -> None:
        """Start a fresh latency window (after a resize)."""
        self.quantile = P2Quantile(self.violation_q)
        self.samples = 0

    def observe(self, latency: float, in_slo: bool) -> None:
        self.quantile.add(latency)
        self.samples += 1


class FleetAutoscaler:
    """Demand-driven MPS-share controller for a live serving fleet."""

    def __init__(self, fleet: AutoscaledServingFleet,
                 planner: Optional[ReconfigurationPlanner] = None,
                 interval_seconds: float = 30.0,
                 cooldown_seconds: float = 120.0,
                 change_threshold_pct: int = 5,
                 utilization_ceiling: float = 0.8,
                 min_percentage: int = 5,
                 slo_bypass_factor: float = 0.5,
                 waves: int = 2,
                 technique: str = "mps",
                 violation_quantile: float = 0.95,
                 min_window_samples: int = 8):
        if interval_seconds <= 0 or cooldown_seconds < 0:
            raise ValueError("invalid control intervals")
        if not 0 < utilization_ceiling <= 1:
            raise ValueError("utilization_ceiling must be in (0, 1]")
        if not 0 <= slo_bypass_factor <= 1:
            raise ValueError("slo_bypass_factor must be in [0, 1]")
        if waves < 1:
            raise ValueError("waves must be positive")
        if technique not in TECHNIQUES:
            raise ValueError(f"unknown technique {technique!r}; "
                             f"expected one of {TECHNIQUES}")
        self.fleet = fleet
        self.spec = fleet.device.spec
        self.planner = planner if planner is not None else \
            ReconfigurationPlanner(self.spec)
        self.interval = interval_seconds
        self.cooldown = cooldown_seconds
        self.change_threshold = change_threshold_pct
        self.utilization_ceiling = utilization_ceiling
        self.min_percentage = min_percentage
        self.slo_bypass_factor = slo_bypass_factor
        self.waves = waves
        self.technique = technique
        self.min_window_samples = min_window_samples
        self.decisions: list[ScalingDecision] = []
        #: Function-resize operations executed (one per function whose
        #: share actually changed, not one per replica restart).
        self.reconfigurations = 0
        #: Summed per-replica pause durations across every resize.
        self.reconfiguration_downtime = 0.0
        #: Replica restarts whose weight reload the cache absorbed.
        self.weight_cache_hits = 0
        #: Replica restarts total.
        self.replica_restarts = 0
        #: One entry per executed resize: analytic cost + measured
        #: per-replica timeline.
        self.reconfig_log: list[dict] = []
        self._monitors: dict[str, _Monitor] = {}
        for name, group in fleet.groups.items():
            monitor = _Monitor(violation_quantile)
            self._monitors[name] = monitor
            group.stats.on_completion = _chain_taps(
                group.stats.on_completion, monitor.observe)
        self._last_applied = -math.inf
        self._proc = None

    # -- control loop -------------------------------------------------------
    def start(self):
        """Launch the control loop; returns the process handle."""
        if self._proc is not None:
            raise RuntimeError("autoscaler already started")
        self._proc = self.fleet.env.process(self._run())
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("autoscaler stopped")
            self._proc.defuse()

    def _run(self):
        env = self.fleet.env
        while True:
            yield env.timeout(self.interval)
            yield from self._tick()

    # -- sense --------------------------------------------------------------
    def windowed_rates(self) -> dict[str, float]:
        """Offered requests/second per function since the last tick."""
        rates = {}
        for name, group in self.fleet.groups.items():
            monitor = self._monitors[name]
            offered = group.stats.offered
            rates[name] = (offered - monitor.offered_mark) / self.interval
            monitor.offered_mark = offered
        return rates

    def slo_violated(self, name: str) -> bool:
        """Window P95 above the function's SLO (with enough samples)."""
        monitor = self._monitors[name]
        if monitor.samples < self.min_window_samples:
            return False
        group = self.fleet.groups[name]
        return monitor.quantile.value > group.slo_seconds

    # -- decide -------------------------------------------------------------
    def desired_percentages(self, rates: dict[str, float]) -> dict[str, int]:
        """Per-replica MPS percentages for the windowed demand."""
        needed = {}
        counts = {}
        for name, group in self.fleet.groups.items():
            counts[name] = len(group.replicas)
            per_replica = rates[name] / counts[name]
            needed[name] = required_sms_for(
                self.spec, group.latency_fn, group.slo_seconds,
                per_replica, self.utilization_ceiling)
        return scaled_percentages(self.spec, needed, counts,
                                  min_percentage=self.min_percentage,
                                  expand=True)

    # -- one decision -------------------------------------------------------
    def _tick(self):
        env = self.fleet.env
        rates = self.windowed_rates()
        desired = self.desired_percentages(rates)
        current = {name: group.current_pct
                   for name, group in self.fleet.groups.items()}
        drift = {name: abs(desired[name] - current[name])
                 for name in desired}
        if max(drift.values()) < self.change_threshold:
            self.decisions.append(ScalingDecision(
                env.now, desired, False, "within threshold"))
            return
        violated = any(self.slo_violated(name) for name in desired
                       if drift[name] >= self.change_threshold)
        if not cooldown_elapsed(env.now, self._last_applied, self.cooldown,
                                slo_violated=violated,
                                slo_bypass_factor=self.slo_bypass_factor):
            self.decisions.append(ScalingDecision(
                env.now, desired, False, "cooldown"))
            return
        if self.technique == "mig":
            yield from self._apply_mig(desired)
        else:
            yield from self._apply_mps(desired, drift)
        self._last_applied = env.now
        self.decisions.append(ScalingDecision(
            env.now, desired, True,
            "slo-bypass repartition" if violated else "repartitioned"))

    # -- act: MPS rolling waves ---------------------------------------------
    def _apply_mps(self, desired: dict[str, int], drift: dict[str, int]):
        env = self.fleet.env
        for name, group in self.fleet.groups.items():
            if drift[name] < self.change_threshold:
                continue
            new_pct = desired[name]
            results = []
            alive = [r for r in group.replicas if r.alive]
            wave_size = max(1, math.ceil(len(alive) / self.waves))
            for lo in range(0, len(alive), wave_size):
                wave = alive[lo:lo + wave_size]
                procs = [env.process(self.fleet.resize_replica(
                    name, replica, new_pct, self.planner))
                    for replica in wave]
                yield env.all_of(procs)
                results.extend(p.value for p in procs
                               if p.value is not None)
            group.current_pct = new_pct
            self._finish_resize(name, group, results, technique="mps")

    # -- act: MIG global teardown --------------------------------------------
    def _apply_mig(self, desired: dict[str, int]):
        """Repartition as MIG would: everyone stops, the GPU resets.

        Clients tear down serially, the device pays ``reset_seconds``,
        then every replica restarts in parallel and reloads its model
        — the repartition destroyed the instances' memory pools, so the
        weight cache cannot help (§6's co-tenant disturbance, executed).
        """
        env = self.fleet.env
        planner = self.planner
        fleet = self.fleet
        t0 = env.now
        victims = [(group, replica)
                   for group in fleet.groups.values()
                   for replica in group.replicas if replica.alive]
        for _group, replica in victims:
            replica.server.pause()
        yield env.all_of([replica.server.drain()
                          for _group, replica in victims])
        victims = [(g, r) for g, r in victims if r.alive]
        for group, replica in victims:
            replica.server.client.close()
            fleet._note_alloc_change(-group.pct_by_replica[replica.index])
        yield env.timeout(planner.TEARDOWN_SECONDS * max(1, len(victims)))
        yield env.timeout(self.spec.reset_seconds)
        yield env.timeout(planner.cold_start.worker_start_seconds(True))
        reload_seconds = 0.0
        per_group: dict[str, list] = {}
        for group, replica in victims:
            group.generation += 1
            new_pct = desired[group.name]
            client = fleet.daemon.client(
                f"{group.name}-r{replica.index}g{group.generation}",
                active_thread_percentage=new_pct)
            fleet._note_alloc_change(new_pct)
            old_pct = group.pct_by_replica[replica.index]
            group.pct_by_replica[replica.index] = new_pct
            replica.server.client = client
            reload_seconds = max(reload_seconds, group.model_load_seconds)
            per_group.setdefault(group.name, []).append(
                {"replica": replica.index, "weight_cache_hit": False,
                 "from_pct": old_pct, "to_pct": new_pct})
        if reload_seconds > 0:
            yield env.timeout(reload_seconds)
        downtime = env.now - t0
        for group, replica in victims:
            replica.server.resume()
        for name, results in per_group.items():
            group = fleet.groups[name]
            group.current_pct = desired[name]
            for entry in results:
                entry["downtime_seconds"] = downtime
            self._finish_resize(name, group, results, technique="mig",
                                n_cotenants=len(victims) - len(results))

    # -- bookkeeping ---------------------------------------------------------
    def _finish_resize(self, name: str, group: FunctionGroup,
                       results: list[dict], technique: str,
                       n_cotenants: int = 0) -> None:
        env = self.fleet.env
        hits = sum(1 for entry in results if entry["weight_cache_hit"])
        downtime = sum(entry["downtime_seconds"] for entry in results)
        if technique == "mig":
            cost = self.planner.mig_repartition_cost(
                group.model_load_seconds, n_cotenants=n_cotenants)
        else:
            cost = self.planner.mps_repartition_cost(
                group.model_load_seconds,
                weight_cache_hit=hits == len(results) and bool(results))
        self.reconfigurations += 1
        self.replica_restarts += len(results)
        self.weight_cache_hits += hits
        self.reconfiguration_downtime += downtime
        # Latencies observed under the old share say nothing about the
        # new one; start a fresh violation window.
        self._monitors[name].reset()
        self.reconfig_log.append({
            "time": env.now,
            "function": name,
            "technique": technique,
            "to_pct": group.current_pct,
            "cost": asdict(cost),
            "replicas": results,
            "downtime_seconds": downtime,
        })

    # -- reporting -----------------------------------------------------------
    def summary(self) -> dict:
        """JSON-ready controller counters (bench/CLI payload)."""
        applied = sum(1 for d in self.decisions if d.applied)
        return {
            "ticks": len(self.decisions),
            "applied": applied,
            "reconfigurations": self.reconfigurations,
            "replica_restarts": self.replica_restarts,
            "weight_cache_hits": self.weight_cache_hits,
            "reconfiguration_downtime": self.reconfiguration_downtime,
            "mean_restart_downtime": (
                self.reconfiguration_downtime / self.replica_restarts
                if self.replica_restarts else 0.0),
        }
