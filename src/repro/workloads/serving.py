"""Dynamic-batching LLM inference serving.

An extension study on top of the paper: partitioning (Figs. 4/5) is one
way to raise GPU utilization for small-batch inference — *batching* is
the classic other.  This module implements a serving loop with dynamic
batching over the simulated GPU so the two can be compared (see
``benchmarks/test_extension_batching.py``).

Batching economics in the cost model: the decode kernel's weight traffic
is shared across the batch (read once per step), while per-sequence
KV-cache traffic and FLOPs scale with the batch — so batching amortizes
exactly the memory-bound component that throttles multi-process MPS
sharing.  Larger batches also expose more parallelism (higher
``max_sms``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sim.core import Environment, Event
from repro.sim.resources import Store
from repro.gpu.device import GpuClient
from repro.gpu.kernel import Kernel
from repro.workloads.llm import LlamaInference

__all__ = ["InferenceRequest", "InferenceServer", "OpenLoopClient"]

_request_ids = itertools.count()


@dataclass
class InferenceRequest:
    """One text-completion request."""

    n_tokens: int
    arrival_time: float
    rid: int = field(default_factory=lambda: next(_request_ids))
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    done: Optional[Event] = None

    @property
    def latency(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    @property
    def queue_seconds(self) -> Optional[float]:
        if self.start_time is None:
            return None
        return self.start_time - self.arrival_time


class InferenceServer:
    """Serves one model from one GPU partition with dynamic batching.

    The loop waits for at least one request, then admits up to
    ``max_batch_size`` requests that arrive within ``batch_timeout``
    before running the whole batch's decode steps together.
    """

    def __init__(self, env: Environment, client: GpuClient,
                 llm: LlamaInference, max_batch_size: int = 4,
                 batch_timeout: float = 0.01):
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if batch_timeout < 0:
            raise ValueError("batch_timeout must be non-negative")
        self.env = env
        self.client = client
        self.llm = llm
        self.max_batch_size = max_batch_size
        self.batch_timeout = batch_timeout
        self._queue = Store(env, name="inference-requests")
        self.completed: list[InferenceRequest] = []
        self.batch_sizes: list[int] = []
        self._proc = env.process(self._serve())

    # -- client API ---------------------------------------------------------
    def submit(self, n_tokens: int = 20) -> InferenceRequest:
        """Enqueue a request; its ``done`` event fires on completion."""
        if n_tokens <= 0:
            raise ValueError("n_tokens must be positive")
        request = InferenceRequest(n_tokens=n_tokens,
                                   arrival_time=self.env.now)
        request.done = self.env.event(name=f"request-{request.rid}")
        self._queue.put(request)
        return request

    # -- the serving loop -----------------------------------------------------
    def _serve(self):
        env = self.env
        while True:
            first = yield self._queue.get()
            batch = [first]
            deadline = env.now + self.batch_timeout
            while (len(batch) < self.max_batch_size
                   and (self._queue.items or env.now < deadline)):
                if self._queue.items:
                    batch.append((yield self._queue.get()))
                    continue
                # Wait out the rest of the admission window.
                yield env.timeout(max(0.0, deadline - env.now))
                while (self._queue.items
                       and len(batch) < self.max_batch_size):
                    batch.append((yield self._queue.get()))
                break
            self.batch_sizes.append(len(batch))
            yield from self._run_batch(batch)

    def _run_batch(self, batch: list[InferenceRequest]):
        env = self.env
        for request in batch:
            request.start_time = env.now
        steps = max(r.n_tokens for r in batch)
        remaining = {r.rid: r.n_tokens for r in batch}
        active = list(batch)
        for _step in range(steps):
            kernel = self.batched_decode_kernel(len(active))
            yield self.client.launch(kernel)
            yield env.timeout(self.llm.host_seconds_per_token)
            still_active = []
            for request in active:
                remaining[request.rid] -= 1
                if remaining[request.rid] == 0:
                    request.finish_time = env.now
                    self.completed.append(request)
                    request.done.succeed(request)
                else:
                    still_active.append(request)
            active = still_active
            if not active:
                break

    def batched_decode_kernel(self, batch_size: int) -> Kernel:
        """One decode step for ``batch_size`` concurrent sequences.

        Weight traffic is read once for the whole batch; FLOPs and
        KV-cache traffic scale linearly; usable parallelism grows with
        the batch (more rows in every GEMM).
        """
        base = self.llm.decode_kernel()
        rt = self.llm.runtime
        weight_traffic = rt.traffic_amplification * self.llm.weight_bytes
        kv_traffic = base.bytes_moved - weight_traffic
        return Kernel(
            flops=base.flops * batch_size,
            bytes_moved=weight_traffic + kv_traffic * batch_size,
            max_sms=min(self.client.device.spec.sms,
                        base.max_sms * batch_size),
            efficiency=base.efficiency,
            name=f"{base.name}-b{batch_size}",
        )

    # -- metrics -----------------------------------------------------------------
    @property
    def mean_latency(self) -> float:
        lats = [r.latency for r in self.completed]
        if not lats:
            raise RuntimeError("no completed requests yet")
        return float(np.mean(lats))

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return float(np.mean(self.batch_sizes))


class OpenLoopClient:
    """Open-loop request generator with deterministic or Poisson arrivals."""

    def __init__(self, env: Environment, server: InferenceServer,
                 rate_rps: float, n_requests: int, n_tokens: int = 20,
                 rng: Optional[np.random.Generator] = None):
        if rate_rps <= 0 or n_requests <= 0:
            raise ValueError("rate and request count must be positive")
        self.env = env
        self.server = server
        self.rate = rate_rps
        self.n_requests = n_requests
        self.n_tokens = n_tokens
        self.rng = rng
        self.requests: list[InferenceRequest] = []
        self._proc = env.process(self._generate())

    @property
    def done(self) -> Event:
        """Fires when every generated request has completed."""
        return self._proc

    def _generate(self):
        env = self.env
        for _ in range(self.n_requests):
            if self.rng is None:
                gap = 1.0 / self.rate
            else:
                gap = float(self.rng.exponential(1.0 / self.rate))
            yield env.timeout(gap)
            self.requests.append(self.server.submit(self.n_tokens))
        yield env.all_of([r.done for r in self.requests])
