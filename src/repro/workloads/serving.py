"""Dynamic-batching LLM inference serving.

An extension study on top of the paper: partitioning (Figs. 4/5) is one
way to raise GPU utilization for small-batch inference — *batching* is
the classic other.  This module implements a serving loop with dynamic
batching over the simulated GPU so the two can be compared (see
``benchmarks/test_extension_batching.py``).

Batching economics in the cost model: the decode kernel's weight traffic
is shared across the batch (read once per step), while per-sequence
KV-cache traffic and FLOPs scale with the batch — so batching amortizes
exactly the memory-bound component that throttles multi-process MPS
sharing.  Larger batches also expose more parallelism (higher
``max_sms``).

Scale notes
-----------
The default mode retains every completed request (``server.completed``,
``client.requests``) for post-hoc analysis — O(n) memory.  For
million-request runs both ends support a *streaming* mode: the server
takes ``keep_completed=False`` plus an optional ``on_complete``
callback, and the client takes ``streaming=True`` plus an optional
:class:`~repro.telemetry.streaming.StreamingLatencyStats` sink, so the
run completes in bounded memory.  In streaming mode inter-arrival gaps
are drawn from numpy in chunks (bit-identical to per-draw scalars when
the client owns its generator), and the hot loops draw recycled
timeouts from the environment's free list.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

import numpy as np

from repro.sim.core import Environment, Event
from repro.sim.process import Interrupt
from repro.sim.resources import Store
from repro.gpu.device import GpuClient
from repro.gpu.faults import GpuLaunchError
from repro.gpu.kernel import Kernel
from repro.workloads.llm import LlamaInference

__all__ = ["InferenceRequest", "InferenceServer", "OpenLoopClient"]

_request_ids = itertools.count()

#: Gap draws per numpy call in the open-loop generator.
_GAP_CHUNK = 4096


@dataclass(slots=True)
class InferenceRequest:
    """One text-completion request."""

    n_tokens: int
    arrival_time: float
    rid: int = field(default_factory=lambda: next(_request_ids))
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    done: Optional[Event] = None

    @property
    def latency(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    @property
    def queue_seconds(self) -> Optional[float]:
        if self.start_time is None:
            return None
        return self.start_time - self.arrival_time


class InferenceServer:
    """Serves one model from one GPU partition with dynamic batching.

    The loop waits for at least one request, then admits up to
    ``max_batch_size`` requests that arrive within ``batch_timeout``
    before running the whole batch's decode steps together.

    With ``keep_completed=False`` the server stops retaining finished
    requests (``completed`` stays empty and ``batch_sizes`` stops
    growing); aggregate counters (``n_completed``, ``mean_batch_size``)
    keep working, and ``on_complete`` — called with each finished
    request before its ``done`` event fires — is the hook for streaming
    accumulators.

    Fault model
    -----------
    A kernel failure (injected ECC error, transient launch rejection)
    is *contained*: the in-flight batch's requests fail — through
    ``on_failure`` and each request's ``done`` event — and the serving
    loop moves on to the next batch instead of dying.  :meth:`crash`
    kills the whole replica: queued and in-flight requests fail, the
    resident kernels are torn down, and further ``submit`` calls raise.
    ``slowdown`` (host-side straggling), ``stall_until`` (reconfig
    pause before the next batch), and ``fail_next_launches`` (transient
    launch faults) are the knobs the chaos controller drives; all three
    are free — no extra events, identical float arithmetic — at their
    defaults.
    """

    def __init__(self, env: Environment, client: GpuClient,
                 llm: LlamaInference, max_batch_size: int = 4,
                 batch_timeout: float = 0.01,
                 keep_completed: bool = True,
                 kernel_cache: bool = True,
                 on_complete: Optional[
                     Callable[[InferenceRequest], None]] = None,
                 on_failure: Optional[
                     Callable[[InferenceRequest, BaseException],
                              None]] = None,
                 name: Optional[str] = None):
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if batch_timeout < 0:
            raise ValueError("batch_timeout must be non-negative")
        self.env = env
        self.client = client
        self.llm = llm
        self.max_batch_size = max_batch_size
        self.batch_timeout = batch_timeout
        self.keep_completed = keep_completed
        self.kernel_cache = kernel_cache
        # Kernel objects are immutable values: the decode kernel for a
        # given batch size never changes over a server's lifetime, so
        # memoising it avoids rebuilding an identical Kernel per decode
        # step (a few million allocations in a million-request run).
        self._kernel_by_batch: dict[int, Kernel] = {}
        self.on_complete = on_complete
        self.on_failure = on_failure
        self.name = name if name is not None else client.name
        self._queue = Store(env, name="inference-requests")
        self.completed: list[InferenceRequest] = []
        self.batch_sizes: list[int] = []
        self.n_completed = 0
        self.n_failed = 0
        self._n_batches = 0
        self._batch_size_sum = 0
        #: False once the replica has crashed (submit raises).
        self.alive = True
        #: Host-side straggler factor (>1 stretches the per-token gap).
        self.slowdown = 1.0
        #: The loop admits no new batch before this simulated time.
        self.stall_until = 0.0
        #: Transient-fault budget: each pending unit rejects one launch.
        self.fail_next_launches = 0
        self._active: list[InferenceRequest] = []
        self._pending_get: Optional[Event] = None
        # Reconfiguration drain protocol: pause() blocks batch admission
        # on an event until resume(); _executing is True only while a
        # batch's kernels are actually in flight, so drain() can tell a
        # gathered-but-unlaunched batch (safe to hold) from one whose
        # kernels would die with the client.
        self._pause_event: Optional[Event] = None
        self._executing = False
        self._drain_waiters: list[Event] = []
        self._proc = env.process(self._serve())
        self._proc.defuse()

    # -- client API ---------------------------------------------------------
    def submit(self, n_tokens: int = 20) -> InferenceRequest:
        """Enqueue a request; its ``done`` event fires on completion."""
        if n_tokens <= 0:
            raise ValueError("n_tokens must be positive")
        if not self.alive:
            raise RuntimeError(f"server {self.name!r} has crashed")
        request = InferenceRequest(n_tokens=n_tokens,
                                   arrival_time=self.env.now)
        request.done = self.env.event()
        self._queue.put(request)
        return request

    @property
    def queue_depth(self) -> int:
        """Requests waiting or in flight (admission-control signal)."""
        return len(self._queue.items) + len(self._active)

    def crash(self, cause: Optional[BaseException] = None) -> None:
        """Kill the replica now: fail all owned requests and kernels."""
        if not self.alive:
            return
        if cause is None:
            cause = RuntimeError(f"server {self.name!r} crashed")
        # The interrupt handler in _serve does the cleanup, so a crash
        # behaves identically whether injected externally or raised by
        # the loop itself.
        self._proc.interrupt(cause)

    # -- reconfiguration drain protocol -------------------------------------
    @property
    def stalled(self) -> bool:
        """True while the replica admits no new batches.

        Covers both an explicit :meth:`pause` (controller-driven drain)
        and a chaos ``stall_until`` window.  Placement should steer
        around a stalled replica: anything sent here queues behind the
        reconfiguration instead of running.
        """
        return self._pause_event is not None or self.env.now < self.stall_until

    def pause(self) -> None:
        """Stop admitting batches until :meth:`resume` (idempotent).

        Queued requests are held, not failed; an in-flight batch runs to
        completion.  Use :meth:`drain` to wait for that batch.
        """
        if self._pause_event is None:
            self._pause_event = self.env.event()

    def resume(self) -> None:
        """Lift a :meth:`pause`; the serve loop re-checks admission."""
        event = self._pause_event
        self._pause_event = None
        if event is not None:
            event.succeed()

    def drain(self) -> Event:
        """Event that fires once no kernels are in flight.

        Immediate when the server is between batches (a batch gathered
        while paused has launched nothing and is safe to hold); otherwise
        fires when the current batch's last kernel completes or fails.
        Pair with :meth:`pause`, or the loop will start the next batch.
        """
        event = self.env.event()
        if not self._executing:
            event.succeed(self)
        else:
            self._drain_waiters.append(event)
        return event

    def _flush_drained(self) -> None:
        waiters, self._drain_waiters = self._drain_waiters, []
        for event in waiters:
            event.succeed(self)

    # -- the serving loop -----------------------------------------------------
    def _serve(self):
        env = self.env
        try:
            while True:
                self._pending_get = get = self._queue.get()
                first = yield get
                self._pending_get = None
                self._active = batch = [first]
                deadline = env.now + self.batch_timeout
                while (len(batch) < self.max_batch_size
                       and (self._queue.items or env.now < deadline)):
                    if self._queue.items:
                        self._pending_get = get = self._queue.get()
                        batch.append((yield get))
                        self._pending_get = None
                        continue
                    # Wait out the rest of the admission window.
                    yield env.timeout_pooled(max(0.0, deadline - env.now))
                    while (self._queue.items
                           and len(batch) < self.max_batch_size):
                        self._pending_get = get = self._queue.get()
                        batch.append((yield get))
                        self._pending_get = None
                    break
                self._n_batches += 1
                self._batch_size_sum += len(batch)
                if self.keep_completed:
                    self.batch_sizes.append(len(batch))
                yield from self._run_batch(batch)
                self._active = []
        except Interrupt as interrupt:
            cause = interrupt.cause
            if not isinstance(cause, BaseException):
                cause = RuntimeError(f"server {self.name!r} crashed")
            self._die(cause)

    def _run_batch(self, batch: list[InferenceRequest]):
        env = self.env
        while True:
            if self._pause_event is not None:
                # Controller-driven drain: hold the gathered batch (its
                # kernels have not launched) until resume().
                yield self._pause_event
                continue
            if env.now < self.stall_until:
                # Reconfiguration stall: the replica is alive but admits
                # no work (its partition is being reshaped underneath).
                yield env.timeout_pooled(self.stall_until - env.now)
                continue
            break
        self._executing = True
        try:
            yield from self._execute_batch(batch)
        finally:
            # Runs on normal completion, kernel failure, and crash
            # Interrupt alike: whatever happened, no kernels remain in
            # flight, so any drain() waiters can proceed.
            self._executing = False
            self._flush_drained()

    def _execute_batch(self, batch: list[InferenceRequest]):
        env = self.env
        for request in batch:
            request.start_time = env.now
        steps = max(r.n_tokens for r in batch)
        remaining = {r.rid: r.n_tokens for r in batch}
        active = list(batch)
        for _step in range(steps):
            kernel = self.batched_decode_kernel(len(active))
            try:
                if self.fail_next_launches > 0:
                    self.fail_next_launches -= 1
                    raise GpuLaunchError(
                        f"server {self.name!r}: transient launch failure"
                    )
                yield self.client.launch(kernel)
            except Interrupt:
                raise  # replica crash: handled by _serve
            except Exception as exc:  # noqa: BLE001 - kernel/launch fault
                # The batch dies with the kernel; the replica survives.
                for request in active:
                    self._fail_request(request, exc)
                self._active = []
                return
            yield env.timeout_pooled(
                self.llm.host_seconds_per_token * self.slowdown)
            still_active = []
            for request in active:
                remaining[request.rid] -= 1
                if remaining[request.rid] == 0:
                    request.finish_time = env.now
                    self.n_completed += 1
                    if self.keep_completed:
                        self.completed.append(request)
                    if self.on_complete is not None:
                        self.on_complete(request)
                    request.done.succeed(request)
                else:
                    still_active.append(request)
            self._active = active = still_active
            if not active:
                break

    # -- failure paths ------------------------------------------------------
    def _fail_request(self, request: InferenceRequest,
                      exc: BaseException) -> None:
        self.n_failed += 1
        if self.on_failure is not None:
            self.on_failure(request, exc)
        request.done.fail(exc)

    def _die(self, cause: BaseException) -> None:
        """Crash cleanup: fail every owned request, tear down kernels."""
        self.alive = False
        pending = self._pending_get
        self._pending_get = None
        if pending is not None:
            if not pending.triggered:
                # The queue must not hand a future request to a corpse.
                self._queue.cancel(pending)
            else:
                self._fail_request(pending.value, cause)
        for request in self._active:
            self._fail_request(request, cause)
        self._active = []
        while self._queue.items:
            self._fail_request(self._queue.items.popleft(), cause)
        self._purge_kernels(cause)
        if self.client.alive:
            self.client.close()

    def _purge_kernels(self, cause: BaseException) -> None:
        """Tear down this replica's kernels (its context died with it).

        Resident fluid tasks are cancelled and failed (pre-defused: the
        launching process died with the replica, so nobody else takes
        responsibility; a temporal pump waiting on one still observes
        the failure and rotates on).  Queued temporal kernels are
        dropped from the client's queue the same way.
        """
        client = self.client
        device = client.device
        for task in device.pool.tasks:
            if task.meta["client"] is client:
                device.pool.cancel(task)
                task.done._defused = True
                task.done.fail(cause)
        group = client.group
        if group._queues is not None:
            queued = group._queues.get(client.cid)
            if queued:
                while queued:
                    task = queued.popleft()
                    task.done._defused = True
                    task.done.fail(cause)

    def batched_decode_kernel(self, batch_size: int) -> Kernel:
        """One decode step for ``batch_size`` concurrent sequences.

        Weight traffic is read once for the whole batch; FLOPs and
        KV-cache traffic scale linearly; usable parallelism grows with
        the batch (more rows in every GEMM).  With ``kernel_cache`` the
        Kernel for each batch size is built once and reused (kernels
        are immutable values — see :mod:`repro.gpu.kernel`).
        """
        if self.kernel_cache:
            kernel = self._kernel_by_batch.get(batch_size)
            if kernel is None:
                kernel = self._build_batched_kernel(batch_size)
                self._kernel_by_batch[batch_size] = kernel
            return kernel
        return self._build_batched_kernel(batch_size)

    def _build_batched_kernel(self, batch_size: int) -> Kernel:
        base = self.llm.decode_kernel()
        rt = self.llm.runtime
        weight_traffic = rt.traffic_amplification * self.llm.weight_bytes
        kv_traffic = base.bytes_moved - weight_traffic
        return Kernel(
            flops=base.flops * batch_size,
            bytes_moved=weight_traffic + kv_traffic * batch_size,
            max_sms=min(self.client.device.spec.sms,
                        base.max_sms * batch_size),
            efficiency=base.efficiency,
            name=f"{base.name}-b{batch_size}",
        )

    # -- metrics -----------------------------------------------------------------
    @property
    def mean_latency(self) -> float:
        lats = [r.latency for r in self.completed]
        if not lats:
            raise RuntimeError("no completed requests yet")
        return float(np.mean(lats))

    @property
    def mean_batch_size(self) -> float:
        if self._n_batches == 0:
            return 0.0
        return self._batch_size_sum / self._n_batches


class OpenLoopClient:
    """Open-loop request generator with deterministic or Poisson arrivals.

    Three arrival sources, in precedence order:

    - ``arrivals``: an iterable of absolute timestamps (e.g. a streaming
      trace iterator from :mod:`repro.workloads.traces`);
    - ``rng``: Poisson arrivals at ``rate_rps`` — one scalar draw per
      arrival (generators may be shared between clients); in streaming
      mode gaps are drawn in numpy chunks instead, bit-identical for a
      client-owned generator;
    - neither: deterministic arrivals every ``1/rate_rps`` seconds.

    In the default mode every submitted request is retained in
    ``self.requests`` and completion is awaited with a single ``all_of``
    over all of them.  With ``streaming=True`` nothing is retained:
    each request's latency is pushed into ``stats`` (if given) by a
    ``done`` callback, and the client finishes when the completion
    counter reaches the submission counter — O(1) memory however long
    the trace.
    """

    def __init__(self, env: Environment, server: InferenceServer,
                 rate_rps: Optional[float] = None,
                 n_requests: Optional[int] = None, n_tokens: int = 20,
                 rng: Optional[np.random.Generator] = None,
                 arrivals: Optional[Iterable[float]] = None,
                 streaming: bool = False,
                 stats=None):
        if arrivals is None:
            if rate_rps is None or n_requests is None:
                raise ValueError("either arrivals or rate_rps+n_requests "
                                 "must be given")
            if rate_rps <= 0 or n_requests <= 0:
                raise ValueError("rate and request count must be positive")
        self.env = env
        self.server = server
        self.rate = rate_rps
        self.n_requests = n_requests
        self.n_tokens = n_tokens
        self.rng = rng
        self.arrivals = arrivals
        self.streaming = streaming
        self.stats = stats
        self.n_submitted = 0
        self.n_completed = 0
        self.requests: list[InferenceRequest] = []
        self._proc = env.process(self._generate())

    @property
    def done(self) -> Event:
        """Fires when every generated request has completed."""
        return self._proc

    def _gaps(self) -> Iterator[float]:
        if self.arrivals is not None:
            prev = self.env.now
            for t in self.arrivals:
                yield max(0.0, t - prev)
                prev = t
            return
        if self.rng is None:
            gap = 1.0 / self.rate
            for _ in range(self.n_requests):
                yield gap
            return
        scale = 1.0 / self.rate
        if not self.streaming:
            # One scalar draw per arrival.  Several clients may share a
            # generator (the batching study does), and sharing only
            # works if each client draws exactly at its arrival points.
            for _ in range(self.n_requests):
                yield float(self.rng.exponential(scale))
            return
        # Streaming mode: chunked numpy draws.  For a generator this
        # client owns, Generator.exponential(scale, size=n) is
        # bit-identical to n sequential scalar draws, so the arrival
        # times match the scalar path exactly while the per-call numpy
        # overhead is amortised across _GAP_CHUNK arrivals.  (A *shared*
        # generator would be consumed _GAP_CHUNK draws at a time and
        # reorder the stream across clients — streaming clients must own
        # their rng.)
        remaining = self.n_requests
        while remaining > 0:
            for g in self.rng.exponential(scale, size=min(_GAP_CHUNK,
                                                          remaining)):
                yield float(g)
            remaining -= min(_GAP_CHUNK, remaining)

    def _arrival_time_chunks(self) -> Iterator:
        """Absolute arrival times in chunks, for batched heap injection.

        Each chunk's times are exactly the values the per-gap path would
        have scheduled: the k-th arrival time is the (k-1)-th plus the
        k-th gap, accumulated with ``np.add.accumulate`` — a sequential
        left-to-right sum, so every float is bit-identical to the scalar
        ``t += gap`` chain.  The ``arrivals`` source may mix scalar
        timestamps and numpy chunk arrays (see
        :func:`repro.workloads.traces.iter_poisson_trace_chunks`).
        """
        env = self.env
        if self.arrivals is not None:
            prev = env.now   # raw previous arrival (clamping reference)
            s = env.now      # scheduled-time accumulator
            chunk: list[float] = []
            for t in self.arrivals:
                if isinstance(t, np.ndarray):
                    if t.size == 0:
                        continue
                    if chunk:
                        yield chunk
                        chunk = []
                    gaps = np.maximum(np.diff(t, prepend=prev), 0.0)
                    times = np.add.accumulate(
                        np.concatenate(((s,), gaps)))[1:]
                    prev = float(t[-1])
                    s = float(times[-1])
                    yield times
                else:
                    gap = t - prev
                    if gap < 0.0:
                        gap = 0.0
                    prev = t
                    s = s + gap
                    chunk.append(s)
                    if len(chunk) >= _GAP_CHUNK:
                        yield chunk
                        chunk = []
            if chunk:
                yield chunk
            return
        remaining = self.n_requests
        carry = env.now
        if self.rng is None:
            gap = 1.0 / self.rate
            while remaining > 0:
                n = min(_GAP_CHUNK, remaining)
                times = np.add.accumulate(
                    np.concatenate(((carry,), np.full(n, gap))))[1:]
                carry = float(times[-1])
                yield times
                remaining -= n
            return
        scale = 1.0 / self.rate
        while remaining > 0:
            n = min(_GAP_CHUNK, remaining)
            gaps = self.rng.exponential(scale, size=n)
            times = np.add.accumulate(np.concatenate(((carry,), gaps)))[1:]
            carry = float(times[-1])
            yield times
            remaining -= n

    def _generate(self):
        env = self.env
        if not self.streaming:
            for gap in self._gaps():
                yield env.timeout_pooled(gap)
                self.requests.append(self.server.submit(self.n_tokens))
                self.n_submitted += 1
            yield env.all_of([r.done for r in self.requests])
            self.n_completed = self.n_submitted
            return

        all_done = env.event(name="open-loop-drained")
        state = {"submitting": True}
        stats = self.stats

        def _on_done(ev: Event) -> None:
            self.n_completed += 1
            if stats is not None:
                request = ev.value
                stats.add(request.finish_time - request.arrival_time)
            if (not state["submitting"]
                    and self.n_completed == self.n_submitted):
                all_done.succeed()

        submit = self.server.submit
        n_tokens = self.n_tokens

        def _submit_one(_ev: Event) -> None:
            request = submit(n_tokens)
            self.n_submitted += 1
            request.done.callbacks.append(_on_done)

        # Batched injection: one pre-scheduled event per arrival (the
        # same event count as the per-gap path — the differential
        # harness counts them), heapified in one schedule_batch call per
        # chunk.  The chunk's last event doubles as the generator's
        # resume point: its _submit_one callback was installed at
        # creation, so it runs before the process resumes and computes
        # the next chunk from the final arrival time.
        for chunk in self._arrival_time_chunks():
            yield env.schedule_batch(chunk, _submit_one)[-1]
        state["submitting"] = False
        if self.n_completed == self.n_submitted:
            all_done.succeed()
        yield all_done
