"""Application models used in the paper's evaluation.

- :mod:`repro.workloads.cnn` — conv-arithmetic CNN zoo (Fig. 1's per-layer
  FLOP variance; ResNet-50/101 and friends).
- :mod:`repro.workloads.llm` — analytic LLaMa-2 inference cost model,
  calibrated to the paper's measured anchors (Figs. 2, 4, 5).
- :mod:`repro.workloads.moldesign` — the molecular-design active-learning
  campaign (Fig. 3), with a real numpy emulator and a synthetic
  quantum-chemistry surrogate.
- :mod:`repro.workloads.datasets` — synthetic MOSES-like molecule space.
"""

from repro.workloads.cnn import (
    ALEXNET,
    CNN_ZOO,
    RESNET18,
    RESNET34,
    RESNET50,
    RESNET101,
    RESNET152,
    VGG16,
    CnnModel,
    ConvLayer,
    conv_output_size,
)
from repro.workloads.llm import (
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    InferenceRuntime,
    LlamaInference,
    LlamaSpec,
)
from repro.workloads.datasets import Molecule, MoleculeSpace
from repro.workloads.chemistry import simulate_ionization_potential
from repro.workloads.mlmodel import RidgeEmulator
from repro.workloads.moldesign import CampaignConfig, MolecularDesignCampaign
from repro.workloads.serving import (
    InferenceRequest,
    InferenceServer,
    OpenLoopClient,
)
from repro.workloads.resilience import (
    CircuitBreaker,
    Replica,
    ResilientRouter,
    ServedRequest,
    SLOPolicy,
)
from repro.workloads.fleet import (
    AutoscaledServingFleet,
    FLEET_MODES,
    FleetFunction,
    FunctionGroup,
    ServingFleet,
)
from repro.workloads.autoscale import FleetAutoscaler
from repro.workloads.traces import (
    TraceStats,
    bursty_trace,
    diurnal_trace,
    iter_bursty_trace,
    iter_diurnal_trace,
    iter_poisson_trace,
    iter_poisson_trace_chunks,
    poisson_trace,
    streaming_trace_stats,
    to_rate_series,
    trace_stats,
)

__all__ = [
    "ALEXNET",
    "AutoscaledServingFleet",
    "CNN_ZOO",
    "CampaignConfig",
    "CircuitBreaker",
    "CnnModel",
    "ConvLayer",
    "FLEET_MODES",
    "FleetAutoscaler",
    "FleetFunction",
    "FunctionGroup",
    "InferenceRequest",
    "InferenceRuntime",
    "InferenceServer",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "LLAMA2_7B",
    "LlamaInference",
    "LlamaSpec",
    "MolecularDesignCampaign",
    "Molecule",
    "MoleculeSpace",
    "OpenLoopClient",
    "Replica",
    "ResilientRouter",
    "RESNET101",
    "RESNET152",
    "RESNET18",
    "RESNET34",
    "RESNET50",
    "RidgeEmulator",
    "SLOPolicy",
    "ServedRequest",
    "ServingFleet",
    "TraceStats",
    "VGG16",
    "bursty_trace",
    "conv_output_size",
    "diurnal_trace",
    "iter_bursty_trace",
    "iter_diurnal_trace",
    "iter_poisson_trace",
    "iter_poisson_trace_chunks",
    "poisson_trace",
    "simulate_ionization_potential",
    "streaming_trace_stats",
    "to_rate_series",
    "trace_stats",
]
