"""Scenario cells: the gated bench scenarios as shardable simulations.

Each cell wraps one complete scenario — a whole device plus its
replicas, clients, chaos controller, and/or autoscaler — behind the
cell protocol of :mod:`repro.sim.sharded` (``advance`` / ``drain_events``
/ ``result``).  Three guarantees make the sharded runs bit-identical to
the single-process engines:

- **one construction path** — every cell builds its scenario through
  the same ``build_*`` helper the single-process bench runner uses
  (:mod:`repro.bench.scale_experiments` et al.), so the object graph,
  RNG consumption, and event-sequence numbering are identical;
- **barrier-transparent stepping** — cells advance via
  :meth:`~repro.sim.core.Environment.advance`, which processes exactly
  the events a single ``run(until=done)`` would, in the same order,
  without ever moving the clock to a barrier;
- **seed isolation** — :func:`cell_seed` gives cell 0 the root seed
  *verbatim* (a one-cell sharded run IS the legacy scenario) and every
  later cell an independent named substream
  (:func:`~repro.sim.rng.substream_seed`), so adding cell N never
  perturbs cells < N.

Completion events are recorded as ``(sim_time, latency, ...)`` tuples
via each scenario's streaming-stats tap; the ``sharded_*_report``
runners merge them canonically and replay the merged stream through
fresh accumulators (see :mod:`repro.telemetry.streaming`).
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.sim.rng import substream_seed

__all__ = [
    "AutoscaleCell",
    "FleetCell",
    "ScaleCell",
    "cell_seed",
    "sharded_autoscale_report",
    "sharded_fleet_report",
    "sharded_scale_report",
]


def cell_seed(root_seed: int, label: str, index: int) -> int:
    """Seed for cell ``index`` of a sharded scenario family.

    Cell 0 keeps the root seed verbatim so the one-cell sharded run
    reproduces the legacy single-process scenario bit for bit; higher
    cells draw from named substreams, so growing the fleet never
    perturbs the cells that were already there.
    """
    if index == 0:
        return int(root_seed)
    return substream_seed(root_seed, label, index)


class _RecordingStats:
    """Streaming-stats shim that also timestamps every completion.

    Duck-types the ``add``/``stats`` surface the serving clients use;
    each ``add`` appends ``(env.now, latency)`` to the cell's event
    buffer before forwarding to the real accumulator, so the cell's own
    stats stay bit-identical to the unsharded run while the merge layer
    gets the raw stream.
    """

    __slots__ = ("_env", "_buffer", "inner")

    def __init__(self, env, buffer: list, inner):
        self._env = env
        self._buffer = buffer
        self.inner = inner

    def add(self, latency: float) -> None:
        self._buffer.append((self._env.now, float(latency)))
        self.inner.add(latency)

    def stats(self):
        return self.inner.stats()


class _ScenarioCell:
    """Common advance/drain plumbing over one Environment + stop event.

    Subclasses set ``self.env`` and ``self._stop`` in ``__init__`` and
    append ``(time, ...)`` tuples to ``self._events`` as completions
    happen.
    """

    def __init__(self) -> None:
        self.env = None
        self._stop = None
        self._events: list[tuple] = []
        self._finished = False

    def advance(self, horizon: float) -> bool:
        if not self._finished:
            self._finished = self.env.advance(horizon, stop=self._stop)
            if self._finished:
                self._on_finished()
        return self._finished

    def _on_finished(self) -> None:
        pass

    def drain_events(self) -> list[tuple]:
        # Clear in place: the recording taps hold a reference to this
        # exact list, so rebinding would silently detach them after the
        # first barrier.
        out = list(self._events)
        self._events.clear()
        return out

    def apply_command(self, command) -> None:
        pass

    def result(self) -> dict:
        raise NotImplementedError


class ScaleCell(_ScenarioCell):
    """One trace-serving scale device: 7x ``1g.10gb`` MIG, 16 MPS
    servers each, under open-loop Poisson load (the ``scale`` bench
    scenario, streaming engine)."""

    def __init__(self, n_requests: int, rate_rps: float, seed: int):
        super().__init__()
        from repro.bench.scale_experiments import build_trace_serving
        from repro.sim.core import Environment
        from repro.telemetry.streaming import StreamingLatencyStats

        self.rate_rps = float(rate_rps)
        self.env = Environment()
        stats = _RecordingStats(self.env, self._events,
                                StreamingLatencyStats())
        self.handles = build_trace_serving(
            self.env, n_requests, rate_rps, seed, streaming=True,
            stats=stats)
        self._stop = self.env.all_of(
            [c.done for c in self.handles["clients"]])

    def result(self) -> dict:
        from repro.bench.scale_experiments import trace_serving_metrics

        return trace_serving_metrics(self.env, self.handles, "streaming",
                                     self.rate_rps)


class FleetCell(_ScenarioCell):
    """One resilient serving fleet (optionally under a chaos plan) —
    the ``resilience`` bench scenario."""

    def __init__(self, mode: str, n_requests: int, rate_rps: float,
                 deadline_seconds: float, seed: int, chaos: bool = False,
                 n_partitions: int = 7, servers_per_partition: int = 16,
                 n_tokens: int = 16):
        super().__init__()
        from repro.bench.resilience_experiments import (
            build_resilient_fleet,
            canonical_fault_plan,
        )
        from repro.sim.core import Environment

        self.mode = mode
        self.n_requests = n_requests
        self.rate_rps = float(rate_rps)
        self.deadline_seconds = float(deadline_seconds)
        self.env = Environment()
        plan = None
        if chaos:
            plan = canonical_fault_plan(n_requests / rate_rps, seed=seed)
        self.fleet, self.chaos, client = build_resilient_fleet(
            self.env, mode, n_requests, rate_rps=rate_rps,
            deadline_seconds=deadline_seconds, seed=seed, plan=plan,
            n_partitions=n_partitions,
            servers_per_partition=servers_per_partition, n_tokens=n_tokens)
        buffer, env = self._events, self.env

        def tap(latency: float, in_slo: bool) -> None:
            buffer.append((env.now, float(latency), bool(in_slo)))

        self.fleet.stats.on_completion = tap
        self._stop = client.done

    def result(self) -> dict:
        from repro.bench.resilience_experiments import resilient_fleet_report

        return resilient_fleet_report(self.env, self.fleet, self.chaos,
                                      self.mode, self.n_requests,
                                      self.rate_rps, self.deadline_seconds)


class AutoscaleCell(_ScenarioCell):
    """One diurnal-contest fleet (optionally closed-loop autoscaled) —
    the ``autoscale`` bench scenario."""

    def __init__(self, horizon: float, autoscale: bool,
                 pcts: dict[str, int], weight_cache: bool = True,
                 seed: int = 0, trace_seeds: tuple = (1, 2),
                 fault_plan_json: Optional[str] = None):
        super().__init__()
        from repro.bench.autoscale_experiments import build_autoscale_fleet
        from repro.sim.core import Environment

        self.autoscale = autoscale
        self.weight_cache = weight_cache
        self.pcts = dict(pcts)
        self.env = Environment()
        buffer, env = self._events, self.env

        def tap(latency: float, in_slo: bool) -> None:
            buffer.append((env.now, float(latency), bool(in_slo)))

        # Plans travel as JSON text: cell specs must pickle cleanly
        # into worker processes, and the serialised form is exactly the
        # replayable artifact (every cell replays the same plan against
        # its own fleet).
        plan = None
        if fault_plan_json is not None:
            from repro.faas.chaos import FaultPlan

            plan = FaultPlan.from_json(fault_plan_json)
        self.fleet, self.autoscaler, clients, self.chaos = \
            build_autoscale_fleet(
                self.env, horizon, autoscale, pcts,
                weight_cache=weight_cache, seed=seed,
                trace_seeds=tuple(trace_seeds), on_completion=tap,
                plan=plan)
        self._stop = self.env.all_of([c.done for c in clients])

    def _on_finished(self) -> None:
        if self.autoscaler is not None:
            self.autoscaler.stop()

    def result(self) -> dict:
        from repro.bench.autoscale_experiments import autoscale_fleet_report

        return autoscale_fleet_report(self.env, self.fleet, self.autoscaler,
                                      self.autoscale, self.weight_cache,
                                      self.pcts, chaos=self.chaos)


# -- sharded scenario runners -----------------------------------------------

def _latency_dict(stats) -> dict:
    return {
        "count": stats.count,
        "mean": stats.mean,
        "p50": stats.p50,
        "p95": stats.p95,
        "p99": stats.p99,
        "min": stats.minimum,
        "max": stats.maximum,
    }


def _events_digest(events: list[tuple]) -> str:
    """Canonical digest of the merged stream — ``repr`` round-trips
    floats exactly, so equal digests mean a bit-identical stream."""
    return hashlib.sha256(repr(events).encode()).hexdigest()


def _run_sharded(specs, n_shards: int, epoch_seconds: float,
                 use_processes: Optional[bool]) -> dict:
    from repro.sim.sharded import ShardedSimulation
    from repro.telemetry.streaming import replay_latency_stats

    sim = ShardedSimulation(specs, epoch_seconds)
    out = sim.run(n_shards, use_processes=use_processes)
    events = out["events"]
    merged_latency = replay_latency_stats(events, value_index=1).stats()
    return {
        "cells": out["cells"],
        "events": events,
        "merged": {
            "n_events": len(events),
            "events_digest": _events_digest(events),
            "latency": _latency_dict(merged_latency),
        },
        # Shard count and barrier pacing are execution details —
        # identical results across them are the whole point — so they
        # live beside pids/RSS, outside the deterministic payload.
        "execution": dict(out["execution"], n_shards=out["n_shards"],
                          epochs=out["epochs"]),
    }


def sharded_scale_report(n_cells: int, n_shards: int,
                         n_requests_per_cell: int,
                         rate_rps: Optional[float] = None, seed: int = 0,
                         epoch_seconds: float = 60.0,
                         use_processes: Optional[bool] = None) -> dict:
    """Run ``n_cells`` scale devices sharded ``n_shards`` ways.

    Everything outside ``"execution"`` is deterministic in
    (seed, config) — invariant in ``n_shards``, ``epoch_seconds``, and
    in-process vs pooled execution.
    """
    from repro.bench.scale_experiments import DEFAULT_RATE_RPS
    from repro.sim.sharded import CellSpec

    rate = DEFAULT_RATE_RPS if rate_rps is None else rate_rps
    specs = [CellSpec(ScaleCell,
                      {"n_requests": n_requests_per_cell, "rate_rps": rate,
                       "seed": cell_seed(seed, "scale", i)},
                      name=f"scale-{i}")
             for i in range(n_cells)]
    out = _run_sharded(specs, n_shards, epoch_seconds, use_processes)
    out["config"] = {"scenario": "scale", "n_cells": n_cells,
                     "n_requests_per_cell": n_requests_per_cell,
                     "rate_rps": rate, "seed": seed}
    out["merged"]["events_processed"] = sum(c["events"]
                                            for c in out["cells"])
    out["merged"]["n_requests"] = sum(c["n_requests"]
                                      for c in out["cells"])
    return out


def sharded_fleet_report(mode: str, n_requests_per_cell: int,
                         n_cells: int = 1, n_shards: int = 1,
                         rate_rps: Optional[float] = None,
                         deadline_seconds: Optional[float] = None,
                         seed: int = 0, chaos: bool = False,
                         n_partitions: int = 7,
                         servers_per_partition: int = 16,
                         n_tokens: int = 16,
                         epoch_seconds: float = 60.0,
                         use_processes: Optional[bool] = None) -> dict:
    """Run ``n_cells`` resilient fleets sharded ``n_shards`` ways.

    With ``chaos=True`` each cell replays its own canonical fault plan
    (cell 0's is exactly the legacy bench plan for ``seed``).
    """
    from repro.bench.resilience_experiments import (
        DEFAULT_DEADLINE_SECONDS,
        DEFAULT_RATE_RPS,
    )
    from repro.sim.sharded import CellSpec

    rate = DEFAULT_RATE_RPS if rate_rps is None else rate_rps
    deadline = (DEFAULT_DEADLINE_SECONDS if deadline_seconds is None
                else deadline_seconds)
    specs = [CellSpec(FleetCell,
                      {"mode": mode, "n_requests": n_requests_per_cell,
                       "rate_rps": rate, "deadline_seconds": deadline,
                       "seed": cell_seed(seed, "fleet", i), "chaos": chaos,
                       "n_partitions": n_partitions,
                       "servers_per_partition": servers_per_partition,
                       "n_tokens": n_tokens},
                      name=f"fleet-{i}")
             for i in range(n_cells)]
    out = _run_sharded(specs, n_shards, epoch_seconds, use_processes)
    out["config"] = {"scenario": "fleet", "mode": mode,
                     "n_cells": n_cells,
                     "n_requests_per_cell": n_requests_per_cell,
                     "rate_rps": rate, "deadline_seconds": deadline,
                     "seed": seed, "chaos": chaos,
                     "n_partitions": n_partitions,
                     "servers_per_partition": servers_per_partition,
                     "n_tokens": n_tokens}
    merged = out["merged"]
    for key in ("offered", "completed", "shed", "failed", "lost", "slo_ok",
                "faults_applied"):
        merged[key] = sum(c[key] for c in out["cells"])
    merged["events_processed"] = sum(c["events"] for c in out["cells"])
    merged["slo_attainment"] = (merged["slo_ok"] / merged["offered"]
                                if merged["offered"] else 0.0)
    return out


def sharded_autoscale_report(horizon: float, autoscale: bool,
                             pcts: dict[str, int], n_cells: int = 1,
                             n_shards: int = 1, weight_cache: bool = True,
                             seed: int = 0, epoch_seconds: float = 60.0,
                             use_processes: Optional[bool] = None,
                             fault_plan_json: Optional[str] = None) -> dict:
    """Run ``n_cells`` diurnal-contest fleets sharded ``n_shards`` ways.

    Cell 0 carries the legacy hot/cold trace seeds (1, 2); later cells
    draw their diurnal traces from named substreams.
    ``fault_plan_json`` (a serialised :class:`~repro.faas.chaos.FaultPlan`)
    is replayed by *every* cell against its own fleet — cells are
    independent universes, so a shared schedule keeps any cell count
    comparable against a single-process run of the same plan.
    """
    from repro.sim.sharded import CellSpec

    def trace_seeds(i: int) -> tuple:
        if i == 0:
            return (1, 2)
        return (substream_seed(seed, "autoscale-hot", i),
                substream_seed(seed, "autoscale-cold", i))

    specs = [CellSpec(AutoscaleCell,
                      {"horizon": horizon, "autoscale": autoscale,
                       "pcts": dict(pcts), "weight_cache": weight_cache,
                       "seed": cell_seed(seed, "autoscale", i),
                       "trace_seeds": trace_seeds(i),
                       "fault_plan_json": fault_plan_json},
                      name=f"autoscale-{i}")
             for i in range(n_cells)]
    out = _run_sharded(specs, n_shards, epoch_seconds, use_processes)
    out["config"] = {"scenario": "autoscale", "horizon": horizon,
                     "autoscale": autoscale, "pcts": dict(pcts),
                     "n_cells": n_cells, "weight_cache": weight_cache,
                     "seed": seed,
                     "faults": fault_plan_json is not None}
    merged = out["merged"]
    for key in ("offered", "slo_ok", "lost", "faults_applied"):
        merged[key] = sum(c[key] for c in out["cells"])
    merged["events_processed"] = sum(c["events"] for c in out["cells"])
    merged["slo_good_fraction"] = (merged["slo_ok"] / merged["offered"]
                                   if merged["offered"] else 0.0)
    merged["gpu_seconds"] = sum(c["gpu_seconds"] for c in out["cells"])
    merged["resize_aborts"] = sum(
        (c["autoscaler"] or {}).get("resize_aborts", 0)
        for c in out["cells"])
    merged["resize_rollbacks"] = sum(
        (c["autoscaler"] or {}).get("resize_rollbacks", 0)
        for c in out["cells"])
    return out
