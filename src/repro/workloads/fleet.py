"""A partitioned serving fleet wired for chaos experiments.

:class:`ServingFleet` builds the canonical fleet of the scale benchmark
— an A100-80GB split seven ways with 16 serving replicas per partition
— in one of three sharing modes, puts a :class:`ResilientRouter` in
front of it, and exposes :meth:`apply_fault`, the dispatch point a
:class:`~repro.faas.chaos.ChaosController` drives.

The three modes give the *same replica count* over the *same silicon*
with different isolation, which is what the blast-radius experiment
measures:

- ``"mig-mps"`` — 7 MIG ``1g.10gb`` instances, an MPS daemon inside
  each (the paper's nested fine-grained configuration).  Each instance
  is a hardware fault domain: an ECC error kills kernels in one slice.
- ``"mps"`` — one flat MPS daemon, every replica capped to an equal SM
  share mirroring the MIG slice.  One fault domain: an ECC error kills
  every resident kernel.
- ``"timeshare"`` — default time-sliced contexts, one fault domain.

Fault targets in a plan are raw integers; :meth:`apply_fault` resolves
them modulo the relevant victim pool (fault domains, replicas, device
groups), so one plan replays against any mode.
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.device import GpuClient, SimulatedGPU
from repro.gpu.faults import fault_domains, kill_domain
from repro.gpu.mig import MigManager
from repro.gpu.mps import MpsControlDaemon
from repro.gpu.specs import A100_80GB
from repro.sim.core import Environment
from repro.telemetry.resilience import ResilienceStats
from repro.workloads.llm import LLAMA2_7B, InferenceRuntime, LlamaInference
from repro.workloads.resilience import Replica, ResilientRouter, SLOPolicy
from repro.workloads.serving import InferenceServer

__all__ = ["FLEET_MODES", "ServingFleet"]

FLEET_MODES = ("mig-mps", "mps", "timeshare")


class ServingFleet:
    """Replicated inference serving over one partitioned GPU.

    The fleet owns the device, the replicas, their router, and the
    fault-application logic; clients talk to :attr:`router` (or the
    fleet's :meth:`submit` passthrough).
    """

    def __init__(self, env: Environment, mode: str = "mig-mps",
                 n_partitions: int = 7, servers_per_partition: int = 16,
                 spec=A100_80GB, profile: str = "1g.10gb",
                 dtype_bytes: int = 1, max_batch_size: int = 1,
                 policy: Optional[SLOPolicy] = None, seed: int = 0,
                 respawn_seconds: float = 5.0,
                 stats: Optional[ResilienceStats] = None):
        if mode not in FLEET_MODES:
            raise ValueError(f"unknown fleet mode {mode!r}; "
                             f"expected one of {FLEET_MODES}")
        if n_partitions < 1 or servers_per_partition < 1:
            raise ValueError("fleet dimensions must be positive")
        if respawn_seconds <= 0:
            raise ValueError("respawn_seconds must be positive")
        self.env = env
        self.mode = mode
        self.n_partitions = n_partitions
        self.servers_per_partition = servers_per_partition
        self.max_batch_size = max_batch_size
        self.respawn_seconds = respawn_seconds
        self.policy = policy if policy is not None else SLOPolicy()
        self.stats = stats if stats is not None else ResilienceStats()
        self.device = SimulatedGPU(env, spec, cross_check=False)
        self.llm = LlamaInference(LLAMA2_7B,
                                  InferenceRuntime(dtype_bytes=dtype_bytes))
        #: Per-ECC-fault blast radius: (domain, killed, resident before).
        self.ecc_log: list[tuple[str, int, int]] = []

        self._factories: list = []
        if mode == "mig-mps":
            manager = MigManager(self.device)
            env.run(until=env.process(manager.enable()))
            self.manager = manager
            for _ in range(n_partitions):
                instance = manager.create_instance(profile)
                daemon = instance.enable_mps()
                for _ in range(servers_per_partition):
                    self._factories.append(
                        lambda name, d=daemon: d.client(name))
        elif mode == "mps":
            daemon = MpsControlDaemon(self.device)
            daemon.start()
            self.manager = daemon
            # Equal-share SM caps mirroring the MIG slice width, so the
            # two modes differ in *isolation*, not per-replica compute.
            pct = max(1, round(100 / n_partitions))
            for _ in range(n_partitions * servers_per_partition):
                self._factories.append(
                    lambda name, d=daemon, p=pct:
                    d.client(name, active_thread_percentage=p))
        else:  # timeshare
            self.manager = None
            for _ in range(n_partitions * servers_per_partition):
                self._factories.append(
                    lambda name: self.device.timeshare_client(name))

        self.replicas: list[Replica] = []
        for k, factory in enumerate(self._factories):
            server = self._make_server(k, factory(f"srv{k}"))
            self.replicas.append(Replica(k, server, self.policy))
        self.router = ResilientRouter(env, self.replicas, self.policy,
                                      stats=self.stats, seed=seed)

    def _make_server(self, index: int, client: GpuClient) -> InferenceServer:
        return InferenceServer(
            self.env, client, self.llm,
            max_batch_size=self.max_batch_size,
            keep_completed=False, kernel_cache=True,
            name=f"srv{index}")

    # -- client API ---------------------------------------------------------
    def submit(self, n_tokens: int = 20):
        """Route one request through the fleet (router passthrough)."""
        return self.router.submit(n_tokens)

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    def report(self, horizon: float) -> dict:
        return self.stats.report(horizon)

    # -- fault application --------------------------------------------------
    def apply_fault(self, event) -> str:
        """Apply one :class:`~repro.faas.chaos.FaultEvent`; describe it."""
        handler = getattr(self, f"_fault_{event.kind}", None)
        if handler is None:
            raise ValueError(f"fleet cannot apply fault kind {event.kind!r}")
        self.stats.record_fault(event.kind)
        return handler(event)

    def _replica_for(self, event) -> Replica:
        return self.replicas[event.target % len(self.replicas)]

    def _fault_ecc(self, event) -> str:
        # Only domains with clients can lose work; the empty residual
        # domain (e.g. the zero-budget default group in MIG mode) is
        # not a meaningful ECC victim.
        domains = [d for d in fault_domains(self.device)
                   if any(g.clients for g in d.groups)]
        if not domains:
            return "ecc: no populated fault domain"
        domain = domains[event.target % len(domains)]
        resident = len(self.device.pool.tasks)
        killed = kill_domain(self.device, domain)
        self.ecc_log.append((domain.name, killed, resident))
        return (f"ecc {domain.name}: killed {killed} of "
                f"{resident} resident kernels")

    def _fault_replica_crash(self, event) -> str:
        replica = self._replica_for(event)
        if not replica.alive:
            return f"crash srv{replica.index}: already down"
        replica.server.crash()
        delay = event.duration if event.duration > 0 else \
            self.respawn_seconds
        self.env.schedule_callback(
            delay, lambda: self._respawn(replica))
        return f"crash srv{replica.index}: respawn in {delay:g}s"

    def _respawn(self, replica: Replica) -> None:
        if replica.alive:
            return
        name = f"srv{replica.index}r{replica.incarnations}"
        client = self._factories[replica.index](name)
        replica.replace(self._make_server(replica.index, client))

    def _fault_straggler_replica(self, event) -> str:
        replica = self._replica_for(event)
        server = replica.server
        if not server.alive:
            return f"straggler srv{replica.index}: replica down"
        server.slowdown = event.factor

        def restore() -> None:
            # The incarnation that straggled may have crashed meanwhile;
            # its replacement starts at full speed anyway.
            if server.alive:
                server.slowdown = 1.0

        self.env.schedule_callback(event.duration, restore)
        return (f"straggler srv{replica.index}: x{event.factor:g} "
                f"for {event.duration:g}s")

    def _fault_straggler_device(self, event) -> str:
        groups = [g for g in self.device.groups if g.clients]
        if not groups:
            return "straggler-device: no populated group"
        group = groups[event.target % len(groups)]
        original = group.overhead_factor
        group.overhead_factor = original / event.factor
        self.device.pool.poke()

        def restore() -> None:
            group.overhead_factor = original
            self.device.pool.poke()

        self.env.schedule_callback(event.duration, restore)
        return (f"straggler-device {group.name}: x{event.factor:g} "
                f"for {event.duration:g}s")

    def _fault_launch_failure(self, event) -> str:
        replica = self._replica_for(event)
        if not replica.alive:
            return f"launch-failure srv{replica.index}: replica down"
        replica.server.fail_next_launches += 1
        return f"launch-failure srv{replica.index}: next launch rejected"

    def _fault_reconfig_stall(self, event) -> str:
        replica = self._replica_for(event)
        server = replica.server
        if not server.alive:
            return f"stall srv{replica.index}: replica down"
        server.stall_until = max(server.stall_until,
                                 self.env.now + event.duration)
        return f"stall srv{replica.index}: {event.duration:g}s"
