"""A partitioned serving fleet wired for chaos experiments.

:class:`ServingFleet` builds the canonical fleet of the scale benchmark
— an A100-80GB split seven ways with 16 serving replicas per partition
— in one of three sharing modes, puts a :class:`ResilientRouter` in
front of it, and exposes :meth:`apply_fault`, the dispatch point a
:class:`~repro.faas.chaos.ChaosController` drives.

The three modes give the *same replica count* over the *same silicon*
with different isolation, which is what the blast-radius experiment
measures:

- ``"mig-mps"`` — 7 MIG ``1g.10gb`` instances, an MPS daemon inside
  each (the paper's nested fine-grained configuration).  Each instance
  is a hardware fault domain: an ECC error kills kernels in one slice.
- ``"mps"`` — one flat MPS daemon, every replica capped to an equal SM
  share mirroring the MIG slice.  One fault domain: an ECC error kills
  every resident kernel.
- ``"timeshare"`` — default time-sliced contexts, one fault domain.

Fault targets in a plan are raw integers; :meth:`apply_fault` resolves
them modulo the relevant victim pool (fault domains, replicas, device
groups), so one plan replays against any mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.gpu.device import GpuClient, SimulatedGPU
from repro.gpu.faults import fault_domains, kill_domain
from repro.gpu.mig import MigManager
from repro.gpu.mps import MpsControlDaemon
from repro.gpu.specs import A100_80GB
from repro.partition.weightcache import WeightCache
from repro.sim.core import Environment
from repro.telemetry.resilience import ResilienceStats
from repro.workloads.llm import LLAMA2_7B, InferenceRuntime, LlamaInference
from repro.workloads.resilience import Replica, ResilientRouter, SLOPolicy
from repro.workloads.serving import InferenceServer

__all__ = ["AutoscaledServingFleet", "FLEET_MODES", "FleetFunction",
           "FunctionGroup", "ServingFleet"]

FLEET_MODES = ("mig-mps", "mps", "timeshare")


class ServingFleet:
    """Replicated inference serving over one partitioned GPU.

    The fleet owns the device, the replicas, their router, and the
    fault-application logic; clients talk to :attr:`router` (or the
    fleet's :meth:`submit` passthrough).
    """

    def __init__(self, env: Environment, mode: str = "mig-mps",
                 n_partitions: int = 7, servers_per_partition: int = 16,
                 spec=A100_80GB, profile: str = "1g.10gb",
                 dtype_bytes: int = 1, max_batch_size: int = 1,
                 policy: Optional[SLOPolicy] = None, seed: int = 0,
                 respawn_seconds: float = 5.0,
                 stats: Optional[ResilienceStats] = None):
        if mode not in FLEET_MODES:
            raise ValueError(f"unknown fleet mode {mode!r}; "
                             f"expected one of {FLEET_MODES}")
        if n_partitions < 1 or servers_per_partition < 1:
            raise ValueError("fleet dimensions must be positive")
        if respawn_seconds <= 0:
            raise ValueError("respawn_seconds must be positive")
        self.env = env
        self.mode = mode
        self.n_partitions = n_partitions
        self.servers_per_partition = servers_per_partition
        self.max_batch_size = max_batch_size
        self.respawn_seconds = respawn_seconds
        self.policy = policy if policy is not None else SLOPolicy()
        self.stats = stats if stats is not None else ResilienceStats()
        self.device = SimulatedGPU(env, spec, cross_check=False)
        self.llm = LlamaInference(LLAMA2_7B,
                                  InferenceRuntime(dtype_bytes=dtype_bytes))
        #: Per-ECC-fault blast radius: (domain, killed, resident before).
        self.ecc_log: list[tuple[str, int, int]] = []

        self._factories: list = []
        if mode == "mig-mps":
            manager = MigManager(self.device)
            env.run(until=env.process(manager.enable()))
            self.manager = manager
            for _ in range(n_partitions):
                instance = manager.create_instance(profile)
                daemon = instance.enable_mps()
                for _ in range(servers_per_partition):
                    self._factories.append(
                        lambda name, d=daemon: d.client(name))
        elif mode == "mps":
            daemon = MpsControlDaemon(self.device)
            daemon.start()
            self.manager = daemon
            # Equal-share SM caps mirroring the MIG slice width, so the
            # two modes differ in *isolation*, not per-replica compute.
            pct = max(1, round(100 / n_partitions))
            for _ in range(n_partitions * servers_per_partition):
                self._factories.append(
                    lambda name, d=daemon, p=pct:
                    d.client(name, active_thread_percentage=p))
        else:  # timeshare
            self.manager = None
            for _ in range(n_partitions * servers_per_partition):
                self._factories.append(
                    lambda name: self.device.timeshare_client(name))

        self.replicas: list[Replica] = []
        for k, factory in enumerate(self._factories):
            server = self._make_server(k, factory(f"srv{k}"))
            self.replicas.append(Replica(k, server, self.policy))
        self.router = ResilientRouter(env, self.replicas, self.policy,
                                      stats=self.stats, seed=seed)

    def _make_server(self, index: int, client: GpuClient) -> InferenceServer:
        return InferenceServer(
            self.env, client, self.llm,
            max_batch_size=self.max_batch_size,
            keep_completed=False, kernel_cache=True,
            name=f"srv{index}")

    # -- client API ---------------------------------------------------------
    def submit(self, n_tokens: int = 20):
        """Route one request through the fleet (router passthrough)."""
        return self.router.submit(n_tokens)

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    def report(self, horizon: float) -> dict:
        return self.stats.report(horizon)

    # -- fault application --------------------------------------------------
    def apply_fault(self, event) -> str:
        """Apply one :class:`~repro.faas.chaos.FaultEvent`; describe it."""
        handler = getattr(self, f"_fault_{event.kind}", None)
        if handler is None:
            raise ValueError(f"fleet cannot apply fault kind {event.kind!r}")
        self.stats.record_fault(event.kind)
        return handler(event)

    def _replica_for(self, event) -> Replica:
        return self.replicas[event.target % len(self.replicas)]

    def _fault_ecc(self, event) -> str:
        # Only domains with clients can lose work; the empty residual
        # domain (e.g. the zero-budget default group in MIG mode) is
        # not a meaningful ECC victim.
        domains = [d for d in fault_domains(self.device)
                   if any(g.clients for g in d.groups)]
        if not domains:
            return "ecc: no populated fault domain"
        domain = domains[event.target % len(domains)]
        resident = len(self.device.pool.tasks)
        killed = kill_domain(self.device, domain)
        self.ecc_log.append((domain.name, killed, resident))
        return (f"ecc {domain.name}: killed {killed} of "
                f"{resident} resident kernels")

    def _fault_replica_crash(self, event) -> str:
        replica = self._replica_for(event)
        if not replica.alive:
            return f"crash srv{replica.index}: already down"
        replica.server.crash()
        delay = event.duration if event.duration > 0 else \
            self.respawn_seconds
        self.env.schedule_callback(
            delay, lambda: self._respawn(replica))
        return f"crash srv{replica.index}: respawn in {delay:g}s"

    def _respawn(self, replica: Replica) -> None:
        if replica.alive:
            return
        name = f"srv{replica.index}r{replica.incarnations}"
        client = self._factories[replica.index](name)
        replica.replace(self._make_server(replica.index, client))

    def _fault_straggler_replica(self, event) -> str:
        replica = self._replica_for(event)
        server = replica.server
        if not server.alive:
            return f"straggler srv{replica.index}: replica down"
        server.slowdown = event.factor

        def restore() -> None:
            # The incarnation that straggled may have crashed meanwhile;
            # its replacement starts at full speed anyway.
            if server.alive:
                server.slowdown = 1.0

        self.env.schedule_callback(event.duration, restore)
        return (f"straggler srv{replica.index}: x{event.factor:g} "
                f"for {event.duration:g}s")

    def _fault_straggler_device(self, event) -> str:
        groups = [g for g in self.device.groups if g.clients]
        if not groups:
            return "straggler-device: no populated group"
        group = groups[event.target % len(groups)]
        original = group.overhead_factor
        group.overhead_factor = original / event.factor
        self.device.pool.poke()

        def restore() -> None:
            group.overhead_factor = original
            self.device.pool.poke()

        self.env.schedule_callback(event.duration, restore)
        return (f"straggler-device {group.name}: x{event.factor:g} "
                f"for {event.duration:g}s")

    def _fault_launch_failure(self, event) -> str:
        replica = self._replica_for(event)
        if not replica.alive:
            return f"launch-failure srv{replica.index}: replica down"
        replica.server.fail_next_launches += 1
        return f"launch-failure srv{replica.index}: next launch rejected"

    def _fault_reconfig_stall(self, event) -> str:
        replica = self._replica_for(event)
        server = replica.server
        if not server.alive:
            return f"stall srv{replica.index}: replica down"
        server.stall_until = max(server.stall_until,
                                 self.env.now + event.duration)
        return f"stall srv{replica.index}: {event.duration:g}s"


@dataclass(frozen=True)
class FleetFunction:
    """Static description of one autoscaled serving function."""

    name: str
    #: Replica count (fixed; the autoscaler resizes shares, not counts).
    n_replicas: int
    #: Per-request latency SLO, seconds.
    slo_seconds: float
    #: Initial per-replica MPS percentage.
    initial_pct: int
    #: Tokens per completion request.
    n_tokens: int = 16

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ValueError("n_replicas must be positive")
        if self.slo_seconds <= 0:
            raise ValueError("slo_seconds must be positive")
        if not 1 <= self.initial_pct <= 100:
            raise ValueError("initial_pct must be in [1, 100]")


class FunctionGroup:
    """Runtime state of one :class:`FleetFunction`: replicas + router.

    Each function gets its own :class:`ResilientRouter` and
    :class:`~repro.telemetry.resilience.ResilienceStats` — breakers,
    hedging, and SLO accounting are per function, while the GPU (and
    the weight cache) is shared fleet-wide.
    """

    def __init__(self, fleet: "AutoscaledServingFleet", spec: FleetFunction,
                 seed: int):
        self.fleet = fleet
        self.spec = spec
        self.name = spec.name
        self.n_tokens = spec.n_tokens
        self.slo_seconds = spec.slo_seconds
        llm = fleet.llm
        #: Isolated completion latency vs SM count (the sizing model).
        self.latency_fn: Callable[[int], float] = (
            lambda sms: llm.completion_seconds(fleet.device.spec, sms,
                                               spec.n_tokens))
        self.model_key = spec.name
        self.model_bytes = llm.weight_bytes
        self.model_load_seconds = llm.load_seconds
        #: Desired per-replica MPS percentage (the controller's target).
        self.current_pct = spec.initial_pct
        #: Actually-provisioned percentage per replica (diverges from
        #: ``current_pct`` transiently, mid-rolling-resize).
        self.pct_by_replica = [spec.initial_pct] * spec.n_replicas
        #: Client-name generation counter (names must be unique).
        self.generation = 0
        self.stats = ResilienceStats()
        self.policy = SLOPolicy(deadline_seconds=spec.slo_seconds)
        self.replicas: list[Replica] = []
        for k in range(spec.n_replicas):
            client = fleet.daemon.client(f"{spec.name}-r{k}g0",
                                         active_thread_percentage=spec.initial_pct)
            server = fleet._make_group_server(self, k, client)
            self.replicas.append(Replica(k, server, self.policy))
        self.router = ResilientRouter(fleet.env, self.replicas, self.policy,
                                      stats=self.stats, seed=seed)


class AutoscaledServingFleet:
    """A multi-function MPS serving fleet whose shares can be resized live.

    One flat MPS daemon over one GPU; each function owns a fixed set of
    replicas whose ``active_thread_percentage`` the
    :class:`~repro.workloads.autoscale.FleetAutoscaler` re-negotiates at
    runtime via :meth:`resize_replica` — the §7 "change GPU resources
    depending on demand" loop made concrete.  With ``weight_cache=True``
    the fleet owns a :class:`~repro.partition.weightcache.WeightCache`
    holding one standing reference per function's weights, so a resized
    replica's restarted client skips the model reload.

    :meth:`provisioned_gpu_seconds` integrates the summed SM caps over
    time — the "equal GPU-seconds" side of the bench's fairness claim.
    """

    def __init__(self, env: Environment,
                 functions: Sequence[FleetFunction],
                 spec=A100_80GB, dtype_bytes: int = 1,
                 max_batch_size: int = 1, seed: int = 0,
                 weight_cache: bool = True):
        if not functions:
            raise ValueError("need at least one function")
        names = {f.name for f in functions}
        if len(names) != len(functions):
            raise ValueError("function names must be unique")
        self.env = env
        self.max_batch_size = max_batch_size
        self.device = SimulatedGPU(env, spec, cross_check=False)
        self.daemon = MpsControlDaemon(self.device)
        self.daemon.start()
        self.llm = LlamaInference(LLAMA2_7B,
                                  InferenceRuntime(dtype_bytes=dtype_bytes))
        self.weight_cache: Optional[WeightCache] = (
            WeightCache() if weight_cache else None)
        self.groups: dict[str, FunctionGroup] = {}
        # Provisioned-capacity integral: sum over replicas of their MPS
        # percentage, integrated piecewise over sim time.
        self._alloc_total_pct = 0
        self._alloc_integral = 0.0
        self._alloc_changed_at = env.now
        for i, fn in enumerate(functions):
            group = FunctionGroup(self, fn, seed=seed * 1_000_003 + i)
            self.groups[fn.name] = group
            self._alloc_total_pct += fn.initial_pct * fn.n_replicas
            if self.weight_cache is not None:
                # The standing fleet-level reference: weights stay
                # resident (refcount >= 1) for the fleet's lifetime, so
                # every resize-restart is a cache hit.
                self.weight_cache.acquire(group.replicas[0].server.client,
                                          group.model_key, group.model_bytes)

    def _make_group_server(self, group: FunctionGroup, index: int,
                           client: GpuClient) -> InferenceServer:
        return InferenceServer(
            self.env, client, self.llm,
            max_batch_size=self.max_batch_size,
            keep_completed=False, kernel_cache=True,
            name=f"{group.name}-r{index}")

    # -- client API ---------------------------------------------------------
    def submit(self, name: str):
        """Route one request to function ``name`` (router passthrough)."""
        group = self.groups[name]
        return group.router.submit(group.n_tokens)

    # -- capacity accounting ------------------------------------------------
    def _note_alloc_change(self, delta_pct: int) -> None:
        now = self.env.now
        self._alloc_integral += self._alloc_total_pct * \
            (now - self._alloc_changed_at)
        self._alloc_changed_at = now
        self._alloc_total_pct += delta_pct

    def provisioned_gpu_seconds(self) -> float:
        """GPU-seconds of provisioned capacity up to now (1.0 = whole GPU
        for one second).  Restart windows provision nothing: the share is
        released at client teardown and re-counted when the new client
        exists."""
        live = self._alloc_total_pct * (self.env.now - self._alloc_changed_at)
        return (self._alloc_integral + live) / 100.0

    # -- live resize --------------------------------------------------------
    def resize_replica(self, name: str, replica: Replica, new_pct: int,
                       planner):
        """Drain one replica and restart its MPS client at ``new_pct``.

        The §6 sequence, executed against live traffic: pause admission,
        wait for in-flight kernels (queued requests are *held*, and the
        router steers new work elsewhere — see ``Replica.stalled``),
        close the client, pay teardown + worker start from ``planner``,
        create the resized client, reload weights unless the cache has
        them, swap the client under the same server, resume.  The
        :class:`Replica` object — and with it the breaker state and the
        router registration — survives, so fault-tolerance history
        carries across the resize.

        A generator: run under ``env.process``.  Returns a dict with the
        replica's downtime and whether the weight cache hit (``None``
        when the replica died mid-resize).
        """
        env = self.env
        group = self.groups[name]
        server = replica.server
        if not server.alive:
            return None
        old_pct = group.pct_by_replica[replica.index]
        t0 = env.now
        server.pause()
        yield server.drain()
        if not server.alive:
            return None
        server.client.close()
        self._note_alloc_change(-old_pct)
        yield env.timeout_pooled(planner.TEARDOWN_SECONDS)
        yield env.timeout_pooled(planner.cold_start.worker_start_seconds(True))
        if not server.alive:
            return None
        group.generation += 1
        client = self.daemon.client(
            f"{group.name}-r{replica.index}g{group.generation}",
            active_thread_percentage=new_pct)
        self._note_alloc_change(new_pct)
        group.pct_by_replica[replica.index] = new_pct
        hit = False
        cache = self.weight_cache
        if cache is not None:
            # Bump-and-release against the standing fleet reference:
            # counts the hit, leaves the refcount unchanged, and stays
            # safe under concurrent resizes of sibling replicas.
            hit = cache.acquire(client, group.model_key, group.model_bytes)
            if hit:
                cache.release(client, group.model_key)
            else:
                yield env.timeout_pooled(group.model_load_seconds)
        else:
            yield env.timeout_pooled(group.model_load_seconds)
        server.client = client
        server.resume()
        return {"replica": replica.index, "downtime_seconds": env.now - t0,
                "weight_cache_hit": hit, "from_pct": old_pct,
                "to_pct": new_pct}

    # -- reporting ----------------------------------------------------------
    @property
    def n_replicas(self) -> int:
        return sum(len(g.replicas) for g in self.groups.values())

    def report(self, horizon: float) -> dict:
        return {name: group.stats.report(horizon)
                for name, group in self.groups.items()}
