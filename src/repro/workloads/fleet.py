"""A partitioned serving fleet wired for chaos experiments.

:class:`ServingFleet` builds the canonical fleet of the scale benchmark
— an A100-80GB split seven ways with 16 serving replicas per partition
— in one of three sharing modes, puts a :class:`ResilientRouter` in
front of it, and exposes :meth:`apply_fault`, the dispatch point a
:class:`~repro.faas.chaos.ChaosController` drives.

The three modes give the *same replica count* over the *same silicon*
with different isolation, which is what the blast-radius experiment
measures:

- ``"mig-mps"`` — 7 MIG ``1g.10gb`` instances, an MPS daemon inside
  each (the paper's nested fine-grained configuration).  Each instance
  is a hardware fault domain: an ECC error kills kernels in one slice.
- ``"mps"`` — one flat MPS daemon, every replica capped to an equal SM
  share mirroring the MIG slice.  One fault domain: an ECC error kills
  every resident kernel.
- ``"timeshare"`` — default time-sliced contexts, one fault domain.

Fault targets in a plan are raw integers; :meth:`apply_fault` resolves
them modulo the relevant victim pool (fault domains, replicas, device
groups), so one plan replays against any mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.gpu.device import GpuClient, SimulatedGPU
from repro.gpu.faults import fault_domains, kill_domain
from repro.gpu.mig import MigManager
from repro.gpu.mps import MpsControlDaemon
from repro.gpu.specs import A100_80GB
from repro.partition.weightcache import WeightCache
from repro.sim.core import Environment
from repro.telemetry.resilience import ResilienceStats
from repro.workloads.llm import LLAMA2_7B, InferenceRuntime, LlamaInference
from repro.workloads.resilience import Replica, ResilientRouter, SLOPolicy
from repro.workloads.serving import InferenceServer

__all__ = ["AutoscaledServingFleet", "FLEET_MODES", "FleetFunction",
           "FunctionGroup", "ResizeTransaction", "ServingFleet"]

FLEET_MODES = ("mig-mps", "mps", "timeshare")


class ServingFleet:
    """Replicated inference serving over one partitioned GPU.

    The fleet owns the device, the replicas, their router, and the
    fault-application logic; clients talk to :attr:`router` (or the
    fleet's :meth:`submit` passthrough).
    """

    def __init__(self, env: Environment, mode: str = "mig-mps",
                 n_partitions: int = 7, servers_per_partition: int = 16,
                 spec=A100_80GB, profile: str = "1g.10gb",
                 dtype_bytes: int = 1, max_batch_size: int = 1,
                 policy: Optional[SLOPolicy] = None, seed: int = 0,
                 respawn_seconds: float = 5.0,
                 stats: Optional[ResilienceStats] = None):
        if mode not in FLEET_MODES:
            raise ValueError(f"unknown fleet mode {mode!r}; "
                             f"expected one of {FLEET_MODES}")
        if n_partitions < 1 or servers_per_partition < 1:
            raise ValueError("fleet dimensions must be positive")
        if respawn_seconds <= 0:
            raise ValueError("respawn_seconds must be positive")
        self.env = env
        self.mode = mode
        self.n_partitions = n_partitions
        self.servers_per_partition = servers_per_partition
        self.max_batch_size = max_batch_size
        self.respawn_seconds = respawn_seconds
        self.policy = policy if policy is not None else SLOPolicy()
        self.stats = stats if stats is not None else ResilienceStats()
        self.device = SimulatedGPU(env, spec, cross_check=False)
        self.llm = LlamaInference(LLAMA2_7B,
                                  InferenceRuntime(dtype_bytes=dtype_bytes))
        #: Per-ECC-fault blast radius: (domain, killed, resident before).
        self.ecc_log: list[tuple[str, int, int]] = []

        self._factories: list = []
        if mode == "mig-mps":
            manager = MigManager(self.device)
            env.run(until=env.process(manager.enable()))
            self.manager = manager
            for _ in range(n_partitions):
                instance = manager.create_instance(profile)
                daemon = instance.enable_mps()
                for _ in range(servers_per_partition):
                    self._factories.append(
                        lambda name, d=daemon: d.client(name))
        elif mode == "mps":
            daemon = MpsControlDaemon(self.device)
            daemon.start()
            self.manager = daemon
            # Equal-share SM caps mirroring the MIG slice width, so the
            # two modes differ in *isolation*, not per-replica compute.
            pct = max(1, round(100 / n_partitions))
            for _ in range(n_partitions * servers_per_partition):
                self._factories.append(
                    lambda name, d=daemon, p=pct:
                    d.client(name, active_thread_percentage=p))
        else:  # timeshare
            self.manager = None
            for _ in range(n_partitions * servers_per_partition):
                self._factories.append(
                    lambda name: self.device.timeshare_client(name))

        self.replicas: list[Replica] = []
        for k, factory in enumerate(self._factories):
            server = self._make_server(k, factory(f"srv{k}"))
            self.replicas.append(Replica(k, server, self.policy))
        self.router = ResilientRouter(env, self.replicas, self.policy,
                                      stats=self.stats, seed=seed)

    def _make_server(self, index: int, client: GpuClient) -> InferenceServer:
        return InferenceServer(
            self.env, client, self.llm,
            max_batch_size=self.max_batch_size,
            keep_completed=False, kernel_cache=True,
            name=f"srv{index}")

    # -- client API ---------------------------------------------------------
    def submit(self, n_tokens: int = 20):
        """Route one request through the fleet (router passthrough)."""
        return self.router.submit(n_tokens)

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    def report(self, horizon: float) -> dict:
        return self.stats.report(horizon)

    # -- fault application --------------------------------------------------
    def apply_fault(self, event) -> str:
        """Apply one :class:`~repro.faas.chaos.FaultEvent`; describe it."""
        handler = getattr(self, f"_fault_{event.kind}", None)
        if handler is None:
            raise ValueError(f"fleet cannot apply fault kind {event.kind!r}")
        self.stats.record_fault(event.kind)
        return handler(event)

    def _replica_for(self, event) -> Optional[Replica]:
        # Defensive: a fleet with an empty replica pool (all torn down)
        # must skip replica-targeted faults, not crash on `% 0`.
        if not self.replicas:
            return None
        return self.replicas[event.target % len(self.replicas)]

    def _fault_ecc(self, event) -> str:
        # Only domains with clients can lose work; the empty residual
        # domain (e.g. the zero-budget default group in MIG mode) is
        # not a meaningful ECC victim.
        domains = [d for d in fault_domains(self.device)
                   if any(g.clients for g in d.groups)]
        if not domains:
            return "ecc: no populated fault domain"
        domain = domains[event.target % len(domains)]
        resident = len(self.device.pool.tasks)
        killed = kill_domain(self.device, domain)
        self.ecc_log.append((domain.name, killed, resident))
        return (f"ecc {domain.name}: killed {killed} of "
                f"{resident} resident kernels")

    def _fault_replica_crash(self, event) -> str:
        replica = self._replica_for(event)
        if replica is None:
            return "crash: no replicas (skipped)"
        if not replica.alive:
            return f"crash srv{replica.index}: already down"
        replica.server.crash()
        delay = event.duration if event.duration > 0 else \
            self.respawn_seconds
        self.env.schedule_callback(
            delay, lambda: self._respawn(replica))
        return f"crash srv{replica.index}: respawn in {delay:g}s"

    def _respawn(self, replica: Replica) -> None:
        if replica.alive:
            return
        name = f"srv{replica.index}r{replica.incarnations}"
        client = self._factories[replica.index](name)
        replica.replace(self._make_server(replica.index, client))

    def _fault_straggler_replica(self, event) -> str:
        replica = self._replica_for(event)
        if replica is None:
            return "straggler: no replicas (skipped)"
        server = replica.server
        if not server.alive:
            return f"straggler srv{replica.index}: replica down"
        server.slowdown = event.factor

        def restore() -> None:
            # The incarnation that straggled may have crashed meanwhile;
            # its replacement starts at full speed anyway.
            if server.alive:
                server.slowdown = 1.0

        self.env.schedule_callback(event.duration, restore)
        return (f"straggler srv{replica.index}: x{event.factor:g} "
                f"for {event.duration:g}s")

    def _fault_straggler_device(self, event) -> str:
        groups = [g for g in self.device.groups if g.clients]
        if not groups:
            return "straggler-device: no populated group"
        group = groups[event.target % len(groups)]
        original = group.overhead_factor
        group.overhead_factor = original / event.factor
        self.device.pool.poke()

        def restore() -> None:
            group.overhead_factor = original
            self.device.pool.poke()

        self.env.schedule_callback(event.duration, restore)
        return (f"straggler-device {group.name}: x{event.factor:g} "
                f"for {event.duration:g}s")

    def _fault_launch_failure(self, event) -> str:
        replica = self._replica_for(event)
        if replica is None:
            return "launch-failure: no replicas (skipped)"
        if not replica.alive:
            return f"launch-failure srv{replica.index}: replica down"
        replica.server.fail_next_launches += 1
        return f"launch-failure srv{replica.index}: next launch rejected"

    def _fault_reconfig_stall(self, event) -> str:
        replica = self._replica_for(event)
        if replica is None:
            return "stall: no replicas (skipped)"
        server = replica.server
        if not server.alive:
            return f"stall srv{replica.index}: replica down"
        server.stall_until = max(server.stall_until,
                                 self.env.now + event.duration)
        return f"stall srv{replica.index}: {event.duration:g}s"

    # Control-plane kinds (repro-faultplan/2) target the resize/telemetry
    # machinery of :class:`AutoscaledServingFleet`; the static fleet has
    # neither, so one plan replays against any fleet as a no-op here.
    def _fault_resize_stuck(self, event) -> str:
        return "resize-stuck: no control plane (skipped)"

    def _fault_cache_load_failure(self, event) -> str:
        return "cache-load-failure: no control plane (skipped)"

    def _fault_sensor_dropout(self, event) -> str:
        return "sensor-dropout: no control plane (skipped)"

    def _fault_telemetry_corruption(self, event) -> str:
        return "telemetry-corruption: no control plane (skipped)"


class ResizeTransaction:
    """One replica's drain → restart → swap resize as an explicit state
    machine with a drain watchdog and a verified rollback.

    States: ``pending`` → ``draining`` → ``restarting`` → ``committed``,
    with two off-ramps — ``aborted`` (the drain watchdog fired before
    the drain handshake completed: admission resumes at the *old*
    percentage and nothing else has changed, verified against a
    pre-resize snapshot) and ``failed`` (the replica died mid-flight).

    The abort path is cheap by construction: the MPS client is only
    closed *after* the drain handshake, so a timed-out drain has
    mutated nothing but the admission pause — rollback is ``resume()``
    plus a state comparison.  :attr:`rollback_verified` records whether
    the post-abort replica-scoped state matched the pre-resize snapshot
    bit for bit (counted in ``ResilienceStats.resize_rollbacks``).

    Run the generator returned by :meth:`run` under ``env.process``;
    it returns the per-replica result dict (``aborted`` key marks the
    off-ramp) or ``None`` when the replica died mid-resize.
    """

    STATES = ("pending", "draining", "restarting", "committed",
              "aborted", "failed")

    def __init__(self, fleet: "AutoscaledServingFleet", name: str,
                 replica: Replica, new_pct: int, planner,
                 watchdog_seconds: float = 30.0):
        if not 1 <= new_pct <= 100:
            raise ValueError("new_pct must be in [1, 100]")
        if watchdog_seconds <= 0:
            raise ValueError("watchdog_seconds must be positive")
        self.fleet = fleet
        self.name = name
        self.replica = replica
        self.new_pct = new_pct
        self.planner = planner
        self.watchdog_seconds = watchdog_seconds
        self.state = "pending"
        #: After an abort: did the rollback restore the pre-resize
        #: replica-scoped state bit for bit?  ``None`` until then.
        self.rollback_verified: Optional[bool] = None

    # -- rollback verification ----------------------------------------------
    def _scope_state(self) -> dict:
        """Replica-scoped control state this transaction may touch.

        Deliberately excludes group-shared fields (``generation``,
        the fleet capacity integral) that *sibling* transactions in the
        same rolling wave legitimately mutate — an abort must restore
        exactly its own blast radius, concurrently with commits nearby.
        """
        fleet = self.fleet
        group = fleet.groups[self.name]
        replica = self.replica
        server = replica.server
        cache = fleet.weight_cache
        return {
            "pct": group.pct_by_replica[replica.index],
            "client": server.client.name if server is not None else None,
            "client_alive": bool(server is not None and server.client.alive),
            "incarnations": replica.incarnations,
            "registered": group.router.replicas[replica.index] is replica,
            "provisioned": fleet._provisioned.get(
                (self.name, replica.index), 0),
            "cache_refs": (None if cache is None else
                           cache.refcounts().get(group.model_key, 0)),
        }

    # -- the state machine --------------------------------------------------
    def run(self):
        fleet = self.fleet
        env = fleet.env
        group = fleet.groups[self.name]
        replica = self.replica
        server = replica.server
        planner = self.planner
        if not server.alive:
            self.state = "failed"
            return None
        stats = group.stats
        stats.resize_attempts += 1
        old_pct = group.pct_by_replica[replica.index]
        snapshot = self._scope_state()
        t0 = env.now
        self.state = "draining"
        server.pause()
        # Drain watchdog: first of {drain handshake, deadline} decides.
        decided = env.event()
        outcome: list[str] = []

        def settle(what: str) -> None:
            if not outcome:
                outcome.append(what)
                decided.succeed()

        fleet._drain_handshake(self.name, replica,
                               lambda: settle("drained"))
        env.schedule_callback(self.watchdog_seconds,
                              lambda: settle("timeout"))
        yield decided
        if outcome[0] == "timeout":
            # ABORT: the client was never closed, so nothing beyond the
            # admission pause happened.  Roll back, verify, move on.
            self.state = "aborted"
            if server.alive:
                server.resume()
            stats.resize_aborts += 1
            self.rollback_verified = self._scope_state() == snapshot
            if self.rollback_verified:
                stats.resize_rollbacks += 1
            return {"replica": replica.index, "aborted": True,
                    "rollback_verified": self.rollback_verified,
                    "downtime_seconds": env.now - t0,
                    "from_pct": old_pct, "to_pct": self.new_pct}
        if not server.alive:
            self.state = "failed"
            return None
        self.state = "restarting"
        server.client.close()
        fleet._set_provisioned(self.name, replica.index, 0)
        yield env.timeout_pooled(planner.TEARDOWN_SECONDS)
        yield env.timeout_pooled(planner.cold_start.worker_start_seconds(True))
        if not server.alive:
            self.state = "failed"
            return None
        group.generation += 1
        client = fleet.daemon.client(
            f"{group.name}-r{replica.index}g{group.generation}",
            active_thread_percentage=self.new_pct)
        group.pct_by_replica[replica.index] = self.new_pct
        fleet._set_provisioned(self.name, replica.index, self.new_pct)
        hit = False
        cache = fleet.weight_cache
        if self.name in fleet._cache_corrupt:
            # Injected corruption: the resident bytes are garbage.  Pay
            # the full reload (streaming fresh weights into the standing
            # allocation repairs the entry for subsequent restarts) and
            # never touch the refcount — the cache stays consistent.
            fleet._cache_corrupt.discard(self.name)
            stats.cache_load_failures += 1
            yield env.timeout_pooled(group.model_load_seconds)
        elif cache is not None:
            # Bump-and-release against the standing fleet reference:
            # counts the hit, leaves the refcount unchanged, and stays
            # safe under concurrent resizes of sibling replicas.
            hit = cache.acquire(client, group.model_key, group.model_bytes)
            if hit:
                cache.release(client, group.model_key)
            else:
                yield env.timeout_pooled(group.model_load_seconds)
        else:
            yield env.timeout_pooled(group.model_load_seconds)
        server.client = client
        server.resume()
        self.state = "committed"
        return {"replica": replica.index, "aborted": False,
                "downtime_seconds": env.now - t0,
                "weight_cache_hit": hit, "from_pct": old_pct,
                "to_pct": self.new_pct}


@dataclass(frozen=True)
class FleetFunction:
    """Static description of one autoscaled serving function."""

    name: str
    #: Replica count (fixed; the autoscaler resizes shares, not counts).
    n_replicas: int
    #: Per-request latency SLO, seconds.
    slo_seconds: float
    #: Initial per-replica MPS percentage.
    initial_pct: int
    #: Tokens per completion request.
    n_tokens: int = 16

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ValueError("n_replicas must be positive")
        if self.slo_seconds <= 0:
            raise ValueError("slo_seconds must be positive")
        if not 1 <= self.initial_pct <= 100:
            raise ValueError("initial_pct must be in [1, 100]")


class FunctionGroup:
    """Runtime state of one :class:`FleetFunction`: replicas + router.

    Each function gets its own :class:`ResilientRouter` and
    :class:`~repro.telemetry.resilience.ResilienceStats` — breakers,
    hedging, and SLO accounting are per function, while the GPU (and
    the weight cache) is shared fleet-wide.
    """

    def __init__(self, fleet: "AutoscaledServingFleet", spec: FleetFunction,
                 seed: int):
        self.fleet = fleet
        self.spec = spec
        self.name = spec.name
        self.n_tokens = spec.n_tokens
        self.slo_seconds = spec.slo_seconds
        llm = fleet.llm
        #: Isolated completion latency vs SM count (the sizing model).
        self.latency_fn: Callable[[int], float] = (
            lambda sms: llm.completion_seconds(fleet.device.spec, sms,
                                               spec.n_tokens))
        self.model_key = spec.name
        self.model_bytes = llm.weight_bytes
        self.model_load_seconds = llm.load_seconds
        #: Desired per-replica MPS percentage (the controller's target).
        self.current_pct = spec.initial_pct
        #: Actually-provisioned percentage per replica (diverges from
        #: ``current_pct`` transiently, mid-rolling-resize).
        self.pct_by_replica = [spec.initial_pct] * spec.n_replicas
        #: Client-name generation counter (names must be unique).
        self.generation = 0
        self.stats = ResilienceStats()
        self.policy = SLOPolicy(deadline_seconds=spec.slo_seconds)
        self.replicas: list[Replica] = []
        for k in range(spec.n_replicas):
            client = fleet.daemon.client(f"{spec.name}-r{k}g0",
                                         active_thread_percentage=spec.initial_pct)
            server = fleet._make_group_server(self, k, client)
            self.replicas.append(Replica(k, server, self.policy))
        self.router = ResilientRouter(fleet.env, self.replicas, self.policy,
                                      stats=self.stats, seed=seed)


class AutoscaledServingFleet:
    """A multi-function MPS serving fleet whose shares can be resized live.

    One flat MPS daemon over one GPU; each function owns a fixed set of
    replicas whose ``active_thread_percentage`` the
    :class:`~repro.workloads.autoscale.FleetAutoscaler` re-negotiates at
    runtime via :meth:`resize_replica` — the §7 "change GPU resources
    depending on demand" loop made concrete.  With ``weight_cache=True``
    the fleet owns a :class:`~repro.partition.weightcache.WeightCache`
    holding one standing reference per function's weights, so a resized
    replica's restarted client skips the model reload.

    :meth:`provisioned_gpu_seconds` integrates the summed SM caps over
    time — the "equal GPU-seconds" side of the bench's fairness claim.
    """

    def __init__(self, env: Environment,
                 functions: Sequence[FleetFunction],
                 spec=A100_80GB, dtype_bytes: int = 1,
                 max_batch_size: int = 1, seed: int = 0,
                 weight_cache: bool = True,
                 respawn_seconds: float = 5.0):
        if not functions:
            raise ValueError("need at least one function")
        names = {f.name for f in functions}
        if len(names) != len(functions):
            raise ValueError("function names must be unique")
        if respawn_seconds <= 0:
            raise ValueError("respawn_seconds must be positive")
        self.env = env
        self.max_batch_size = max_batch_size
        self.respawn_seconds = respawn_seconds
        # -- injected control-plane fault state (see apply_fault) ----------
        #: ``(function, replica index) -> sim time`` until which that
        #: replica's resize drain handshake is held (inf = forever).
        self._drain_stuck: dict[tuple[str, int], float] = {}
        #: Functions whose cached weights are corrupt: the next resize
        #: restart misses, pays a full reload, and repairs the entry.
        self._cache_corrupt: set[str] = set()
        #: ``function -> (until, frozen offered, frozen as-of)``: the
        #: telemetry pipeline stopped publishing; consumers keep seeing
        #: the last snapshot.
        self._sensor_dropout: dict[str, tuple[float, int, float]] = {}
        #: ``function -> (until, offered at onset, factor)``: the offered
        #: counter inflates by ``factor`` relative to onset.
        self._sensor_corrupt: dict[str, tuple[float, int, float]] = {}
        self.device = SimulatedGPU(env, spec, cross_check=False)
        self.daemon = MpsControlDaemon(self.device)
        self.daemon.start()
        self.llm = LlamaInference(LLAMA2_7B,
                                  InferenceRuntime(dtype_bytes=dtype_bytes))
        self.weight_cache: Optional[WeightCache] = (
            WeightCache() if weight_cache else None)
        self.groups: dict[str, FunctionGroup] = {}
        #: Injected faults by kind (fleet-wide; per-function counters
        #: live in each group's :class:`ResilienceStats`).
        self.faults: dict[str, int] = {}
        # Provisioned-capacity integral: sum over replicas of their MPS
        # percentage, integrated piecewise over sim time.  The ledger is
        # per-replica (`_provisioned`) so resize transactions, crashes,
        # and respawns can all touch the same replica without double
        # counting — see _set_provisioned.
        self._provisioned: dict[tuple[str, int], int] = {}
        self._alloc_total_pct = 0
        self._alloc_integral = 0.0
        self._alloc_changed_at = env.now
        for i, fn in enumerate(functions):
            group = FunctionGroup(self, fn, seed=seed * 1_000_003 + i)
            self.groups[fn.name] = group
            for k in range(fn.n_replicas):
                self._provisioned[(fn.name, k)] = fn.initial_pct
            self._alloc_total_pct += fn.initial_pct * fn.n_replicas
            if self.weight_cache is not None:
                # The standing fleet-level reference: weights stay
                # resident (refcount >= 1) for the fleet's lifetime, so
                # every resize-restart is a cache hit.
                self.weight_cache.acquire(group.replicas[0].server.client,
                                          group.model_key, group.model_bytes)

    def _make_group_server(self, group: FunctionGroup, index: int,
                           client: GpuClient) -> InferenceServer:
        return InferenceServer(
            self.env, client, self.llm,
            max_batch_size=self.max_batch_size,
            keep_completed=False, kernel_cache=True,
            name=f"{group.name}-r{index}")

    # -- client API ---------------------------------------------------------
    def submit(self, name: str):
        """Route one request to function ``name`` (router passthrough)."""
        group = self.groups[name]
        return group.router.submit(group.n_tokens)

    # -- capacity accounting ------------------------------------------------
    def _note_alloc_change(self, delta_pct: int) -> None:
        now = self.env.now
        self._alloc_integral += self._alloc_total_pct * \
            (now - self._alloc_changed_at)
        self._alloc_changed_at = now
        self._alloc_total_pct += delta_pct

    def _set_provisioned(self, name: str, index: int, pct: int) -> None:
        """Set one replica's provisioned percentage (idempotent ledger).

        All capacity transitions — resize teardown/restart, crash,
        respawn — go through here, so overlapping events (a crash during
        a restart window, say) can each assert the state they produce
        without double-charging the integral.
        """
        key = (name, index)
        old = self._provisioned.get(key, 0)
        if pct != old:
            self._note_alloc_change(pct - old)
            self._provisioned[key] = pct

    def provisioned_gpu_seconds(self) -> float:
        """GPU-seconds of provisioned capacity up to now (1.0 = whole GPU
        for one second).  Restart windows provision nothing: the share is
        released at client teardown and re-counted when the new client
        exists."""
        live = self._alloc_total_pct * (self.env.now - self._alloc_changed_at)
        return (self._alloc_integral + live) / 100.0

    # -- live resize --------------------------------------------------------
    def resize_replica(self, name: str, replica: Replica, new_pct: int,
                       planner, watchdog_seconds: float = 30.0):
        """Drain one replica and restart its MPS client at ``new_pct``.

        The §6 sequence, executed against live traffic: pause admission,
        wait for in-flight kernels (queued requests are *held*, and the
        router steers new work elsewhere — see ``Replica.stalled``),
        close the client, pay teardown + worker start from ``planner``,
        create the resized client, reload weights unless the cache has
        them, swap the client under the same server, resume.  The
        :class:`Replica` object — and with it the breaker state and the
        router registration — survives, so fault-tolerance history
        carries across the resize.

        Since the control-plane chaos work this is a thin wrapper over
        :class:`ResizeTransaction`: the drain is guarded by a watchdog
        (``watchdog_seconds``), and a drain that never completes aborts
        the resize with a verified rollback instead of wedging the
        control loop.

        A generator: run under ``env.process``.  Returns a dict with the
        replica's downtime and whether the weight cache hit; aborted
        transactions return ``{"aborted": True, "rollback_verified": …}``
        instead, and ``None`` means the replica died mid-resize.
        """
        txn = ResizeTransaction(self, name, replica, new_pct, planner,
                                watchdog_seconds=watchdog_seconds)
        return (yield from txn.run())

    def _drain_handshake(self, name: str, replica: Replica,
                         done: Callable[[], None]) -> None:
        """Call ``done`` once ``replica``'s drain completes *and* any
        injected ``resize_stuck`` hold on it has released.

        A hold with ``until == inf`` never releases — the caller's
        watchdog is then the only way out, which is the point of the
        fault.
        """
        env = self.env
        key = (name, replica.index)

        def release() -> None:
            self._drain_stuck.pop(key, None)
            done()

        def on_drained(_event) -> None:
            until = self._drain_stuck.get(key)
            if until is None or env.now >= until:
                release()
            elif until != math.inf:
                env.schedule_callback(until - env.now, release)
            # inf: held until further notice; never call done().

        replica.server.drain().callbacks.append(on_drained)

    # -- control-plane introspection ----------------------------------------
    def control_state(self) -> dict:
        """JSON-able snapshot of the fleet's control-plane state.

        Everything a resize rollback must restore: per-replica
        percentages and client identities, incarnation counts, router
        membership, the capacity ledger, and the weight cache's
        per-model refcounts.  The rollback property tests compare this
        dict verbatim before and after an aborted transaction.
        """
        state: dict = {
            "alloc_total_pct": self._alloc_total_pct,
            "provisioned": {f"{name}/{idx}": pct for (name, idx), pct
                            in sorted(self._provisioned.items())},
            "groups": {},
        }
        if self.weight_cache is not None:
            state["weight_cache_refs"] = self.weight_cache.refcounts()
        for name, group in self.groups.items():
            state["groups"][name] = {
                "current_pct": group.current_pct,
                "pct_by_replica": list(group.pct_by_replica),
                "generation": group.generation,
                "replicas": [
                    {"index": r.index,
                     "alive": r.alive,
                     "incarnations": r.incarnations,
                     "client": (r.server.client.name
                                if r.server is not None else None),
                     "stalled": r.stalled,
                     "registered": group.router.replicas[r.index] is r}
                    for r in group.replicas],
            }
        return state

    def sensor_snapshot(self, name: str) -> tuple[int, float]:
        """Function ``name``'s *published* telemetry: (offered, as-of).

        This is what the autoscaler is allowed to see.  Healthy sensors
        publish ``(stats.offered, now)``; an active ``sensor_dropout``
        freezes both at fault onset, and an active
        ``telemetry_corruption`` inflates the offered delta since onset
        by its factor.  Expired faults clean themselves up here, so the
        post-fault snapshot reverts to ground truth (the autoscaler's
        plausibility check absorbs the resulting step).
        """
        group = self.groups[name]
        now = self.env.now
        drop = self._sensor_dropout.get(name)
        if drop is not None:
            until, frozen_offered, frozen_at = drop
            if now < until:
                return frozen_offered, frozen_at
            del self._sensor_dropout[name]
        corrupt = self._sensor_corrupt.get(name)
        if corrupt is not None:
            until, onset_offered, factor = corrupt
            if now < until:
                real = group.stats.offered
                inflated = onset_offered + int(
                    round((real - onset_offered) * factor))
                return inflated, now
            del self._sensor_corrupt[name]
        return group.stats.offered, now

    # -- fault application --------------------------------------------------
    def apply_fault(self, event) -> str:
        """Apply one :class:`~repro.faas.chaos.FaultEvent`; describe it.

        The PR-4 data-plane kinds resolve over the flat multi-function
        replica pool; the ``repro-faultplan/2`` control-plane kinds
        mutate the resize/telemetry machinery instead of the replicas.
        """
        handler = getattr(self, f"_fault_{event.kind}", None)
        if handler is None:
            raise ValueError(f"fleet cannot apply fault kind {event.kind!r}")
        self.faults[event.kind] = self.faults.get(event.kind, 0) + 1
        return handler(event)

    def _group_for(self, event) -> FunctionGroup:
        names = list(self.groups)
        return self.groups[names[event.target % len(names)]]

    def _replica_pair_for(self, event) -> Optional[tuple[str, Replica]]:
        pairs = [(name, r) for name, g in self.groups.items()
                 for r in g.replicas]
        if not pairs:
            return None
        return pairs[event.target % len(pairs)]

    def _fault_ecc(self, event) -> str:
        domains = [d for d in fault_domains(self.device)
                   if any(g.clients for g in d.groups)]
        if not domains:
            return "ecc: no populated fault domain"
        domain = domains[event.target % len(domains)]
        resident = len(self.device.pool.tasks)
        killed = kill_domain(self.device, domain)
        return (f"ecc {domain.name}: killed {killed} of "
                f"{resident} resident kernels")

    def _fault_replica_crash(self, event) -> str:
        pair = self._replica_pair_for(event)
        if pair is None:
            return "crash: no replicas (skipped)"
        name, replica = pair
        if not replica.alive:
            return f"crash {name}-r{replica.index}: already down"
        self.groups[name].stats.record_fault(event.kind)
        replica.server.crash()
        self._set_provisioned(name, replica.index, 0)
        delay = event.duration if event.duration > 0 else \
            self.respawn_seconds
        self.env.schedule_callback(
            delay, lambda: self._respawn_group_replica(name, replica))
        return f"crash {name}-r{replica.index}: respawn in {delay:g}s"

    def _respawn_group_replica(self, name: str, replica: Replica) -> None:
        if replica.alive:
            return
        group = self.groups[name]
        pct = group.pct_by_replica[replica.index]
        group.generation += 1
        client = self.daemon.client(
            f"{group.name}-r{replica.index}g{group.generation}",
            active_thread_percentage=pct)
        replica.replace(self._make_group_server(group, replica.index, client))
        self._set_provisioned(name, replica.index, pct)

    def _fault_straggler_replica(self, event) -> str:
        pair = self._replica_pair_for(event)
        if pair is None:
            return "straggler: no replicas (skipped)"
        name, replica = pair
        server = replica.server
        if not server.alive:
            return f"straggler {name}-r{replica.index}: replica down"
        self.groups[name].stats.record_fault(event.kind)
        server.slowdown = event.factor

        def restore() -> None:
            if server.alive:
                server.slowdown = 1.0

        self.env.schedule_callback(event.duration, restore)
        return (f"straggler {name}-r{replica.index}: x{event.factor:g} "
                f"for {event.duration:g}s")

    def _fault_straggler_device(self, event) -> str:
        groups = [g for g in self.device.groups if g.clients]
        if not groups:
            return "straggler-device: no populated group"
        group = groups[event.target % len(groups)]
        original = group.overhead_factor
        group.overhead_factor = original / event.factor
        self.device.pool.poke()

        def restore() -> None:
            group.overhead_factor = original
            self.device.pool.poke()

        self.env.schedule_callback(event.duration, restore)
        return (f"straggler-device {group.name}: x{event.factor:g} "
                f"for {event.duration:g}s")

    def _fault_launch_failure(self, event) -> str:
        pair = self._replica_pair_for(event)
        if pair is None:
            return "launch-failure: no replicas (skipped)"
        name, replica = pair
        if not replica.alive:
            return f"launch-failure {name}-r{replica.index}: replica down"
        self.groups[name].stats.record_fault(event.kind)
        replica.server.fail_next_launches += 1
        return f"launch-failure {name}-r{replica.index}: next launch rejected"

    def _fault_reconfig_stall(self, event) -> str:
        pair = self._replica_pair_for(event)
        if pair is None:
            return "stall: no replicas (skipped)"
        name, replica = pair
        server = replica.server
        if not server.alive:
            return f"stall {name}-r{replica.index}: replica down"
        self.groups[name].stats.record_fault(event.kind)
        server.stall_until = max(server.stall_until,
                                 self.env.now + event.duration)
        return f"stall {name}-r{replica.index}: {event.duration:g}s"

    # Control-plane kinds (repro-faultplan/2).
    def _fault_resize_stuck(self, event) -> str:
        pair = self._replica_pair_for(event)
        if pair is None:
            return "resize-stuck: no replicas (skipped)"
        name, replica = pair
        self.groups[name].stats.record_fault(event.kind)
        until = (math.inf if event.duration <= 0
                 else self.env.now + event.duration)
        self._drain_stuck[(name, replica.index)] = until
        hold = ("until further notice" if until == math.inf
                else f"for {event.duration:g}s")
        return f"resize-stuck {name}-r{replica.index}: drain held {hold}"

    def _fault_cache_load_failure(self, event) -> str:
        group = self._group_for(event)
        group.stats.record_fault(event.kind)
        self._cache_corrupt.add(group.name)
        return (f"cache-load-failure {group.name}: next resize restart "
                f"reloads from cold")

    def _fault_sensor_dropout(self, event) -> str:
        group = self._group_for(event)
        group.stats.record_fault(event.kind)
        until = (math.inf if event.duration <= 0
                 else self.env.now + event.duration)
        self._sensor_dropout[group.name] = (
            until, group.stats.offered, self.env.now)
        hold = ("until further notice" if until == math.inf
                else f"for {event.duration:g}s")
        return f"sensor-dropout {group.name}: telemetry frozen {hold}"

    def _fault_telemetry_corruption(self, event) -> str:
        group = self._group_for(event)
        group.stats.record_fault(event.kind)
        until = (math.inf if event.duration <= 0
                 else self.env.now + event.duration)
        self._sensor_corrupt[group.name] = (
            until, group.stats.offered, event.factor)
        hold = ("until further notice" if until == math.inf
                else f"for {event.duration:g}s")
        return (f"telemetry-corruption {group.name}: offered inflated "
                f"x{event.factor:g} {hold}")

    # -- reporting ----------------------------------------------------------
    @property
    def n_replicas(self) -> int:
        return sum(len(g.replicas) for g in self.groups.values())

    def report(self, horizon: float) -> dict:
        return {name: group.stats.report(horizon)
                for name, group in self.groups.items()}
